// Integration tests combining the future-work extensions with the core
// framework: local clustering on a symmetrized graph (a "local version" of
// the paper's pipeline) and bipartite co-clustering through a stage-2
// algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/graclus.h"
#include "cluster/local.h"
#include "core/bipartite.h"
#include "core/symmetrize.h"
#include "gen/planted.h"
#include "util/rng.h"

namespace dgc {
namespace {

TEST(LocalPipelineTest, LocalClusterOnSymmetrizedGraphFindsPlantedCluster) {
  // Figure-1-pattern planted graph: in the *directed* graph the cluster is
  // invisible to local random-walk methods (members have no internal
  // edges), but on the degree-discounted symmetrization an APPR sweep from
  // any member recovers its cluster.
  PlantedOptions options;
  options.num_clusters = 8;
  options.cluster_size = 20;
  options.p_intra = 0.0;
  options.noise_per_vertex = 0.5;
  options.seed = 3;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  auto u = SymmetrizeDegreeDiscounted(dataset->graph);
  ASSERT_TRUE(u.ok());

  const auto& members = dataset->truth.categories[2];
  LocalClusterOptions local;
  local.epsilon = 1e-6;
  auto result = LocalCluster(*u, members[0], local);
  ASSERT_TRUE(result.ok()) << result.status();
  // Count how many of the true members made the local cluster.
  int found = 0;
  for (Index m : members) {
    if (std::binary_search(result->cluster.begin(), result->cluster.end(),
                           m)) {
      ++found;
    }
  }
  EXPECT_GE(found, static_cast<int>(members.size() * 3 / 4));
  EXPECT_LT(result->conductance, 0.6);
}

TEST(LocalPipelineTest, DifferentSeedsFindDifferentClusters) {
  PlantedOptions options;
  options.num_clusters = 6;
  options.cluster_size = 15;
  options.seed = 9;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  auto u = SymmetrizeDegreeDiscounted(dataset->graph);
  ASSERT_TRUE(u.ok());
  // Cap the sweep so it reports the local community, not a global cut.
  LocalClusterOptions local;
  local.max_cluster_size = 40;
  auto c0 = LocalCluster(*u, dataset->truth.categories[0][0], local);
  auto c1 = LocalCluster(*u, dataset->truth.categories[1][0], local);
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  // The two local clusters should barely overlap.
  std::vector<Index> overlap;
  std::set_intersection(c0->cluster.begin(), c0->cluster.end(),
                        c1->cluster.begin(), c1->cluster.end(),
                        std::back_inserter(overlap));
  EXPECT_LT(overlap.size(),
            std::min(c0->cluster.size(), c1->cluster.size()) / 3);
}

TEST(BipartitePipelineTest, CoClusteringRecoversUserAndItemBlocks) {
  // 3 user blocks x 3 item blocks with block-diagonal preferences.
  const Index users_per_block = 12, items_per_block = 6, blocks = 3;
  Rng rng(11);
  std::vector<Triplet> t;
  for (Index b = 0; b < blocks; ++b) {
    for (Index u = 0; u < users_per_block; ++u) {
      for (Index i = 0; i < items_per_block; ++i) {
        if (rng.Bernoulli(0.7)) {
          t.push_back({b * users_per_block + u,
                       b * items_per_block + i, 1.0});
        }
      }
      // A little cross-block noise.
      const Index noise_item = static_cast<Index>(
          rng.UniformU64(static_cast<uint64_t>(blocks * items_per_block)));
      t.push_back({b * users_per_block + u, noise_item, 1.0});
    }
  }
  auto bip = CsrMatrix::FromTriplets(blocks * users_per_block,
                                     blocks * items_per_block, t);
  ASSERT_TRUE(bip.ok());
  auto joint = BipartiteCoClusterGraph(*bip);
  ASSERT_TRUE(joint.ok());
  GraclusOptions graclus;
  graclus.k = blocks;
  auto clustering = GraclusCluster(*joint, graclus);
  ASSERT_TRUE(clustering.ok());
  // Users of a block share a cluster with their block's items.
  const Index num_users = blocks * users_per_block;
  int agree = 0, total = 0;
  for (Index b = 0; b < blocks; ++b) {
    const Index user_label =
        clustering->LabelOf(b * users_per_block);
    for (Index i = 0; i < items_per_block; ++i) {
      ++total;
      if (clustering->LabelOf(num_users + b * items_per_block + i) ==
          user_label) {
        ++agree;
      }
    }
  }
  EXPECT_GE(agree, total * 3 / 4);
}

}  // namespace
}  // namespace dgc
