#include "core/all_pairs.h"

#include <gtest/gtest.h>

#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "linalg/spgemm.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix RandomNonNegative(Index rows, Index cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(rows))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(cols))),
                rng.UniformDouble() + 0.05});
  }
  return std::move(CsrMatrix::FromTriplets(rows, cols, t)).ValueOrDie();
}

TEST(AllPairsTest, MatchesThresholdedSpGemm) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    CsrMatrix m = RandomNonNegative(40, 30, 300, seed);
    for (Scalar t : {0.1, 0.5, 1.5}) {
      AllPairsOptions options;
      options.threshold = t;
      auto fast = AllPairsSimilarity(m, options);
      ASSERT_TRUE(fast.ok()) << fast.status();
      SpGemmOptions reference_options;
      reference_options.threshold = t;
      reference_options.drop_diagonal = true;
      auto reference = SpGemmAAt(m, reference_options);
      ASSERT_TRUE(reference.ok());
      ASSERT_EQ(fast->nnz(), reference->nnz())
          << "seed " << seed << " threshold " << t;
      for (Index i = 0; i < fast->rows(); ++i) {
        auto fc = fast->RowCols(i);
        auto fv = fast->RowValues(i);
        for (size_t e = 0; e < fc.size(); ++e) {
          EXPECT_NEAR(reference->At(i, fc[e]), fv[e], 1e-10);
        }
      }
    }
  }
}

TEST(AllPairsTest, KeepsDiagonalWhenAsked) {
  CsrMatrix m = RandomNonNegative(10, 8, 40, 9);
  AllPairsOptions options;
  options.threshold = 1e-9;
  options.drop_diagonal = false;
  auto s = AllPairsSimilarity(m, options);
  ASSERT_TRUE(s.ok());
  bool any_diagonal = false;
  for (Index i = 0; i < 10; ++i) {
    if (s->At(i, i) > 0.0) any_diagonal = true;
  }
  EXPECT_TRUE(any_diagonal);
}

TEST(AllPairsTest, PruningStatisticsReported) {
  RmatOptions rmat;
  rmat.scale = 9;
  auto dataset = GenerateRmat(rmat);
  ASSERT_TRUE(dataset.ok());
  // Degree-discounted factor matrix gives skewed weights that prune well.
  auto factors = BuildSimilarityFactors(
      dataset->graph, SymmetrizationMethod::kDegreeDiscounted);
  ASSERT_TRUE(factors.ok());
  AllPairsOptions options;
  options.threshold = 0.3;
  AllPairsStats stats;
  auto s = AllPairsSimilarity(factors->m, options, &stats);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(stats.skipped_rows, 0);
  EXPECT_GE(stats.candidate_pairs, stats.output_pairs);
  EXPECT_EQ(stats.output_pairs, s->nnz());
  // A lower threshold must produce at least as many candidates.
  AllPairsStats loose_stats;
  options.threshold = 0.05;
  ASSERT_TRUE(AllPairsSimilarity(factors->m, options, &loose_stats).ok());
  EXPECT_GE(loose_stats.candidate_pairs, stats.candidate_pairs);
}

TEST(AllPairsTest, RejectsBadInput) {
  CsrMatrix m = RandomNonNegative(5, 5, 10, 1);
  AllPairsOptions bad;
  bad.threshold = 0.0;
  EXPECT_FALSE(AllPairsSimilarity(m, bad).ok());
  auto negative =
      CsrMatrix::FromTriplets(2, 2, {{0, 1, -1.0}});
  ASSERT_TRUE(negative.ok());
  AllPairsOptions options;
  EXPECT_FALSE(
      AllPairsSimilarity(std::move(negative).ValueOrDie(), options).ok());
}

TEST(AllPairsTest, EmptyMatrix) {
  AllPairsOptions options;
  auto s = AllPairsSimilarity(CsrMatrix::Zero(4, 3), options);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->nnz(), 0);
}

}  // namespace
}  // namespace dgc
