#include <gtest/gtest.h>

#include "cluster/bestwcut.h"
#include "cluster/directed_spectral.h"
#include "cluster/pipeline.h"
#include "cluster/spectral.h"
#include "eval/fscore.h"
#include "gen/planted.h"

namespace dgc {
namespace {

UGraph BlockUGraph(Index blocks, Index size) {
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = i + 1; j < size; ++j) {
        edges.emplace_back(base + i, base + j, 1.0);
      }
    }
    edges.emplace_back(base, ((b + 1) % blocks) * size, 0.05);
  }
  return std::move(UGraph::FromEdges(blocks * size, edges)).ValueOrDie();
}

GroundTruth BlockTruth(Index blocks, Index size) {
  GroundTruth truth;
  truth.categories.resize(static_cast<size_t>(blocks));
  for (Index b = 0; b < blocks; ++b) {
    for (Index i = 0; i < size; ++i) {
      truth.categories[static_cast<size_t>(b)].push_back(b * size + i);
    }
  }
  return truth;
}

Digraph DirectedBlocks(Index blocks, Index size) {
  // Directed dense blocks with forward bridges.
  std::vector<Edge> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = 0; j < size; ++j) {
        if (i != j) edges.push_back(Edge{base + i, base + j, 1.0});
      }
    }
    edges.push_back(Edge{base, ((b + 1) % blocks) * size, 1.0});
  }
  return std::move(Digraph::FromEdges(blocks * size, edges)).ValueOrDie();
}

TEST(SpectralTest, EmbeddingShape) {
  UGraph g = BlockUGraph(3, 10);
  SpectralOptions options;
  options.k = 3;
  auto embedding = NormalizedSpectralEmbedding(g.adjacency(), options);
  ASSERT_TRUE(embedding.ok());
  EXPECT_EQ(embedding->rows(), 30);
  EXPECT_EQ(embedding->cols(), 3);
}

TEST(SpectralTest, RecoversBlocks) {
  UGraph g = BlockUGraph(4, 12);
  SpectralOptions options;
  options.k = 4;
  auto c = SpectralClusterSymmetric(g.adjacency(), options);
  ASSERT_TRUE(c.ok());
  auto f = EvaluateFScore(*c, BlockTruth(4, 12));
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->avg_f, 0.9);
}

TEST(SpectralTest, RejectsBadInput) {
  SpectralOptions options;
  options.k = 0;
  UGraph g = BlockUGraph(2, 5);
  EXPECT_FALSE(SpectralClusterSymmetric(g.adjacency(), options).ok());
  EXPECT_FALSE(
      NormalizedSpectralEmbedding(CsrMatrix::Zero(2, 3), {}).ok());
}

TEST(BestWCutTest, RecoversDirectedBlocks) {
  Digraph g = DirectedBlocks(3, 12);
  BestWCutOptions options;
  options.k = 3;
  auto result = BestWCut(g, options);
  ASSERT_TRUE(result.ok());
  auto f = EvaluateFScore(result->clustering, BlockTruth(3, 12));
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->avg_f, 0.85);
  EXPECT_LT(result->wcut, 1.0);
}

TEST(BestWCutTest, ObjectiveLowerForBetterClustering) {
  Digraph g = DirectedBlocks(2, 10);
  Clustering good(std::vector<Index>(20, 0));
  for (Index i = 10; i < 20; ++i) good.Assign(i, 1);
  Clustering bad(std::vector<Index>(20, 0));
  for (Index i = 0; i < 20; i += 2) bad.Assign(i, 1);
  auto w_good = WCutObjective(g, good, WCutWeighting::kUniform);
  auto w_bad = WCutObjective(g, bad, WCutWeighting::kUniform);
  ASSERT_TRUE(w_good.ok());
  ASSERT_TRUE(w_bad.ok());
  EXPECT_LT(*w_good, *w_bad);
}

TEST(BestWCutTest, WeightingNames) {
  EXPECT_EQ(WCutWeightingName(WCutWeighting::kUniform), "uniform");
  EXPECT_EQ(WCutWeightingName(WCutWeighting::kPageRank), "pagerank");
}

TEST(BestWCutTest, RejectsBadK) {
  Digraph g = DirectedBlocks(2, 5);
  BestWCutOptions options;
  options.k = 0;
  EXPECT_FALSE(BestWCut(g, options).ok());
}

TEST(DirectedSpectralTest, KernelIsSymmetric) {
  Digraph g = DirectedBlocks(2, 8);
  auto s = DirectedLaplacianKernel(g);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->IsSymmetric(1e-9));
}

TEST(DirectedSpectralTest, RecoversDirectedBlocks) {
  Digraph g = DirectedBlocks(3, 10);
  DirectedSpectralOptions options;
  options.k = 3;
  auto c = DirectedSpectralZhou(g, options);
  ASSERT_TRUE(c.ok());
  auto f = EvaluateFScore(*c, BlockTruth(3, 10));
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->avg_f, 0.8);
}

TEST(PipelineTest, EndToEndRuns) {
  auto dataset = GeneratePlanted({});
  ASSERT_TRUE(dataset.ok());
  PipelineOptions options;
  options.method = SymmetrizationMethod::kDegreeDiscounted;
  options.algorithm = ClusterAlgorithm::kMetis;
  options.metis.k = 20;
  auto result = SymmetrizeAndCluster(dataset->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 20);
  EXPECT_GE(result->symmetrize_seconds, 0.0);
  EXPECT_GE(result->cluster_seconds, 0.0);
  EXPECT_EQ(result->clustering.NumVertices(),
            dataset->graph.NumVertices());
}

TEST(PipelineTest, AlgorithmNames) {
  EXPECT_EQ(ClusterAlgorithmName(ClusterAlgorithm::kMlrMcl), "MLR-MCL");
  EXPECT_EQ(ClusterAlgorithmName(ClusterAlgorithm::kGraclus), "Graclus");
}

}  // namespace
}  // namespace dgc
