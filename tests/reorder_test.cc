// Tests for the row-reordering subsystem (linalg/reorder.h): permutation
// builders are valid and deterministic, the apply/invert/unpermute
// transforms round-trip exactly, and — the load-bearing contract — the
// reordered similarity product SpGemmAAtSymmetricReordered is bitwise
// identical to the direct SpGemmAAtSymmetric for every reorder method,
// threshold and thread count tried.
#include "linalg/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "linalg/spgemm.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix Random(Index n, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (int i = 0; i < nnz; ++i) {
    triplets.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n))),
                rng.UniformDouble() + 0.1});
  }
  return std::move(CsrMatrix::FromTriplets(n, n, triplets)).ValueOrDie();
}

void ExpectValidPermutation(const std::vector<Index>& perm, Index n) {
  ASSERT_EQ(static_cast<size_t>(n), perm.size());
  std::vector<Index> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < n; ++i) EXPECT_EQ(i, sorted[static_cast<size_t>(i)]);
}

void ExpectBitIdentical(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_TRUE(std::equal(a.row_ptr().begin(), a.row_ptr().end(),
                         b.row_ptr().begin()));
  EXPECT_TRUE(std::equal(a.col_idx().begin(), a.col_idx().end(),
                         b.col_idx().begin()));
  if (a.nnz() > 0) {
    EXPECT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                             a.values().size() * sizeof(Scalar)));
  }
}

TEST(ReorderTest, NamesRoundTrip) {
  for (ReorderMethod m :
       {ReorderMethod::kNone, ReorderMethod::kDegree, ReorderMethod::kRcm}) {
    auto parsed = ParseReorderMethod(ReorderMethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(m, *parsed);
  }
  EXPECT_FALSE(ParseReorderMethod("banana").ok());
}

TEST(ReorderTest, BuildersYieldValidDeterministicPermutations) {
  const CsrMatrix a = Random(60, 300, 5);
  const CsrMatrix at = a.Transpose();
  for (ReorderMethod m :
       {ReorderMethod::kNone, ReorderMethod::kDegree, ReorderMethod::kRcm}) {
    const auto perm = BuildReorderPermutation(m, a, at);
    ExpectValidPermutation(perm, a.rows());
    EXPECT_EQ(perm, BuildReorderPermutation(m, a, at)) << "non-deterministic";
  }
  // kNone is the identity.
  const auto identity = BuildReorderPermutation(ReorderMethod::kNone, a, at);
  for (Index i = 0; i < a.rows(); ++i) {
    EXPECT_EQ(i, identity[static_cast<size_t>(i)]);
  }
}

TEST(ReorderTest, DegreeOrderIsAscending) {
  const CsrMatrix a = Random(40, 200, 6);
  const CsrMatrix at = a.Transpose();
  const auto perm = DegreePermutation(a, at);
  // Undirected degree of perm[i] must be non-decreasing in i.
  auto degree = [&](Index v) {
    std::vector<Index> nbrs;
    for (Index c : a.RowCols(v)) {
      if (c != v) nbrs.push_back(c);
    }
    for (Index c : at.RowCols(v)) {
      if (c != v) nbrs.push_back(c);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    return static_cast<Index>(nbrs.size());
  };
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(degree(perm[i - 1]), degree(perm[i])) << "i=" << i;
  }
}

TEST(ReorderTest, InvertPermutationRoundTrips) {
  Rng rng(9);
  std::vector<Index> perm(37);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const auto inv = InvertPermutation(perm);
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(static_cast<Index>(i), inv[static_cast<size_t>(perm[i])]);
  }
}

TEST(ReorderTest, PermuteRowsMovesRowsOnly) {
  const CsrMatrix a = Random(30, 150, 7);
  Rng rng(10);
  std::vector<Index> perm(static_cast<size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const CsrMatrix p = PermuteRows(a, perm);
  ASSERT_EQ(a.rows(), p.rows());
  ASSERT_EQ(a.nnz(), p.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    const Index src = perm[static_cast<size_t>(i)];
    auto pc = p.RowCols(i);
    auto ac = a.RowCols(src);
    ASSERT_EQ(ac.size(), pc.size());
    EXPECT_TRUE(std::equal(ac.begin(), ac.end(), pc.begin()));
    auto pv = p.RowValues(i);
    auto av = a.RowValues(src);
    EXPECT_EQ(0, std::memcmp(av.data(), pv.data(), av.size() * sizeof(Scalar)));
  }
}

TEST(ReorderTest, PermuteSymmetricRelabelsBothSides) {
  const CsrMatrix a = Random(25, 120, 8);
  Rng rng(11);
  std::vector<Index> perm(static_cast<size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const CsrMatrix p = PermuteSymmetric(a, perm);
  ASSERT_EQ(a.nnz(), p.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a.At(perm[static_cast<size_t>(i)],
                     perm[static_cast<size_t>(j)]),
                p.At(i, j))
          << i << "," << j;
    }
  }
}

TEST(ReorderTest, UnpermuteLabelsRoundTrips) {
  Rng rng(12);
  std::vector<Index> perm(21);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  // labels[i] belongs to permuted row i == original row perm[i].
  std::vector<Index> labels(perm.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<Index>(rng.UniformU64(5));
  }
  const auto out = UnpermuteLabels(labels, perm);
  ASSERT_EQ(labels.size(), out.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], out[static_cast<size_t>(perm[i])]);
  }
}

TEST(ReorderTest, UnpermuteUpperTriangleMapsEntriesBack) {
  // Build an upper triangle in permuted space by symmetric permutation of a
  // known symmetric matrix, then check the unpermuted triangle equals the
  // original's upper triangle.
  const CsrMatrix base = Random(20, 90, 13);
  const CsrMatrix sym =
      std::move(CsrMatrix::Add(base, base.Transpose())).ValueOrDie();
  Rng rng(14);
  std::vector<Index> perm(static_cast<size_t>(sym.rows()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const CsrMatrix sym_p = PermuteSymmetric(sym, perm);

  auto upper_of = [](const CsrMatrix& m) {
    std::vector<Triplet> t;
    for (Index r = 0; r < m.rows(); ++r) {
      auto cols = m.RowCols(r);
      auto vals = m.RowValues(r);
      for (size_t p = 0; p < cols.size(); ++p) {
        if (cols[p] > r) t.push_back(Triplet{r, cols[p], vals[p]});
      }
    }
    return std::move(CsrMatrix::FromTriplets(m.rows(), m.cols(), t))
        .ValueOrDie();
  };

  const CsrMatrix unpermuted =
      UnpermuteUpperTriangle(upper_of(sym_p), perm, /*num_threads=*/2);
  ExpectBitIdentical(upper_of(sym), unpermuted);
}

TEST(ReorderTest, ReorderedSimilarityProductIsBitIdentical) {
  const CsrMatrix a = Random(80, 600, 15);
  const CsrMatrix at = a.Transpose();
  std::vector<Scalar> row_scale(static_cast<size_t>(a.rows()));
  std::vector<Scalar> col_scale(static_cast<size_t>(a.rows()));
  Rng rng(16);
  for (auto& s : row_scale) s = rng.UniformDouble(0.2, 1.2);
  for (auto& s : col_scale) s = rng.UniformDouble(0.2, 1.2);

  for (ReorderMethod method : {ReorderMethod::kDegree, ReorderMethod::kRcm}) {
    for (double threshold : {0.0, 0.4}) {
      for (int threads : {1, 4}) {
        SCOPED_TRACE(testing::Message()
                     << ReorderMethodName(method) << " t=" << threshold
                     << " threads=" << threads);
        SpGemmOptions options;
        options.threshold = threshold;
        options.drop_diagonal = true;
        options.num_threads = threads;
        auto direct = SpGemmAAtSymmetric(a, row_scale, col_scale, options);
        ASSERT_TRUE(direct.ok()) << direct.status().ToString();
        const auto perm = BuildReorderPermutation(method, a, at);
        auto reordered = SpGemmAAtSymmetricReordered(a, row_scale, col_scale,
                                                     options, perm);
        ASSERT_TRUE(reordered.ok()) << reordered.status().ToString();
        ExpectBitIdentical(*direct, *reordered);
      }
    }
  }
}

TEST(ReorderTest, ReorderedProductRejectsBadPermutation) {
  const CsrMatrix a = Random(10, 40, 17);
  const std::vector<Index> short_perm(5, 0);
  EXPECT_FALSE(
      SpGemmAAtSymmetricReordered(a, {}, {}, SpGemmOptions{}, short_perm).ok());
}

}  // namespace
}  // namespace dgc
