// Resource governance at the pipeline level: an exceeded budget must abort
// with the right status code, leave the partial span tree in the metrics
// registry (stamped with the terminal status), and — crucially — a budget
// that is never hit must not perturb results by a single bit.
#include <gtest/gtest.h>

#include <string>

#include "cluster/pipeline.h"
#include "gen/rmat.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/budget.h"
#include "util/logging.h"

namespace dgc {
namespace {

Digraph TestGraph() {
  RmatOptions gen;
  gen.scale = 10;
  gen.edge_factor = 6.0;
  auto dataset = GenerateRmat(gen);
  DGC_CHECK(dataset.ok());
  return std::move(dataset->graph);
}

PipelineOptions BaseOptions() {
  PipelineOptions options;
  options.method = SymmetrizationMethod::kDegreeDiscounted;
  options.algorithm = ClusterAlgorithm::kMlrMcl;
  options.symmetrization.prune_threshold = 0.01;
  options.mlr_mcl.rmcl.max_iterations = 8;
  return options;
}

TEST(PipelineBudgetTest, MemoryBudgetAbortsWithResourceExhausted) {
  const Digraph g = TestGraph();
  MetricsRegistry registry;
  PipelineOptions options = BaseOptions();
  options.metrics = &registry;
  options.budget.max_memory_bytes = 1;  // First kernel charge trips.
  auto result = SymmetrizeAndCluster(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("memory budget"),
            std::string::npos)
      << result.status().ToString();
  // The partial span tree survives the abort and records why the run ended.
  const std::string report =
      RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
  EXPECT_NE(report.find("\"name\": \"pipeline\""), std::string::npos);
  EXPECT_NE(report.find("ResourceExhausted"), std::string::npos) << report;
}

TEST(PipelineBudgetTest, DeadlineBudgetAbortsWithDeadlineExceeded) {
  const Digraph g = TestGraph();
  MetricsRegistry registry;
  PipelineOptions options = BaseOptions();
  options.metrics = &registry;
  options.budget.deadline_ms = 1;  // Far below the full-pipeline runtime.
  auto result = SymmetrizeAndCluster(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  const std::string report =
      RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
  EXPECT_NE(report.find("DeadlineExceeded"), std::string::npos) << report;
}

TEST(PipelineBudgetTest, GenerousBudgetIsBitIdenticalToNone) {
  const Digraph g = TestGraph();
  PipelineOptions plain = BaseOptions();
  auto baseline = SymmetrizeAndCluster(g, plain);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  PipelineOptions governed = BaseOptions();
  governed.budget.deadline_ms = 10 * 60 * 1000;
  governed.budget.max_memory_bytes = int64_t{1} << 40;
  for (int threads : {1, 8, 0}) {
    governed.num_threads = threads;
    auto result = SymmetrizeAndCluster(g, governed);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->clustering, baseline->clustering)
        << "threads=" << threads;
  }
}

TEST(PipelineBudgetTest, CallerTokenWinsAndRearmRecovers) {
  const Digraph g = TestGraph();
  CancelToken token;
  ResourceBudget tight;
  tight.max_memory_bytes = 1;
  token.Arm(tight);

  PipelineOptions options = BaseOptions();
  options.cancel = &token;
  // The caller token governs even though options.budget is unlimited.
  auto result = SymmetrizeAndCluster(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsResourceExhausted());

  // Re-arming with an unlimited budget clears the latched trip, so the
  // same token can govern a fresh run that now completes.
  token.Arm(ResourceBudget{});
  auto retry = SymmetrizeAndCluster(g, options);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(PipelineBudgetTest, ClusterUGraphHonorsBudget) {
  const Digraph g = TestGraph();
  PipelineOptions plain = BaseOptions();
  auto full = SymmetrizeAndCluster(g, plain);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  PipelineOptions options = BaseOptions();
  options.budget.deadline_ms = 1;
  auto result = ClusterUGraph(full->symmetrized, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

}  // namespace
}  // namespace dgc
