// Tests for util/budget.h: ResourceBudget semantics, CancelToken latching,
// memory ledger accounting, and the MemoryCharge RAII guard.
#include "util/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace dgc {
namespace {

TEST(ResourceBudgetTest, DefaultIsUnlimited) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.unlimited());
  budget.deadline_ms = 5;
  EXPECT_FALSE(budget.unlimited());
  budget.deadline_ms = 0;
  budget.max_memory_bytes = 1;
  EXPECT_FALSE(budget.unlimited());
}

TEST(CancelTokenTest, UnarmedTokenNeverTrips) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.ChargeMemory(int64_t{1} << 40));
  token.ReleaseMemory(int64_t{1} << 40);
  EXPECT_TRUE(token.status().ok());
}

TEST(CancelTokenTest, UnlimitedBudgetIsInert) {
  CancelToken token;
  token.Arm(ResourceBudget{});
  EXPECT_FALSE(token.Expired());
  EXPECT_FALSE(token.ChargeMemory(int64_t{1} << 40));
  EXPECT_TRUE(token.status().ok());
}

TEST(CancelTokenTest, DeadlineTripsAndLatches) {
  CancelToken token;
  token.Arm(ResourceBudget{.deadline_ms = 1});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsDeadlineExceeded());
  // Latched: still tripped on every subsequent poll.
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.status().IsDeadlineExceeded());
}

TEST(CancelTokenTest, MemoryBudgetTripsWithResourceExhausted) {
  CancelToken token;
  token.Arm(ResourceBudget{.max_memory_bytes = 1000});
  EXPECT_FALSE(token.ChargeMemory(600));
  EXPECT_EQ(token.charged_bytes(), 600);
  EXPECT_TRUE(token.ChargeMemory(600));  // 1200 > 1000: trips
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.status().IsResourceExhausted());
  // Releasing memory never un-trips the token.
  token.ReleaseMemory(1200);
  EXPECT_EQ(token.charged_bytes(), 0);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, FirstTripReasonWins) {
  CancelToken token;
  token.Arm(ResourceBudget{.deadline_ms = 1, .max_memory_bytes = 10});
  EXPECT_TRUE(token.ChargeMemory(100));
  EXPECT_TRUE(token.status().IsResourceExhausted());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.Expired());
  // The later deadline observation must not overwrite the memory reason.
  EXPECT_TRUE(token.status().IsResourceExhausted());
}

TEST(CancelTokenTest, ManualCancelCarriesReason) {
  CancelToken token;
  token.Arm(ResourceBudget{});
  token.Cancel(Status::DeadlineExceeded("caller-imposed stop"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.status().message(), "caller-imposed stop");
}

TEST(CancelTokenTest, RearmResetsTripStateAndLedger) {
  CancelToken token;
  token.Arm(ResourceBudget{.max_memory_bytes = 10});
  EXPECT_TRUE(token.ChargeMemory(100));
  EXPECT_TRUE(token.cancelled());
  token.Arm(ResourceBudget{.max_memory_bytes = 1000});
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.charged_bytes(), 0);
  EXPECT_TRUE(token.status().ok());
  EXPECT_FALSE(token.ChargeMemory(100));
}

TEST(CancelTokenTest, ConcurrentChargesAreAccounted) {
  CancelToken token;
  token.Arm(ResourceBudget{});
  ParallelFor(0, 64, /*num_threads=*/4,
              [&](int64_t) { token.ChargeMemory(10); });
  EXPECT_EQ(token.charged_bytes(), 640);
  ParallelFor(0, 64, /*num_threads=*/4,
              [&](int64_t) { token.ReleaseMemory(10); });
  EXPECT_EQ(token.charged_bytes(), 0);
}

TEST(CancelTokenTest, PeakChargedBytesTracksRunningMax) {
  CancelToken token;
  token.Arm(ResourceBudget{});
  EXPECT_EQ(token.peak_charged_bytes(), 0);
  token.ChargeMemory(500);
  token.ChargeMemory(300);
  EXPECT_EQ(token.peak_charged_bytes(), 800);
  // Releases lower the ledger but never the watermark.
  token.ReleaseMemory(600);
  EXPECT_EQ(token.charged_bytes(), 200);
  EXPECT_EQ(token.peak_charged_bytes(), 800);
  token.ChargeMemory(100);  // 300, still under the peak
  EXPECT_EQ(token.peak_charged_bytes(), 800);
  token.ChargeMemory(900);  // 1200, new peak
  EXPECT_EQ(token.peak_charged_bytes(), 1200);
  // Re-arming starts a fresh watermark (per-run acceptance accounting).
  token.Arm(ResourceBudget{});
  EXPECT_EQ(token.peak_charged_bytes(), 0);
}

TEST(CancelTokenTest, PeakChargedBytesIsConcurrencySafe) {
  CancelToken token;
  token.Arm(ResourceBudget{});
  ParallelFor(0, 64, /*num_threads=*/4,
              [&](int64_t) { token.ChargeMemory(10); });
  // All charges precede any release, so the watermark must equal the sum.
  EXPECT_EQ(token.peak_charged_bytes(), 640);
  ParallelFor(0, 64, /*num_threads=*/4,
              [&](int64_t) { token.ReleaseMemory(10); });
  EXPECT_EQ(token.charged_bytes(), 0);
  EXPECT_EQ(token.peak_charged_bytes(), 640);
}

TEST(MemoryChargeTest, NullTokenIsNoop) {
  MemoryCharge charge(nullptr, int64_t{1} << 40);
  EXPECT_FALSE(charge.exceeded());
}

TEST(MemoryChargeTest, ChargesOnConstructionReleasesOnDestruction) {
  CancelToken token;
  token.Arm(ResourceBudget{.max_memory_bytes = 1000});
  {
    MemoryCharge charge(&token, 400);
    EXPECT_FALSE(charge.exceeded());
    EXPECT_EQ(token.charged_bytes(), 400);
    {
      MemoryCharge inner(&token, 800);
      EXPECT_TRUE(inner.exceeded());
      EXPECT_EQ(token.charged_bytes(), 1200);
    }
    EXPECT_EQ(token.charged_bytes(), 400);
  }
  EXPECT_EQ(token.charged_bytes(), 0);
  EXPECT_TRUE(token.status().IsResourceExhausted());
}

}  // namespace
}  // namespace dgc
