// Unit tests for the out-of-core tiled SpGEMM driver
// (linalg/spgemm_tiled.h). The load-bearing contract is bit-identity: at
// every tile size, thread count and budget, TiledSymmetricProductSum /
// SpGemmAAtSymmetricTiled must reproduce the in-memory fused path
// byte-for-byte — EXPECT on row_ptr/col_idx equality plus memcmp on the
// value bytes, never a tolerance. Also covered: the deterministic row
// partition, the spool lifecycle (spill files cleaned up, spill_dir
// honored), budget-ledger cancellation, and the "tiled_spgemm" span.
#include "linalg/spgemm_tiled.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/discount.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "obs/metrics.h"
#include "util/budget.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix RandomSquare(Index n, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n))),
                rng.UniformDouble() + 0.1});
  }
  return std::move(CsrMatrix::FromTriplets(n, n, t)).ValueOrDie();
}

std::vector<Scalar> RandomScale(Index n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Scalar> s(static_cast<size_t>(n));
  for (Scalar& v : s) v = rng.UniformDouble() + 0.25;
  return s;
}

/// Byte-level equality: structure via span compare, values via memcmp (so
/// -0.0 vs 0.0 or NaN-payload drift would be caught).
void ExpectBitIdentical(const CsrMatrix& actual, const CsrMatrix& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.rows(), expected.rows()) << label;
  ASSERT_EQ(actual.nnz(), expected.nnz()) << label;
  EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                         expected.row_ptr().begin()))
      << label;
  EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                         expected.col_idx().begin()))
      << label;
  EXPECT_EQ(0, std::memcmp(actual.values().data(), expected.values().data(),
                           actual.values().size() * sizeof(Scalar)))
      << label;
}

/// The in-memory oracle the tiled driver must reproduce bit-for-bit.
CsrMatrix InMemoryProductSum(const CsrMatrix& a, const CsrMatrix& at,
                             std::span<const Scalar> b_row,
                             std::span<const Scalar> b_col,
                             std::span<const Scalar> c_row,
                             std::span<const Scalar> c_col,
                             const TiledSymmetricSumOptions& options) {
  SpGemmOptions product;
  product.threshold = options.product_threshold;
  product.drop_diagonal = options.product_drop_diagonal;
  product.num_threads = options.num_threads;
  auto b = SpGemmAAtSymmetric(a, b_row, b_col, product, &at);
  EXPECT_TRUE(b.ok()) << b.status();
  auto c = SpGemmAAtSymmetric(at, c_row, c_col, product, &a);
  EXPECT_TRUE(c.ok()) << c.status();
  SpGemmOptions sum;
  sum.threshold = options.sum_threshold;
  sum.drop_diagonal = options.sum_drop_diagonal;
  sum.num_threads = options.num_threads;
  auto merged = SpGemmSymmetricSum(*b, *c, sum);
  EXPECT_TRUE(merged.ok()) << merged.status();
  return std::move(*merged);
}

TEST(PlanRowTilesTest, PinnedTileRowsGiveFixedCuts) {
  CsrMatrix a = RandomSquare(100, 600, 1);
  CsrMatrix at = a.Transpose();
  TiledSymmetricSumOptions options;
  options.tile_rows = 32;
  TilePlan plan = PlanRowTiles(a, at, options);
  ASSERT_EQ(plan.cuts.size(), 5u);  // 0,32,64,96,100
  EXPECT_EQ(plan.cuts.front(), 0);
  EXPECT_EQ(plan.cuts.back(), 100);
  for (size_t i = 1; i < plan.cuts.size(); ++i) {
    EXPECT_LT(plan.cuts[i - 1], plan.cuts[i]);
  }
}

TEST(PlanRowTilesTest, BudgetDerivedPartitionCoversAllRowsDeterministically) {
  CsrMatrix a = RandomSquare(300, 2500, 2);
  CsrMatrix at = a.Transpose();
  TiledSymmetricSumOptions options;
  options.max_memory_bytes = 256 << 10;  // tight: forces several tiles
  TilePlan plan = PlanRowTiles(a, at, options);
  EXPECT_GT(plan.tile_budget_bytes, 0);
  ASSERT_GE(plan.cuts.size(), 2u);
  EXPECT_EQ(plan.cuts.front(), 0);
  EXPECT_EQ(plan.cuts.back(), 300);
  for (size_t i = 1; i < plan.cuts.size(); ++i) {
    EXPECT_LT(plan.cuts[i - 1], plan.cuts[i]);
  }
  // Pure function of the inputs: a second call yields the same cuts.
  TilePlan again = PlanRowTiles(a, at, options);
  EXPECT_EQ(plan.cuts, again.cuts);
}

TEST(PlanRowTilesTest, EstimatesBoundRowExtents) {
  CsrMatrix a = RandomSquare(80, 500, 3);
  CsrMatrix at = a.Transpose();
  const std::vector<int64_t> est = EstimateUpperRowEntries(a, at);
  ASSERT_EQ(est.size(), 80u);
  for (Index r = 0; r < 80; ++r) {
    EXPECT_GE(est[static_cast<size_t>(r)], 0);
    EXPECT_LE(est[static_cast<size_t>(r)], 80 - r);
  }
  // The estimate really bounds the computed upper-triangle row sizes.
  SpGemmOptions product;
  auto upper = SpGemmAAtSymmetric(a, {}, {}, product, &at);
  ASSERT_TRUE(upper.ok());
  for (Index r = 0; r < 80; ++r) {
    EXPECT_LE(upper->RowNnz(r), est[static_cast<size_t>(r)]) << "row " << r;
  }
}

class TiledEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions rmat;
    rmat.scale = 9;
    rmat.edge_factor = 8.0;
    auto dataset = GenerateRmat(rmat);
    ASSERT_TRUE(dataset.ok());
    a_ = dataset->graph.adjacency();
    at_ = a_.Transpose();
    n_ = a_.rows();
  }

  CsrMatrix a_;
  CsrMatrix at_;
  Index n_ = 0;
};

TEST_F(TiledEquivalenceTest, MatchesInMemoryAcrossTileSizesAndThreads) {
  TiledSymmetricSumOptions base;
  base.product_threshold = 0.05;
  base.product_drop_diagonal = true;
  base.sum_threshold = 0.1;
  base.sum_drop_diagonal = true;
  const std::vector<Scalar> so = RandomScale(n_, 11);
  const std::vector<Scalar> si = RandomScale(n_, 12);
  const std::vector<Scalar> sqrt_so = Sqrt(so);
  const std::vector<Scalar> sqrt_si = Sqrt(si);
  const CsrMatrix expected =
      InMemoryProductSum(a_, at_, so, sqrt_si, si, sqrt_so, base);
  ASSERT_GT(expected.nnz(), 0);

  for (Index tile_rows : {Index{7}, Index{64}, n_, 3 * n_}) {
    for (int threads : {1, 4, 0}) {
      TiledSymmetricSumOptions options = base;
      options.tile_rows = tile_rows;
      options.num_threads = threads;
      auto tiled = TiledSymmetricProductSum(a_, at_, so, sqrt_si, si, sqrt_so,
                                            options);
      ASSERT_TRUE(tiled.ok()) << tiled.status();
      ExpectBitIdentical(*tiled, expected,
                         "tile_rows=" + std::to_string(tile_rows) +
                             " threads=" + std::to_string(threads));
    }
  }
  // Budget-derived partition (tile_rows = 0) with a budget small enough to
  // force several tiles must also match.
  TiledSymmetricSumOptions auto_tiles = base;
  auto_tiles.max_memory_bytes = 1 << 20;
  auto tiled = TiledSymmetricProductSum(a_, at_, so, sqrt_si, si, sqrt_so,
                                        auto_tiles);
  ASSERT_TRUE(tiled.ok()) << tiled.status();
  ExpectBitIdentical(*tiled, expected, "budget-derived tiles");
}

TEST_F(TiledEquivalenceTest, BibliometricStyleEmptyScalesMatch) {
  TiledSymmetricSumOptions base;
  base.product_threshold = 1.0;
  base.product_drop_diagonal = true;
  base.sum_threshold = 2.0;
  base.sum_drop_diagonal = true;
  const CsrMatrix expected =
      InMemoryProductSum(a_, at_, {}, {}, {}, {}, base);
  for (Index tile_rows : {Index{33}, n_}) {
    TiledSymmetricSumOptions options = base;
    options.tile_rows = tile_rows;
    auto tiled = TiledSymmetricProductSum(a_, at_, {}, {}, {}, {}, options);
    ASSERT_TRUE(tiled.ok()) << tiled.status();
    ExpectBitIdentical(*tiled, expected,
                       "tile_rows=" + std::to_string(tile_rows));
  }
}

TEST_F(TiledEquivalenceTest, AAtSymmetricTiledMatchesMonolithic) {
  const std::vector<Scalar> row_scale = RandomScale(n_, 21);
  const std::vector<Scalar> col_scale = RandomScale(n_, 22);
  SpGemmOptions options;
  options.threshold = 0.02;
  options.drop_diagonal = true;
  auto expected = SpGemmAAtSymmetric(a_, row_scale, col_scale, options, &at_);
  ASSERT_TRUE(expected.ok());
  for (Index tile_rows : {Index{1}, Index{17}, n_, 2 * n_}) {
    for (int threads : {1, 0}) {
      SpGemmOptions topts = options;
      topts.num_threads = threads;
      auto tiled = SpGemmAAtSymmetricTiled(a_, row_scale, col_scale, topts,
                                           at_, tile_rows);
      ASSERT_TRUE(tiled.ok()) << tiled.status();
      ExpectBitIdentical(*tiled, *expected,
                         "tile_rows=" + std::to_string(tile_rows) +
                             " threads=" + std::to_string(threads));
    }
  }
  EXPECT_FALSE(
      SpGemmAAtSymmetricTiled(a_, row_scale, col_scale, options, at_, 0).ok());
}

TEST_F(TiledEquivalenceTest, SpillDirIsHonoredAndCleaned) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dgc_tiled_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  TiledSymmetricSumOptions options;
  options.sum_drop_diagonal = true;
  options.tile_rows = 50;
  options.spill_dir = dir.string();
  auto tiled = TiledSymmetricProductSum(a_, at_, {}, {}, {}, {}, options);
  ASSERT_TRUE(tiled.ok()) << tiled.status();
  // The spool must not outlive the call.
  size_t leftover = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(dir);
  // A spill_dir that cannot be created yields a clean error, not a crash.
  TiledSymmetricSumOptions bad = options;
  bad.spill_dir = "/proc/definitely/not/writable";
  EXPECT_FALSE(
      TiledSymmetricProductSum(a_, at_, {}, {}, {}, {}, bad).ok());
}

TEST_F(TiledEquivalenceTest, TinyMemoryBudgetTripsTheLedger) {
  CancelToken token;
  token.Arm(ResourceBudget{.max_memory_bytes = 1024});
  TiledSymmetricSumOptions options;
  options.tile_rows = 64;
  options.cancel = &token;
  auto tiled = TiledSymmetricProductSum(a_, at_, {}, {}, {}, {}, options);
  ASSERT_FALSE(tiled.ok());
  EXPECT_TRUE(tiled.status().IsResourceExhausted()) << tiled.status();
}

TEST_F(TiledEquivalenceTest, RecordsTiledSpgemmSpan) {
  MetricsRegistry registry;
  TiledSymmetricSumOptions options;
  options.tile_rows = 40;
  options.metrics = &registry;
  auto tiled = TiledSymmetricProductSum(a_, at_, {}, {}, {}, {}, options);
  ASSERT_TRUE(tiled.ok());
  bool found = false;
  for (const SpanNode& span : registry.Spans()) {
    if (span.name != "tiled_spgemm") continue;
    found = true;
    bool has_spill = false;
    bool has_output = false;
    for (const auto& [key, value] : span.metrics) {
      if (key == "spill_bytes") {
        has_spill = true;
        EXPECT_GT(std::get<int64_t>(value), 0);
      }
      if (key == "output_nnz") {
        has_output = true;
        EXPECT_EQ(std::get<int64_t>(value), tiled->nnz());
      }
    }
    EXPECT_TRUE(has_spill);
    EXPECT_TRUE(has_output);
    bool has_tiles = false;
    for (const auto& [key, value] : span.perf) {
      if (key == "tiles") {
        has_tiles = true;
        EXPECT_GE(std::get<int64_t>(value), (n_ + 39) / 40);
      }
    }
    EXPECT_TRUE(has_tiles);
  }
  EXPECT_TRUE(found);
}

TEST(TiledValidationTest, RejectsMismatchedInputs) {
  CsrMatrix a = RandomSquare(30, 120, 7);
  CsrMatrix at = a.Transpose();
  TiledSymmetricSumOptions options;
  // Non-transpose pair (wrong shape).
  CsrMatrix wide =
      std::move(CsrMatrix::FromTriplets(30, 20, {Triplet{0, 1, 1.0}}))
          .ValueOrDie();
  EXPECT_FALSE(
      TiledSymmetricProductSum(a, wide, {}, {}, {}, {}, options).ok());
  // Scale vector of the wrong length.
  std::vector<Scalar> short_scale(10, 1.0);
  EXPECT_FALSE(TiledSymmetricProductSum(a, at, short_scale, {}, {}, {},
                                        options)
                   .ok());
}

}  // namespace
}  // namespace dgc
