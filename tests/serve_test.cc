// The dgc_serve subsystem (docs/SERVING.md): protocol parsing, the
// content-addressed symmetrization cache, and the request handler's
// guarantees — concurrent requests are byte-identical to sequential ones,
// a cache hit provably skips the symmetrize stage, budget aborts and
// malformed requests produce structured errors without killing the
// server, and LRU eviction respects the byte budget.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/rmat.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/json.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/logging.h"

namespace dgc {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(ServeJsonTest, ParsesScalarsAndContainers) {
  auto v = ParseJson(R"({"a": 1.5, "b": [true, null, "x\n"], "c": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->Find("a")->AsNumber(), 1.5);
  const auto& arr = v->Find("b")->AsArray();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].AsBool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].AsString(), "x\n");
  EXPECT_TRUE(v->Find("c")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(ServeJsonTest, DiagnosticsCarryColumn) {
  auto v = ParseJson("{\"a\": }");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_NE(v.status().message().find("request:1:7"), std::string::npos)
      << v.status().ToString();
}

TEST(ServeJsonTest, RejectsDuplicateKeysAndTrailingJunk) {
  EXPECT_FALSE(ParseJson(R"({"a": 1, "a": 2})").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson(R"({"a": 1,})").ok());
}

TEST(ServeJsonTest, EnforcesLimitsDuringScan) {
  JsonLimits limits;
  limits.max_depth = 3;
  auto deep = ParseJson("[[[[1]]]]", limits);
  ASSERT_FALSE(deep.ok());
  EXPECT_TRUE(deep.status().IsOutOfRange()) << deep.status().ToString();

  limits = JsonLimits();
  limits.max_bytes = 8;
  auto big = ParseJson(R"({"aaaaaaaa": 1})", limits);
  ASSERT_FALSE(big.ok());
  EXPECT_TRUE(big.status().IsOutOfRange());

  limits = JsonLimits();
  limits.max_string_bytes = 4;
  auto str = ParseJson(R"("abcdefgh")", limits);
  ASSERT_FALSE(str.ok());
  EXPECT_TRUE(str.status().IsOutOfRange());
}

TEST(ServeJsonTest, RejectsNonAsciiEscapesAndBadNumbers) {
  // Raw UTF-8 passes through; \u escapes beyond ASCII are an explicit
  // error, not a mangled decode.
  auto raw = ParseJson("\"\xc3\xa9\"");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->AsString(), "\xc3\xa9");
  EXPECT_FALSE(ParseJson(R"("\u00e9")").ok());
  auto escaped = ParseJson(R"("A")");
  ASSERT_TRUE(escaped.ok());
  EXPECT_EQ(escaped->AsString(), "A");
  EXPECT_FALSE(ParseJson("1e999").ok());  // overflows to inf: rejected
  EXPECT_FALSE(ParseJson("--1").ok());
}

// --- request parsing -------------------------------------------------------

TEST(ServeRequestTest, DefaultsAndStrictUnknownFields) {
  auto req = ParseServeRequest(R"({"graph": "/tmp/g.txt"})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->method, SymmetrizationMethod::kDegreeDiscounted);
  EXPECT_EQ(req->cache, CacheMode::kUse);
  EXPECT_FALSE(req->shutdown);

  auto typo = ParseServeRequest(R"({"graph": "g", "thresold": 0.1})");
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.status().message().find("thresold"), std::string::npos);

  auto wrong_type = ParseServeRequest(R"({"graph": "g", "threads": 2.5})");
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_NE(wrong_type.status().message().find("threads"), std::string::npos);

  auto no_graph = ParseServeRequest(R"({"method": "dd"})");
  ASSERT_FALSE(no_graph.ok());

  auto shutdown = ParseServeRequest(R"({"op": "shutdown"})");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_TRUE(shutdown->shutdown);

  auto bad_schema = ParseServeRequest(
      R"({"schema": "dgc.serve.request.v2", "graph": "g"})");
  ASSERT_FALSE(bad_schema.ok());
}

TEST(ServeRequestTest, CacheKeyCoversStageOneFieldsOnly) {
  ServeRequest a;
  a.graph_path = "g";
  ServeRequest b = a;
  const uint64_t h = 0x1234;
  EXPECT_EQ(CacheKeyForRequest(a, h), CacheKeyForRequest(b, h));
  // Stage-2 knobs must not split the cache.
  b.inflation = 4.0;
  b.threads = 8;
  b.labels = true;
  EXPECT_EQ(CacheKeyForRequest(a, h), CacheKeyForRequest(b, h));
  // Every stage-1 knob must.
  b = a;
  b.alpha = 0.25;
  EXPECT_NE(CacheKeyForRequest(a, h), CacheKeyForRequest(b, h));
  b = a;
  b.threshold = 0.5;
  EXPECT_NE(CacheKeyForRequest(a, h), CacheKeyForRequest(b, h));
  b = a;
  b.method = SymmetrizationMethod::kAPlusAT;
  EXPECT_NE(CacheKeyForRequest(a, h), CacheKeyForRequest(b, h));
  EXPECT_NE(CacheKeyForRequest(a, h), CacheKeyForRequest(a, h + 1));
}

// --- cache -----------------------------------------------------------------

std::shared_ptr<const UGraph> MakeUGraph(Index n) {
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1, 1.0);
  auto g = UGraph::FromEdges(n, edges);
  DGC_CHECK(g.ok());
  return std::make_shared<const UGraph>(std::move(*g));
}

TEST(SymmetrizationCacheTest, LruEvictionUnderByteBudget) {
  MetricsRegistry metrics;
  auto g = MakeUGraph(64);
  const int64_t one = UGraphCacheBytes(*g);
  SymmetrizationCache cache(2 * one, &metrics);

  cache.Insert("a", g);
  cache.Insert("b", MakeUGraph(64));
  EXPECT_EQ(cache.num_entries(), 2);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Lookup("a"), nullptr);
  cache.Insert("c", MakeUGraph(64));
  EXPECT_EQ(cache.num_entries(), 2);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(metrics.CounterValue("serve.cache.evictions"), 1);
  EXPECT_LE(cache.resident_bytes(), 2 * one);

  // An entry bigger than the whole budget is refused outright.
  SymmetrizationCache tiny(one / 2, nullptr);
  tiny.Insert("big", g);
  EXPECT_EQ(tiny.num_entries(), 0);

  // A hit pins the graph across eviction.
  auto pinned = cache.Lookup("a");
  cache.Erase("a");
  EXPECT_EQ(pinned->NumVertices(), 64);
}

TEST(SymmetrizationCacheTest, ContentHashSeesEveryArray) {
  auto g1 = Digraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  auto g2 = Digraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 3.0}});  // weight
  auto g3 = Digraph::FromEdges(3, {{0, 1, 1.0}, {0, 2, 2.0}});  // structure
  ASSERT_TRUE(g1.ok() && g2.ok() && g3.ok());
  const uint64_t h1 = GraphContentHash(g1->adjacency());
  EXPECT_NE(h1, GraphContentHash(g2->adjacency()));
  EXPECT_NE(h1, GraphContentHash(g3->adjacency()));
  EXPECT_EQ(h1, GraphContentHash(g1->adjacency()));
}

// --- server ----------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_serve_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Writes an R-MAT graph file and returns its path. Scale 6 keeps unit
  /// runs fast; WriteRmat(10) is big enough that deadline_ms=1 always
  /// trips mid-pipeline (the pattern pipeline_budget_test.cc pins).
  std::string WriteRmat(int scale, const std::string& name) {
    RmatOptions gen;
    gen.scale = scale;
    gen.edge_factor = 6.0;
    auto dataset = GenerateRmat(gen);
    DGC_CHECK(dataset.ok());
    DGC_CHECK(WriteEdgeList(dataset->graph, Path(name)).ok());
    return Path(name);
  }

  std::filesystem::path dir_;
};

TEST_F(ServeTest, ColdMissThenHitSkipsSymmetrizeStage) {
  const std::string graph = WriteRmat(6, "g.txt");
  MetricsRegistry metrics;
  ServeOptions options;
  options.metrics = &metrics;
  Server server(options);

  const std::string request = R"({"id": "q", "graph": ")" + graph +
                              R"(", "threshold": 0.01, "labels": true})";
  const std::string cold = server.HandleRequestLine(request);
  EXPECT_NE(cold.find("\"ok\": true"), std::string::npos) << cold;
  EXPECT_NE(cold.find("\"cache\": \"miss\""), std::string::npos) << cold;
  // The cold run report contains the symmetrize stage span.
  EXPECT_NE(cold.find("\"name\": \"symmetrize\""), std::string::npos);

  const std::string hit = server.HandleRequestLine(request);
  EXPECT_NE(hit.find("\"cache\": \"hit\""), std::string::npos) << hit;
  // The hit report must NOT contain a symmetrize span — the SpGEMM was
  // skipped — and says so via the pipeline span annotation.
  EXPECT_EQ(hit.find("\"name\": \"symmetrize\""), std::string::npos) << hit;
  EXPECT_NE(hit.find("\"symmetrize\": \"cached\""), std::string::npos) << hit;

  EXPECT_EQ(metrics.CounterValue("serve.cache.misses"), 1);
  EXPECT_EQ(metrics.CounterValue("serve.cache.hits"), 1);

  // Byte-identical labels: clustering a cached symmetrization must equal
  // clustering a fresh one.
  const auto labels_of = [](const std::string& response) {
    const size_t start = response.find("\"labels\": [");
    const size_t end = response.find(']', start);
    return response.substr(start, end - start);
  };
  EXPECT_EQ(labels_of(cold), labels_of(hit));
}

TEST_F(ServeTest, CacheDiscriminatesStageOneParameters) {
  const std::string graph = WriteRmat(6, "g.txt");
  Server server(ServeOptions{});
  const std::string base = R"({"graph": ")" + graph + R"(")";
  EXPECT_NE(server.HandleRequestLine(base + "}").find("\"cache\": \"miss\""),
            std::string::npos);
  // Different alpha → different stage-1 output → must not hit.
  EXPECT_NE(server.HandleRequestLine(base + R"(, "alpha": 0.25})")
                .find("\"cache\": \"miss\""),
            std::string::npos);
  // Different inflation (stage 2 only) → must hit.
  EXPECT_NE(server.HandleRequestLine(base + R"(, "inflation": 3.0})")
                .find("\"cache\": \"hit\""),
            std::string::npos);
  // refresh recomputes even though an entry exists.
  EXPECT_NE(server.HandleRequestLine(base + R"(, "cache": "refresh"})")
                .find("\"cache\": \"refresh\""),
            std::string::npos);
  // bypass neither reads nor writes.
  EXPECT_NE(server.HandleRequestLine(base + R"(, "cache": "bypass"})")
                .find("\"cache\": \"bypass\""),
            std::string::npos);
}

TEST_F(ServeTest, ConcurrentRequestsAreByteIdenticalToSequential) {
  const std::string graph = WriteRmat(6, "g.txt");
  // bypass + redact_timings: every response is a pure function of the
  // request (no cache state, no clocks), so concurrency must not change a
  // byte anywhere in the envelope, labels or embedded report.
  const std::string request =
      R"({"id": "same", "graph": ")" + graph +
      R"(", "threshold": 0.01, "cache": "bypass", "labels": true,)" +
      R"( "redact_timings": true, "threads": 2})";

  Server server(ServeOptions{});
  const std::string reference = server.HandleRequestLine(request);
  ASSERT_NE(reference.find("\"ok\": true"), std::string::npos) << reference;

  constexpr int kThreads = 4;
  std::vector<std::string> responses(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t]() {
        responses[static_cast<size_t>(t)] = server.HandleRequestLine(request);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(responses[static_cast<size_t>(t)], reference)
        << "response " << t << " diverged";
  }
}

TEST_F(ServeTest, LruEvictionUnderTinyServerBudget) {
  const std::string g1 = WriteRmat(6, "g1.txt");
  RmatOptions gen;
  gen.scale = 6;
  gen.edge_factor = 6.0;
  gen.seed = 99;  // same shape, different content → different cache entry
  auto dataset = GenerateRmat(gen);
  ASSERT_TRUE(dataset.ok());
  ASSERT_TRUE(WriteEdgeList(dataset->graph, Path("g2.txt")).ok());
  const std::string g2 = Path("g2.txt");

  const auto request = [](const std::string& path) {
    return R"({"graph": ")" + path + R"(", "threshold": 0.01})";
  };

  // Measure one entry's footprint with an unconstrained server, then size
  // the real budget to hold one entry but never two.
  int64_t one_entry = 0;
  {
    Server probe(ServeOptions{});
    probe.HandleRequestLine(request(g1));
    one_entry = probe.cache().resident_bytes();
    ASSERT_GT(one_entry, 0);
  }

  MetricsRegistry metrics;
  ServeOptions options;
  options.metrics = &metrics;
  options.cache_max_bytes = one_entry + one_entry / 2;
  Server server(std::move(options));

  EXPECT_NE(server.HandleRequestLine(request(g1)).find("\"cache\": \"miss\""),
            std::string::npos);
  EXPECT_EQ(server.cache().num_entries(), 1);
  EXPECT_NE(server.HandleRequestLine(request(g2)).find("\"cache\": \"miss\""),
            std::string::npos);
  EXPECT_GE(metrics.CounterValue("serve.cache.evictions"), 1);
  EXPECT_EQ(server.cache().num_entries(), 1);
  // g1 was evicted to make room for g2, so it misses again (and evicts g2
  // in turn — the LRU churns but never exceeds the budget).
  EXPECT_NE(server.HandleRequestLine(request(g1)).find("\"cache\": \"miss\""),
            std::string::npos);
  EXPECT_LE(server.cache().resident_bytes(), options.cache_max_bytes);
}

TEST_F(ServeTest, MalformedRequestsReturnErrorsWithoutKillingServer) {
  const std::string graph = WriteRmat(6, "g.txt");
  Server server(ServeOptions{});

  const auto expect_error = [&](const std::string& line,
                                const std::string& code) {
    const std::string response = server.HandleRequestLine(line);
    EXPECT_NE(response.find("\"ok\": false"), std::string::npos) << response;
    EXPECT_NE(response.find("\"status\": \"" + code + "\""),
              std::string::npos)
        << response;
  };
  expect_error("not json at all", "InvalidArgument");
  expect_error("[1, 2, 3]", "InvalidArgument");
  expect_error(R"({"graph": "g", "unknown_field": 1})", "InvalidArgument");
  expect_error(R"({"graph": 42})", "InvalidArgument");
  expect_error(R"({"graph": "g", "cache": "sometimes"})", "InvalidArgument");
  expect_error(R"({"graph": ")" + Path("absent.txt") + R"("})", "IOError");
  EXPECT_FALSE(server.shutdown_requested());

  // The server still serves real work after every class of bad input.
  const std::string good =
      server.HandleRequestLine(R"({"graph": ")" + graph + R"("})");
  EXPECT_NE(good.find("\"ok\": true"), std::string::npos) << good;
}

TEST_F(ServeTest, BudgetAbortMidRequestReturnsStructuredError) {
  // Scale 10 with deadline_ms=1: the deadline trips inside the pipeline
  // deterministically (pipeline_budget_test.cc pins this graph size).
  const std::string graph = WriteRmat(10, "big.txt");
  Server server(ServeOptions{});

  const std::string aborted = server.HandleRequestLine(
      R"({"id": "slow", "graph": ")" + graph +
      R"(", "threshold": 0.01, "deadline_ms": 1})");
  EXPECT_NE(aborted.find("\"ok\": false"), std::string::npos) << aborted;
  EXPECT_NE(aborted.find("\"status\": \"DeadlineExceeded\""),
            std::string::npos)
      << aborted;
  // The partial span tree rides along, stamped with the terminal status.
  EXPECT_NE(aborted.find("\"report\": {"), std::string::npos) << aborted;
  EXPECT_NE(aborted.find("DeadlineExceeded"), std::string::npos);

  const std::string memory = server.HandleRequestLine(
      R"({"graph": ")" + graph +
      R"(", "threshold": 0.01, "max_memory_bytes": 1, "cache": "bypass"})");
  EXPECT_NE(memory.find("\"status\": \"ResourceExhausted\""),
            std::string::npos)
      << memory;

  // The daemon survives both aborts.
  const std::string small = WriteRmat(6, "small.txt");
  const std::string good =
      server.HandleRequestLine(R"({"graph": ")" + small + R"("})");
  EXPECT_NE(good.find("\"ok\": true"), std::string::npos) << good;
}

TEST_F(ServeTest, ServeStreamHandlesRequestsUntilShutdown) {
  const std::string graph = WriteRmat(6, "g.txt");
  Server server(ServeOptions{});
  std::istringstream in(R"({"id": "1", "graph": ")" + graph + R"("})" +
                        std::string("\n") + "\n" +  // blank line: ignored
                        R"({"id": "2", "op": "shutdown"})" + "\n" +
                        R"({"id": "never", "graph": ")" + graph + R"("})" +
                        "\n");
  std::ostringstream out;
  ASSERT_TRUE(server.ServeStream(in, out).ok());
  EXPECT_TRUE(server.shutdown_requested());

  std::istringstream lines(out.str());
  std::vector<std::string> responses;
  for (std::string line; std::getline(lines, line);) responses.push_back(line);
  // Two responses: the request and the shutdown ack; nothing after.
  ASSERT_EQ(responses.size(), 2u) << out.str();
  EXPECT_NE(responses[0].find("\"id\": \"1\""), std::string::npos);
  EXPECT_NE(responses[1].find("\"shutdown\": true"), std::string::npos);
}

// --- apply_delta (docs/DYNAMIC.md) -----------------------------------------

/// Extracts the quoted value of `"key": "..."` from a response line.
std::string QuotedField(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t start = response.find(needle);
  if (start == std::string::npos) return "";
  const size_t begin = start + needle.size();
  return response.substr(begin, response.find('"', begin) - begin);
}

TEST_F(ServeTest, ApplyDeltaChainsSessionsAndReportsLocality) {
  // A fixed 8-vertex directed ring, so delta endpoints are known a priori
  // (an R-MAT sample could already contain any arc we try to insert).
  std::vector<Edge> ring;
  for (Index u = 0; u < 8; ++u) ring.push_back(Edge{u, (u + 1) % 8, 1.0});
  auto g = Digraph::FromEdges(8, ring);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteEdgeList(*g, Path("ring.txt")).ok());
  const std::string graph = Path("ring.txt");

  MetricsRegistry metrics;
  ServeOptions options;
  options.metrics = &metrics;
  Server server(options);

  // First batch: delete the 0->1 arc, insert a chord. A fresh session is
  // created (disposition "chain"), the delta span + counters report a
  // strict subset of rows recomputed, and the chained digest is stamped.
  const std::string first = server.HandleRequestLine(
      R"({"id": "d1", "op": "apply_delta", "graph": ")" + graph +
      R"(", "deletes": [[0, 1]], "inserts": [[0, 2, 1.0]]})");
  EXPECT_NE(first.find("\"ok\": true"), std::string::npos) << first;
  EXPECT_EQ(QuotedField(first, "cache"), "chain") << first;
  EXPECT_NE(first.find("\"name\": \"delta\""), std::string::npos) << first;
  const std::string digest1 = QuotedField(first, "delta");
  EXPECT_EQ(digest1.size(), 16u) << first;
  const int64_t recomputed =
      metrics.CounterValue("serve.incremental.rows_recomputed");
  EXPECT_EQ(metrics.CounterValue("serve.incremental.rows_total"), 8);
  EXPECT_GT(recomputed, 0);
  EXPECT_LT(recomputed, 8);
  EXPECT_EQ(server.num_delta_sessions(), 1);

  // Second batch on the same session undoes the first: the session holds
  // the previous flow matrix so clustering warm-starts ("chain+warm"),
  // the digest advances, and no new session is created.
  const std::string second = server.HandleRequestLine(
      R"({"id": "d2", "op": "apply_delta", "graph": ")" + graph +
      R"(", "deletes": [[0, 2]], "inserts": [[0, 1, 1.0]]})");
  EXPECT_NE(second.find("\"ok\": true"), std::string::npos) << second;
  EXPECT_EQ(QuotedField(second, "cache"), "chain+warm") << second;
  const std::string digest2 = QuotedField(second, "delta");
  EXPECT_EQ(digest2.size(), 16u) << second;
  EXPECT_NE(digest2, digest1);
  EXPECT_EQ(server.num_delta_sessions(), 1);

  // Graph-dependent validation surfaces as a structured error — deleting
  // an arc that is gone after the second batch... 0->2 was re-deleted, so
  // deleting it again must fail without killing the server or the session.
  const std::string bad = server.HandleRequestLine(
      R"({"id": "d3", "op": "apply_delta", "graph": ")" + graph +
      R"(", "deletes": [[0, 2]]})");
  EXPECT_NE(bad.find("\"ok\": false"), std::string::npos) << bad;
  EXPECT_EQ(server.num_delta_sessions(), 1);

  // Delta payloads on a non-delta request are a schema violation.
  const std::string stray = server.HandleRequestLine(
      R"({"id": "d4", "graph": ")" + graph + R"(", "inserts": [[1, 3]]})");
  EXPECT_NE(stray.find("\"ok\": false"), std::string::npos) << stray;
}

}  // namespace
}  // namespace dgc
