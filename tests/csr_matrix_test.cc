#include "linalg/csr_matrix.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace dgc {
namespace {

CsrMatrix Make(Index rows, Index cols, std::vector<Triplet> t) {
  auto result = CsrMatrix::FromTriplets(rows, cols, std::move(t));
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).ValueOrDie();
}

/// Builds a (possibly malformed) matrix with no validation, for exercising
/// the Validate() error paths below.
CsrMatrix MakeRaw(Index rows, Index cols, std::vector<Offset> row_ptr,
                  std::vector<Index> col_idx, std::vector<Scalar> values) {
  return CsrMatrix::FromPartsUnchecked(  // dgc-lint: allow(unchecked-needs-validate) deliberately building malformed matrices to test Validate()
      rows, cols, std::move(row_ptr), std::move(col_idx), std::move(values));
}

TEST(CsrMatrixTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::Zero(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(CsrMatrixTest, FromTripletsSortsAndStores) {
  CsrMatrix m = Make(3, 3, {{2, 1, 5.0}, {0, 2, 1.0}, {0, 0, 2.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  CsrMatrix m = Make(2, 2, {{0, 1, 1.0}, {0, 1, 2.5}, {0, 1, -0.5}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.0);
}

TEST(CsrMatrixTest, FromTripletsRejectsOutOfRange) {
  auto result = CsrMatrix::FromTriplets(2, 2, {{0, 5, 1.0}});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
}

TEST(CsrMatrixTest, FromPartsValidates) {
  // row_ptr not matching nnz.
  auto bad = CsrMatrix::FromParts(2, 2, {0, 1, 3}, {0}, {1.0});
  EXPECT_FALSE(bad.ok());
  auto good = CsrMatrix::FromParts(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_TRUE(good.ok());
}

TEST(CsrMatrixTest, FromPartsRejectsUnsortedColumns) {
  auto bad = CsrMatrix::FromParts(1, 3, {0, 2}, {2, 1}, {1.0, 1.0});
  EXPECT_FALSE(bad.ok());
}

TEST(CsrMatrixTest, FromPartsRejectsDuplicateColumns) {
  auto bad = CsrMatrix::FromParts(1, 3, {0, 2}, {1, 1}, {1.0, 1.0});
  EXPECT_FALSE(bad.ok());
}

TEST(CsrMatrixValidateTest, AcceptsWellFormedMatrix) {
  CsrMatrix m = MakeRaw(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  EXPECT_TRUE(m.Validate().ok());
}

TEST(CsrMatrixValidateTest, RejectsUnsortedColumns) {
  CsrMatrix m = MakeRaw(1, 3, {0, 2}, {2, 0}, {1.0, 2.0});
  Status s = m.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("not strictly increasing"), std::string::npos)
      << s;
}

TEST(CsrMatrixValidateTest, RejectsDuplicateColumns) {
  CsrMatrix m = MakeRaw(1, 3, {0, 2}, {1, 1}, {1.0, 2.0});
  Status s = m.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("not strictly increasing"), std::string::npos)
      << s;
}

TEST(CsrMatrixValidateTest, RejectsColumnOutOfRange) {
  CsrMatrix high = MakeRaw(1, 3, {0, 1}, {3}, {1.0});
  EXPECT_TRUE(high.Validate().IsOutOfRange());
  CsrMatrix negative = MakeRaw(1, 3, {0, 1}, {-1}, {1.0});
  EXPECT_TRUE(negative.Validate().IsOutOfRange());
}

TEST(CsrMatrixValidateTest, RejectsNonMonotoneRowPtr) {
  // Sizes are consistent (row_ptr.back() == nnz == 2) but the interior
  // pointer overshoots; Validate() must report this without ever using the
  // corrupt pointer to index col_idx (that read would itself be
  // out of bounds).
  CsrMatrix m = MakeRaw(2, 3, {0, 3, 2}, {0, 1}, {1.0, 2.0});
  Status s = m.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("non-decreasing"), std::string::npos) << s;
}

TEST(CsrMatrixValidateTest, RejectsRowPtrNotStartingAtZero) {
  CsrMatrix m = MakeRaw(1, 3, {1, 2}, {0, 1}, {1.0, 2.0});
  Status s = m.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("row_ptr[0]"), std::string::npos) << s;
}

TEST(CsrMatrixValidateTest, RejectsRowPtrSizeMismatch) {
  CsrMatrix m = MakeRaw(3, 3, {0, 1}, {0}, {1.0});
  Status s = m.Validate();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("rows+1"), std::string::npos) << s;
}

TEST(CsrMatrixValidateTest, RejectsNnzMismatch) {
  // row_ptr promises 3 entries but only 2 are stored.
  CsrMatrix truncated = MakeRaw(1, 4, {0, 3}, {0, 1}, {1.0, 2.0});
  EXPECT_TRUE(truncated.Validate().IsInvalidArgument());
  // col_idx and values disagree.
  CsrMatrix ragged = MakeRaw(1, 4, {0, 2}, {0, 1}, {1.0});
  EXPECT_TRUE(ragged.Validate().IsInvalidArgument());
}

TEST(CsrMatrixValidateTest, RejectsNegativeDimensions) {
  CsrMatrix m = MakeRaw(-1, 2, {0}, {}, {});
  EXPECT_TRUE(m.Validate().IsInvalidArgument());
}

TEST(CsrMatrixValidateDeathTest, ValidateStructureTrapsInCheckedBuilds) {
  CsrMatrix bad = MakeRaw(1, 3, {0, 2}, {2, 0}, {1.0, 2.0});
#if DGC_DCHECKS_ENABLED
  EXPECT_DEATH(bad.ValidateStructure("CsrMatrixValidateDeathTest"),
               "structurally invalid");
#else
  bad.ValidateStructure("CsrMatrixValidateDeathTest");  // compiled out
#endif
}

TEST(CsrMatrixTest, IdentityBehaves) {
  CsrMatrix eye = CsrMatrix::Identity(4);
  EXPECT_EQ(eye.nnz(), 4);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(eye.At(i, i), 1.0);
  }
  EXPECT_TRUE(eye.IsSymmetric());
}

TEST(CsrMatrixTest, TransposeRoundTrip) {
  Rng rng(123);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 200; ++i) {
    triplets.push_back(Triplet{static_cast<Index>(rng.UniformU64(20)),
                               static_cast<Index>(rng.UniformU64(30)),
                               rng.UniformDouble()});
  }
  CsrMatrix m = Make(20, 30, triplets);
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 30);
  EXPECT_EQ(t.cols(), 20);
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.Transpose(), m);
}

TEST(CsrMatrixTest, TransposeMatchesAt) {
  CsrMatrix m = Make(3, 2, {{0, 1, 4.0}, {2, 0, 7.0}});
  CsrMatrix t = m.Transpose();
  EXPECT_DOUBLE_EQ(t.At(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.At(0, 2), 7.0);
}

TEST(CsrMatrixTest, RowAndColSums) {
  CsrMatrix m = Make(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
  auto rows = m.RowSums();
  EXPECT_DOUBLE_EQ(rows[0], 3.0);
  EXPECT_DOUBLE_EQ(rows[1], 3.0);
  auto cols = m.ColSums();
  EXPECT_DOUBLE_EQ(cols[0], 1.0);
  EXPECT_DOUBLE_EQ(cols[1], 0.0);
  EXPECT_DOUBLE_EQ(cols[2], 5.0);
}

TEST(CsrMatrixTest, RowAndColCounts) {
  CsrMatrix m = Make(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
  auto rc = m.RowCounts();
  EXPECT_EQ(rc[0], 2);
  EXPECT_EQ(rc[1], 1);
  auto cc = m.ColCounts();
  EXPECT_EQ(cc[0], 1);
  EXPECT_EQ(cc[1], 0);
  EXPECT_EQ(cc[2], 2);
}

TEST(CsrMatrixTest, ScaleRowsAndCols) {
  CsrMatrix m = Make(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  std::vector<Scalar> row_scale = {2.0, 10.0};
  m.ScaleRows(row_scale);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 30.0);
  std::vector<Scalar> col_scale = {0.5, 0.1};
  m.ScaleCols(col_scale);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 3.0);
}

TEST(CsrMatrixTest, PrunedDropsSmallEntriesAndDiagonal) {
  CsrMatrix m = Make(2, 2,
                     {{0, 0, 0.001}, {0, 1, 1.0}, {1, 0, -2.0}, {1, 1, 5.0}});
  CsrMatrix p = m.Pruned(0.01);
  EXPECT_EQ(p.nnz(), 3);  // |-2| kept, 0.001 dropped
  CsrMatrix pd = m.Pruned(0.01, /*drop_diagonal=*/true);
  EXPECT_EQ(pd.nnz(), 2);
  EXPECT_DOUBLE_EQ(pd.At(1, 1), 0.0);
}

TEST(CsrMatrixTest, PlusIdentity) {
  CsrMatrix m = Make(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  auto result = m.PlusIdentity();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(result->At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(result->At(0, 1), 2.0);
}

TEST(CsrMatrixTest, PlusIdentityRejectsNonSquare) {
  CsrMatrix m = CsrMatrix::Zero(2, 3);
  EXPECT_FALSE(m.PlusIdentity().ok());
}

TEST(CsrMatrixTest, AddMergesStructures) {
  CsrMatrix a = Make(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  CsrMatrix b = Make(2, 2, {{0, 0, 3.0}, {0, 1, 4.0}});
  auto sum = CsrMatrix::Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sum->At(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(sum->At(1, 1), 2.0);
  EXPECT_EQ(sum->nnz(), 3);
}

TEST(CsrMatrixTest, AddRejectsShapeMismatch) {
  EXPECT_FALSE(CsrMatrix::Add(CsrMatrix::Zero(2, 2),
                              CsrMatrix::Zero(3, 3)).ok());
}

TEST(CsrMatrixTest, MultiplyVector) {
  CsrMatrix m = Make(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  std::vector<Scalar> x = {1.0, 2.0, 3.0};
  std::vector<Scalar> y(2);
  m.Multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(CsrMatrixTest, MultiplyTransposeMatchesExplicitTranspose) {
  Rng rng(7);
  std::vector<Triplet> triplets;
  for (int i = 0; i < 100; ++i) {
    triplets.push_back(Triplet{static_cast<Index>(rng.UniformU64(15)),
                               static_cast<Index>(rng.UniformU64(10)),
                               rng.UniformDouble()});
  }
  CsrMatrix m = Make(15, 10, triplets);
  std::vector<Scalar> x(15);
  for (auto& v : x) v = rng.UniformDouble();
  std::vector<Scalar> y1(10), y2(10);
  m.MultiplyTranspose(x, y1);
  m.Transpose().Multiply(x, y2);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(CsrMatrixTest, IsSymmetricDetectsAsymmetry) {
  CsrMatrix sym = Make(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_TRUE(sym.IsSymmetric());
  CsrMatrix asym = Make(2, 2, {{0, 1, 1.0}});
  EXPECT_FALSE(asym.IsSymmetric());
  CsrMatrix weights = Make(2, 2, {{0, 1, 1.0}, {1, 0, 2.0}});
  EXPECT_FALSE(weights.IsSymmetric());
}

TEST(CsrMatrixTest, ToDense) {
  CsrMatrix m = Make(2, 2, {{0, 1, 3.0}, {1, 0, 4.0}});
  auto dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense[0 * 2 + 1], 3.0);
  EXPECT_DOUBLE_EQ(dense[1 * 2 + 0], 4.0);
  EXPECT_DOUBLE_EQ(dense[0], 0.0);
}

}  // namespace
}  // namespace dgc
