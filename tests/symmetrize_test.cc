#include "core/symmetrize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace dgc {
namespace {

Digraph MakeDigraph(Index n, std::vector<Edge> edges) {
  auto g = Digraph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).ValueOrDie();
}

/// The idealized graph of the paper's Figure 1: nodes 4 and 5 point at the
/// same targets {2, 3} and are pointed at by the same sources {0, 1}, but
/// do not link to each other.
Digraph Figure1Graph() {
  return MakeDigraph(6, {
                            {0, 4, 1.0},
                            {0, 5, 1.0},
                            {1, 4, 1.0},
                            {1, 5, 1.0},
                            {4, 2, 1.0},
                            {4, 3, 1.0},
                            {5, 2, 1.0},
                            {5, 3, 1.0},
                        });
}

TEST(MethodNameTest, NamesAndParsing) {
  EXPECT_EQ(SymmetrizationMethodName(SymmetrizationMethod::kAPlusAT), "A+A'");
  EXPECT_EQ(SymmetrizationMethodName(SymmetrizationMethod::kDegreeDiscounted),
            "Degree-discounted");
  EXPECT_EQ(ParseSymmetrizationMethod("dd").ValueOrDie(),
            SymmetrizationMethod::kDegreeDiscounted);
  EXPECT_EQ(ParseSymmetrizationMethod("Bibliometric").ValueOrDie(),
            SymmetrizationMethod::kBibliometric);
  EXPECT_EQ(ParseSymmetrizationMethod("a+at").ValueOrDie(),
            SymmetrizationMethod::kAPlusAT);
  EXPECT_EQ(ParseSymmetrizationMethod("rw").ValueOrDie(),
            SymmetrizationMethod::kRandomWalk);
  EXPECT_FALSE(ParseSymmetrizationMethod("nonsense").ok());
}

TEST(APlusATTest, SumsReciprocalEdges) {
  Digraph g = MakeDigraph(3, {{0, 1, 2.0}, {1, 0, 3.0}, {1, 2, 1.0}});
  auto u = SymmetrizeAPlusAT(g);
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(u->adjacency().At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(u->adjacency().At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(u->adjacency().At(1, 2), 1.0);
  EXPECT_EQ(u->NumEdges(), 2);
}

TEST(APlusATTest, CannotConnectFigure1Pair) {
  // The paper's core observation (Section 3.1): nodes 4 and 5 stay
  // unconnected under A + Aᵀ.
  auto u = SymmetrizeAPlusAT(Figure1Graph());
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(u->adjacency().At(4, 5), 0.0);
}

TEST(RandomWalkTest, SameEdgeSetAsAPlusAT) {
  // Section 3.2: Random walk symmetrization has the exact same non-zero
  // structure as A + Aᵀ.
  Rng rng(77);
  std::vector<Edge> edges;
  for (int i = 0; i < 120; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(25)),
                         static_cast<Index>(rng.UniformU64(25)), 1.0});
  }
  Digraph g = MakeDigraph(25, edges);
  auto sum = SymmetrizeAPlusAT(g);
  auto rw = SymmetrizeRandomWalk(g);
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(rw.ok());
  ASSERT_EQ(sum->NumEdges(), rw->NumEdges());
  for (Index v = 0; v < 25; ++v) {
    auto a = sum->Neighbors(v);
    auto b = rw->Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(RandomWalkTest, WeightsAreFlowProbabilities) {
  // Two-node mutual edge: pi = (1/2, 1/2), P = permutation, so
  // U(0,1) = (pi0*P01 + pi1*P10)/2 = 1/2.
  Digraph g = MakeDigraph(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  SymmetrizationOptions options;
  options.pagerank.teleport = 0.0;
  auto u = SymmetrizeRandomWalk(g, options);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(u->adjacency().At(0, 1), 0.5, 1e-9);
}

TEST(BibliometricTest, CountsCommonInAndOutLinks) {
  Digraph g = Figure1Graph();
  auto u = SymmetrizeBibliometric(g);
  ASSERT_TRUE(u.ok());
  // Nodes 4,5: two common out-links (2,3) + two common in-links (0,1) = 4.
  EXPECT_DOUBLE_EQ(u->adjacency().At(4, 5), 4.0);
  // Nodes 0,1 share out-links {4,5}: weight 2 (no common in-links).
  EXPECT_DOUBLE_EQ(u->adjacency().At(0, 1), 2.0);
  // Nodes 2,3 share in-links {4,5}: weight 2.
  EXPECT_DOUBLE_EQ(u->adjacency().At(2, 3), 2.0);
}

TEST(BibliometricTest, SelfLoopOptionPreservesOriginalEdges) {
  // With A := A + I, an edge i->j yields a nonzero (i,j) similarity even
  // without shared neighbors (Section 3.3).
  Digraph g = MakeDigraph(3, {{0, 1, 1.0}});
  auto plain = SymmetrizeBibliometric(g);
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(plain->adjacency().At(0, 1), 0.0);
  SymmetrizationOptions options;
  options.add_self_loops = true;
  auto with_loops = SymmetrizeBibliometric(g, options);
  ASSERT_TRUE(with_loops.ok());
  EXPECT_GT(with_loops->adjacency().At(0, 1), 0.0);
}

TEST(BibliometricTest, ThresholdSparsifies) {
  Rng rng(5);
  std::vector<Edge> edges;
  for (int i = 0; i < 400; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(40)),
                         static_cast<Index>(rng.UniformU64(40)), 1.0});
  }
  Digraph g = MakeDigraph(40, edges);
  SymmetrizationOptions loose, tight;
  tight.prune_threshold = 3.0;
  auto full = SymmetrizeBibliometric(g, loose);
  auto pruned = SymmetrizeBibliometric(g, tight);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->NumEdges(), full->NumEdges());
  for (Scalar v : pruned->adjacency().values()) EXPECT_GE(v, 3.0);
}

TEST(DegreeDiscountedTest, MatchesPaperFormulaOnFigure1) {
  // Ud(4,5) per Eq. 8: out-part: common targets 2,3 with Di=2 each, both
  // sources have Do=2: (1/sqrt(2))^2 * [1/2 + 1/2] ... explicitly:
  //   Bd(4,5) = Do(4)^-.5 Do(5)^-.5 * sum_k A(4,k)A(5,k) Di(k)^-1... no:
  //   Bd(4,5) = (1/sqrt(Do4 Do5)) * sum_k A4k A5k / sqrt(Di k) hmm — with
  // alpha=beta=0.5: Bd = Do^-1/2 A Di^-1/2 ... A^T:
  //   Bd(4,5) = Do(4)^-1/2 Do(5)^-1/2 * sum_k A(4,k)A(5,k) Di(k)^-1/2...
  // Wait the middle discount applies once per k: Di(k)^-beta with beta=0.5.
  // Do(4)=Do(5)=2, Di(2)=Di(3)=2:
  //   Bd(4,5) = 2^-.5 * 2^-.5 * (2^-.5 + 2^-.5) = (1/2) * 2/sqrt(2) = 0.7071
  // Cd(4,5) symmetric: same value. Total = sqrt(2).
  Digraph g = Figure1Graph();
  auto u = SymmetrizeDegreeDiscounted(g);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(u->adjacency().At(4, 5), std::sqrt(2.0), 1e-9);
}

TEST(DegreeDiscountedTest, MatrixMatchesPairOracle) {
  // Property: the SpGEMM-built matrix equals the direct per-pair definition.
  Rng rng(31);
  std::vector<Edge> edges;
  for (int i = 0; i < 300; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(30)),
                         static_cast<Index>(rng.UniformU64(30)), 1.0});
  }
  Digraph g = MakeDigraph(30, edges);
  SymmetrizationOptions options;
  auto u = SymmetrizeDegreeDiscounted(g, options);
  ASSERT_TRUE(u.ok());
  const CsrMatrix at = g.adjacency().Transpose();
  for (Index i = 0; i < 30; ++i) {
    for (Index j = 0; j < 30; ++j) {
      if (i == j) continue;
      const Scalar expected = DegreeDiscountedSimilarity(
          g, at, i, j, options.out_discount, options.in_discount);
      EXPECT_NEAR(u->adjacency().At(i, j), expected, 1e-9)
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(DegreeDiscountedTest, HubPenalized) {
  // Node h is a hub target with high in-degree; k is a niche target.
  // Sharing the niche target must contribute more similarity than sharing
  // the hub (Figure 3a).
  std::vector<Edge> edges;
  // i=0 and j=1 both point to hub 2 and niche 3.
  edges.push_back(Edge{0, 2, 1.0});
  edges.push_back(Edge{1, 2, 1.0});
  edges.push_back(Edge{0, 3, 1.0});
  edges.push_back(Edge{1, 3, 1.0});
  // 20 other nodes also point at the hub.
  for (Index v = 4; v < 24; ++v) edges.push_back(Edge{v, 2, 1.0});
  Digraph g = MakeDigraph(24, edges);
  SymmetrizationOptions options;
  // Contribution through hub: Di(2) = 22 -> 1/sqrt(22); through niche:
  // Di(3) = 2 -> 1/sqrt(2).
  const Scalar sim = DegreeDiscountedSimilarity(g, 0, 1,
                                                options.out_discount,
                                                options.in_discount);
  const Scalar hub_part = 0.5 * (1.0 / std::sqrt(22.0));
  const Scalar niche_part = 0.5 * (1.0 / std::sqrt(2.0));
  EXPECT_NEAR(sim, hub_part + niche_part, 1e-9);
  EXPECT_GT(niche_part, hub_part);
}

TEST(DegreeDiscountedTest, AlphaBetaZeroEqualsBibliometric) {
  // Table 4's alpha = beta = 0 row: no discounting reduces Ud to AAᵀ+AᵀA.
  Rng rng(41);
  std::vector<Edge> edges;
  for (int i = 0; i < 200; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(25)),
                         static_cast<Index>(rng.UniformU64(25)), 1.0});
  }
  Digraph g = MakeDigraph(25, edges);
  SymmetrizationOptions dd;
  dd.out_discount = DiscountSpec::Power(0.0);
  dd.in_discount = DiscountSpec::Power(0.0);
  auto u1 = SymmetrizeDegreeDiscounted(g, dd);
  auto u2 = SymmetrizeBibliometric(g);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(u1->NumEdges(), u2->NumEdges());
  for (Index i = 0; i < 25; ++i) {
    for (Index j = 0; j < 25; ++j) {
      EXPECT_NEAR(u1->adjacency().At(i, j), u2->adjacency().At(i, j), 1e-9);
    }
  }
}

TEST(DegreeDiscountedTest, LogDiscountDiffersFromPower) {
  Digraph g = Figure1Graph();
  SymmetrizationOptions log_options;
  log_options.out_discount = DiscountSpec::Log();
  log_options.in_discount = DiscountSpec::Log();
  auto log_u = SymmetrizeDegreeDiscounted(g, log_options);
  auto pow_u = SymmetrizeDegreeDiscounted(g);
  ASSERT_TRUE(log_u.ok());
  ASSERT_TRUE(pow_u.ok());
  EXPECT_NE(log_u->adjacency().At(4, 5), pow_u->adjacency().At(4, 5));
  EXPECT_GT(log_u->adjacency().At(4, 5), 0.0);
}

TEST(DegreeDiscountedTest, OutputIsSymmetricAndLoopFree) {
  Rng rng(55);
  std::vector<Edge> edges;
  for (int i = 0; i < 500; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(50)),
                         static_cast<Index>(rng.UniformU64(50)), 1.0});
  }
  Digraph g = MakeDigraph(50, edges);
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    auto u = Symmetrize(g, method);
    ASSERT_TRUE(u.ok()) << SymmetrizationMethodName(method);
    EXPECT_TRUE(u->adjacency().IsSymmetric(1e-9))
        << SymmetrizationMethodName(method);
    for (Index v = 0; v < 50; ++v) {
      EXPECT_DOUBLE_EQ(u->adjacency().At(v, v), 0.0)
          << SymmetrizationMethodName(method);
    }
  }
}

TEST(SymmetrizeTest, DispatcherMatchesDirectCalls) {
  Digraph g = Figure1Graph();
  auto via_dispatch =
      Symmetrize(g, SymmetrizationMethod::kBibliometric);
  auto direct = SymmetrizeBibliometric(g);
  ASSERT_TRUE(via_dispatch.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_dispatch->adjacency(), direct->adjacency());
}

TEST(SymmetrizeTest, EmptyGraphRejected) {
  Digraph g = MakeDigraph(0, {});
  EXPECT_FALSE(SymmetrizeRandomWalk(g).ok());
  EXPECT_FALSE(SymmetrizeBibliometric(g).ok());
  EXPECT_FALSE(SymmetrizeDegreeDiscounted(g).ok());
}

TEST(DiscountTest, FactorsAndNames) {
  std::vector<Offset> degrees = {0, 1, 4, 9};
  auto power = DiscountFactors(degrees, DiscountSpec::Power(0.5));
  EXPECT_DOUBLE_EQ(power[0], 0.0);
  EXPECT_DOUBLE_EQ(power[1], 1.0);
  EXPECT_DOUBLE_EQ(power[2], 0.5);
  EXPECT_NEAR(power[3], 1.0 / 3.0, 1e-12);
  auto none = DiscountFactors(degrees, DiscountSpec::None());
  for (Scalar v : none) EXPECT_DOUBLE_EQ(v, 1.0);
  auto log = DiscountFactors(degrees, DiscountSpec::Log());
  EXPECT_DOUBLE_EQ(log[0], 0.0);
  EXPECT_NEAR(log[2], 1.0 / std::log(5.0), 1e-12);
  EXPECT_EQ(DiscountSpec::Power(0.5).ToString(), "0.5");
  EXPECT_EQ(DiscountSpec::Power(0.0).ToString(), "0");
  EXPECT_EQ(DiscountSpec::Log().ToString(), "log");
}

TEST(SimilarityFactorsTest, ReconstructUd) {
  // U = M Mᵀ + Nᵀ N must reproduce SymmetrizeDegreeDiscounted (unpruned).
  Rng rng(61);
  std::vector<Edge> edges;
  for (int i = 0; i < 150; ++i) {
    edges.push_back(Edge{static_cast<Index>(rng.UniformU64(20)),
                         static_cast<Index>(rng.UniformU64(20)), 1.0});
  }
  Digraph g = MakeDigraph(20, edges);
  auto factors = BuildSimilarityFactors(
      g, SymmetrizationMethod::kDegreeDiscounted);
  ASSERT_TRUE(factors.ok());
  auto u = SymmetrizeDegreeDiscounted(g);
  ASSERT_TRUE(u.ok());
  // Verify one row against a hand computation via factor mat-vecs.
  const CsrMatrix& m = factors->m;
  const CsrMatrix& nmat = factors->n;
  for (Index i = 0; i < 20; i += 7) {
    std::vector<Scalar> ei(20, 0.0);
    ei[static_cast<size_t>(i)] = 1.0;
    std::vector<Scalar> tmp_m(20), row_b(20), tmp_n(20), row_c(20);
    m.MultiplyTranspose(ei, tmp_m);   // Mᵀ e_i
    m.Multiply(tmp_m, row_b);         // M Mᵀ e_i
    nmat.Multiply(ei, tmp_n);         // N e_i (for Nᵀ N: row i of NᵀN is N^T (N e_i)... careful)
    nmat.MultiplyTranspose(tmp_n, row_c);
    for (Index j = 0; j < 20; ++j) {
      if (i == j) continue;
      EXPECT_NEAR(u->adjacency().At(i, j),
                  row_b[static_cast<size_t>(j)] +
                      row_c[static_cast<size_t>(j)],
                  1e-9);
    }
  }
}

TEST(SimilarityFactorsTest, RejectsNonSimilarityMethods) {
  Digraph g = Figure1Graph();
  EXPECT_FALSE(
      BuildSimilarityFactors(g, SymmetrizationMethod::kAPlusAT).ok());
  EXPECT_FALSE(
      BuildSimilarityFactors(g, SymmetrizationMethod::kRandomWalk).ok());
}

}  // namespace
}  // namespace dgc
