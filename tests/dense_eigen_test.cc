#include <gtest/gtest.h>

#include <cmath>

#include "linalg/dense_matrix.h"
#include "linalg/lanczos.h"
#include "util/rng.h"

namespace dgc {
namespace {

TEST(DenseMatrixTest, RowAccess) {
  DenseMatrix m(2, 3, 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 5.0);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  DenseMatrix m(3, 3, 0.0);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  std::vector<Scalar> values;
  DenseMatrix vectors;
  JacobiEigenSymmetric(m, &values, &vectors);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 1.0);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  std::vector<Scalar> values;
  DenseMatrix vectors;
  JacobiEigenSymmetric(m, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-12);
  EXPECT_NEAR(values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(vectors(1, 0)), std::sqrt(0.5), 1e-10);
}

TEST(JacobiEigenTest, ReconstructsRandomSymmetric) {
  Rng rng(11);
  const Index n = 12;
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.UniformDouble() - 0.5;
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  std::vector<Scalar> values;
  DenseMatrix vectors;
  JacobiEigenSymmetric(m, &values, &vectors);
  // Check A v_j = lambda_j v_j for every pair.
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      Scalar av = 0.0;
      for (Index k = 0; k < n; ++k) av += m(i, k) * vectors(k, j);
      EXPECT_NEAR(av, values[static_cast<size_t>(j)] * vectors(i, j), 1e-9);
    }
  }
  // Eigenvalues must be sorted descending.
  for (Index j = 1; j < n; ++j) {
    EXPECT_GE(values[static_cast<size_t>(j - 1)],
              values[static_cast<size_t>(j)]);
  }
}

TEST(JacobiEigenTest, VectorsAreOrthonormal) {
  Rng rng(13);
  const Index n = 8;
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      const Scalar v = rng.UniformDouble();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  std::vector<Scalar> values;
  DenseMatrix vectors;
  JacobiEigenSymmetric(m, &values, &vectors);
  for (Index a = 0; a < n; ++a) {
    for (Index b = 0; b < n; ++b) {
      Scalar dot = 0.0;
      for (Index i = 0; i < n; ++i) dot += vectors(i, a) * vectors(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

CsrMatrix PathLaplacianLike(Index n) {
  // Symmetric tridiagonal "mass-spring" matrix with known extremal spectrum.
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back(Triplet{i, i, 2.0});
    if (i + 1 < n) {
      t.push_back(Triplet{i, static_cast<Index>(i + 1), -1.0});
      t.push_back(Triplet{static_cast<Index>(i + 1), i, -1.0});
    }
  }
  return std::move(CsrMatrix::FromTriplets(n, n, t)).ValueOrDie();
}

TEST(LanczosTest, PathGraphExtremalEigenvalues) {
  const Index n = 50;
  CsrMatrix a = PathLaplacianLike(n);
  // Known spectrum: 2 - 2cos(pi k / (n+1)), k = 1..n.
  LanczosOptions options;
  options.num_eigenpairs = 3;
  options.which = SpectrumEnd::kLargest;
  auto result = LanczosSymmetric(a, options);
  ASSERT_TRUE(result.ok());
  auto lambda = [n](int k) {
    return 2.0 - 2.0 * std::cos(M_PI * k / (n + 1.0));
  };
  EXPECT_NEAR(result->eigenvalues[0], lambda(n), 1e-7);
  EXPECT_NEAR(result->eigenvalues[1], lambda(n - 1), 1e-7);
  EXPECT_NEAR(result->eigenvalues[2], lambda(n - 2), 1e-7);
}

TEST(LanczosTest, SmallestEnd) {
  const Index n = 40;
  CsrMatrix a = PathLaplacianLike(n);
  LanczosOptions options;
  options.num_eigenpairs = 2;
  options.which = SpectrumEnd::kSmallest;
  options.max_subspace = n;  // full space for exactness
  auto result = LanczosSymmetric(a, options);
  ASSERT_TRUE(result.ok());
  auto lambda = [n](int k) {
    return 2.0 - 2.0 * std::cos(M_PI * k / (n + 1.0));
  };
  EXPECT_NEAR(result->eigenvalues[0], lambda(1), 1e-6);
  EXPECT_NEAR(result->eigenvalues[1], lambda(2), 1e-6);
}

TEST(LanczosTest, ResidualsAreSmall) {
  const Index n = 60;
  CsrMatrix a = PathLaplacianLike(n);
  LanczosOptions options;
  options.num_eigenpairs = 4;
  auto result = LanczosSymmetric(a, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->max_residual, 1e-5);
}

TEST(LanczosTest, IdentityGivesUnitEigenvalues) {
  CsrMatrix eye = CsrMatrix::Identity(10);
  LanczosOptions options;
  options.num_eigenpairs = 3;
  auto result = LanczosSymmetric(eye, options);
  ASSERT_TRUE(result.ok());
  for (Scalar v : result->eigenvalues) {
    EXPECT_NEAR(v, 1.0, 1e-10);
  }
}

TEST(LanczosTest, RejectsBadInput) {
  EXPECT_FALSE(LanczosSymmetric(CsrMatrix::Zero(2, 3)).ok());
  EXPECT_FALSE(LanczosSymmetric(CsrMatrix::Zero(0, 0)).ok());
  LanczosOptions bad;
  bad.num_eigenpairs = 0;
  EXPECT_FALSE(LanczosSymmetric(CsrMatrix::Identity(4), bad).ok());
}

}  // namespace
}  // namespace dgc
