// End-to-end tests of the paper's central claims on planted data:
// similarity symmetrizations (Bibliometric, Degree-discounted) recover
// Figure-1-pattern clusters that A + Aᵀ cannot, across multiple stage-2
// clustering algorithms.
#include <gtest/gtest.h>

#include "cluster/pipeline.h"
#include "core/threshold_select.h"
#include "core/top_edges.h"
#include "eval/fscore.h"
#include "eval/sign_test.h"
#include "gen/planted.h"

namespace dgc {
namespace {

/// Figure-1-pattern planted graph; `pool_scale` controls how heavily
/// clusters share their context nodes (smaller pools = more sharing =
/// harder for edge-based clustering).
Dataset Figure1Planted(Index target_pool = 20, Index source_pool = 10) {
  PlantedOptions options;
  options.num_clusters = 12;
  options.cluster_size = 25;
  options.p_intra = 0.0;  // pure co-citation clusters, no intra edges
  // Shared context pools: the commonly-pointed-to nodes serve several
  // clusters (Figure 1's "may belong to a different cluster"), so edge
  // connectivity alone cannot separate the clusters.
  options.target_pool = target_pool;
  options.source_pool = source_pool;
  options.noise_per_vertex = 0.3;
  options.seed = 7;
  auto dataset = GeneratePlanted(options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).ValueOrDie();
}

double RunPipeline(const Dataset& dataset, SymmetrizationMethod method,
                   ClusterAlgorithm algorithm) {
  PipelineOptions options;
  options.method = method;
  options.algorithm = algorithm;
  options.metis.k = 14;
  options.graclus.k = 14;
  options.mlr_mcl.rmcl.inflation = 2.5;
  options.mlr_mcl.coarsen.target_vertices = 100;
  auto result = SymmetrizeAndCluster(dataset.graph, options);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return 0.0;
  auto f = EvaluateFScore(result->clustering, dataset.truth);
  EXPECT_TRUE(f.ok());
  return f.ok() ? f->avg_f : 0.0;
}

TEST(EndToEndTest, SimilaritySymmetrizationsBeatAPlusATWithMetis) {
  Dataset dataset = Figure1Planted();
  const double f_sum =
      RunPipeline(dataset, SymmetrizationMethod::kAPlusAT,
                  ClusterAlgorithm::kMetis);
  const double f_dd =
      RunPipeline(dataset, SymmetrizationMethod::kDegreeDiscounted,
                  ClusterAlgorithm::kMetis);
  const double f_biblio =
      RunPipeline(dataset, SymmetrizationMethod::kBibliometric,
                  ClusterAlgorithm::kMetis);
  // A+Aᵀ cannot separate clusters that share context; the similarity
  // methods recover most of the planted structure.
  EXPECT_GT(f_dd, 0.6);
  EXPECT_GT(f_biblio, 0.6);
  EXPECT_GT(f_dd, f_sum + 0.1);
  EXPECT_GT(f_biblio, f_sum + 0.1);
}

TEST(EndToEndTest, SimilaritySymmetrizationsBeatAPlusATWithGraclus) {
  Dataset dataset = Figure1Planted();
  const double f_sum = RunPipeline(dataset, SymmetrizationMethod::kAPlusAT,
                                   ClusterAlgorithm::kGraclus);
  const double f_dd =
      RunPipeline(dataset, SymmetrizationMethod::kDegreeDiscounted,
                  ClusterAlgorithm::kGraclus);
  EXPECT_GT(f_dd, 0.6);
  EXPECT_GT(f_dd, f_sum + 0.1);
}

TEST(EndToEndTest, MlrMclRankingMatchesPaper) {
  // On the looser-sharing variant MLR-MCL reproduces the paper's ordering:
  // Degree-discounted > Bibliometric > {A+Aᵀ, Random walk}.
  Dataset dataset = Figure1Planted(40, 20);
  const double f_dd =
      RunPipeline(dataset, SymmetrizationMethod::kDegreeDiscounted,
                  ClusterAlgorithm::kMlrMcl);
  const double f_biblio = RunPipeline(
      dataset, SymmetrizationMethod::kBibliometric, ClusterAlgorithm::kMlrMcl);
  const double f_sum = RunPipeline(dataset, SymmetrizationMethod::kAPlusAT,
                                   ClusterAlgorithm::kMlrMcl);
  EXPECT_GT(f_dd, 0.4);
  EXPECT_GT(f_dd, f_biblio);
  EXPECT_GT(f_biblio, f_sum);
}

TEST(EndToEndTest, DegreeDiscountedWorksAcrossClusterers) {
  Dataset dataset = Figure1Planted();
  for (ClusterAlgorithm algorithm :
       {ClusterAlgorithm::kMetis, ClusterAlgorithm::kGraclus}) {
    const double f = RunPipeline(
        dataset, SymmetrizationMethod::kDegreeDiscounted, algorithm);
    EXPECT_GT(f, 0.6) << ClusterAlgorithmName(algorithm);
  }
}

TEST(EndToEndTest, SignTestConfirmsImprovement) {
  Dataset dataset = Figure1Planted();
  PipelineOptions dd_options, sum_options;
  dd_options.method = SymmetrizationMethod::kDegreeDiscounted;
  dd_options.algorithm = ClusterAlgorithm::kMetis;
  dd_options.metis.k = 14;
  sum_options.method = SymmetrizationMethod::kAPlusAT;
  sum_options.algorithm = ClusterAlgorithm::kMetis;
  sum_options.metis.k = 14;
  auto dd = SymmetrizeAndCluster(dataset.graph, dd_options);
  auto sum = SymmetrizeAndCluster(dataset.graph, sum_options);
  ASSERT_TRUE(dd.ok());
  ASSERT_TRUE(sum.ok());
  auto mask_dd = CorrectlyClusteredMask(dd->clustering, dataset.truth);
  auto mask_sum = CorrectlyClusteredMask(sum->clustering, dataset.truth);
  ASSERT_TRUE(mask_dd.ok());
  ASSERT_TRUE(mask_sum.ok());
  auto sign = PairedSignTest(*mask_dd, *mask_sum);
  ASSERT_TRUE(sign.ok());
  EXPECT_GT(sign->a_only, sign->b_only);
  EXPECT_LT(sign->log10_p_value, -5.0);
}

TEST(ThresholdSelectTest, HitsTargetDegree) {
  Dataset dataset = Figure1Planted();
  ThresholdSelectOptions select;
  select.target_avg_degree = 20;
  select.sample_size = 100;
  auto selection = SelectPruneThreshold(
      dataset.graph, SymmetrizationMethod::kDegreeDiscounted, {}, select);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->threshold, 0.0);
  // Apply the threshold and verify the average degree is near the target.
  SymmetrizationOptions sym;
  sym.prune_threshold = selection->threshold;
  auto u = SymmetrizeDegreeDiscounted(dataset.graph, sym);
  ASSERT_TRUE(u.ok());
  const double avg_degree = 2.0 * static_cast<double>(u->NumEdges()) /
                            static_cast<double>(u->NumVertices());
  EXPECT_GT(avg_degree, 5.0);
  EXPECT_LT(avg_degree, 45.0);
}

TEST(ThresholdSelectTest, ZeroWhenAlreadySparse) {
  PlantedOptions tiny;
  tiny.num_clusters = 2;
  tiny.cluster_size = 5;
  tiny.noise_per_vertex = 0.0;
  auto dataset = GeneratePlanted(tiny);
  ASSERT_TRUE(dataset.ok());
  ThresholdSelectOptions select;
  select.target_avg_degree = 1000;
  auto selection = SelectPruneThreshold(
      dataset->graph, SymmetrizationMethod::kDegreeDiscounted, {}, select);
  ASSERT_TRUE(selection.ok());
  EXPECT_DOUBLE_EQ(selection->threshold, 0.0);
}

TEST(ThresholdSelectTest, RejectsBadOptions) {
  Dataset dataset = Figure1Planted();
  ThresholdSelectOptions bad;
  bad.sample_size = 0;
  EXPECT_FALSE(SelectPruneThreshold(dataset.graph,
                                    SymmetrizationMethod::kDegreeDiscounted,
                                    {}, bad)
                   .ok());
  EXPECT_FALSE(SelectPruneThreshold(dataset.graph,
                                    SymmetrizationMethod::kAPlusAT, {}, {})
                   .ok());
}

TEST(TopEdgesTest, OrderedAndNormalized) {
  auto g = UGraph::FromEdges(
      4, {{0, 1, 10.0}, {1, 2, 5.0}, {2, 3, 2.5}, {0, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  auto top = TopWeightedEdges(*g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].weight, 10.0);
  EXPECT_DOUBLE_EQ(top[1].weight, 5.0);
  EXPECT_LT(top[0].u, top[0].v);
  auto normalized = TopWeightedEdgesNormalized(*g, 4);
  ASSERT_EQ(normalized.size(), 4u);
  EXPECT_DOUBLE_EQ(normalized[0].weight, 10.0);  // min weight is 1.0
  EXPECT_DOUBLE_EQ(normalized[3].weight, 1.0);
}

TEST(TopEdgesTest, MoreRequestedThanAvailable) {
  auto g = UGraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(TopWeightedEdges(*g, 10).size(), 1u);
  EXPECT_EQ(TopWeightedEdges(*g, 0).size(), 0u);
}

TEST(EndToEndTest, DegreeDiscountedPrunesBetterThanBibliometric) {
  // Section 3.5: at thresholds yielding similar edge counts, Bibliometric
  // strands far more vertices as singletons. Build a hubby graph.
  PlantedOptions options;
  options.num_clusters = 10;
  options.cluster_size = 20;
  options.noise_per_vertex = 2.0;
  options.seed = 13;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  // Add a hub pointed to by everyone: emulate power-law contamination.
  std::vector<Edge> edges;
  const Index n = dataset->graph.NumVertices();
  const CsrMatrix& a = dataset->graph.adjacency();
  for (Index u = 0; u < n; ++u) {
    for (Index v : a.RowCols(u)) edges.push_back(Edge{u, v, 1.0});
    edges.push_back(Edge{u, 0, 1.0});  // vertex 0 becomes a mega-hub
  }
  auto hubby = Digraph::FromEdges(n, edges);
  ASSERT_TRUE(hubby.ok());

  SymmetrizationOptions biblio_options;
  biblio_options.prune_threshold = 2.0;
  auto biblio = SymmetrizeBibliometric(*hubby, biblio_options);
  SymmetrizationOptions dd_options;
  dd_options.prune_threshold = 0.05;
  auto dd = SymmetrizeDegreeDiscounted(*hubby, dd_options);
  ASSERT_TRUE(biblio.ok());
  ASSERT_TRUE(dd.ok());
  const double biblio_singletons =
      static_cast<double>(biblio->NumSingletons()) / n;
  const double dd_singletons =
      static_cast<double>(dd->NumSingletons()) / n;
  EXPECT_LE(dd_singletons, biblio_singletons + 0.01);
}

}  // namespace
}  // namespace dgc
