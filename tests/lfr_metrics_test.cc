// Tests for the LFR-style generator and the NMI/ARI partition metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "cluster/pipeline.h"
#include "eval/partition_metrics.h"
#include "gen/lfr.h"

namespace dgc {
namespace {

TEST(LfrTest, PartitionCoversAllVertices) {
  LfrOptions options;
  options.num_vertices = 2000;
  auto dataset = GenerateLfr(options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->truth.NumMemberships(), 2000);
  std::vector<bool> seen(2000, false);
  for (const auto& community : dataset->truth.categories) {
    EXPECT_GE(static_cast<Index>(community.size()), options.min_community);
    for (Index v : community) {
      EXPECT_FALSE(seen[static_cast<size_t>(v)]);
      seen[static_cast<size_t>(v)] = true;
    }
  }
}

TEST(LfrTest, MixingControlsInterCommunityEdges) {
  auto fraction_inter = [](const Dataset& d) {
    std::vector<Index> community(static_cast<size_t>(d.graph.NumVertices()));
    for (size_t c = 0; c < d.truth.categories.size(); ++c) {
      for (Index v : d.truth.categories[c]) {
        community[static_cast<size_t>(v)] = static_cast<Index>(c);
      }
    }
    Offset inter = 0;
    const CsrMatrix& a = d.graph.adjacency();
    for (Index u = 0; u < a.rows(); ++u) {
      for (Index v : a.RowCols(u)) {
        if (community[static_cast<size_t>(u)] !=
            community[static_cast<size_t>(v)]) {
          ++inter;
        }
      }
    }
    return static_cast<double>(inter) /
           static_cast<double>(d.graph.NumEdges());
  };
  LfrOptions low, high;
  low.num_vertices = high.num_vertices = 3000;
  low.mixing = 0.1;
  high.mixing = 0.5;
  auto d_low = GenerateLfr(low);
  auto d_high = GenerateLfr(high);
  ASSERT_TRUE(d_low.ok());
  ASSERT_TRUE(d_high.ok());
  EXPECT_NEAR(fraction_inter(*d_low), 0.1, 0.05);
  EXPECT_NEAR(fraction_inter(*d_high), 0.5, 0.07);
}

TEST(LfrTest, CocitationStyleHasNoMemberMemberEdges) {
  LfrOptions options;
  options.num_vertices = 1500;
  options.style = LfrCommunityStyle::kCocitation;
  options.mixing = 0.0;
  auto dataset = GenerateLfr(options);
  ASSERT_TRUE(dataset.ok());
  // In co-citation style with mu=0, non-authority members point only at
  // authorities: check that the vast majority of intra edges touch the
  // authority prefix of each community.
  for (const auto& community : dataset->truth.categories) {
    const Index auth = std::max<Index>(
        1, static_cast<Index>(options.authority_fraction *
                              static_cast<double>(community.size())));
    std::vector<bool> is_authority(community.size(), false);
    for (Index i = 0; i < auth; ++i) is_authority[static_cast<size_t>(i)] = true;
    // Map vertex -> rank within community.
    std::unordered_map<Index, size_t> rank;
    for (size_t i = 0; i < community.size(); ++i) rank[community[i]] = i;
    for (size_t i = auth; i < community.size(); ++i) {
      const Index member = community[i];
      for (Index w : dataset->graph.OutNeighbors(member)) {
        auto it = rank.find(w);
        if (it == rank.end()) continue;  // inter edge
        EXPECT_LT(it->second, static_cast<size_t>(auth))
            << "member->member edge found in co-citation style";
      }
    }
  }
}

TEST(LfrTest, RejectsBadOptions) {
  LfrOptions bad;
  bad.mixing = 1.0;
  EXPECT_FALSE(GenerateLfr(bad).ok());
  LfrOptions bad2;
  bad2.min_community = 1;
  EXPECT_FALSE(GenerateLfr(bad2).ok());
}

TEST(PartitionMetricsTest, IdenticalPartitionsScoreOne) {
  Clustering a(std::vector<Index>{0, 0, 1, 1, 2, 2});
  Clustering b(std::vector<Index>{5, 5, 3, 3, 9, 9});  // same up to labels
  auto cmp = ComparePartitions(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_DOUBLE_EQ(cmp->nmi, 1.0);
  EXPECT_DOUBLE_EQ(cmp->ari, 1.0);
}

TEST(PartitionMetricsTest, IndependentPartitionsScoreLow) {
  // Labels alternating vs block: MI is zero.
  Clustering a(std::vector<Index>{0, 0, 0, 0, 1, 1, 1, 1});
  Clustering b(std::vector<Index>{0, 1, 0, 1, 0, 1, 0, 1});
  auto cmp = ComparePartitions(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_NEAR(cmp->nmi, 0.0, 1e-9);
  EXPECT_NEAR(cmp->ari, 0.0, 0.2);
}

TEST(PartitionMetricsTest, UnassignedExcluded) {
  Clustering a(std::vector<Index>{0, 0, 1, 1, -1});
  Clustering b(std::vector<Index>{2, 2, 7, 7, 3});
  auto cmp = ComparePartitions(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->support, 4);
  EXPECT_DOUBLE_EQ(cmp->nmi, 1.0);
}

TEST(PartitionMetricsTest, RejectsSizeMismatch) {
  Clustering a(std::vector<Index>{0});
  Clustering b(std::vector<Index>{0, 1});
  EXPECT_FALSE(ComparePartitions(a, b).ok());
}

TEST(PartitionMetricsTest, TruthToClusteringRoundTrip) {
  GroundTruth truth;
  truth.categories = {{0, 2}, {1, 3}};
  auto c = TruthToClustering(truth, 5);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->LabelOf(0), 0);
  EXPECT_EQ(c->LabelOf(3), 1);
  EXPECT_EQ(c->LabelOf(4), Clustering::kUnassigned);
  GroundTruth overlapping;
  overlapping.categories = {{0, 1}, {1, 2}};
  EXPECT_FALSE(TruthToClustering(overlapping, 3).ok());
}

TEST(EndToEndLfrTest, DenseStyleRecoverableByAPlusAT) {
  LfrOptions options;
  options.num_vertices = 1200;
  options.min_community = 40;
  options.max_community = 120;
  options.mixing = 0.15;
  auto dataset = GenerateLfr(options);
  ASSERT_TRUE(dataset.ok());
  PipelineOptions pipeline;
  pipeline.method = SymmetrizationMethod::kAPlusAT;
  pipeline.algorithm = ClusterAlgorithm::kGraclus;
  pipeline.graclus.k = dataset->truth.NumCategories();
  auto result = SymmetrizeAndCluster(dataset->graph, pipeline);
  ASSERT_TRUE(result.ok());
  auto truth_clustering =
      TruthToClustering(dataset->truth, dataset->graph.NumVertices());
  ASSERT_TRUE(truth_clustering.ok());
  auto cmp = ComparePartitions(result->clustering, *truth_clustering);
  ASSERT_TRUE(cmp.ok());
  EXPECT_GT(cmp->nmi, 0.6);
}

TEST(EndToEndLfrTest, CocitationStyleNeedsSimilaritySymmetrization) {
  LfrOptions options;
  options.num_vertices = 1200;
  options.min_community = 40;
  options.max_community = 120;
  options.mixing = 0.15;
  options.style = LfrCommunityStyle::kCocitation;
  options.authority_overlap = 0.5;
  auto dataset = GenerateLfr(options);
  ASSERT_TRUE(dataset.ok());
  auto truth_clustering =
      TruthToClustering(dataset->truth, dataset->graph.NumVertices());
  ASSERT_TRUE(truth_clustering.ok());
  auto run = [&](SymmetrizationMethod method) {
    PipelineOptions pipeline;
    pipeline.method = method;
    pipeline.algorithm = ClusterAlgorithm::kGraclus;
    pipeline.graclus.k = dataset->truth.NumCategories();
    auto result = SymmetrizeAndCluster(dataset->graph, pipeline);
    EXPECT_TRUE(result.ok());
    auto cmp = ComparePartitions(result->clustering, *truth_clustering);
    EXPECT_TRUE(cmp.ok());
    return cmp.ok() ? cmp->nmi : 0.0;
  };
  const double nmi_dd = run(SymmetrizationMethod::kDegreeDiscounted);
  const double nmi_sum = run(SymmetrizationMethod::kAPlusAT);
  EXPECT_GT(nmi_dd, nmi_sum);
  EXPECT_GT(nmi_dd, 0.5);
}

}  // namespace
}  // namespace dgc
