#include <gtest/gtest.h>

#include <cmath>

#include "core/symmetrize.h"
#include "eval/fscore.h"
#include "eval/ncut.h"
#include "eval/sign_test.h"
#include "linalg/power_iteration.h"
#include "util/rng.h"

namespace dgc {
namespace {

TEST(FScoreTest, PerfectClusteringScoresOne) {
  Clustering c(std::vector<Index>{0, 0, 1, 1});
  GroundTruth truth;
  truth.categories = {{0, 1}, {2, 3}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->avg_f, 1.0);
  EXPECT_DOUBLE_EQ(result->avg_precision, 1.0);
  EXPECT_DOUBLE_EQ(result->avg_recall, 1.0);
}

TEST(FScoreTest, KnownPartialOverlap) {
  // Cluster {0,1,2} vs category {0,1}: P = 2/3, R = 1, F = 0.8.
  Clustering c(std::vector<Index>{0, 0, 0});
  GroundTruth truth;
  truth.categories = {{0, 1}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->avg_f, 0.8, 1e-12);
  EXPECT_NEAR(result->avg_precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(result->avg_recall, 1.0, 1e-12);
}

TEST(FScoreTest, SizeWeightedMicroAverage) {
  // Two clusters: size 3 with F=0.8 (as above), size 1 perfectly matching a
  // singleton category (F=1). Weighted: (3*0.8 + 1*1)/4 = 0.85.
  Clustering c(std::vector<Index>{0, 0, 0, 1});
  GroundTruth truth;
  truth.categories = {{0, 1}, {3}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->avg_f, 0.85, 1e-12);
}

TEST(FScoreTest, BestCategoryWins) {
  // Cluster {0,1,2} overlaps category A = {0} (F = 0.5) and
  // B = {0,1,2,3} (F = 6/7). B must be chosen.
  Clustering c(std::vector<Index>{0, 0, 0});
  GroundTruth truth;
  truth.categories = {{0}, {0, 1, 2}};
  // B here is {0,1,2}: P=1, R=1 -> F=1.
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_cluster.size(), 1u);
  EXPECT_EQ(result->per_cluster[0].best_category, 1);
  EXPECT_DOUBLE_EQ(result->avg_f, 1.0);
}

TEST(FScoreTest, UnlabeledVerticesDepressPrecision) {
  // Vertex 2 has no category; cluster {0,1,2} vs {0,1}: P = 2/3.
  Clustering c(std::vector<Index>{0, 0, 0});
  GroundTruth truth;
  truth.categories = {{0, 1}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->per_cluster[0].precision, 2.0 / 3.0, 1e-12);
}

TEST(FScoreTest, UnassignedVerticesIgnored) {
  Clustering c(std::vector<Index>{0, 0, -1, -1});
  GroundTruth truth;
  truth.categories = {{0, 1}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->avg_f, 1.0);
}

TEST(FScoreTest, OverlappingCategoriesAllowed) {
  Clustering c(std::vector<Index>{0, 0, 1, 1});
  GroundTruth truth;
  truth.categories = {{0, 1, 2}, {2, 3}};
  auto result = EvaluateFScore(c, truth);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->avg_f, 0.5);
}

TEST(FScoreTest, RejectsOutOfRangeVertices) {
  Clustering c(std::vector<Index>{0});
  GroundTruth truth;
  truth.categories = {{5}};
  EXPECT_FALSE(EvaluateFScore(c, truth).ok());
}

TEST(CorrectlyClusteredTest, MaskMatchesDefinition) {
  // Cluster 0 = {0,1,2} matched to category {0,1}; vertex 2 incorrect.
  Clustering c(std::vector<Index>{0, 0, 0, 1});
  GroundTruth truth;
  truth.categories = {{0, 1}, {3}};
  auto mask = CorrectlyClusteredMask(c, truth);
  ASSERT_TRUE(mask.ok());
  EXPECT_TRUE((*mask)[0]);
  EXPECT_TRUE((*mask)[1]);
  EXPECT_FALSE((*mask)[2]);
  EXPECT_TRUE((*mask)[3]);
}

UGraph TwoTriangles() {
  // Two triangles joined by one edge.
  auto g = UGraph::FromEdges(6, {{0, 1, 1.0},
                                 {1, 2, 1.0},
                                 {2, 0, 1.0},
                                 {3, 4, 1.0},
                                 {4, 5, 1.0},
                                 {5, 3, 1.0},
                                 {2, 3, 1.0}});
  EXPECT_TRUE(g.ok());
  return std::move(g).ValueOrDie();
}

TEST(NcutTest, SubsetNcutOfTwoTriangles) {
  UGraph g = TwoTriangles();
  std::vector<bool> s = {true, true, true, false, false, false};
  // cut = 1; vol(S) = 7 (2+2+3), vol(rest) = 7.
  EXPECT_NEAR(NormalizedCut(g, s), 1.0 / 7.0 + 1.0 / 7.0, 1e-12);
}

TEST(NcutTest, ClusteringNcutMatchesSubsets) {
  UGraph g = TwoTriangles();
  Clustering c(std::vector<Index>{0, 0, 0, 1, 1, 1});
  // k-way ncut = cut/vol(S1) + cut/vol(S2) = 1/7 + 1/7.
  EXPECT_NEAR(NormalizedCut(g, c), 2.0 / 7.0, 1e-12);
}

TEST(NcutTest, PerfectSplitOfDisconnectedGraph) {
  auto g = UGraph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  Clustering c(std::vector<Index>{0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(NormalizedCut(*g, c), 0.0);
}

TEST(NcutTest, GleichEquivalenceRandomWalkSymmetrization) {
  // Section 3.2: N cut_dir(S) on G equals Ncut(S) on the random-walk
  // symmetrized graph G_U, for every subset S (Gleich 2006). Verified on
  // random digraphs and random subsets.
  // The equivalence is exact when pi is the stationary distribution of the
  // plain (teleport-free) walk, so use a strongly connected digraph (a
  // Hamiltonian cycle plus random chords) and teleport = 0.
  Rng rng(17);
  std::vector<Edge> edges;
  for (Index v = 0; v < 20; ++v) {
    edges.push_back(Edge{v, static_cast<Index>((v + 1) % 20), 1.0});
  }
  for (int i = 0; i < 120; ++i) {
    Index u = static_cast<Index>(rng.UniformU64(20));
    Index v = static_cast<Index>(rng.UniformU64(20));
    if (u != v) edges.push_back(Edge{u, v, 1.0});
  }
  auto g = Digraph::FromEdges(20, edges);
  ASSERT_TRUE(g.ok());
  SymmetrizationOptions options;
  options.pagerank.teleport = 0.0;
  options.pagerank.tolerance = 1e-15;
  options.pagerank.max_iterations = 20000;
  auto u = SymmetrizeRandomWalk(*g, options);
  ASSERT_TRUE(u.ok());
  auto pr = PageRank(g->adjacency(), options.pagerank);
  ASSERT_TRUE(pr.ok());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> s(20, false);
    for (int i = 0; i < 20; ++i) s[static_cast<size_t>(i)] = rng.Bernoulli(0.5);
    bool any = false, all = true;
    for (bool b : s) {
      any |= b;
      all &= b;
    }
    if (!any || all) continue;
    const Scalar dir = DirectedNormalizedCut(*g, pr->pi, s);
    const Scalar undir = NormalizedCut(*u, s);
    EXPECT_NEAR(dir, undir, 1e-6);
  }
}

TEST(DirectedNcutTest, Figure1ClusterHasHighDirectedNcut) {
  // The {4,5} cluster of Figure 1: every walk step leaves the cluster, so
  // N cut_dir is high even though the pair is a natural cluster.
  auto g = Digraph::FromEdges(6, {{0, 4, 1.0},
                                  {0, 5, 1.0},
                                  {1, 4, 1.0},
                                  {1, 5, 1.0},
                                  {4, 2, 1.0},
                                  {4, 3, 1.0},
                                  {5, 2, 1.0},
                                  {5, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  auto pr = PageRank(g->adjacency());
  ASSERT_TRUE(pr.ok());
  std::vector<bool> s(6, false);
  s[4] = s[5] = true;
  // All out-flow of {4,5} leaves the set: outgoing term is 1.
  EXPECT_GT(DirectedNormalizedCut(*g, pr->pi, s), 1.0);
}

TEST(SignTest, CountsDisagreements) {
  std::vector<bool> a = {true, true, false, true, false};
  std::vector<bool> b = {true, false, true, false, false};
  auto result = PairedSignTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->a_only, 2);
  EXPECT_EQ(result->b_only, 1);
}

TEST(SignTest, NoEvidenceWhenEqualOrWorse) {
  std::vector<bool> a = {true, false};
  std::vector<bool> b = {false, true};
  auto result = PairedSignTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->log10_p_value, 0.0);
}

TEST(SignTest, RejectsLengthMismatch) {
  EXPECT_FALSE(PairedSignTest({true}, {true, false}).ok());
}

TEST(SignTest, StrongImprovementGivesTinyP) {
  // 1000 nodes correct only under A, 10 only under B.
  std::vector<bool> a(2000, false), b(2000, false);
  for (int i = 0; i < 1000; ++i) a[static_cast<size_t>(i)] = true;
  for (int i = 1000; i < 1010; ++i) b[static_cast<size_t>(i)] = true;
  auto result = PairedSignTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->log10_p_value, -200.0);
}

TEST(Log10BinomialTailTest, KnownValues) {
  // P(X >= 1 | n=1) = 0.5.
  EXPECT_NEAR(Log10BinomialTailP(1, 1), std::log10(0.5), 1e-10);
  // P(X >= 2 | n=2) = 0.25.
  EXPECT_NEAR(Log10BinomialTailP(2, 2), std::log10(0.25), 1e-10);
  // P(X >= 0) = 1.
  EXPECT_DOUBLE_EQ(Log10BinomialTailP(10, 0), 0.0);
  // P(X >= 8 | n=10) = (45 + 10 + 1)/1024.
  EXPECT_NEAR(Log10BinomialTailP(10, 8), std::log10(56.0 / 1024.0), 1e-9);
}

TEST(Log10BinomialTailTest, HandlesHugeN) {
  // The paper reports p = 1e-22767 on Wikipedia-scale counts; log-space
  // computation must not underflow.
  const double log_p = Log10BinomialTailP(200000, 150000);
  EXPECT_LT(log_p, -10000.0);
  EXPECT_TRUE(std::isfinite(log_p));
}

}  // namespace
}  // namespace dgc
