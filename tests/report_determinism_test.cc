// Run reports must be bit-identical across thread counts once timing and
// perf fields are redacted: every value recorded under "metrics" is part of
// the library's determinism contract, while wall/cpu times and "perf"
// entries (worker counts, row ranges) are the only thread-dependent state.
#include <gtest/gtest.h>

#include <string>

#include "cluster/pipeline.h"
#include "eval/record.h"
#include "gen/lfr.h"
#include "gen/rmat.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace dgc {
namespace {

/// Runs the full pipeline on `g` with `threads` workers, recording every
/// stage plus the eval metrics into a fresh registry, and returns the
/// redacted JSON report.
std::string RedactedReport(const Digraph& g, SymmetrizationMethod method,
                           ClusterAlgorithm algorithm, int threads) {
  MetricsRegistry registry;
  PipelineOptions pipeline;
  pipeline.method = method;
  pipeline.algorithm = algorithm;
  pipeline.symmetrization.prune_threshold = 0.01;
  pipeline.mlr_mcl.rmcl.max_iterations = 12;
  pipeline.num_threads = threads;
  pipeline.metrics = &registry;
  auto result = SymmetrizeAndCluster(g, pipeline);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) {
    RecordClusteringMetrics(result->symmetrized, result->clustering,
                            &registry);
  }
  return RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
}

TEST(ReportDeterminismTest, RmatDegreeDiscountedMlrMclAcrossThreadCounts) {
  RmatOptions gen;
  gen.scale = 9;
  gen.edge_factor = 6.0;
  auto dataset = GenerateRmat(gen);
  ASSERT_TRUE(dataset.ok());

  const std::string serial =
      RedactedReport(dataset->graph, SymmetrizationMethod::kDegreeDiscounted,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/1);
  const std::string eight =
      RedactedReport(dataset->graph, SymmetrizationMethod::kDegreeDiscounted,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/8);
  const std::string hardware =
      RedactedReport(dataset->graph, SymmetrizationMethod::kDegreeDiscounted,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/0);
  EXPECT_EQ(serial, eight);
  EXPECT_EQ(serial, hardware);
  // Sanity: the redacted report still carries the deterministic content.
  EXPECT_NE(serial.find("\"schema\": \"dgc.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"name\": \"symmetrize\""), std::string::npos);
  EXPECT_NE(serial.find("\"name\": \"rmcl.iteration\""), std::string::npos);
  EXPECT_NE(serial.find("eval.modularity"), std::string::npos);
  EXPECT_NE(serial.find("eval.cluster_size"), std::string::npos);
}

TEST(ReportDeterminismTest, LfrBibliometricMlrMclAcrossThreadCounts) {
  LfrOptions gen;
  gen.num_vertices = 600;
  gen.min_community = 20;
  gen.max_community = 80;
  gen.style = LfrCommunityStyle::kCocitation;
  auto dataset = GenerateLfr(gen);
  ASSERT_TRUE(dataset.ok());

  const std::string serial =
      RedactedReport(dataset->graph, SymmetrizationMethod::kBibliometric,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/1);
  const std::string eight =
      RedactedReport(dataset->graph, SymmetrizationMethod::kBibliometric,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/8);
  EXPECT_EQ(serial, eight);
}

TEST(ReportDeterminismTest, RepeatedRunsAreByteIdentical) {
  RmatOptions gen;
  gen.scale = 8;
  auto dataset = GenerateRmat(gen);
  ASSERT_TRUE(dataset.ok());
  const std::string first =
      RedactedReport(dataset->graph, SymmetrizationMethod::kRandomWalk,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/4);
  const std::string second =
      RedactedReport(dataset->graph, SymmetrizationMethod::kRandomWalk,
                     ClusterAlgorithm::kMlrMcl, /*threads=*/4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dgc
