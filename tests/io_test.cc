#include "graph/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dgc {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  auto g = Digraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 2.5}, {3, 0, 1.0}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteEdgeList(*g, Path("g.txt")).ok());
  auto back = ReadEdgeList(Path("g.txt"), 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumEdges(), 3);
  EXPECT_DOUBLE_EQ(back->adjacency().At(1, 2), 2.5);
}

TEST_F(IoTest, EdgeListInfersSize) {
  WriteFile("infer.txt", "# comment\n0 5\n2 3\n");
  auto g = ReadEdgeList(Path("infer.txt"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 6);
}

TEST_F(IoTest, EdgeListRejectsOutOfRangeIds) {
  WriteFile("bad.txt", "0 9\n");
  EXPECT_FALSE(ReadEdgeList(Path("bad.txt"), 5).ok());
}

TEST_F(IoTest, EdgeListRejectsMalformedLine) {
  WriteFile("bad2.txt", "0\n");
  EXPECT_FALSE(ReadEdgeList(Path("bad2.txt")).ok());
}

TEST_F(IoTest, EdgeListMissingFile) {
  auto result = ReadEdgeList(Path("missing.txt"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(IoTest, MetisRoundTrip) {
  auto g = UGraph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteMetisGraph(*g, Path("g.metis")).ok());
  auto back = ReadMetisGraph(Path("g.metis"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumVertices(), 4);
  EXPECT_EQ(back->NumEdges(), 3);
  EXPECT_DOUBLE_EQ(back->adjacency().At(1, 2), 3.0);
}

TEST_F(IoTest, MetisWeightScaleRoundsFractionalWeights) {
  auto g = UGraph::FromEdges(2, {{0, 1, 0.25}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteMetisGraph(*g, Path("f.metis"), 100.0).ok());
  auto back = ReadMetisGraph(Path("f.metis"));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->adjacency().At(0, 1), 25.0);
}

TEST_F(IoTest, MetisRejectsBadNeighborIds) {
  WriteFile("bad.metis", "2 1 001\n5 1\n\n");
  EXPECT_FALSE(ReadMetisGraph(Path("bad.metis")).ok());
}

TEST_F(IoTest, GroundTruthRoundTrip) {
  GroundTruth truth;
  truth.categories = {{0, 2}, {1}, {0, 1, 3}};
  ASSERT_TRUE(WriteGroundTruth(truth, Path("gt.txt")).ok());
  auto back = ReadGroundTruth(Path("gt.txt"), 4);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumCategories(), 3);
  EXPECT_EQ(back->categories[0], (std::vector<Index>{0, 2}));
  EXPECT_EQ(back->categories[2], (std::vector<Index>{0, 1, 3}));
}

TEST_F(IoTest, GroundTruthRejectsOutOfRangeVertex) {
  WriteFile("gt_bad.txt", "9 0\n");
  EXPECT_FALSE(ReadGroundTruth(Path("gt_bad.txt"), 5).ok());
}

// Regression: ids at or beyond a declared num_vertices must be rejected
// during the scan with a file:line:column diagnostic — never clamped or used
// to index out of bounds.
TEST_F(IoTest, EdgeListRejectsIdAtDeclaredBound) {
  WriteFile("bound.txt", "0 1\n1 5\n");
  auto result = ReadEdgeList(Path("bound.txt"), 5);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
  EXPECT_NE(result.status().message().find("bound.txt:2:3"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("declared num_vertices"),
            std::string::npos);
}

// Regression: an id that overflows int64 (or Index) must be a clean error,
// not an implementation-defined narrowing cast.
TEST_F(IoTest, EdgeListRejectsOverflowingIds) {
  WriteFile("huge.txt", "0 99999999999999999999999999\n");
  auto result = ReadEdgeList(Path("huge.txt"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());

  WriteFile("huge32.txt", "0 4294967296\n");  // > Index (int32) max
  auto r32 = ReadEdgeList(Path("huge32.txt"));
  ASSERT_FALSE(r32.ok());
  EXPECT_TRUE(r32.status().IsOutOfRange());
}

TEST_F(IoTest, EdgeListRejectsBadWeights) {
  WriteFile("nan.txt", "0 1 nan\n");
  EXPECT_FALSE(ReadEdgeList(Path("nan.txt")).ok());
  WriteFile("inf.txt", "0 1 inf\n");
  EXPECT_FALSE(ReadEdgeList(Path("inf.txt")).ok());
  WriteFile("neg.txt", "0 1 -2.5\n");
  EXPECT_FALSE(ReadEdgeList(Path("neg.txt")).ok());
  WriteFile("junk.txt", "0 1 1.5x\n");
  EXPECT_FALSE(ReadEdgeList(Path("junk.txt")).ok());
  WriteFile("trail.txt", "0 1 1.5 7\n");
  EXPECT_FALSE(ReadEdgeList(Path("trail.txt")).ok());
}

TEST_F(IoTest, EdgeListHonorsCrlfAndComments) {
  WriteFile("crlf.txt", "# header\r\n0 1 2.0\r\n% also comment\r\n1 2\r\n");
  auto g = ReadEdgeList(Path("crlf.txt"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3);
  EXPECT_EQ(g->NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g->adjacency().At(0, 1), 2.0);
}

TEST_F(IoTest, EdgeListEnforcesIoLimits) {
  WriteFile("lim.txt", "0 1\n1 2\n2 3\n");
  IoLimits limits;
  limits.max_edges = 2;
  auto capped = ReadEdgeList(Path("lim.txt"), 0, limits);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsOutOfRange());

  IoLimits vlimits;
  vlimits.max_vertices = 3;
  auto vcapped = ReadEdgeList(Path("lim.txt"), 0, vlimits);
  ASSERT_FALSE(vcapped.ok());
  EXPECT_TRUE(vcapped.status().IsOutOfRange());

  IoLimits line_limits;
  line_limits.max_line_bytes = 2;
  auto lcapped = ReadEdgeList(Path("lim.txt"), 0, line_limits);
  EXPECT_FALSE(lcapped.ok());
}

// Regression: a weight that rounds to zero under the chosen scale must be
// reported, not silently clamped to 1 (which would misrepresent the graph).
TEST_F(IoTest, MetisWriteRejectsWeightRoundingToZero) {
  auto g = UGraph::FromEdges(2, {{0, 1, 0.25}});
  ASSERT_TRUE(g.ok());
  auto status = WriteMetisGraph(*g, Path("zero.metis"), 1.0);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("weight_scale"), std::string::npos);
  EXPECT_NE(status.message().find("(0,1)"), std::string::npos);
}

TEST_F(IoTest, MetisRejectsHeaderBodyMismatch) {
  // Header claims 2 edges but the body only lists one (both endpoints).
  WriteFile("short.metis", "3 2 001\n2 5\n1 5\n\n");
  auto result = ReadMetisGraph(Path("short.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("endpoint"), std::string::npos);

  // Truncated body: fewer adjacency lines than the header's n.
  WriteFile("trunc.metis", "3 1 001\n2 5\n");
  EXPECT_FALSE(ReadMetisGraph(Path("trunc.metis")).ok());
}

TEST_F(IoTest, MetisRejectsUnsupportedFmt) {
  WriteFile("vw.metis", "2 1 011\n2 1 1\n1 1 1\n");
  auto result = ReadMetisGraph(Path("vw.metis"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("not supported"),
            std::string::npos);
}

TEST_F(IoTest, MetisRejectsSelfLoopInBody) {
  WriteFile("self.metis", "2 1 \n1\n1\n");
  EXPECT_FALSE(ReadMetisGraph(Path("self.metis")).ok());
}

// Regression: a huge category id used to drive an unbounded resize (OOM on
// hostile input); it must now be rejected against IoLimits.max_categories.
TEST_F(IoTest, GroundTruthBoundsCategoryIds) {
  WriteFile("gt_huge.txt", "0 99999999999999999999\n");
  auto overflow = ReadGroundTruth(Path("gt_huge.txt"), 5);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsOutOfRange());

  WriteFile("gt_big.txt", "0 1000000\n");
  IoLimits limits;
  limits.max_categories = 100;
  auto capped = ReadGroundTruth(Path("gt_big.txt"), 5, limits);
  ASSERT_FALSE(capped.ok());
  EXPECT_TRUE(capped.status().IsOutOfRange());
  EXPECT_NE(capped.status().message().find("max_categories"),
            std::string::npos);
}

TEST_F(IoTest, ClusteringRejectsGarbageLabels) {
  WriteFile("c_bad.txt", "0\nxyz\n");
  auto result = ReadClustering(Path("c_bad.txt"));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("c_bad.txt:2:1"),
            std::string::npos)
      << result.status().message();

  WriteFile("c_neg.txt", "0\n-5\n");
  EXPECT_FALSE(ReadClustering(Path("c_neg.txt")).ok());

  WriteFile("c_trail.txt", "0 junk\n");
  EXPECT_FALSE(ReadClustering(Path("c_trail.txt")).ok());
}

TEST_F(IoTest, ClusteringRoundTrip) {
  Clustering c(std::vector<Index>{0, 1, -1, 1});
  ASSERT_TRUE(WriteClustering(c, Path("c.txt")).ok());
  auto back = ReadClustering(Path("c.txt"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->labels(), c.labels());
}

}  // namespace
}  // namespace dgc
