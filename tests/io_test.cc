#include "graph/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dgc {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  auto g = Digraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 2.5}, {3, 0, 1.0}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteEdgeList(*g, Path("g.txt")).ok());
  auto back = ReadEdgeList(Path("g.txt"), 4);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumEdges(), 3);
  EXPECT_DOUBLE_EQ(back->adjacency().At(1, 2), 2.5);
}

TEST_F(IoTest, EdgeListInfersSize) {
  WriteFile("infer.txt", "# comment\n0 5\n2 3\n");
  auto g = ReadEdgeList(Path("infer.txt"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 6);
}

TEST_F(IoTest, EdgeListRejectsOutOfRangeIds) {
  WriteFile("bad.txt", "0 9\n");
  EXPECT_FALSE(ReadEdgeList(Path("bad.txt"), 5).ok());
}

TEST_F(IoTest, EdgeListRejectsMalformedLine) {
  WriteFile("bad2.txt", "0\n");
  EXPECT_FALSE(ReadEdgeList(Path("bad2.txt")).ok());
}

TEST_F(IoTest, EdgeListMissingFile) {
  auto result = ReadEdgeList(Path("missing.txt"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST_F(IoTest, MetisRoundTrip) {
  auto g = UGraph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteMetisGraph(*g, Path("g.metis")).ok());
  auto back = ReadMetisGraph(Path("g.metis"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumVertices(), 4);
  EXPECT_EQ(back->NumEdges(), 3);
  EXPECT_DOUBLE_EQ(back->adjacency().At(1, 2), 3.0);
}

TEST_F(IoTest, MetisWeightScaleRoundsFractionalWeights) {
  auto g = UGraph::FromEdges(2, {{0, 1, 0.25}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(WriteMetisGraph(*g, Path("f.metis"), 100.0).ok());
  auto back = ReadMetisGraph(Path("f.metis"));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->adjacency().At(0, 1), 25.0);
}

TEST_F(IoTest, MetisRejectsBadNeighborIds) {
  WriteFile("bad.metis", "2 1 001\n5 1\n\n");
  EXPECT_FALSE(ReadMetisGraph(Path("bad.metis")).ok());
}

TEST_F(IoTest, GroundTruthRoundTrip) {
  GroundTruth truth;
  truth.categories = {{0, 2}, {1}, {0, 1, 3}};
  ASSERT_TRUE(WriteGroundTruth(truth, Path("gt.txt")).ok());
  auto back = ReadGroundTruth(Path("gt.txt"), 4);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumCategories(), 3);
  EXPECT_EQ(back->categories[0], (std::vector<Index>{0, 2}));
  EXPECT_EQ(back->categories[2], (std::vector<Index>{0, 1, 3}));
}

TEST_F(IoTest, GroundTruthRejectsOutOfRangeVertex) {
  WriteFile("gt_bad.txt", "9 0\n");
  EXPECT_FALSE(ReadGroundTruth(Path("gt_bad.txt"), 5).ok());
}

TEST_F(IoTest, ClusteringRoundTrip) {
  Clustering c(std::vector<Index>{0, 1, -1, 1});
  ASSERT_TRUE(WriteClustering(c, Path("c.txt")).ok());
  auto back = ReadClustering(Path("c.txt"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->labels(), c.labels());
}

}  // namespace
}  // namespace dgc
