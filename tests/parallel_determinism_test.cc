// Bit-identical determinism of every parallel kernel: each test runs the
// same computation at num_threads = 1 and num_threads = 8 (plus 0 = auto
// where cheap) on R-MAT and LFR graphs and requires exactly equal results.
// This is the contract that lets the experiment harnesses enable threads
// without perturbing any paper figure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/mcl.h"
#include "cluster/mlr_mcl.h"
#include "cluster/pipeline.h"
#include "core/all_pairs.h"
#include "core/symmetrize.h"
#include "gen/lfr.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "util/thread_pool.h"

namespace dgc {
namespace {

struct GraphCase {
  std::string name;
  Digraph (*make)();
};

Digraph MakeRmatGraph() {
  RmatOptions options;
  options.scale = 9;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).ValueOrDie().graph;
}

Digraph MakeLfrGraph() {
  LfrOptions options;
  options.num_vertices = 1200;
  options.style = LfrCommunityStyle::kCocitation;
  options.authority_overlap = 0.3;
  auto dataset = GenerateLfr(options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).ValueOrDie().graph;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<GraphCase> {};

INSTANTIATE_TEST_SUITE_P(
    Graphs, ParallelDeterminismTest,
    ::testing::Values(GraphCase{"Rmat", &MakeRmatGraph},
                      GraphCase{"Lfr", &MakeLfrGraph}),
    [](const auto& info) { return info.param.name; });

TEST_P(ParallelDeterminismTest, TransposeMatchesSerial) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  const CsrMatrix serial = a.Transpose(1);
  EXPECT_EQ(serial, a.Transpose(8));
  EXPECT_EQ(serial, a.Transpose(0));
  EXPECT_EQ(serial, a.Transpose(3));
}

TEST_P(ParallelDeterminismTest, SpGemmMatchesSerial) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  for (Scalar threshold : {0.0, 0.5}) {
    SpGemmOptions options;
    options.threshold = threshold;
    options.num_threads = 1;
    auto serial = SpGemmAAt(a, options);
    ASSERT_TRUE(serial.ok());
    options.num_threads = 8;
    auto parallel = SpGemmAAt(a, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(*serial, *parallel);
  }
}

TEST_P(ParallelDeterminismTest, BuildFlowMatrixMatchesSerial) {
  const Digraph g = GetParam().make();
  auto u = SymmetrizeAPlusAT(g);
  ASSERT_TRUE(u.ok());
  const CsrMatrix serial = BuildFlowMatrix(*u, 1.0, 1);
  EXPECT_EQ(serial, BuildFlowMatrix(*u, 1.0, 8));
  EXPECT_EQ(serial, BuildFlowMatrix(*u, 1.0, 0));
}

TEST_P(ParallelDeterminismTest, RmclIterateMatchesSerial) {
  const Digraph g = GetParam().make();
  auto u = SymmetrizeAPlusAT(g);
  ASSERT_TRUE(u.ok());
  RmclOptions options;
  options.num_threads = 1;
  const CsrMatrix mg = BuildFlowMatrix(*u, options.self_loop_scale, 8);
  auto serial = RmclIterate(mg, mg, options, 12);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 8;
  auto parallel = RmclIterate(mg, mg, options, 12);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
  options.num_threads = 0;
  auto auto_threads = RmclIterate(mg, mg, options, 12);
  ASSERT_TRUE(auto_threads.ok());
  EXPECT_EQ(*serial, *auto_threads);
}

TEST_P(ParallelDeterminismTest, RmclClusteringMatchesSerial) {
  const Digraph g = GetParam().make();
  auto u = SymmetrizeAPlusAT(g);
  ASSERT_TRUE(u.ok());
  RmclOptions options;
  options.max_iterations = 30;
  options.num_threads = 1;
  auto serial = Rmcl(*u, options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 8;
  auto parallel = Rmcl(*u, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->labels(), parallel->labels());
}

TEST_P(ParallelDeterminismTest, MlrMclMatchesSerial) {
  const Digraph g = GetParam().make();
  SymmetrizationOptions sym_options;
  sym_options.prune_threshold = 0.05;
  auto u = SymmetrizeDegreeDiscounted(g, sym_options);
  ASSERT_TRUE(u.ok());
  MlrMclOptions options;
  options.rmcl.num_threads = 1;
  auto serial = MlrMcl(*u, options);
  ASSERT_TRUE(serial.ok());
  options.rmcl.num_threads = 8;
  auto parallel = MlrMcl(*u, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->labels(), parallel->labels());
}

TEST_P(ParallelDeterminismTest, AllPairsSimilarityMatchesSerial) {
  const Digraph g = GetParam().make();
  auto factors = BuildSimilarityFactors(
      g, SymmetrizationMethod::kDegreeDiscounted, {});
  ASSERT_TRUE(factors.ok());
  for (Scalar threshold : {0.02, 0.2}) {
    AllPairsOptions options;
    options.threshold = threshold;
    options.num_threads = 1;
    AllPairsStats serial_stats;
    auto serial = AllPairsSimilarity(factors->m, options, &serial_stats);
    ASSERT_TRUE(serial.ok());
    for (int threads : {8, 0, 3}) {
      options.num_threads = threads;
      AllPairsStats stats;
      auto parallel = AllPairsSimilarity(factors->m, options, &stats);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(*serial, *parallel) << "threads=" << threads;
      EXPECT_EQ(serial_stats.candidate_pairs, stats.candidate_pairs);
      EXPECT_EQ(serial_stats.output_pairs, stats.output_pairs);
      EXPECT_EQ(serial_stats.skipped_rows, stats.skipped_rows);
    }
  }
}

TEST_P(ParallelDeterminismTest, FusedSymmetricKernelsMatchSerial) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  SpGemmOptions options;
  options.threshold = 0.01;
  options.num_threads = 1;
  auto upper_serial = SpGemmAAtSymmetric(a, {}, {}, options);
  ASSERT_TRUE(upper_serial.ok());
  auto mirror_serial = MirrorUpperTriangle(*upper_serial, 1);
  ASSERT_TRUE(mirror_serial.ok());
  for (int threads : {8, 0}) {
    options.num_threads = threads;
    auto upper = SpGemmAAtSymmetric(a, {}, {}, options);
    ASSERT_TRUE(upper.ok());
    EXPECT_EQ(*upper_serial, *upper) << "threads=" << threads;
    auto mirror = MirrorUpperTriangle(*upper, threads);
    ASSERT_TRUE(mirror.ok());
    EXPECT_EQ(*mirror_serial, *mirror) << "threads=" << threads;
  }
}

TEST_P(ParallelDeterminismTest, AllSymmetrizationsMatchSerial) {
  const Digraph g = GetParam().make();
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    SymmetrizationOptions options;
    if (method == SymmetrizationMethod::kBibliometric ||
        method == SymmetrizationMethod::kDegreeDiscounted) {
      options.prune_threshold =
          method == SymmetrizationMethod::kBibliometric ? 2.0 : 0.05;
    }
    options.num_threads = 1;
    auto serial = Symmetrize(g, method, options);
    ASSERT_TRUE(serial.ok()) << SymmetrizationMethodName(method);
    options.num_threads = 8;
    auto parallel = Symmetrize(g, method, options);
    ASSERT_TRUE(parallel.ok()) << SymmetrizationMethodName(method);
    EXPECT_EQ(serial->adjacency(), parallel->adjacency())
        << SymmetrizationMethodName(method);
  }
}

TEST_P(ParallelDeterminismTest, PipelineThreadOverrideMatchesSerial) {
  const Digraph g = GetParam().make();
  PipelineOptions options;
  options.symmetrization.prune_threshold = 0.05;
  options.num_threads = 1;
  auto serial = SymmetrizeAndCluster(g, options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 8;
  auto parallel = SymmetrizeAndCluster(g, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->symmetrized.adjacency(), parallel->symmetrized.adjacency());
  EXPECT_EQ(serial->clustering.labels(), parallel->clustering.labels());
}

}  // namespace
}  // namespace dgc
