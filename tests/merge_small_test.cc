#include "cluster/merge_small.h"

#include <gtest/gtest.h>

namespace dgc {
namespace {

TEST(MergeSmallTest, AbsorbsFragmentsIntoStrongestNeighbor) {
  // Two 4-cliques plus one stray vertex attached to the first clique.
  auto g = UGraph::FromEdges(9, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0},
                                 {1, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0},
                                 {4, 5, 1.0}, {4, 6, 1.0}, {4, 7, 1.0},
                                 {5, 6, 1.0}, {5, 7, 1.0}, {6, 7, 1.0},
                                 {8, 0, 2.0}, {8, 4, 0.5}});
  ASSERT_TRUE(g.ok());
  Clustering c(std::vector<Index>{0, 0, 0, 0, 1, 1, 1, 1, 2});
  const Index k = MergeSmallClusters(*g, 2, &c);
  EXPECT_EQ(k, 2);
  // Vertex 8 joins clique 0 (weight 2.0 beats 0.5).
  EXPECT_EQ(c.LabelOf(8), c.LabelOf(0));
}

TEST(MergeSmallTest, IsolatedFragmentsStay) {
  auto g = UGraph::FromEdges(5, {{0, 1, 1.0}, {1, 2, 1.0}});
  ASSERT_TRUE(g.ok());
  // Vertices 3 and 4 are isolated singleton clusters with no edges.
  Clustering c(std::vector<Index>{0, 0, 0, 1, 2});
  const Index k = MergeSmallClusters(*g, 3, &c);
  EXPECT_EQ(k, 3);
  EXPECT_NE(c.LabelOf(3), c.LabelOf(4));
}

TEST(MergeSmallTest, ChainOfFragmentsConverges) {
  // A path of singletons: each merge round shortens the chain; the result
  // must be a single cluster.
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index i = 0; i + 1 < 8; ++i) edges.emplace_back(i, i + 1, 1.0);
  auto g = UGraph::FromEdges(8, edges);
  ASSERT_TRUE(g.ok());
  std::vector<Index> labels(8);
  for (Index i = 0; i < 8; ++i) labels[static_cast<size_t>(i)] = i;
  Clustering c(labels);
  const Index k = MergeSmallClusters(*g, 4, &c);
  EXPECT_LE(k, 2);
  for (Index v = 0; v < 8; ++v) {
    EXPECT_NE(c.LabelOf(v), Clustering::kUnassigned);
  }
}

TEST(MergeSmallTest, NoOpWhenAllLargeEnough) {
  auto g = UGraph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 1.0}, {1, 2, 0.1}});
  ASSERT_TRUE(g.ok());
  Clustering c(std::vector<Index>{0, 0, 1, 1});
  Clustering before = c;
  EXPECT_EQ(MergeSmallClusters(*g, 2, &c), 2);
  EXPECT_EQ(c.labels(), before.labels());
}

TEST(MergeSmallTest, MinSizeOneDisables) {
  auto g = UGraph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  ASSERT_TRUE(g.ok());
  Clustering c(std::vector<Index>{0, 1, 2});
  EXPECT_EQ(MergeSmallClusters(*g, 1, &c), 3);
}

}  // namespace
}  // namespace dgc
