// Tests for recursive spectral bisection and the modularity measures.
#include <gtest/gtest.h>

#include "cluster/recursive_bisection.h"
#include "eval/fscore.h"
#include "eval/modularity.h"
#include "util/rng.h"

namespace dgc {
namespace {

UGraph Blocks(Index blocks, Index size, Scalar bridge = 0.05) {
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = i + 1; j < size; ++j) {
        edges.emplace_back(base + i, base + j, 1.0);
      }
    }
    edges.emplace_back(base, ((b + 1) % blocks) * size, bridge);
  }
  return std::move(UGraph::FromEdges(blocks * size, edges)).ValueOrDie();
}

GroundTruth BlockTruth(Index blocks, Index size) {
  GroundTruth truth;
  truth.categories.resize(static_cast<size_t>(blocks));
  for (Index b = 0; b < blocks; ++b) {
    for (Index i = 0; i < size; ++i) {
      truth.categories[static_cast<size_t>(b)].push_back(b * size + i);
    }
  }
  return truth;
}

TEST(FiedlerBisectTest, SplitsTwoBlocksCleanly) {
  UGraph g = Blocks(2, 10);
  std::vector<Index> all(20);
  for (Index i = 0; i < 20; ++i) all[static_cast<size_t>(i)] = i;
  auto split = FiedlerBisect(g, all, 1);
  ASSERT_TRUE(split.ok()) << split.status();
  // All of block 0 on one side, all of block 1 on the other.
  for (Index v = 1; v < 10; ++v) {
    EXPECT_EQ((*split)[static_cast<size_t>(v)], (*split)[0]);
  }
  for (Index v = 11; v < 20; ++v) {
    EXPECT_EQ((*split)[static_cast<size_t>(v)], (*split)[10]);
  }
  EXPECT_NE((*split)[0], (*split)[10]);
}

TEST(RecursiveBisectionTest, RecoversFourBlocks) {
  UGraph g = Blocks(4, 12);
  RecursiveBisectionOptions options;
  options.k = 4;
  auto c = RecursiveSpectralBisection(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 4);
  auto f = EvaluateFScore(*c, BlockTruth(4, 12));
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->avg_f, 0.95);
}

TEST(RecursiveBisectionTest, EveryVertexAssigned) {
  UGraph g = Blocks(3, 8);
  RecursiveBisectionOptions options;
  options.k = 5;
  auto c = RecursiveSpectralBisection(g, options);
  ASSERT_TRUE(c.ok());
  for (Index v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NE(c->LabelOf(v), Clustering::kUnassigned);
  }
}

TEST(RecursiveBisectionTest, KOneAndBadK) {
  UGraph g = Blocks(2, 5);
  auto one = RecursiveSpectralBisection(g, {.k = 1});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->NumClusters(), 1);
  EXPECT_FALSE(RecursiveSpectralBisection(g, {.k = 0}).ok());
  EXPECT_FALSE(RecursiveSpectralBisection(g, {.k = 99}).ok());
}

TEST(ModularityTest, PerfectBlocksScoreHigh) {
  UGraph g = Blocks(4, 10);
  Clustering truth(std::vector<Index>(40));
  for (Index v = 0; v < 40; ++v) truth.Assign(v, v / 10);
  const Scalar q_truth = Modularity(g, truth);
  EXPECT_GT(q_truth, 0.6);
  // Random assignment scores near zero.
  Rng rng(5);
  Clustering random(std::vector<Index>(40));
  for (Index v = 0; v < 40; ++v) {
    random.Assign(v, static_cast<Index>(rng.UniformU64(4)));
  }
  EXPECT_LT(Modularity(g, random), q_truth / 3.0);
}

TEST(ModularityTest, SingleClusterScoresZero) {
  UGraph g = Blocks(2, 6);
  Clustering one(std::vector<Index>(12, 0));
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-12);
}

TEST(DirectedModularityTest, DirectedBlocksScoreHigh) {
  // Dense directed blocks.
  std::vector<Edge> edges;
  for (Index b = 0; b < 3; ++b) {
    for (Index i = 0; i < 8; ++i) {
      for (Index j = 0; j < 8; ++j) {
        if (i != j) edges.push_back(Edge{b * 8 + i, b * 8 + j, 1.0});
      }
    }
    edges.push_back(Edge{b * 8, ((b + 1) % 3) * 8, 1.0});
  }
  auto g = Digraph::FromEdges(24, edges);
  ASSERT_TRUE(g.ok());
  Clustering truth(std::vector<Index>(24));
  for (Index v = 0; v < 24; ++v) truth.Assign(v, v / 8);
  EXPECT_GT(DirectedModularity(*g, truth), 0.5);
  Clustering one(std::vector<Index>(24, 0));
  EXPECT_NEAR(DirectedModularity(*g, one), 0.0, 1e-12);
}

}  // namespace
}  // namespace dgc
