// Deterministic fuzzing of the four streaming readers in graph/io.cc.
//
// Each reader is fed thousands of seeded mutants — truncations, splices of
// two valid inputs, byte flips, sign flips, huge ids, non-UTF8 bytes, CRLF
// rewrites, and pathological 10k-column lines — under tight IoLimits. The
// contract under test: every input either parses into a valid graph or
// fails with a clean Status whose message carries the offending path (and
// therefore the file:line:column prefix every parse diagnostic starts
// with); no input may crash, hang, or trip a sanitizer. The suite runs in
// the ASan/UBSan CI jobs, which is where the "no UB" half of the contract
// is actually enforced.
//
// The mutant count per reader defaults to 5000 and can be dialed with the
// DGC_FUZZ_MUTANTS environment variable (the CI smoke step uses a smaller
// count; a long local soak can use a larger one). Everything is seeded:
// the same build and count always exercise the same corpus.
#include "graph/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dynamic/delta_io.h"
#include "dynamic/dynamic_graph.h"
#include "graph/digraph.h"
#include "graph/serialize.h"
#include "util/rng.h"

namespace dgc {
namespace {

int MutantCount() {
  const char* env = std::getenv("DGC_FUZZ_MUTANTS");
  if (env == nullptr) return 5000;
  const int count = std::atoi(env);
  return count > 0 ? count : 5000;
}

/// Limits tight enough that no mutant can force a large allocation or a
/// long scan, yet loose enough that the unmutated seeds parse cleanly.
IoLimits FuzzLimits() {
  IoLimits limits;
  limits.max_vertices = 2000;
  limits.max_edges = 20000;
  limits.max_line_bytes = 4096;
  limits.max_categories = 200;
  return limits;
}

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_io_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::filesystem::path dir_;
};

/// Applies one randomly chosen mutation to `input`. Mutations are chosen to
/// cover the failure modes a hand-written parser historically gets wrong:
/// mid-token truncation, structural splices, sign and digit corruption,
/// values far outside Index range, bytes outside ASCII, alternative line
/// endings, and lines with thousands of columns.
std::string Mutate(const std::string& input, const std::string& other,
                   Rng& rng) {
  std::string s = input;
  switch (rng.UniformU64(9)) {
    case 0: {  // Truncate at an arbitrary byte (often mid-token).
      if (!s.empty()) s.resize(static_cast<size_t>(rng.UniformU64(s.size())));
      break;
    }
    case 1: {  // Splice: head of one corpus entry onto the tail of another.
      const size_t cut_a =
          s.empty() ? 0 : static_cast<size_t>(rng.UniformU64(s.size() + 1));
      const size_t cut_b =
          other.empty()
              ? 0
              : static_cast<size_t>(rng.UniformU64(other.size() + 1));
      s = s.substr(0, cut_a) + other.substr(cut_b);
      break;
    }
    case 2: {  // Flip 1-8 random bytes to random values (incl. >= 0x80).
      if (s.empty()) break;
      const int flips = static_cast<int>(rng.UniformU64(8)) + 1;
      for (int i = 0; i < flips; ++i) {
        s[static_cast<size_t>(rng.UniformU64(s.size()))] =
            static_cast<char>(rng.UniformU64(256));
      }
      break;
    }
    case 3: {  // Insert a '-' somewhere (sign-flips ids and counts).
      s.insert(static_cast<size_t>(rng.UniformU64(s.size() + 1)), 1, '-');
      break;
    }
    case 4: {  // Insert a number far outside Index range.
      static const char* kHuge[] = {"4294967296", "9223372036854775807",
                                    "-9223372036854775808",
                                    "99999999999999999999", "1e308", "-1"};
      s.insert(static_cast<size_t>(rng.UniformU64(s.size() + 1)),
               kHuge[rng.UniformU64(6)]);
      break;
    }
    case 5: {  // Rewrite "\n" as "\r\n" (or sprinkle bare "\r").
      std::string out;
      out.reserve(s.size() + s.size() / 8);
      for (char c : s) {
        if (c == '\n' && rng.Bernoulli(0.7)) out.push_back('\r');
        out.push_back(c);
      }
      s = std::move(out);
      break;
    }
    case 6: {  // Append a line with thousands of columns.
      std::string wide;
      const int columns = 10000;
      for (int i = 0; i < columns; ++i) {
        wide += std::to_string(i % 7);
        wide.push_back(' ');
      }
      s += wide + "\n";
      break;
    }
    case 7: {  // Duplicate a random chunk (repeats headers/edges).
      if (s.empty()) break;
      const size_t from = static_cast<size_t>(rng.UniformU64(s.size()));
      const size_t len = static_cast<size_t>(
          rng.UniformU64(std::min<uint64_t>(s.size() - from, 64)) + 1);
      s.insert(static_cast<size_t>(rng.UniformU64(s.size() + 1)),
               s.substr(from, len));
      break;
    }
    default: {  // Inject garbage tokens: NaNs, hex, words, NULs.
      static const char* kTokens[] = {"nan",  "inf",  "0x1f", "abc",
                                      "1.5.", "+3",   "2e",   "\t\t",
                                      "\v\f", "~!@#", "%",    " "};
      const int inserts = static_cast<int>(rng.UniformU64(4)) + 1;
      for (int i = 0; i < inserts; ++i) {
        s.insert(static_cast<size_t>(rng.UniformU64(s.size() + 1)),
                 kTokens[rng.UniformU64(12)]);
      }
      break;
    }
  }
  return s;
}

/// Every status a reader returns for a fuzzed file must carry the path —
/// the anchor of the file:line:column diagnostic contract. (Crash/UB
/// detection is the sanitizers' job; this assertion keeps the error
/// messages actionable.)
void ExpectCleanStatus(const Status& status, const std::string& path,
                       int mutant) {
  if (status.ok()) return;
  EXPECT_NE(status.message().find(path), std::string::npos)
      << "mutant " << mutant << ": diagnostic lost the path: "
      << status.ToString();
}

TEST_F(IoFuzzTest, EdgeListSurvivesMutants) {
  const std::vector<std::string> corpus = {
      "# weighted digraph\n0 1 0.5\n1 2 1.0\n2 0 2.5\n",
      "0 1\n1 0\n3 4\n4 3\n2 2\n",
      "# comment\n\n10 11 1e-3\n11 12 0.125\n\n12 10 3\n",
  };
  const std::string path = Path("edges.txt");
  const IoLimits limits = FuzzLimits();
  Rng rng(20260807);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, Mutate(base, other, rng));
    auto g = ReadEdgeList(path, /*num_vertices=*/0, limits);
    ExpectCleanStatus(g.status(), path, i);
  }
}

TEST_F(IoFuzzTest, MetisGraphSurvivesMutants) {
  const std::vector<std::string> corpus = {
      "3 3\n2 3\n1 3\n1 2\n",
      "% comment\n4 4 001\n2 1 3 1\n1 1 4 2\n1 1 4 2\n2 2 3 2\n",
      "5 0\n\n\n\n\n\n",
  };
  const std::string path = Path("graph.metis");
  const IoLimits limits = FuzzLimits();
  Rng rng(421);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, Mutate(base, other, rng));
    auto g = ReadMetisGraph(path, limits);
    ExpectCleanStatus(g.status(), path, i);
  }
}

TEST_F(IoFuzzTest, GroundTruthSurvivesMutants) {
  const std::vector<std::string> corpus = {
      "0 0\n1 0 1\n2 1\n3 1\n",
      "# vertex categories\n0 5\n1 5\n2 5\n3 0 1 2 3 4\n",
      "7 199\n",
  };
  const std::string path = Path("truth.txt");
  const IoLimits limits = FuzzLimits();
  Rng rng(99991);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, Mutate(base, other, rng));
    auto truth = ReadGroundTruth(path, /*num_vertices=*/8, limits);
    ExpectCleanStatus(truth.status(), path, i);
  }
}

TEST_F(IoFuzzTest, ClusteringSurvivesMutants) {
  const std::vector<std::string> corpus = {
      "0\n0\n1\n1\n2\n",
      "# labels\n-1\n3\n3\n-1\n0\n",
      "5\n5\n5\n5\n5\n5\n5\n5\n",
  };
  const std::string path = Path("labels.txt");
  const IoLimits limits = FuzzLimits();
  Rng rng(777);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, Mutate(base, other, rng));
    auto clustering = ReadClustering(path, limits);
    ExpectCleanStatus(clustering.status(), path, i);
  }
}

/// The delta-batch reader (src/dynamic/delta_io.h) under the same mutation
/// corpus, plus delta-specific seeds: malformed vertex ids, insert/delete
/// conflicts inside one batch, and op soup around the `---` separators.
/// Every parse either yields validated batches or a clean path-anchored
/// Status; parsed batches are then driven into a DynamicGraph, which must
/// apply them or reject them with a structured status — never crash.
TEST_F(IoFuzzTest, DeltaBatchesSurviveMutants) {
  const std::vector<std::string> corpus = {
      "# stream\n+ 0 1 0.5\n- 1 2\n---\n+ 2 3\n+ 3 4 2.0\n",
      "+ 5 6\n---\n- 6 5\n---\n+ 6 5 1.25\n",
      "- 0 1\n+ 0 1 3.0\n---\n# weight update split across batches\n+ 9 9\n",
      "+ 1 1\n+ 1 2\n- 1 2\n",      // insert/delete conflict (must reject)
      "+ -3 7\n- 7 99999999999\n",  // malformed vertex ids
  };
  const std::string path = Path("deltas.txt");
  const IoLimits limits = FuzzLimits();
  // A small cycle graph the surviving batches are applied against.
  const Index n = 40;
  std::vector<Edge> edges;
  for (Index u = 0; u < n; ++u) {
    edges.push_back(Edge{u, static_cast<Index>((u + 1) % n), 1.0});
  }
  Digraph base = std::move(Digraph::FromEdges(n, edges)).ValueOrDie();
  DynamicGraph dyn = std::move(DynamicGraph::FromDigraph(base)).ValueOrDie();

  Rng rng(20260808);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base_input = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, Mutate(base_input, other, rng));
    auto batches = ReadDeltaBatches(path, n, limits);
    ExpectCleanStatus(batches.status(), path, i);
    if (!batches.ok()) continue;
    for (const EdgeDeltaBatch& batch : *batches) {
      // Apply never crashes; failures are structured and leave the pair
      // (A, Aᵀ) untouched — transpose consistency is re-checked below.
      (void)dyn.Apply(batch);
    }
  }
  EXPECT_EQ(dyn.adjacency().nnz(), dyn.transpose().nnz());
}

/// A delta stream with more ops than IoLimits.max_edges must be refused
/// up front (kOutOfRange), not parsed into an unbounded batch list.
TEST_F(IoFuzzTest, DeltaBatchesRespectOpBudget) {
  IoLimits limits = FuzzLimits();
  limits.max_edges = 8;
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    stream += "+ " + std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  const std::string path = Path("big_deltas.txt");
  WriteFile(path, stream);
  auto batches = ReadDeltaBatches(path, 2000, limits);
  ASSERT_FALSE(batches.ok());
  EXPECT_EQ(batches.status().code(), StatusCode::kOutOfRange)
      << batches.status().ToString();
  EXPECT_NE(batches.status().message().find(path), std::string::npos);
}

/// Binary mutator for the dgc matrix format: truncations, byte flips,
/// 8-byte header-word patches (forged dims, offsets near 2^63, negative
/// counts), splices of two valid files, zeroed ranges, and appended junk.
/// Aimed at the failure modes a binary loader historically gets wrong:
/// overflowing extent arithmetic, huge speculative allocations, and
/// out-of-bounds reads through a "validated" mmap view.
std::string MutateBinary(const std::string& input, const std::string& other,
                         Rng& rng) {
  std::string s = input;
  switch (rng.UniformU64(6)) {
    case 0: {  // Truncate anywhere (header, section edge, mid-array).
      if (!s.empty()) s.resize(static_cast<size_t>(rng.UniformU64(s.size())));
      break;
    }
    case 1: {  // Flip 1-8 random bytes.
      if (s.empty()) break;
      const int flips = static_cast<int>(rng.UniformU64(8)) + 1;
      for (int i = 0; i < flips; ++i) {
        s[static_cast<size_t>(rng.UniformU64(s.size()))] =
            static_cast<char>(rng.UniformU64(256));
      }
      break;
    }
    case 2: {  // Patch one aligned 8-byte header word with an extreme value.
      if (s.size() < 64) break;
      static const uint64_t kWords[] = {
          0,
          uint64_t{1} << 31,
          uint64_t{1} << 62,
          static_cast<uint64_t>(INT64_MAX),
          static_cast<uint64_t>(-1),
          static_cast<uint64_t>(-4096),
          63,  // misaligned offset below the header
      };
      const uint64_t word = kWords[rng.UniformU64(7)];
      const size_t offset = 16 + 8 * static_cast<size_t>(rng.UniformU64(6));
      std::memcpy(s.data() + offset, &word, sizeof(word));
      break;
    }
    case 3: {  // Splice head of one file onto the tail of another.
      const size_t cut_a =
          s.empty() ? 0 : static_cast<size_t>(rng.UniformU64(s.size() + 1));
      const size_t cut_b =
          other.empty()
              ? 0
              : static_cast<size_t>(rng.UniformU64(other.size() + 1));
      s = s.substr(0, cut_a) + other.substr(cut_b);
      break;
    }
    case 4: {  // Zero a random range (wipes row_ptr monotonicity).
      if (s.empty()) break;
      const size_t from = static_cast<size_t>(rng.UniformU64(s.size()));
      const size_t len = static_cast<size_t>(
          rng.UniformU64(std::min<uint64_t>(s.size() - from, 256)) + 1);
      std::memset(s.data() + from, 0, len);
      break;
    }
    default: {  // Append random bytes (trailing junk past the sections).
      const int extra = static_cast<int>(rng.UniformU64(64)) + 1;
      for (int i = 0; i < extra; ++i) {
        s.push_back(static_cast<char>(rng.UniformU64(256)));
      }
      break;
    }
  }
  return s;
}

/// Both binary read paths — the streaming loader and the mmap view — must
/// survive every mutant: parse to a valid matrix or fail with a clean
/// path-anchored Status. MappedCsr additionally materializes on success,
/// so a bogus "validated" view that still reads out of bounds would trip
/// ASan here.
TEST_F(IoFuzzTest, BinaryCsrSurvivesMutants) {
  std::vector<std::string> corpus;
  {
    Rng gen(5150);
    for (uint64_t seed = 0; seed < 3; ++seed) {
      std::vector<Triplet> t;
      const Index n = 20 + static_cast<Index>(seed) * 13;
      for (int i = 0; i < 160; ++i) {
        t.push_back(Triplet{
            static_cast<Index>(gen.UniformU64(static_cast<uint64_t>(n))),
            static_cast<Index>(gen.UniformU64(static_cast<uint64_t>(n))),
            gen.UniformDouble()});
      }
      CsrMatrix m =
          std::move(CsrMatrix::FromTriplets(n, n, t)).ValueOrDie();
      const std::string path = Path("seed" + std::to_string(seed) + ".dgcm");
      ASSERT_TRUE(SaveMatrix(m, path).ok());
      std::ifstream in(path, std::ios::binary);
      corpus.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
      ASSERT_GE(corpus.back().size(), kBinaryCsrHeaderBytes);
    }
  }
  const std::string path = Path("matrix.dgcm");
  Rng rng(20260809);
  const int count = MutantCount();
  for (int i = 0; i < count; ++i) {
    const std::string& base = corpus[rng.UniformU64(corpus.size())];
    const std::string& other = corpus[rng.UniformU64(corpus.size())];
    WriteFile(path, MutateBinary(base, other, rng));
    auto loaded = LoadMatrix(path);
    ExpectCleanStatus(loaded.status(), path, i);
    auto view = MappedCsr::Open(path);
    ExpectCleanStatus(view.status(), path, i);
    if (view.ok()) {
      CsrMatrix materialized = view->Materialize();
      EXPECT_EQ(materialized.nnz(), view->nnz());
    }
  }
}

/// mmap of a directory must fail with the path in the message, not crash.
TEST_F(IoFuzzTest, BinaryCsrRejectsDirectory) {
  const std::string sub = (dir_ / "adir").string();
  std::filesystem::create_directories(sub);
  auto view = MappedCsr::Open(sub);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find(sub), std::string::npos);
  EXPECT_FALSE(LoadMatrix(sub).ok());
}

/// The unmutated seeds must parse: otherwise the fuzz loops above would be
/// exercising only the error paths and silently lose the accept-side
/// coverage.
TEST_F(IoFuzzTest, SeedCorpusParses) {
  const IoLimits limits = FuzzLimits();
  WriteFile(Path("s_edges.txt"), "0 1 0.5\n1 2 1.0\n2 0 2.5\n");
  EXPECT_TRUE(ReadEdgeList(Path("s_edges.txt"), 0, limits).ok());
  WriteFile(Path("s_graph.metis"), "3 3\n2 3\n1 3\n1 2\n");
  EXPECT_TRUE(ReadMetisGraph(Path("s_graph.metis"), limits).ok());
  WriteFile(Path("s_graph2.metis"),
            "% comment\n4 4 001\n2 1 3 1\n1 1 4 2\n1 1 4 2\n2 2 3 2\n");
  EXPECT_TRUE(ReadMetisGraph(Path("s_graph2.metis"), limits).ok());
  WriteFile(Path("s_truth.txt"), "0 0\n1 0 1\n2 1\n3 1\n");
  EXPECT_TRUE(ReadGroundTruth(Path("s_truth.txt"), 8, limits).ok());
  WriteFile(Path("s_labels.txt"), "0\n0\n1\n1\n2\n");
  EXPECT_TRUE(ReadClustering(Path("s_labels.txt"), limits).ok());
  WriteFile(Path("s_deltas.txt"),
            "# stream\n+ 0 1 0.5\n- 1 2\n---\n+ 2 3\n+ 3 4 2.0\n");
  auto batches = ReadDeltaBatches(Path("s_deltas.txt"), 2000, limits);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  EXPECT_EQ(batches->size(), 2u);
}

}  // namespace
}  // namespace dgc
