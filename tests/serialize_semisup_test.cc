// Tests for binary serialization (v2 format + MappedCsr + v1 compat) and
// directed label propagation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/semi_supervised.h"
#include "graph/serialize.h"
#include "util/rng.h"

namespace dgc {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_ser_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

CsrMatrix RandomMatrix(Index rows, Index cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(rows))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(cols))),
                rng.UniformDouble()});
  }
  return std::move(CsrMatrix::FromTriplets(rows, cols, t)).ValueOrDie();
}

TEST_F(SerializeTest, MatrixRoundTrip) {
  CsrMatrix m = RandomMatrix(50, 40, 400, 1);
  ASSERT_TRUE(SaveMatrix(m, Path("m.dgcm")).ok());
  auto back = LoadMatrix(Path("m.dgcm"));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, m);
}

TEST_F(SerializeTest, EmptyMatrixRoundTrip) {
  CsrMatrix m = CsrMatrix::Zero(7, 3);
  ASSERT_TRUE(SaveMatrix(m, Path("z.dgcm")).ok());
  auto back = LoadMatrix(Path("z.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST_F(SerializeTest, RejectsGarbage) {
  {
    std::ofstream out(Path("bad.dgcm"), std::ios::binary);
    out << "this is not a matrix";
  }
  EXPECT_FALSE(LoadMatrix(Path("bad.dgcm")).ok());
  EXPECT_TRUE(LoadMatrix(Path("missing.dgcm")).status().IsIOError());
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  CsrMatrix m = RandomMatrix(30, 30, 200, 2);
  ASSERT_TRUE(SaveMatrix(m, Path("full.dgcm")).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(Path("full.dgcm"));
  std::filesystem::resize_file(Path("full.dgcm"), size / 2);
  EXPECT_FALSE(LoadMatrix(Path("full.dgcm")).ok());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Patches `width` bytes at `offset` inside the file (header corruption
/// helper for the negative tests below).
void PatchFile(const std::string& path, size_t offset, const void* bytes,
               size_t width) {
  std::string content = ReadAll(path);
  ASSERT_GE(content.size(), offset + width);
  std::memcpy(content.data() + offset, bytes, width);
  WriteAll(path, content);
}

TEST_F(SerializeTest, WritesVersionedV2Header) {
  CsrMatrix m = RandomMatrix(10, 10, 30, 3);
  ASSERT_TRUE(SaveMatrix(m, Path("h.dgcm")).ok());
  const std::string bytes = ReadAll(Path("h.dgcm"));
  ASSERT_GE(bytes.size(), kBinaryCsrHeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "DGCM");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, kBinaryCsrVersion);
  uint32_t endian = 0;
  std::memcpy(&endian, bytes.data() + 8, sizeof(endian));
  EXPECT_EQ(endian, 0x01020304u);
  // Section offsets (header bytes 40/48/56) must be 8-aligned so the mmap
  // view indexes the arrays in place.
  for (size_t off : {size_t{40}, size_t{48}, size_t{56}}) {
    uint64_t section = 0;
    std::memcpy(&section, bytes.data() + off, sizeof(section));
    EXPECT_EQ(section % 8, 0u) << "section offset at header byte " << off;
    EXPECT_GE(section, kBinaryCsrHeaderBytes);
  }
}

TEST_F(SerializeTest, MappedViewMatchesMatrix) {
  CsrMatrix m = RandomMatrix(60, 45, 500, 4);
  ASSERT_TRUE(SaveMatrix(m, Path("map.dgcm")).ok());
  auto view = MappedCsr::Open(Path("map.dgcm"));
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->rows(), m.rows());
  EXPECT_EQ(view->cols(), m.cols());
  EXPECT_EQ(view->nnz(), m.nnz());
  for (Index r = 0; r < m.rows(); ++r) {
    auto mc = m.RowCols(r);
    auto vc = view->RowCols(r);
    ASSERT_EQ(mc.size(), vc.size()) << "row " << r;
    for (size_t i = 0; i < mc.size(); ++i) {
      EXPECT_EQ(mc[i], vc[i]);
      EXPECT_EQ(m.RowValues(r)[i], view->RowValues(r)[i]);
    }
  }
  EXPECT_EQ(view->Materialize(), m);
  EXPECT_EQ(view->path(), Path("map.dgcm"));
}

TEST_F(SerializeTest, MappedViewOfEmptyMatrix) {
  CsrMatrix m = CsrMatrix::Zero(5, 9);
  ASSERT_TRUE(SaveMatrix(m, Path("mz.dgcm")).ok());
  auto view = MappedCsr::Open(Path("mz.dgcm"));
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->nnz(), 0);
  EXPECT_EQ(view->Materialize(), m);
}

TEST_F(SerializeTest, MappedCsrIsMovable) {
  CsrMatrix m = RandomMatrix(20, 20, 80, 5);
  ASSERT_TRUE(SaveMatrix(m, Path("mv.dgcm")).ok());
  auto view = MappedCsr::Open(Path("mv.dgcm"));
  ASSERT_TRUE(view.ok());
  MappedCsr moved(std::move(*view));
  EXPECT_EQ(moved.Materialize(), m);
  MappedCsr assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.Materialize(), m);
}

TEST_F(SerializeTest, MmapOfDirectoryFailsWithPath) {
  const std::string dir = (dir_ / "subdir").string();
  std::filesystem::create_directories(dir);
  auto view = MappedCsr::Open(dir);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find(dir), std::string::npos)
      << view.status();
}

TEST_F(SerializeTest, MmapRejectsTruncation) {
  CsrMatrix m = RandomMatrix(40, 40, 300, 6);
  const std::string path = Path("tr.dgcm");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  const std::string full = ReadAll(path);
  // Cuts inside the header, at its edge, and inside each section: every
  // one must fail cleanly with the path in the message.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{40},
                     kBinaryCsrHeaderBytes - 1, kBinaryCsrHeaderBytes + 3,
                     full.size() / 2, full.size() - 1}) {
    WriteAll(path, full.substr(0, cut));
    auto view = MappedCsr::Open(path);
    ASSERT_FALSE(view.ok()) << "cut at " << cut;
    EXPECT_NE(view.status().message().find(path), std::string::npos);
    auto loaded = LoadMatrix(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsForeignEndianness) {
  CsrMatrix m = RandomMatrix(8, 8, 20, 7);
  const std::string path = Path("endian.dgcm");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  const uint32_t reversed = 0x04030201u;
  PatchFile(path, 8, &reversed, sizeof(reversed));
  EXPECT_FALSE(LoadMatrix(path).ok());
  auto view = MappedCsr::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("endian"), std::string::npos)
      << view.status();
}

TEST_F(SerializeTest, RejectsUnsupportedVersion) {
  CsrMatrix m = RandomMatrix(8, 8, 20, 8);
  const std::string path = Path("v9.dgcm");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  const uint32_t v9 = 9;
  PatchFile(path, 4, &v9, sizeof(v9));
  EXPECT_FALSE(LoadMatrix(path).ok());
  EXPECT_FALSE(MappedCsr::Open(path).ok());
}

TEST_F(SerializeTest, RejectsOverflowingSectionExtents) {
  CsrMatrix m = RandomMatrix(16, 16, 60, 9);
  const std::string path = Path("ovf.dgcm");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  const std::string pristine = ReadAll(path);
  // A forged nnz near 2^63 must be rejected by the division-based extent
  // check — without a huge allocation and without overflow UB.
  const int64_t huge_nnz = INT64_MAX / 2;
  PatchFile(path, 32, &huge_nnz, sizeof(huge_nnz));
  EXPECT_FALSE(LoadMatrix(path).ok());
  EXPECT_FALSE(MappedCsr::Open(path).ok());
  // An offset past EOF.
  WriteAll(path, pristine);
  const uint64_t far_offset = uint64_t{1} << 62;
  PatchFile(path, 56, &far_offset, sizeof(far_offset));
  EXPECT_FALSE(LoadMatrix(path).ok());
  EXPECT_FALSE(MappedCsr::Open(path).ok());
  // A misaligned (non-multiple-of-8) section offset.
  WriteAll(path, pristine);
  const uint64_t misaligned = kBinaryCsrHeaderBytes + 4;
  PatchFile(path, 40, &misaligned, sizeof(misaligned));
  EXPECT_FALSE(LoadMatrix(path).ok());
  EXPECT_FALSE(MappedCsr::Open(path).ok());
}

TEST_F(SerializeTest, LoadsLegacyV1Files) {
  // Hand-written v1 file (PR 4's streaming format): 24-byte header with
  // 32-bit dims, then row_ptr / col_idx / values packed unaligned.
  const int32_t rows = 3, cols = 3;
  const std::vector<Offset> row_ptr = {0, 2, 2, 3};
  const std::vector<Index> col_idx = {0, 2, 1};
  const std::vector<Scalar> values = {1.5, 2.5, -0.5};
  const int64_t nnz = 3;
  std::string bytes;
  bytes.append("DGCM", 4);
  const uint32_t v1 = 1;
  bytes.append(reinterpret_cast<const char*>(&v1), 4);
  bytes.append(reinterpret_cast<const char*>(&rows), 4);
  bytes.append(reinterpret_cast<const char*>(&cols), 4);
  bytes.append(reinterpret_cast<const char*>(&nnz), 8);
  bytes.append(reinterpret_cast<const char*>(row_ptr.data()),
               row_ptr.size() * sizeof(Offset));
  bytes.append(reinterpret_cast<const char*>(col_idx.data()),
               col_idx.size() * sizeof(Index));
  bytes.append(reinterpret_cast<const char*>(values.data()),
               values.size() * sizeof(Scalar));
  const std::string path = Path("legacy.dgcm");
  WriteAll(path, bytes);
  auto m = LoadMatrix(path);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->nnz(), 3);
  EXPECT_EQ(m->RowCols(0)[1], 2);
  EXPECT_EQ(m->RowValues(2)[0], -0.5);
  // v1 cannot be mmapped (unaligned arrays); the error says how to fix it.
  auto view = MappedCsr::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("re-save"), std::string::npos)
      << view.status();
  // A truncated v1 payload with a huge forged nnz must fail without a
  // multi-terabyte resize.
  const int64_t forged = INT64_MAX / 4;
  PatchFile(path, 16, &forged, sizeof(forged));
  EXPECT_FALSE(LoadMatrix(path).ok());
}

TEST_F(SerializeTest, DigraphRoundTrip) {
  auto g = Digraph::FromEdges(5, {{0, 1, 2.0}, {3, 2, 1.5}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(SaveDigraph(*g, Path("g.dgcm")).ok());
  auto back = LoadDigraph(Path("g.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->adjacency(), g->adjacency());
}

TEST_F(SerializeTest, UGraphRoundTripValidatesSymmetry) {
  auto g = UGraph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 0.5}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(SaveUGraph(*g, Path("u.dgcm")).ok());
  auto back = LoadUGraph(Path("u.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->adjacency(), g->adjacency());
  // An asymmetric matrix saved as-is must be rejected by LoadUGraph.
  auto asym = Digraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(asym.ok());
  ASSERT_TRUE(SaveMatrix(asym->adjacency(), Path("a.dgcm")).ok());
  EXPECT_FALSE(LoadUGraph(Path("a.dgcm")).ok());
}

Digraph DirectedBlocks(Index blocks, Index size) {
  std::vector<Edge> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = 0; j < size; ++j) {
        if (i != j) edges.push_back(Edge{base + i, base + j, 1.0});
      }
    }
    edges.push_back(Edge{base, ((b + 1) % blocks) * size, 1.0});
  }
  return std::move(Digraph::FromEdges(blocks * size, edges)).ValueOrDie();
}

TEST(SemiSupervisedTest, TwoSeedsLabelDirectedBlocks) {
  Digraph g = DirectedBlocks(2, 10);
  auto result = PropagateLabelsDirected(g, {{0, 0}, {10, 1}}, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  for (Index v = 0; v < 10; ++v) {
    EXPECT_EQ(result->labels.LabelOf(v), 0) << "vertex " << v;
  }
  for (Index v = 10; v < 20; ++v) {
    EXPECT_EQ(result->labels.LabelOf(v), 1) << "vertex " << v;
  }
}

TEST(SemiSupervisedTest, ThreeClasses) {
  Digraph g = DirectedBlocks(3, 8);
  auto result =
      PropagateLabelsDirected(g, {{1, 0}, {9, 1}, {17, 2}}, 3);
  ASSERT_TRUE(result.ok());
  int correct = 0;
  for (Index v = 0; v < 24; ++v) {
    if (result->labels.LabelOf(v) == v / 8) ++correct;
  }
  EXPECT_GE(correct, 22);  // near-perfect propagation
}

TEST(SemiSupervisedTest, SeedsKeepTheirClass) {
  Digraph g = DirectedBlocks(2, 6);
  auto result = PropagateLabelsDirected(g, {{2, 1}, {8, 0}}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.LabelOf(2), 1);
  EXPECT_EQ(result->labels.LabelOf(8), 0);
}

TEST(SemiSupervisedTest, RejectsBadInput) {
  Digraph g = DirectedBlocks(2, 5);
  EXPECT_FALSE(PropagateLabelsDirected(g, {}, 2).ok());
  EXPECT_FALSE(PropagateLabelsDirected(g, {{0, 5}}, 2).ok());
  EXPECT_FALSE(PropagateLabelsDirected(g, {{99, 0}}, 2).ok());
  SemiSupervisedOptions bad;
  bad.mu = 1.5;
  EXPECT_FALSE(PropagateLabelsDirected(g, {{0, 0}}, 2, bad).ok());
}

}  // namespace
}  // namespace dgc
