// Tests for binary serialization and directed label propagation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "cluster/semi_supervised.h"
#include "graph/serialize.h"
#include "util/rng.h"

namespace dgc {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dgc_ser_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

CsrMatrix RandomMatrix(Index rows, Index cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(rows))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(cols))),
                rng.UniformDouble()});
  }
  return std::move(CsrMatrix::FromTriplets(rows, cols, t)).ValueOrDie();
}

TEST_F(SerializeTest, MatrixRoundTrip) {
  CsrMatrix m = RandomMatrix(50, 40, 400, 1);
  ASSERT_TRUE(SaveMatrix(m, Path("m.dgcm")).ok());
  auto back = LoadMatrix(Path("m.dgcm"));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, m);
}

TEST_F(SerializeTest, EmptyMatrixRoundTrip) {
  CsrMatrix m = CsrMatrix::Zero(7, 3);
  ASSERT_TRUE(SaveMatrix(m, Path("z.dgcm")).ok());
  auto back = LoadMatrix(Path("z.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST_F(SerializeTest, RejectsGarbage) {
  {
    std::ofstream out(Path("bad.dgcm"), std::ios::binary);
    out << "this is not a matrix";
  }
  EXPECT_FALSE(LoadMatrix(Path("bad.dgcm")).ok());
  EXPECT_TRUE(LoadMatrix(Path("missing.dgcm")).status().IsIOError());
}

TEST_F(SerializeTest, RejectsTruncatedFile) {
  CsrMatrix m = RandomMatrix(30, 30, 200, 2);
  ASSERT_TRUE(SaveMatrix(m, Path("full.dgcm")).ok());
  // Truncate to half.
  const auto size = std::filesystem::file_size(Path("full.dgcm"));
  std::filesystem::resize_file(Path("full.dgcm"), size / 2);
  EXPECT_FALSE(LoadMatrix(Path("full.dgcm")).ok());
}

TEST_F(SerializeTest, DigraphRoundTrip) {
  auto g = Digraph::FromEdges(5, {{0, 1, 2.0}, {3, 2, 1.5}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(SaveDigraph(*g, Path("g.dgcm")).ok());
  auto back = LoadDigraph(Path("g.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->adjacency(), g->adjacency());
}

TEST_F(SerializeTest, UGraphRoundTripValidatesSymmetry) {
  auto g = UGraph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 0.5}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(SaveUGraph(*g, Path("u.dgcm")).ok());
  auto back = LoadUGraph(Path("u.dgcm"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->adjacency(), g->adjacency());
  // An asymmetric matrix saved as-is must be rejected by LoadUGraph.
  auto asym = Digraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(asym.ok());
  ASSERT_TRUE(SaveMatrix(asym->adjacency(), Path("a.dgcm")).ok());
  EXPECT_FALSE(LoadUGraph(Path("a.dgcm")).ok());
}

Digraph DirectedBlocks(Index blocks, Index size) {
  std::vector<Edge> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = 0; j < size; ++j) {
        if (i != j) edges.push_back(Edge{base + i, base + j, 1.0});
      }
    }
    edges.push_back(Edge{base, ((b + 1) % blocks) * size, 1.0});
  }
  return std::move(Digraph::FromEdges(blocks * size, edges)).ValueOrDie();
}

TEST(SemiSupervisedTest, TwoSeedsLabelDirectedBlocks) {
  Digraph g = DirectedBlocks(2, 10);
  auto result = PropagateLabelsDirected(g, {{0, 0}, {10, 1}}, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  for (Index v = 0; v < 10; ++v) {
    EXPECT_EQ(result->labels.LabelOf(v), 0) << "vertex " << v;
  }
  for (Index v = 10; v < 20; ++v) {
    EXPECT_EQ(result->labels.LabelOf(v), 1) << "vertex " << v;
  }
}

TEST(SemiSupervisedTest, ThreeClasses) {
  Digraph g = DirectedBlocks(3, 8);
  auto result =
      PropagateLabelsDirected(g, {{1, 0}, {9, 1}, {17, 2}}, 3);
  ASSERT_TRUE(result.ok());
  int correct = 0;
  for (Index v = 0; v < 24; ++v) {
    if (result->labels.LabelOf(v) == v / 8) ++correct;
  }
  EXPECT_GE(correct, 22);  // near-perfect propagation
}

TEST(SemiSupervisedTest, SeedsKeepTheirClass) {
  Digraph g = DirectedBlocks(2, 6);
  auto result = PropagateLabelsDirected(g, {{2, 1}, {8, 0}}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.LabelOf(2), 1);
  EXPECT_EQ(result->labels.LabelOf(8), 0);
}

TEST(SemiSupervisedTest, RejectsBadInput) {
  Digraph g = DirectedBlocks(2, 5);
  EXPECT_FALSE(PropagateLabelsDirected(g, {}, 2).ok());
  EXPECT_FALSE(PropagateLabelsDirected(g, {{0, 5}}, 2).ok());
  EXPECT_FALSE(PropagateLabelsDirected(g, {{99, 0}}, 2).ok());
  SemiSupervisedOptions bad;
  bad.mu = 1.5;
  EXPECT_FALSE(PropagateLabelsDirected(g, {{0, 0}}, 2, bad).ok());
}

}  // namespace
}  // namespace dgc
