#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "util/timer.h"

namespace dgc {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, ObservationsLandInLowerBoundBuckets) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.Observe(0.5);  // first bucket (bound 1.0)
  h.Observe(1.0);  // bound is inclusive: still the first bucket
  h.Observe(1.5);  // second bucket (bound 2.0)
  h.Observe(4.0);  // third bucket (bound 4.0)
  h.Observe(9.0);  // overflow bucket
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2);
  EXPECT_EQ(h.bucket_counts()[1], 1);
  EXPECT_EQ(h.bucket_counts()[2], 1);
  EXPECT_EQ(h.bucket_counts()[3], 1);
  EXPECT_EQ(h.total_count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, ExponentialBucketBounds) {
  const Histogram h = Histogram::Exponential(1.0, 2.0, 4);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(h.bucket_counts().size(), 5u);  // + overflow
}

TEST(HistogramTest, DefaultHistogramHasOneOverflowBucket) {
  Histogram h;
  h.Observe(123.0);
  ASSERT_EQ(h.bucket_counts().size(), 1u);
  EXPECT_EQ(h.bucket_counts()[0], 1);
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a(std::vector<double>{1.0, 2.0});
  Histogram b(std::vector<double>{1.0, 3.0});
  EXPECT_FALSE(a.Merge(b).ok());
  Histogram c(std::vector<double>{1.0});
  EXPECT_FALSE(a.Merge(c).ok());
}

// Shard merging must be associative and commutative so that per-worker
// shards produce the same registry content in any merge order.
TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  const std::vector<double> bounds{1.0, 10.0, 100.0};
  auto shard = [&](std::vector<double> values) {
    Histogram h(bounds);
    for (double v : values) h.Observe(v);
    return h;
  };
  const Histogram a = shard({0.5, 5.0});
  const Histogram b = shard({50.0, 500.0, 2.0});
  const Histogram c = shard({1.0});

  Histogram left = a;  // (a + b) + c
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  Histogram right = b;  // a + (b + c)
  ASSERT_TRUE(right.Merge(c).ok());
  Histogram swapped = right;  // also exercises commutation: (b + c) + a
  ASSERT_TRUE(swapped.Merge(a).ok());

  EXPECT_EQ(left.bucket_counts(), swapped.bucket_counts());
  EXPECT_EQ(left.total_count(), swapped.total_count());
  EXPECT_DOUBLE_EQ(left.sum(), swapped.sum());
}

// ---------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("x"), 0);
  registry.AddCounter("x", 2);
  registry.AddCounter("x", 3);
  registry.AddCounter("y", 1);
  EXPECT_EQ(registry.CounterValue("x"), 5);
  EXPECT_EQ(registry.CounterValue("y"), 1);
  const auto counters = registry.Counters();
  EXPECT_EQ(counters.size(), 2u);
}

TEST(MetricsRegistryTest, GaugesLastWriteWins) {
  MetricsRegistry registry;
  registry.SetGauge("g", 1.0);
  registry.SetGauge("g", 2.5);
  EXPECT_DOUBLE_EQ(registry.Gauges().at("g"), 2.5);
}

TEST(MetricsRegistryTest, HistogramShardsMerge) {
  MetricsRegistry registry;
  Histogram shard1(std::vector<double>{1.0, 2.0});
  shard1.Observe(0.5);
  Histogram shard2(std::vector<double>{1.0, 2.0});
  shard2.Observe(1.5);
  registry.MergeHistogram("h", shard1);
  registry.MergeHistogram("h", shard2);
  const auto histograms = registry.Histograms();
  ASSERT_EQ(histograms.count("h"), 1u);
  EXPECT_EQ(histograms.at("h").total_count(), 2);
}

// -------------------------------------------------------------- StageSpan

TEST(StageSpanTest, NullRegistryIsInert) {
  StageSpan span(nullptr, "dead");
  EXPECT_FALSE(span.live());
  // Every operation must be a no-op, not a crash.
  span.Metric("i", 1);
  span.Metric("d", 2.0);
  span.Metric("s", "text");
  span.PerfMetric("p", 3);
}

TEST(StageSpanTest, SpansNestIntoATree) {
  MetricsRegistry registry;
  {
    StageSpan root(&registry, "root");
    root.Metric("k", 1);
    {
      StageSpan child(&registry, "child");
      child.Metric("inner", 2);
      StageSpan grandchild(&registry, "grandchild");
    }
    StageSpan sibling(&registry, "sibling");
  }
  const std::vector<SpanNode> spans = registry.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent, 1);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent, 0);
  EXPECT_EQ(spans[0].children, (std::vector<int>{1, 3}));
  ASSERT_EQ(spans[0].metrics.size(), 1u);
  EXPECT_EQ(spans[0].metrics[0].first, "k");
  // Closed spans carry non-negative timings.
  EXPECT_GE(spans[0].wall_seconds, 0.0);
  EXPECT_GE(spans[0].cpu_seconds, 0.0);
}

TEST(StageSpanTest, MetricOverwritesExistingKey) {
  MetricsRegistry registry;
  {
    StageSpan span(&registry, "s");
    span.Metric("k", 1);
    span.Metric("k", 2);
  }
  const auto spans = registry.Spans();
  ASSERT_EQ(spans[0].metrics.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(spans[0].metrics[0].second), 2);
}

// ---------------------------------------------------------------- Reports

TEST(RunReportTest, EmptyRegistrySerializesSchemaAndEmptySections) {
  MetricsRegistry registry;
  const std::string json = RunReportToJson(registry);
  EXPECT_NE(json.find("\"schema\": \"dgc.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\": []"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
}

TEST(RunReportTest, SameContentSerializesByteIdentically) {
  auto build = [](MetricsRegistry& registry) {
    StageSpan root(&registry, "stage");
    root.Metric("nnz", 42);
    root.Metric("threshold", 0.25);
    root.Metric("engine", "fused");
    registry.AddCounter("edges", 7);
    registry.SetGauge("quality", 0.5);
  };
  MetricsRegistry a, b;
  build(a);
  build(b);
  const RunReportOptions redact{/*redact_timings=*/true};
  EXPECT_EQ(RunReportToJson(a, redact), RunReportToJson(b, redact));
}

TEST(RunReportTest, RedactionZeroesTimingsAndPerfButKeepsMetrics) {
  MetricsRegistry registry;
  {
    StageSpan span(&registry, "s");
    span.Metric("det", 5);
    span.PerfMetric("workers", 8);
    // Burn a little time so the unredacted wall time is nonzero.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  }
  const std::string plain = RunReportToJson(registry);
  const std::string redacted =
      RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
  EXPECT_NE(plain.find("\"workers\": 8"), std::string::npos);
  EXPECT_NE(redacted.find("\"workers\": 0"), std::string::npos);
  EXPECT_NE(redacted.find("\"det\": 5"), std::string::npos);
  EXPECT_NE(redacted.find("\"wall_seconds\": 0.0"), std::string::npos);
  EXPECT_NE(redacted.find("\"cpu_seconds\": 0.0"), std::string::npos);
}

TEST(RunReportTest, DoublesKeepAFractionIntsDoNot) {
  MetricsRegistry registry;
  registry.SetGauge("whole", 3.0);
  registry.AddCounter("count", 3);
  const std::string json = RunReportToJson(registry);
  // Integral-valued doubles keep a ".0" so the value class survives a
  // JSON round trip; integers never grow one.
  EXPECT_NE(json.find("\"whole\": 3.0"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_EQ(json.find("\"count\": 3.0"), std::string::npos);
}

TEST(RunReportTest, StringsAreEscaped) {
  MetricsRegistry registry;
  {
    StageSpan span(&registry, "s");
    span.Metric("note", "a\"b\\c\nd");
  }
  const std::string json = RunReportToJson(registry);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(RunReportTest, HistogramSectionSerializesBoundsAndCounts) {
  MetricsRegistry registry;
  Histogram h(std::vector<double>{1.0, 2.0});
  h.Observe(0.5);
  h.Observe(5.0);
  registry.MergeHistogram("sizes", h);
  const std::string json = RunReportToJson(registry);
  EXPECT_NE(json.find("\"upper_bounds\": [1.0, 2.0]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"total_count\": 2"), std::string::npos);
}

// ----------------------------------------------------------------- Timers

// Regression guard for the clock source: WallTimer is backed by a
// monotonic clock (also enforced at compile time in util/timer.h), so
// elapsed readings can never go backwards.
TEST(TimerTest, WallTimerIsMonotonic) {
  static_assert(std::chrono::steady_clock::is_steady,
                "steady_clock must be steady");
  WallTimer timer;
  double last = timer.ElapsedSeconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(TimerTest, ProcessCpuTimerAdvancesUnderWork) {
  ProcessCpuTimer timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace dgc
