// Parameterized property tests for the clustering algorithms: invariants
// that must hold across parameter sweeps (inflation values, k values,
// random graph seeds).
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/graclus.h"
#include "cluster/mcl.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "gen/planted.h"
#include "gen/rmat.h"
#include "util/rng.h"

namespace dgc {
namespace {

UGraph RandomUGraph(Index n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::tuple<Index, Index, Scalar>> list;
  for (int i = 0; i < edges; ++i) {
    Index u = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    Index v = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    if (u != v) list.emplace_back(u, v, 0.5 + rng.UniformDouble());
  }
  return std::move(UGraph::FromEdges(n, list)).ValueOrDie();
}

class RmclProperty
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(RmclProperty, FlowStaysRowStochastic) {
  const auto [inflation, seed] = GetParam();
  UGraph g = RandomUGraph(60, 500, seed);
  CsrMatrix mg = BuildFlowMatrix(g, 1.0);
  RmclOptions options;
  options.inflation = inflation;
  auto flow = RmclIterate(mg, mg, options, 10);
  ASSERT_TRUE(flow.ok());
  auto sums = flow->RowSums();
  for (Scalar s : sums) {
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
  // Row cap respected.
  for (Index r = 0; r < flow->rows(); ++r) {
    EXPECT_LE(flow->RowNnz(r), options.max_row_nnz);
  }
}

TEST_P(RmclProperty, EveryVertexAssigned) {
  const auto [inflation, seed] = GetParam();
  UGraph g = RandomUGraph(60, 500, seed);
  RmclOptions options;
  options.inflation = inflation;
  auto clustering = Rmcl(g, options);
  ASSERT_TRUE(clustering.ok());
  for (Index v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NE(clustering->LabelOf(v), Clustering::kUnassigned);
  }
}

TEST_P(RmclProperty, Deterministic) {
  const auto [inflation, seed] = GetParam();
  UGraph g = RandomUGraph(40, 300, seed);
  RmclOptions options;
  options.inflation = inflation;
  auto c1 = Rmcl(g, options);
  auto c2 = Rmcl(g, options);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1->labels(), c2->labels());
}

INSTANTIATE_TEST_SUITE_P(InflationsAndSeeds, RmclProperty,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(3u, 11u)));

class PartitionerProperty
    : public ::testing::TestWithParam<std::tuple<Index, uint64_t>> {};

TEST_P(PartitionerProperty, MetisProducesExactlyKNonEmptyParts) {
  const auto [k, seed] = GetParam();
  UGraph g = RandomUGraph(120, 900, seed);
  MetisOptions options;
  options.k = k;
  options.seed = seed;
  auto c = MetisPartition(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), k);
  auto sizes = c->ClusterSizes();
  ASSERT_EQ(static_cast<Index>(sizes.size()), k);
  for (Index s : sizes) {
    EXPECT_GE(s, 1);
  }
  for (Index v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(c->LabelOf(v), 0);
    EXPECT_LT(c->LabelOf(v), k);
  }
}

TEST_P(PartitionerProperty, GraclusProducesValidLabels) {
  const auto [k, seed] = GetParam();
  UGraph g = RandomUGraph(120, 900, seed);
  GraclusOptions options;
  options.k = k;
  options.seed = seed;
  auto c = GraclusCluster(g, options);
  ASSERT_TRUE(c.ok());
  for (Index v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GE(c->LabelOf(v), 0);
    EXPECT_LT(c->LabelOf(v), k);
  }
}

TEST_P(PartitionerProperty, RefinementNeverWorsensNcut) {
  // Graclus's final ncut must be no worse than projecting the initial
  // greedy partition alone would give — approximated by comparing against
  // a fresh random assignment (an upper bound on "no refinement at all").
  const auto [k, seed] = GetParam();
  UGraph g = RandomUGraph(120, 900, seed);
  GraclusOptions options;
  options.k = k;
  options.seed = seed;
  auto c = GraclusCluster(g, options);
  ASSERT_TRUE(c.ok());
  Rng rng(seed);
  std::vector<Index> random_labels(static_cast<size_t>(g.NumVertices()));
  for (auto& label : random_labels) {
    label = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(k)));
  }
  EXPECT_LE(LevelNormalizedCut(g.adjacency(), c->labels(), k),
            LevelNormalizedCut(g.adjacency(), random_labels, k) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KsAndSeeds, PartitionerProperty,
                         ::testing::Combine(::testing::Values(2, 8, 24),
                                            ::testing::Values(5u, 13u)));

TEST(MlrMclPropertyTest, HandlesDisconnectedGraph) {
  // Two components plus isolated vertices must not crash or merge.
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index i = 0; i < 9; ++i) edges.emplace_back(i, (i + 1) % 10, 1.0);
  for (Index i = 20; i < 29; ++i) edges.emplace_back(i, i + 1, 1.0);
  auto g = UGraph::FromEdges(40, edges);
  ASSERT_TRUE(g.ok());
  MlrMclOptions options;
  auto c = MlrMcl(*g, options);
  ASSERT_TRUE(c.ok());
  // Vertices from the two components never share a cluster.
  for (Index a = 0; a < 10; ++a) {
    for (Index b = 20; b < 30; ++b) {
      EXPECT_NE(c->LabelOf(a), c->LabelOf(b));
    }
  }
}

TEST(MlrMclPropertyTest, SingleVertexGraph) {
  auto g = UGraph::FromEdges(1, {});
  ASSERT_TRUE(g.ok());
  auto c = MlrMcl(*g, {});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 1);
}

TEST(MetisPropertyTest, WeightedEdgesRespected) {
  // Two triangles joined by a heavy edge and a light edge elsewhere; the
  // partitioner must cut the light one.
  auto g = UGraph::FromEdges(6, {{0, 1, 1.0},
                                 {1, 2, 1.0},
                                 {2, 0, 1.0},
                                 {3, 4, 1.0},
                                 {4, 5, 1.0},
                                 {5, 3, 1.0},
                                 {2, 3, 0.01}});
  ASSERT_TRUE(g.ok());
  MetisOptions options;
  options.k = 2;
  auto c = MetisPartition(*g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->LabelOf(0), c->LabelOf(1));
  EXPECT_EQ(c->LabelOf(0), c->LabelOf(2));
  EXPECT_EQ(c->LabelOf(3), c->LabelOf(4));
  EXPECT_NE(c->LabelOf(0), c->LabelOf(3));
}

}  // namespace
}  // namespace dgc
