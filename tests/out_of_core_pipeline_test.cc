// End-to-end acceptance tests for the out-of-core path (ISSUE 8 /
// docs/OUT_OF_CORE.md): on a synthetic graph whose fused similarity
// products exceed the memory budget, the run must *degrade to tiling* —
// complete with a bit-identical symmetrized graph while the memory
// ledger's peak stays under the budget — instead of aborting with
// kResourceExhausted the way OutOfCoreMode::kOff does.
//
// The budget is SELF-CALIBRATING: the tests first measure the in-memory
// and the tiled ledger peaks on the same input with an unlimited armed
// token, then pick the midpoint as the budget. That keeps them meaningful
// (the precondition "estimate exceeds the budget" is asserted, not
// assumed) and immune to future kernel footprint drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/pipeline.h"
#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "linalg/spgemm_tiled.h"
#include "obs/metrics.h"
#include "util/budget.h"

namespace dgc {
namespace {

void ExpectBitIdentical(const CsrMatrix& actual, const CsrMatrix& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.rows(), expected.rows()) << label;
  ASSERT_EQ(actual.nnz(), expected.nnz()) << label;
  EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                         expected.row_ptr().begin()))
      << label;
  EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                         expected.col_idx().begin()))
      << label;
  EXPECT_EQ(0, std::memcmp(actual.values().data(), expected.values().data(),
                           actual.values().size() * sizeof(Scalar)))
      << label;
}

bool HasTiledSpan(const MetricsRegistry& registry) {
  for (const SpanNode& span : registry.Spans()) {
    if (span.name == "tiled_spgemm") return true;
  }
  return false;
}

class OutOfCorePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions rmat;
    rmat.scale = 10;  // 1024 vertices
    rmat.edge_factor = 8.0;
    auto dataset = GenerateRmat(rmat);
    ASSERT_TRUE(dataset.ok());
    graph_ = std::move(dataset->graph);
  }

  SymmetrizationOptions BaseOptions() const {
    SymmetrizationOptions options;
    options.prune_threshold = 0.001;
    return options;
  }

  Digraph graph_;
};

TEST_F(OutOfCorePipelineTest, BudgetDegradesToTilingBitIdenticalUnderPeak) {
  // (1) Measure the in-memory peak with an unlimited armed token: the
  // ledger accounts but never trips, so peak_charged_bytes() is exactly
  // the footprint a budget would have to cover.
  CancelToken token;
  token.Arm(ResourceBudget{});
  SymmetrizationOptions in_mem = BaseOptions();
  in_mem.out_of_core = OutOfCoreMode::kOff;
  in_mem.cancel = &token;
  auto baseline = SymmetrizeDegreeDiscounted(graph_, in_mem);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const int64_t peak_in_mem = token.peak_charged_bytes();
  ASSERT_GT(peak_in_mem, 0);

  // (2) The forced tiled run must be bit-identical and peak strictly
  // lower — tiling exists to shrink the footprint, nothing else.
  token.Arm(ResourceBudget{});
  SymmetrizationOptions forced = BaseOptions();
  forced.out_of_core = OutOfCoreMode::kForce;
  forced.tile_rows = 64;
  forced.cancel = &token;
  auto tiled = SymmetrizeDegreeDiscounted(graph_, forced);
  ASSERT_TRUE(tiled.ok()) << tiled.status().ToString();
  const int64_t peak_tiled = token.peak_charged_bytes();
  ASSERT_GT(peak_tiled, 0);
  ASSERT_LT(peak_tiled, peak_in_mem);
  ExpectBitIdentical(tiled->adjacency(), baseline->adjacency(),
                     "forced tiled run");

  // (3) Budget = midpoint: too small for the in-memory path, roomy for
  // the tiled one. The auto-enable precondition must hold by
  // construction — assert it so a drifting estimate fails loudly here
  // rather than silently degrading the test.
  const int64_t budget = (peak_tiled + peak_in_mem) / 2;
  const CsrMatrix a = graph_.adjacency();
  const CsrMatrix at = a.Transpose();
  ASSERT_GT(EstimateInMemorySymmetricSumBytes(a, at, /*num_threads=*/1),
            budget);

  // (4) kOff keeps the PR 5 abort semantics: the same budget trips the
  // ledger with kResourceExhausted.
  token.Arm(ResourceBudget{.max_memory_bytes = budget});
  SymmetrizationOptions aborting = BaseOptions();
  aborting.out_of_core = OutOfCoreMode::kOff;
  aborting.cancel = &token;
  auto exhausted = SymmetrizeDegreeDiscounted(graph_, aborting);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsResourceExhausted())
      << exhausted.status().ToString();

  // (5) kAuto adapts: with the budget both driving the decision AND armed
  // on the token, the run completes bit-identically at every thread count
  // and tile geometry, and the ledger peak stays under the budget.
  for (int threads : {1, 8, 0}) {
    for (Index tile_rows : {Index{0}, Index{16}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " tile_rows=" + std::to_string(tile_rows));
      token.Arm(ResourceBudget{.max_memory_bytes = budget});
      SymmetrizationOptions adaptive = BaseOptions();
      adaptive.out_of_core = OutOfCoreMode::kAuto;
      adaptive.max_memory_bytes = budget;
      adaptive.tile_rows = tile_rows;
      adaptive.num_threads = threads;
      adaptive.cancel = &token;
      auto adapted = SymmetrizeDegreeDiscounted(graph_, adaptive);
      ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
      ExpectBitIdentical(adapted->adjacency(), baseline->adjacency(),
                         "kAuto under budget");
      EXPECT_LE(token.peak_charged_bytes(), budget);
    }
  }
}

TEST_F(OutOfCorePipelineTest, AutoWithoutBudgetStaysInMemory) {
  MetricsRegistry registry;
  SymmetrizationOptions options = BaseOptions();
  options.metrics = &registry;  // out_of_core = kAuto, no budget
  auto result = SymmetrizeDegreeDiscounted(graph_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(HasTiledSpan(registry));

  MetricsRegistry forced_registry;
  SymmetrizationOptions forced = BaseOptions();
  forced.out_of_core = OutOfCoreMode::kForce;
  forced.tile_rows = 128;
  forced.metrics = &forced_registry;
  auto forced_result = SymmetrizeDegreeDiscounted(graph_, forced);
  ASSERT_TRUE(forced_result.ok()) << forced_result.status().ToString();
  EXPECT_TRUE(HasTiledSpan(forced_registry));
}

// The full SymmetrizeAndCluster plumbing: PipelineOptions::budget must
// reach the symmetrization stage, flip it to tiling instead of aborting,
// and leave the clustering output identical to an unbudgeted run.
TEST_F(OutOfCorePipelineTest, PipelineBudgetDegradesToTiling) {
  PipelineOptions base;
  base.method = SymmetrizationMethod::kDegreeDiscounted;
  base.algorithm = ClusterAlgorithm::kMlrMcl;
  base.symmetrization.prune_threshold = 0.001;
  base.mlr_mcl.rmcl.max_iterations = 4;
  auto baseline = SymmetrizeAndCluster(graph_, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Calibrate: measure the whole-pipeline ledger peak with the
  // symmetrization in-memory vs forced-tiled, caller token armed
  // unlimited. The midpoint is only a meaningful budget if the
  // symmetrization dominates the pipeline's footprint — asserted, so a
  // future clustering-stage footprint change fails this line, not the
  // contract checks below.
  CancelToken token;
  token.Arm(ResourceBudget{});
  PipelineOptions off = base;
  off.symmetrization.out_of_core = OutOfCoreMode::kOff;
  off.cancel = &token;
  ASSERT_TRUE(SymmetrizeAndCluster(graph_, off).ok());
  const int64_t peak_off = token.peak_charged_bytes();

  token.Arm(ResourceBudget{});
  PipelineOptions force = base;
  force.symmetrization.out_of_core = OutOfCoreMode::kForce;
  force.symmetrization.tile_rows = 64;
  force.cancel = &token;
  ASSERT_TRUE(SymmetrizeAndCluster(graph_, force).ok());
  const int64_t peak_forced = token.peak_charged_bytes();
  ASSERT_GT(peak_off, peak_forced)
      << "symmetrization no longer dominates the pipeline footprint; "
         "recalibrate this test";
  const int64_t budget = (peak_forced + peak_off) / 2;

  // Budgeted run (internal token; kAuto default): completes by tiling,
  // records the tiled span, and the clustering is identical.
  MetricsRegistry registry;
  PipelineOptions budgeted = base;
  budgeted.budget.max_memory_bytes = budget;
  budgeted.metrics = &registry;
  auto adapted = SymmetrizeAndCluster(graph_, budgeted);
  ASSERT_TRUE(adapted.ok()) << adapted.status().ToString();
  EXPECT_TRUE(HasTiledSpan(registry));
  ExpectBitIdentical(adapted->symmetrized.adjacency(),
                     baseline->symmetrized.adjacency(), "budgeted pipeline");
  EXPECT_EQ(adapted->clustering.labels(), baseline->clustering.labels());

  // Same budget with tiling disabled: the abort contract still holds.
  PipelineOptions refused = base;
  refused.budget.max_memory_bytes = budget;
  refused.symmetrization.out_of_core = OutOfCoreMode::kOff;
  auto aborted = SymmetrizeAndCluster(graph_, refused);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsResourceExhausted())
      << aborted.status().ToString();
}

}  // namespace
}  // namespace dgc
