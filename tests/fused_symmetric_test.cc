// Equivalence of the fused symmetric-aware similarity kernels
// (SpGemmAAtSymmetric / SpGemmSymmetricSum / MirrorUpperTriangle) with the
// reference path (scaled copies + full SpGEMMs + Add + Pruned). The fused
// engine is the default for Bibliometric and Degree-discounted, so the
// contract is *bit-identical* output — EXPECT_EQ on the CSR, not a
// tolerance — at every thread count and prune threshold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/discount.h"
#include "core/symmetrize.h"
#include "gen/lfr.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "linalg/vector_ops.h"

namespace dgc {
namespace {

struct GraphCase {
  std::string name;
  Digraph (*make)();
};

Digraph MakeRmatGraph() {
  RmatOptions options;
  options.scale = 9;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).ValueOrDie().graph;
}

Digraph MakeLfrGraph() {
  LfrOptions options;
  options.num_vertices = 1200;
  options.style = LfrCommunityStyle::kCocitation;
  options.authority_overlap = 0.3;
  auto dataset = GenerateLfr(options);
  EXPECT_TRUE(dataset.ok());
  return std::move(dataset).ValueOrDie().graph;
}

class FusedSymmetricTest : public ::testing::TestWithParam<GraphCase> {};

INSTANTIATE_TEST_SUITE_P(
    Graphs, FusedSymmetricTest,
    ::testing::Values(GraphCase{"Rmat", &MakeRmatGraph},
                      GraphCase{"Lfr", &MakeLfrGraph}),
    [](const auto& info) { return info.param.name; });

// Degree-discounted thresholds: 0 (keep everything), a mid value that
// prunes some entries, and a high value that prunes most.
constexpr Scalar kDdThresholds[] = {0.0, 0.05, 0.3};
// Bibliometric on unit-weight graphs produces integer counts; 2 and 4 are
// mid/high there.
constexpr Scalar kBiblioThresholds[] = {0.0, 2.0, 4.0};
constexpr int kThreadCounts[] = {1, 4, 0};

TEST_P(FusedSymmetricTest, DegreeDiscountedFusedMatchesReferenceBitwise) {
  const Digraph g = GetParam().make();
  for (Scalar threshold : kDdThresholds) {
    SymmetrizationOptions reference;
    reference.prune_threshold = threshold;
    reference.engine = SimilarityEngine::kReference;
    auto expected = SymmetrizeDegreeDiscounted(g, reference);
    ASSERT_TRUE(expected.ok());
    for (int threads : kThreadCounts) {
      SymmetrizationOptions fused = reference;
      fused.engine = SimilarityEngine::kFused;
      fused.num_threads = threads;
      auto actual = SymmetrizeDegreeDiscounted(g, fused);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(expected->adjacency(), actual->adjacency())
          << "threshold=" << threshold << " threads=" << threads;
      EXPECT_TRUE(actual->adjacency().IsSymmetric(0.0));
    }
  }
}

TEST_P(FusedSymmetricTest, BibliometricFusedMatchesReferenceBitwise) {
  const Digraph g = GetParam().make();
  for (Scalar threshold : kBiblioThresholds) {
    SymmetrizationOptions reference;
    reference.prune_threshold = threshold;
    reference.engine = SimilarityEngine::kReference;
    auto expected = SymmetrizeBibliometric(g, reference);
    ASSERT_TRUE(expected.ok());
    for (int threads : kThreadCounts) {
      SymmetrizationOptions fused = reference;
      fused.engine = SimilarityEngine::kFused;
      fused.num_threads = threads;
      auto actual = SymmetrizeBibliometric(g, fused);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(expected->adjacency(), actual->adjacency())
          << "threshold=" << threshold << " threads=" << threads;
      EXPECT_TRUE(actual->adjacency().IsSymmetric(0.0));
    }
  }
}

TEST_P(FusedSymmetricTest, SelfLoopVariantAlsoMatches) {
  const Digraph g = GetParam().make();
  SymmetrizationOptions reference;
  reference.prune_threshold = 0.05;
  reference.add_self_loops = true;
  reference.engine = SimilarityEngine::kReference;
  auto expected = SymmetrizeDegreeDiscounted(g, reference);
  ASSERT_TRUE(expected.ok());
  SymmetrizationOptions fused = reference;
  fused.engine = SimilarityEngine::kFused;
  fused.num_threads = 4;
  auto actual = SymmetrizeDegreeDiscounted(g, fused);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(expected->adjacency(), actual->adjacency());
}

// The scaled upper-triangle kernel, checked directly against SpGemmAAt on a
// materialized ScaleRows/ScaleCols copy: mirroring the fused upper triangle
// must reproduce the full reference product bitwise (AAᵀ of any real matrix
// is bitwise symmetric: scalar multiply commutes and both halves accumulate
// in the same ascending-k order).
TEST_P(FusedSymmetricTest, ScaledUpperTriangleMatchesScaledCopy) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  const std::vector<Scalar> row_scale =
      DiscountFactors(a.RowCounts(), DiscountSpec::Power(0.5));
  const std::vector<Scalar> col_scale =
      Sqrt(DiscountFactors(a.ColCounts(), DiscountSpec::Power(0.5)));

  CsrMatrix scaled = a;
  scaled.ScaleRows(row_scale);
  scaled.ScaleCols(col_scale);
  for (Scalar threshold : {0.0, 0.02}) {
    SpGemmOptions options;
    options.threshold = threshold;
    auto full = SpGemmAAt(scaled, options);
    ASSERT_TRUE(full.ok());
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      auto upper = SpGemmAAtSymmetric(a, row_scale, col_scale, options);
      ASSERT_TRUE(upper.ok());
      auto mirrored = MirrorUpperTriangle(*upper, threads);
      ASSERT_TRUE(mirrored.ok());
      EXPECT_EQ(*full, *mirrored)
          << "threshold=" << threshold << " threads=" << threads;
    }
  }
}

TEST_P(FusedSymmetricTest, UnscaledUpperTriangleMatchesPlainAAt) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  auto full = SpGemmAAt(a);
  ASSERT_TRUE(full.ok());
  auto upper = SpGemmAAtSymmetric(a, {}, {});
  ASSERT_TRUE(upper.ok());
  auto mirrored = MirrorUpperTriangle(*upper);
  ASSERT_TRUE(mirrored.ok());
  EXPECT_EQ(*full, *mirrored);
}

TEST_P(FusedSymmetricTest, PrecomputedTransposeOverloadsMatch) {
  const Digraph g = GetParam().make();
  const CsrMatrix& a = g.adjacency();
  const CsrMatrix at = a.Transpose();
  auto aat = SpGemmAAt(a);
  ASSERT_TRUE(aat.ok());
  auto aat_pre = SpGemmAAt(a, at);
  ASSERT_TRUE(aat_pre.ok());
  EXPECT_EQ(*aat, *aat_pre);
  auto ata = SpGemmAtA(a);
  ASSERT_TRUE(ata.ok());
  auto ata_pre = SpGemmAtA(a, at);
  ASSERT_TRUE(ata_pre.ok());
  EXPECT_EQ(*ata, *ata_pre);
}

TEST(FusedSymmetricUnitTest, PrecomputedTransposeShapeIsChecked) {
  CsrMatrix a = CsrMatrix::Zero(3, 4);
  CsrMatrix not_at = CsrMatrix::Zero(3, 4);  // should be 4x3
  EXPECT_FALSE(SpGemmAAt(a, not_at).ok());
  EXPECT_FALSE(SpGemmAtA(a, not_at).ok());
  EXPECT_FALSE(SpGemmAAtSymmetric(a, {}, {}, {}, &not_at).ok());
}

TEST(FusedSymmetricUnitTest, ScaleSizesAreChecked) {
  CsrMatrix a = CsrMatrix::Zero(3, 4);
  const std::vector<Scalar> wrong(2, 1.0);
  EXPECT_FALSE(SpGemmAAtSymmetric(a, wrong, {}).ok());
  EXPECT_FALSE(SpGemmAAtSymmetric(a, {}, wrong).ok());
}

TEST(FusedSymmetricUnitTest, MirrorSmallKnownMatrix) {
  // upper = [2 1 0; . 3 5; . . 0] -> full has (1,0)=1, (2,1)=5 mirrored.
  auto upper = std::move(CsrMatrix::FromTriplets(
                             3, 3, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 3.0},
                                    {1, 2, 5.0}}))
                   .ValueOrDie();
  auto full = MirrorUpperTriangle(upper);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->nnz(), 6);
  EXPECT_DOUBLE_EQ(full->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(full->At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(full->At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(full->At(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(full->At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(full->At(2, 1), 5.0);
  EXPECT_TRUE(full->IsSymmetric(0.0));
}

TEST(FusedSymmetricUnitTest, MirrorRejectsBelowDiagonalEntries) {
  auto lower = std::move(CsrMatrix::FromTriplets(3, 3, {{2, 0, 1.0}}))
                   .ValueOrDie();
  EXPECT_FALSE(MirrorUpperTriangle(lower).ok());
  EXPECT_FALSE(MirrorUpperTriangle(CsrMatrix::Zero(2, 3)).ok());
}

TEST(FusedSymmetricUnitTest, MirrorEmptyAndDiagonalOnly) {
  auto empty = MirrorUpperTriangle(CsrMatrix::Zero(4, 4));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->nnz(), 0);
  auto diag = MirrorUpperTriangle(CsrMatrix::Identity(4));
  ASSERT_TRUE(diag.ok());
  EXPECT_EQ(*diag, CsrMatrix::Identity(4));
}

TEST(FusedSymmetricUnitTest, SymmetricSumMatchesAddAndPrune) {
  // Two random upper triangles: the fused sum must equal mirror(B) +
  // mirror(C) followed by a Pruned pass, bitwise.
  auto b = std::move(CsrMatrix::FromTriplets(
                         4, 4, {{0, 1, 0.4}, {0, 3, 1.5}, {1, 1, 2.0},
                                {1, 2, 0.1}, {2, 3, 0.6}}))
               .ValueOrDie();
  auto c = std::move(CsrMatrix::FromTriplets(
                         4, 4, {{0, 1, 0.2}, {1, 2, 0.3}, {2, 2, 1.0},
                                {3, 3, 0.9}}))
               .ValueOrDie();
  auto full_b = MirrorUpperTriangle(b);
  auto full_c = MirrorUpperTriangle(c);
  ASSERT_TRUE(full_b.ok() && full_c.ok());
  auto added = CsrMatrix::Add(*full_b, *full_c);
  ASSERT_TRUE(added.ok());
  for (Scalar threshold : {0.0, 0.5}) {
    const CsrMatrix expected = added->Pruned(threshold, /*drop_diagonal=*/true);
    SpGemmOptions options;
    options.threshold = threshold;
    options.drop_diagonal = true;
    for (int threads : kThreadCounts) {
      options.num_threads = threads;
      auto sum = SpGemmSymmetricSum(b, c, options);
      ASSERT_TRUE(sum.ok());
      EXPECT_EQ(expected, *sum)
          << "threshold=" << threshold << " threads=" << threads;
    }
  }
}

TEST(FusedSymmetricUnitTest, SymmetricSumRejectsShapeMismatch) {
  EXPECT_FALSE(
      SpGemmSymmetricSum(CsrMatrix::Zero(3, 3), CsrMatrix::Zero(4, 4)).ok());
  EXPECT_FALSE(
      SpGemmSymmetricSum(CsrMatrix::Zero(3, 4), CsrMatrix::Zero(3, 4)).ok());
}

}  // namespace
}  // namespace dgc
