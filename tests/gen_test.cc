#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/citation.h"
#include "gen/hyperlink.h"
#include "gen/planted.h"
#include "gen/rmat.h"
#include "gen/social.h"
#include "graph/components.h"

namespace dgc {
namespace {

TEST(PlantedTest, ShapeAndGroundTruth) {
  PlantedOptions options;
  options.num_clusters = 5;
  options.cluster_size = 10;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->truth.NumCategories(), 5);
  for (const auto& cat : dataset->truth.categories) {
    EXPECT_EQ(cat.size(), 10u);
  }
  const Index members = 50;
  const Index context = 5 * (8 + 4);
  EXPECT_EQ(dataset->graph.NumVertices(), members + context);
  EXPECT_GT(dataset->graph.NumEdges(), 0);
}

TEST(PlantedTest, PureFigure1PatternHasNoIntraClusterEdges) {
  PlantedOptions options;
  options.num_clusters = 3;
  options.cluster_size = 8;
  options.p_intra = 0.0;
  options.noise_per_vertex = 0.0;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  for (const auto& cat : dataset->truth.categories) {
    for (Index u : cat) {
      for (Index v : cat) {
        EXPECT_FALSE(dataset->graph.HasEdge(u, v))
            << u << "->" << v << " should not exist";
      }
    }
  }
}

TEST(PlantedTest, MembersShareTargets) {
  PlantedOptions options;
  options.num_clusters = 2;
  options.cluster_size = 6;
  options.p_member_to_target = 1.0;
  options.noise_per_vertex = 0.0;
  auto dataset = GeneratePlanted(options);
  ASSERT_TRUE(dataset.ok());
  // All members of cluster 0 have identical out-neighbor sets.
  const auto& members = dataset->truth.categories[0];
  auto first = dataset->graph.OutNeighbors(members[0]);
  std::vector<Index> expected(first.begin(), first.end());
  for (Index m : members) {
    auto nbrs = dataset->graph.OutNeighbors(m);
    std::vector<Index> actual(nbrs.begin(), nbrs.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(PlantedTest, Deterministic) {
  PlantedOptions options;
  options.seed = 123;
  auto a = GeneratePlanted(options);
  auto b = GeneratePlanted(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.adjacency(), b->graph.adjacency());
}

TEST(PlantedTest, RejectsBadOptions) {
  PlantedOptions bad;
  bad.num_clusters = 0;
  EXPECT_FALSE(GeneratePlanted(bad).ok());
  PlantedOptions bad_p;
  bad_p.p_intra = 1.5;
  EXPECT_FALSE(GeneratePlanted(bad_p).ok());
}

TEST(CitationTest, ShapeAndAcyclicity) {
  CitationOptions options;
  options.num_papers = 2000;
  options.p_symmetric_noise = 0.0;
  auto dataset = GenerateCitation(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->graph.NumVertices(), 2000);
  EXPECT_GT(dataset->graph.NumEdges(), 2000);
  // With no symmetric noise, citations only go to earlier papers: DAG.
  const CsrMatrix& a = dataset->graph.adjacency();
  for (Index u = 0; u < 2000; ++u) {
    for (Index v : a.RowCols(u)) {
      EXPECT_LT(v, u);
    }
  }
  EXPECT_DOUBLE_EQ(dataset->graph.FractionSymmetricEdges(), 0.0);
}

TEST(CitationTest, SymmetricNoiseCreatesReciprocalEdges) {
  CitationOptions options;
  options.num_papers = 3000;
  options.p_symmetric_noise = 0.05;
  auto dataset = GenerateCitation(options);
  ASSERT_TRUE(dataset.ok());
  const double frac = dataset->graph.FractionSymmetricEdges();
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.25);
}

TEST(CitationTest, GroundTruthCoverage) {
  CitationOptions options;
  options.num_papers = 2000;
  options.p_unlabeled = 0.2;
  auto dataset = GenerateCitation(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->truth.NumCategories(),
            options.num_fields * options.subfields_per_field);
  const Offset labeled = dataset->truth.NumMemberships();
  EXPECT_GT(labeled, 1400);
  EXPECT_LT(labeled, 1800);  // ~80% of 2000
}

TEST(CitationTest, InDegreesAreSkewed) {
  CitationOptions options;
  options.num_papers = 3000;
  auto dataset = GenerateCitation(options);
  ASSERT_TRUE(dataset.ok());
  auto in = dataset->graph.InDegrees();
  Offset max_in = *std::max_element(in.begin(), in.end());
  // Preferential attachment should produce a hub far above the mean.
  EXPECT_GT(max_in, 10 * static_cast<Offset>(options.mean_citations));
}

TEST(HyperlinkTest, ShapeNamesAndTruth) {
  HyperlinkOptions options;
  options.num_articles = 5000;
  options.num_categories = 50;
  auto dataset = GenerateHyperlink(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->graph.NumVertices(), 5000);
  EXPECT_EQ(dataset->node_names.size(), 5000u);
  EXPECT_EQ(dataset->NameOf(0), "Area");
  EXPECT_GT(dataset->truth.NumCategories(), 10);
}

TEST(HyperlinkTest, HubsHaveHighInDegree) {
  HyperlinkOptions options;
  options.num_articles = 5000;
  options.num_categories = 50;
  auto dataset = GenerateHyperlink(options);
  ASSERT_TRUE(dataset.ok());
  auto in = dataset->graph.InDegrees();
  // Hub 0 ("Area") must dwarf the median article.
  std::vector<Offset> sorted(in.begin(), in.end());
  std::nth_element(sorted.begin(), sorted.begin() + 2500, sorted.end());
  EXPECT_GT(in[0], 20 * std::max<Offset>(1, sorted[2500]));
}

TEST(HyperlinkTest, ReciprocityInRange) {
  HyperlinkOptions options;
  options.num_articles = 4000;
  options.num_categories = 40;
  options.p_reciprocal = 0.3;
  auto dataset = GenerateHyperlink(options);
  ASSERT_TRUE(dataset.ok());
  const double frac = dataset->graph.FractionSymmetricEdges();
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.75);
}

TEST(HyperlinkTest, RejectsTooSmall) {
  HyperlinkOptions bad;
  bad.num_articles = 100;
  bad.num_categories = 400;
  EXPECT_FALSE(GenerateHyperlink(bad).ok());
}

TEST(SocialTest, ShapeAndReciprocity) {
  SocialOptions options;
  options.num_users = 20000;
  options.avg_out_degree = 8.0;
  options.p_reciprocal = 0.6;
  auto dataset = GenerateSocial(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->graph.NumVertices(), 20000);
  const double avg_deg = static_cast<double>(dataset->graph.NumEdges()) /
                         20000.0;
  EXPECT_GT(avg_deg, 4.0);
  EXPECT_LT(avg_deg, 20.0);
  const double frac = dataset->graph.FractionSymmetricEdges();
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.9);
}

TEST(SocialTest, PowerLawDegrees) {
  SocialOptions options;
  options.num_users = 20000;
  auto dataset = GenerateSocial(options);
  ASSERT_TRUE(dataset.ok());
  auto out = dataset->graph.OutDegrees();
  Offset max_out = *std::max_element(out.begin(), out.end());
  const double mean = static_cast<double>(dataset->graph.NumEdges()) /
                      20000.0;
  EXPECT_GT(static_cast<double>(max_out), 10.0 * mean);
}

TEST(RmatTest, ShapeAndSkew) {
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->graph.NumVertices(), 1024);
  EXPECT_GT(dataset->graph.NumEdges(), 4000);
  auto out = dataset->graph.OutDegrees();
  Offset max_out = *std::max_element(out.begin(), out.end());
  EXPECT_GT(max_out, 30);  // skewed quadrants produce hubs
}

TEST(RmatTest, RejectsBadQuadrants) {
  RmatOptions bad;
  bad.a = 0.9;
  bad.b = 0.9;
  EXPECT_FALSE(GenerateRmat(bad).ok());
}

TEST(GeneratorsTest, NoSelfLoopsAnywhere) {
  auto planted = GeneratePlanted({});
  auto citation = GenerateCitation({.num_papers = 1000});
  RmatOptions rmat;
  rmat.scale = 9;
  auto rm = GenerateRmat(rmat);
  for (const auto* d : {&planted, &citation, &rm}) {
    ASSERT_TRUE(d->ok());
    const CsrMatrix& a = (*d)->graph.adjacency();
    for (Index u = 0; u < a.rows(); ++u) {
      EXPECT_DOUBLE_EQ(a.At(u, u), 0.0);
    }
  }
}

}  // namespace
}  // namespace dgc
