// Property tests for the dynamic-update layer (src/dynamic/):
//   * the computed affected-row set is a SUPERSET of the rows whose
//     symmetrized values actually changed (checked against a brute-force
//     before/after row diff);
//   * malformed batches — deletes of nonexistent edges, duplicate inserts,
//     insert/delete conflicts, out-of-range endpoints, bad weights — are
//     rejected with kInvalidArgument and leave all state untouched;
//   * an empty batch is an exact no-op.
#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "core/symmetrize.h"
#include "dynamic/delta.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace dgc {
namespace {

Digraph TestGraph() {
  RmatOptions rmat;
  rmat.scale = 7;
  rmat.edge_factor = 6.0;
  rmat.seed = 31;
  auto data = GenerateRmat(rmat);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data->graph);
}

bool RowBytesEqual(const CsrMatrix& a, const CsrMatrix& b, Index r) {
  if (a.RowNnz(r) != b.RowNnz(r)) return false;
  const auto ac = a.RowCols(r);
  const auto bc = b.RowCols(r);
  const auto av = a.RowValues(r);
  const auto bv = b.RowValues(r);
  return std::memcmp(ac.data(), bc.data(), ac.size_bytes()) == 0 &&
         std::memcmp(av.data(), bv.data(), av.size_bytes()) == 0;
}

std::pair<Index, Index> SomeEdge(const Digraph& g, size_t skip) {
  const CsrMatrix& a = g.adjacency();
  size_t seen = 0;
  for (Index u = 0; u < a.rows(); ++u) {
    for (Index v : a.RowCols(u)) {
      if (seen++ == skip) return {u, v};
    }
  }
  ADD_FAILURE() << "graph has fewer than " << skip + 1 << " edges";
  return {0, 0};
}

/// A (u, v) pair that is not an edge of g.
std::pair<Index, Index> SomeNonEdge(const Digraph& g, uint64_t seed) {
  Rng rng(seed);
  const Index n = g.NumVertices();
  const CsrMatrix& a = g.adjacency();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Index u =
        static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    const Index v =
        static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    auto cols = a.RowCols(u);
    if (!std::binary_search(cols.begin(), cols.end(), v)) return {u, v};
  }
  ADD_FAILURE() << "could not find a non-edge";
  return {0, 0};
}

class AffectedSupersetTest
    : public testing::TestWithParam<SymmetrizationMethod> {};

TEST_P(AffectedSupersetTest, CoversEveryChangedRow) {
  const Digraph start = TestGraph();
  const Index n = start.NumVertices();
  SymmetrizationOptions options;
  auto inc = IncrementalSymmetrizer::Create(start, GetParam(), options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  auto before = Symmetrize(start, GetParam(), options);
  ASSERT_TRUE(before.ok());

  EdgeDeltaBatch batch;
  const auto del1 = SomeEdge(start, 5);
  const auto del2 = SomeEdge(start, 97);
  batch.deletes.push_back(EdgeKey{del1.first, del1.second});
  if (del2 != del1) batch.deletes.push_back(EdgeKey{del2.first, del2.second});
  const auto ins1 = SomeNonEdge(start, 11);
  batch.inserts.push_back(Edge{ins1.first, ins1.second, 2.25});
  ASSERT_TRUE(inc->ApplyDelta(batch).ok());

  auto current = inc->graph().ToDigraph();
  ASSERT_TRUE(current.ok());
  auto after = Symmetrize(*current, GetParam(), options);
  ASSERT_TRUE(after.ok());

  const auto affected = inc->last_affected_rows();
  ASSERT_TRUE(std::is_sorted(affected.begin(), affected.end()));
  // Brute force: every row whose from-scratch bytes changed must be listed.
  for (Index r = 0; r < n; ++r) {
    if (RowBytesEqual(before->adjacency(), after->adjacency(), r)) continue;
    EXPECT_TRUE(std::binary_search(affected.begin(), affected.end(), r))
        << "row " << r << " changed but is not in the affected set";
  }
  EXPECT_EQ(inc->last_stats().rows_total, n);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, AffectedSupersetTest,
    testing::Values(SymmetrizationMethod::kAPlusAT,
                    SymmetrizationMethod::kRandomWalk,
                    SymmetrizationMethod::kBibliometric,
                    SymmetrizationMethod::kDegreeDiscounted),
    [](const testing::TestParamInfo<SymmetrizationMethod>& info) {
      switch (info.param) {
        case SymmetrizationMethod::kAPlusAT:
          return std::string("APlusAT");
        case SymmetrizationMethod::kRandomWalk:
          return std::string("RandomWalk");
        case SymmetrizationMethod::kBibliometric:
          return std::string("Bibliometric");
        case SymmetrizationMethod::kDegreeDiscounted:
          return std::string("DegreeDiscounted");
      }
      return std::string("Unknown");
    });

TEST(DeltaValidationTest, RejectsDeleteOfNonexistentEdge) {
  const Digraph g = TestGraph();
  auto dyn = DynamicGraph::FromDigraph(g);
  ASSERT_TRUE(dyn.ok());
  const auto non_edge = SomeNonEdge(g, 3);
  EdgeDeltaBatch batch;
  batch.deletes.push_back(EdgeKey{non_edge.first, non_edge.second});
  const Status status = dyn->Apply(batch);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(dyn->batches_applied(), 0);
}

TEST(DeltaValidationTest, RejectsInsertOfExistingEdge) {
  const Digraph g = TestGraph();
  auto dyn = DynamicGraph::FromDigraph(g);
  ASSERT_TRUE(dyn.ok());
  const auto edge = SomeEdge(g, 0);
  EdgeDeltaBatch batch;
  batch.inserts.push_back(Edge{edge.first, edge.second, 1.0});
  const Status status = dyn->Apply(batch);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(DeltaValidationTest, RejectsDuplicateInserts) {
  EdgeDeltaBatch batch;
  batch.inserts.push_back(Edge{1, 2, 1.0});
  batch.inserts.push_back(Edge{1, 2, 3.0});
  const Status status = batch.Validate(10);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(DeltaValidationTest, RejectsDuplicateDeletes) {
  EdgeDeltaBatch batch;
  batch.deletes.push_back(EdgeKey{1, 2});
  batch.deletes.push_back(EdgeKey{1, 2});
  const Status status = batch.Validate(10);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(DeltaValidationTest, RejectsInsertDeleteConflict) {
  EdgeDeltaBatch batch;
  batch.inserts.push_back(Edge{1, 2, 1.0});
  batch.deletes.push_back(EdgeKey{1, 2});
  const Status status = batch.Validate(10);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(DeltaValidationTest, RejectsOutOfRangeEndpoints) {
  for (const Edge e : {Edge{-1, 2, 1.0}, Edge{2, -1, 1.0}, Edge{10, 0, 1.0},
                       Edge{0, 10, 1.0}}) {
    EdgeDeltaBatch batch;
    batch.inserts.push_back(e);
    EXPECT_TRUE(batch.Validate(10).IsInvalidArgument())
        << "(" << e.src << ", " << e.dst << ")";
  }
  EdgeDeltaBatch batch;
  batch.deletes.push_back(EdgeKey{10, 0});
  EXPECT_TRUE(batch.Validate(10).IsInvalidArgument());
}

TEST(DeltaValidationTest, RejectsBadWeights) {
  for (const Scalar w :
       {0.0, -1.0, std::numeric_limits<Scalar>::infinity(),
        std::numeric_limits<Scalar>::quiet_NaN()}) {
    EdgeDeltaBatch batch;
    batch.inserts.push_back(Edge{1, 2, w});
    EXPECT_TRUE(batch.Validate(10).IsInvalidArgument()) << "weight " << w;
  }
}

TEST(DeltaValidationTest, FailedBatchLeavesIncrementalStateUntouched) {
  const Digraph g = TestGraph();
  SymmetrizationOptions options;
  auto inc = IncrementalSymmetrizer::Create(
      g, SymmetrizationMethod::kDegreeDiscounted, options);
  ASSERT_TRUE(inc.ok());
  const CsrMatrix before = inc->symmetrized().adjacency();

  EdgeDeltaBatch bad;
  const auto non_edge = SomeNonEdge(g, 8);
  bad.inserts.push_back(Edge{0, 1 % g.NumVertices(), 1.0});  // may exist
  bad.deletes.push_back(EdgeKey{non_edge.first, non_edge.second});
  const Status status = inc->ApplyDelta(bad);
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(inc->graph().batches_applied(), 0);
  EXPECT_EQ(before.nnz(), inc->symmetrized().adjacency().nnz());
  EXPECT_EQ(0, std::memcmp(before.values().data(),
                           inc->symmetrized().adjacency().values().data(),
                           before.values().size_bytes()));
}

TEST(DeltaValidationTest, EmptyBatchIsExactNoOp) {
  const Digraph g = TestGraph();
  for (SymmetrizationMethod method :
       {SymmetrizationMethod::kAPlusAT, SymmetrizationMethod::kRandomWalk,
        SymmetrizationMethod::kBibliometric,
        SymmetrizationMethod::kDegreeDiscounted}) {
    SymmetrizationOptions options;
    auto inc = IncrementalSymmetrizer::Create(g, method, options);
    ASSERT_TRUE(inc.ok());
    const CsrMatrix before = inc->symmetrized().adjacency();
    EdgeDeltaBatch empty;
    ASSERT_TRUE(inc->ApplyDelta(empty).ok());
    EXPECT_EQ(inc->last_stats().rows_recomputed, 0);
    EXPECT_EQ(inc->last_stats().rows_total, g.NumVertices());
    EXPECT_TRUE(inc->last_affected_rows().empty());
    const CsrMatrix& after = inc->symmetrized().adjacency();
    ASSERT_EQ(before.nnz(), after.nnz());
    EXPECT_EQ(0, std::memcmp(before.row_ptr().data(), after.row_ptr().data(),
                             before.row_ptr().size_bytes()));
    EXPECT_EQ(0, std::memcmp(before.col_idx().data(), after.col_idx().data(),
                             before.col_idx().size_bytes()));
    EXPECT_EQ(0, std::memcmp(before.values().data(), after.values().data(),
                             before.values().size_bytes()));
  }
}

TEST(DeltaDigestTest, DeterministicAndOrderSensitive) {
  EdgeDeltaBatch a;
  a.inserts.push_back(Edge{1, 2, 1.0});
  a.deletes.push_back(EdgeKey{3, 4});
  EdgeDeltaBatch b;
  b.inserts.push_back(Edge{2, 1, 1.0});
  b.deletes.push_back(EdgeKey{3, 4});
  const uint64_t chain = 0x12345678u;
  EXPECT_EQ(DeltaBatchDigest(chain, a), DeltaBatchDigest(chain, a));
  EXPECT_NE(DeltaBatchDigest(chain, a), DeltaBatchDigest(chain, b));
  EXPECT_NE(DeltaBatchDigest(chain, a), DeltaBatchDigest(chain + 1, a));
  // Weight bits matter: the digest addresses cache entries whose values
  // depend on them.
  EdgeDeltaBatch c = a;
  c.inserts[0].weight = 1.5;
  EXPECT_NE(DeltaBatchDigest(chain, a), DeltaBatchDigest(chain, c));
}

}  // namespace
}  // namespace dgc
