// Tests for the future-work extensions: bipartite symmetrization and
// APPR-based local partitioning.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/local.h"
#include "core/bipartite.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix BlockBipartite() {
  // 6 users x 4 items; users {0,1,2} like items {0,1}, users {3,4,5} like
  // items {2,3}.
  std::vector<Triplet> t;
  for (Index u : {0, 1, 2}) {
    t.push_back({u, 0, 1.0});
    t.push_back({u, 1, 1.0});
  }
  for (Index u : {3, 4, 5}) {
    t.push_back({u, 2, 1.0});
    t.push_back({u, 3, 1.0});
  }
  return std::move(CsrMatrix::FromTriplets(6, 4, t)).ValueOrDie();
}

TEST(BipartiteTest, RowSimilarityGroupsUsers) {
  auto u = BipartiteRowSimilarity(BlockBipartite());
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->NumVertices(), 6);
  EXPECT_GT(u->adjacency().At(0, 1), 0.0);
  EXPECT_GT(u->adjacency().At(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(u->adjacency().At(0, 3), 0.0);  // no shared items
}

TEST(BipartiteTest, ColumnSimilarityGroupsItems) {
  auto u = BipartiteColumnSimilarity(BlockBipartite());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumVertices(), 4);
  EXPECT_GT(u->adjacency().At(0, 1), 0.0);
  EXPECT_GT(u->adjacency().At(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(u->adjacency().At(0, 2), 0.0);
}

TEST(BipartiteTest, DiscountPenalizesPopularItems) {
  // Users 0,1 share a niche item; users 2,3 share an item everyone likes.
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 1.0},   // niche item 0
                            {2, 1, 1.0}, {3, 1, 1.0}};  // popular item 1
  for (Index u = 4; u < 14; ++u) t.push_back({u, 1, 1.0});
  auto b = std::move(CsrMatrix::FromTriplets(14, 2, t)).ValueOrDie();
  auto u = BipartiteRowSimilarity(b);
  ASSERT_TRUE(u.ok());
  EXPECT_GT(u->adjacency().At(0, 1), u->adjacency().At(2, 3));
}

TEST(BipartiteTest, CoClusterGraphHasBothSides) {
  auto joint = BipartiteCoClusterGraph(BlockBipartite());
  ASSERT_TRUE(joint.ok()) << joint.status();
  EXPECT_EQ(joint->NumVertices(), 10);
  EXPECT_TRUE(joint->adjacency().IsSymmetric(1e-9));
  // User 0 connects to item 0 (vertex 6 in the joint numbering).
  EXPECT_GT(joint->adjacency().At(0, 6), 0.0);
}

TEST(BipartiteTest, RejectsEmpty) {
  EXPECT_FALSE(BipartiteRowSimilarity(CsrMatrix::Zero(0, 4)).ok());
  EXPECT_FALSE(BipartiteCoClusterGraph(CsrMatrix::Zero(3, 0)).ok());
}

UGraph TwoCommunities() {
  // Two 10-cliques joined by a single edge.
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index b = 0; b < 2; ++b) {
    for (Index i = 0; i < 10; ++i) {
      for (Index j = i + 1; j < 10; ++j) {
        edges.emplace_back(b * 10 + i, b * 10 + j, 1.0);
      }
    }
  }
  edges.emplace_back(0, 10, 1.0);
  return std::move(UGraph::FromEdges(20, edges)).ValueOrDie();
}

TEST(LocalClusterTest, ApprMassConcentratesNearSeed) {
  UGraph g = TwoCommunities();
  auto ppr = ApproximatePersonalizedPageRank(g, 5, {});
  ASSERT_TRUE(ppr.ok());
  Scalar near = 0.0, far = 0.0;
  for (const auto& [v, mass] : *ppr) {
    (v < 10 ? near : far) += mass;
  }
  EXPECT_GT(near, 10.0 * far);
}

TEST(LocalClusterTest, RecoversSeedCommunity) {
  UGraph g = TwoCommunities();
  auto result = LocalCluster(g, 3, {});
  ASSERT_TRUE(result.ok()) << result.status();
  std::vector<Index> expected;
  for (Index v = 0; v < 10; ++v) expected.push_back(v);
  EXPECT_EQ(result->cluster, expected);
  // Conductance of the clique cut: 1 cut edge / volume 91*... just assert
  // it is small.
  EXPECT_LT(result->conductance, 0.05);
}

TEST(LocalClusterTest, ConductanceHelper) {
  UGraph g = TwoCommunities();
  std::vector<Index> clique = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<Index> bad = {0, 1, 2, 10, 11};
  EXPECT_LT(Conductance(g, clique), Conductance(g, bad));
}

TEST(LocalClusterTest, MaxSizeCapRespected) {
  UGraph g = TwoCommunities();
  LocalClusterOptions options;
  options.max_cluster_size = 4;
  auto result = LocalCluster(g, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->cluster.size(), 4u);
}

TEST(LocalClusterTest, RejectsBadInput) {
  UGraph g = TwoCommunities();
  EXPECT_FALSE(LocalCluster(g, -1, {}).ok());
  EXPECT_FALSE(LocalCluster(g, 99, {}).ok());
  LocalClusterOptions bad;
  bad.alpha = 1.5;
  EXPECT_FALSE(LocalCluster(g, 0, bad).ok());
  auto isolated = UGraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(isolated.ok());
  EXPECT_TRUE(LocalCluster(*isolated, 2, {}).status().IsNotFound());
}

}  // namespace
}  // namespace dgc
