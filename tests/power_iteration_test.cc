#include "linalg/power_iteration.h"

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix Cycle(Index n) {
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back(Triplet{i, static_cast<Index>((i + 1) % n), 1.0});
  }
  return std::move(CsrMatrix::FromTriplets(n, n, t)).ValueOrDie();
}

TEST(RowStochasticTest, NormalizesRows) {
  auto a = std::move(CsrMatrix::FromTriplets(
                         2, 2, {{0, 0, 2.0}, {0, 1, 6.0}, {1, 0, 5.0}}))
               .ValueOrDie();
  CsrMatrix p = RowStochastic(a);
  EXPECT_DOUBLE_EQ(p.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(p.At(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(p.At(1, 0), 1.0);
}

TEST(RowStochasticTest, LeavesDanglingRowsEmpty) {
  auto a = std::move(CsrMatrix::FromTriplets(2, 2, {{0, 1, 3.0}}))
               .ValueOrDie();
  CsrMatrix p = RowStochastic(a);
  EXPECT_EQ(p.RowNnz(1), 0);
}

TEST(PageRankTest, UniformOnCycle) {
  const Index n = 10;
  auto result = PageRank(Cycle(n));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (Scalar v : result->pi) {
    EXPECT_NEAR(v, 1.0 / n, 1e-9);
  }
}

TEST(PageRankTest, SumsToOne) {
  Rng rng(99);
  std::vector<Triplet> t;
  for (int i = 0; i < 300; ++i) {
    t.push_back(Triplet{static_cast<Index>(rng.UniformU64(50)),
                        static_cast<Index>(rng.UniformU64(50)), 1.0});
  }
  auto a = std::move(CsrMatrix::FromTriplets(50, 50, t)).ValueOrDie();
  auto result = PageRank(a);
  ASSERT_TRUE(result.ok());
  Scalar sum = 0.0;
  for (Scalar v : result->pi) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, StationaryUnderOneMoreStep) {
  // pi must satisfy pi = (1-t)(pi P + dangling/n) + t/n.
  Rng rng(5);
  std::vector<Triplet> t;
  for (int i = 0; i < 120; ++i) {
    t.push_back(Triplet{static_cast<Index>(rng.UniformU64(30)),
                        static_cast<Index>(rng.UniformU64(30)), 1.0});
  }
  auto a = std::move(CsrMatrix::FromTriplets(30, 30, t)).ValueOrDie();
  PageRankOptions options;
  options.tolerance = 1e-14;
  options.max_iterations = 500;
  auto result = PageRank(a, options);
  ASSERT_TRUE(result.ok());
  const auto& pi = result->pi;
  CsrMatrix p = RowStochastic(a);
  std::vector<Scalar> next(pi.size(), 0.0);
  Scalar dangling = 0.0;
  for (Index u = 0; u < 30; ++u) {
    if (p.RowNnz(u) == 0) {
      dangling += pi[static_cast<size_t>(u)];
      continue;
    }
    auto cols = p.RowCols(u);
    auto vals = p.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      next[static_cast<size_t>(cols[i])] +=
          pi[static_cast<size_t>(u)] * vals[i];
    }
  }
  const Scalar teleport = options.teleport;
  for (size_t i = 0; i < next.size(); ++i) {
    next[i] = (1.0 - teleport) * (next[i] + dangling / 30.0) +
              teleport / 30.0;
    EXPECT_NEAR(next[i], pi[i], 1e-8);
  }
}

TEST(PageRankTest, HigherInDegreeMeansHigherRank) {
  // Star: everyone points to node 0.
  std::vector<Triplet> t;
  for (Index i = 1; i < 10; ++i) t.push_back(Triplet{i, 0, 1.0});
  auto a = std::move(CsrMatrix::FromTriplets(10, 10, t)).ValueOrDie();
  auto result = PageRank(a);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < 10; ++i) {
    EXPECT_GT(result->pi[0], result->pi[i]);
  }
}

TEST(PageRankTest, RejectsBadInput) {
  EXPECT_FALSE(PageRank(CsrMatrix::Zero(2, 3)).ok());
  EXPECT_FALSE(PageRank(CsrMatrix::Zero(0, 0)).ok());
  PageRankOptions bad;
  bad.teleport = 1.5;
  EXPECT_FALSE(PageRank(CsrMatrix::Identity(3), bad).ok());
}

TEST(PageRankTest, TeleportMattersOnAsymmetricGraph) {
  std::vector<Triplet> t = {{0, 1, 1.0}, {1, 0, 1.0}, {2, 0, 1.0}};
  auto a = std::move(CsrMatrix::FromTriplets(3, 3, t)).ValueOrDie();
  PageRankOptions low, high;
  low.teleport = 0.01;
  high.teleport = 0.5;
  auto r1 = PageRank(a, low);
  auto r2 = PageRank(a, high);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Node 2 only receives teleport mass; higher teleport, higher share.
  EXPECT_GT(r2->pi[2], r1->pi[2]);
}

}  // namespace
}  // namespace dgc
