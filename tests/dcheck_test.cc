// Behavior of the DGC_DCHECK* debug-check layer in both compile modes.
// tests/CMakeLists.txt builds this file twice: dcheck_on_test defines
// DGC_DCHECK_FORCE_ON and dcheck_off_test defines DGC_DCHECK_FORCE_OFF, so
// both halves of the macros are exercised no matter how the build itself
// was configured. (A third target, dcheck_test, follows the build-wide
// DGC_ENABLE_DCHECKS setting.)
#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/status.h"

namespace dgc {
namespace {

TEST(DcheckTest, PassingChecksAreAlwaysSilent) {
  DGC_DCHECK(true);
  DGC_DCHECK_EQ(1, 1);
  DGC_DCHECK_NE(1, 2);
  DGC_DCHECK_LT(1, 2);
  DGC_DCHECK_LE(1, 1);
  DGC_DCHECK_GT(2, 1);
  DGC_DCHECK_GE(2, 2);
  DGC_DCHECK_OK(Status::OK());
}

TEST(DcheckTest, ConditionEvaluatedOnlyWhenEnabled) {
  int calls = 0;
  auto count_and_pass = [&calls]() {
    ++calls;
    return true;
  };
  DGC_DCHECK(count_and_pass());
#if DGC_DCHECKS_ENABLED
  EXPECT_EQ(calls, 1);
#else
  EXPECT_EQ(calls, 0);
#endif
}

TEST(DcheckTest, StatusExpressionEvaluatedOnlyWhenEnabled) {
  int calls = 0;
  auto count_and_ok = [&calls]() {
    ++calls;
    return Status::OK();
  };
  DGC_DCHECK_OK(count_and_ok());
#if DGC_DCHECKS_ENABLED
  EXPECT_EQ(calls, 1);
#else
  EXPECT_EQ(calls, 0);
#endif
}

TEST(DcheckDeathTest, FailureFatalOnlyWhenEnabled) {
#if DGC_DCHECKS_ENABLED
  EXPECT_DEATH(DGC_DCHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(DGC_DCHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(DGC_DCHECK_OK(Status::Internal("bad structure")),
               "bad structure");
#else
  DGC_DCHECK(false) << "compiled out";
  DGC_DCHECK_EQ(1, 2);
  DGC_DCHECK_OK(Status::Internal("compiled out"));
#endif
}

TEST(DcheckDeathTest, CheckOkIsFatalInEveryBuildMode) {
  DGC_CHECK_OK(Status::OK());
  EXPECT_DEATH(DGC_CHECK_OK(Status::InvalidArgument("always fatal")),
               "always fatal");
}

TEST(DcheckTest, DcheckIsSafeInUnbracedIfElse) {
  // The disabled expansion must not swallow the else branch.
  bool took_else = false;
  if (false)
    DGC_DCHECK(true);
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

}  // namespace
}  // namespace dgc
