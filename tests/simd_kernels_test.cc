// Bit-identity tests for the vectorized hot-path primitives (util/simd.h):
// every primitive is run at the scalar and vector dispatch levels on the
// same inputs and the outputs are compared bitwise (memcmp, not ==, so
// -0.0 vs 0.0 and NaN payloads count as differences). Inputs sweep
// unaligned lengths around every vector-width boundary and include NaNs,
// denormals and signed zeros, because those are exactly where a vector
// shortcut (FTZ, unordered compares, FMA) would diverge from the scalar
// reference. On machines without a vector backend SetLevel(kVector) stays
// scalar and the comparisons pass trivially — the test then still covers
// the scalar reference paths.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "util/radix.h"
#include "util/rng.h"

namespace dgc {
namespace {

// Lengths crossing the 4-lane AVX2 / 2-lane NEON boundaries plus odd tails.
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                           15, 16, 17, 31, 32, 33, 63, 64, 67};

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormal = 4.9406564584124654e-324;  // smallest subnormal

/// Restores the dispatch level after each test so ordering cannot leak.
class SimdKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::SetLevel(simd::Level::kVector); }
};

/// Distinct sorted column indices in [0, dim) — the CSR row invariant the
/// primitives rely on.
std::vector<int32_t> MakeCols(Rng& rng, size_t n, int32_t dim) {
  std::vector<uint64_t> sample = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(dim), static_cast<uint64_t>(n));
  std::vector<int32_t> cols(sample.begin(), sample.end());
  std::sort(cols.begin(), cols.end());
  return cols;
}

/// Values with the full set of awkward citizens: NaN every 7th entry,
/// denormals every 5th, negative zero every 11th, otherwise mixed-sign
/// magnitudes straddling typical thresholds.
std::vector<double> MakeVals(Rng& rng, size_t n) {
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 3) {
      vals[i] = kNaN;
    } else if (i % 5 == 2) {
      vals[i] = (i % 2 == 0) ? kDenormal : -kDenormal;
    } else if (i % 11 == 6) {
      vals[i] = -0.0;
    } else {
      vals[i] = rng.UniformDouble(-2.0, 2.0);
    }
  }
  return vals;
}

template <typename T>
void ExpectBitEqual(const std::vector<T>& a, const std::vector<T>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
        << what;
  }
}

struct ScatterState {
  std::vector<double> accum;
  std::vector<int32_t> marker32;
  std::vector<int64_t> marker64;
  std::vector<int32_t> touched;
  int32_t count = 0;
};

/// Pre-populates a fraction of the columns as already-stamped so both the
/// fresh-touch and the accumulate paths (and the mixed 4-lane case) run.
ScatterState MakeState(Rng& rng, const std::vector<int32_t>& cols, int32_t dim,
                       int32_t stamp32, int64_t stamp64) {
  ScatterState s;
  s.accum.assign(static_cast<size_t>(dim), 0.0);
  s.marker32.assign(static_cast<size_t>(dim), stamp32 - 1);
  s.marker64.assign(static_cast<size_t>(dim), stamp64 - 1);
  s.touched.assign(cols.size() + 8, -1);
  for (int32_t c : cols) {
    if (rng.Bernoulli(0.5)) {
      s.marker32[static_cast<size_t>(c)] = stamp32;
      s.marker64[static_cast<size_t>(c)] = stamp64;
      s.accum[static_cast<size_t>(c)] = rng.UniformDouble(-1.0, 1.0);
    }
  }
  return s;
}

TEST_F(SimdKernelsTest, VectorBackendReportsSupport) {
  // Informational pin: BackendName is one of the three known strings and
  // agrees with VectorSupported().
  const std::string backend = simd::BackendName();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar");
  EXPECT_EQ(backend != "scalar", simd::VectorSupported());
  EXPECT_STREQ("scalar", simd::LevelName(simd::Level::kScalar));
  EXPECT_STREQ("vector", simd::LevelName(simd::Level::kVector));
}

TEST_F(SimdKernelsTest, ScatterAccumulateMatchesScalarBitwise) {
  for (size_t n : kLengths) {
    Rng rng(1000 + n);
    const int32_t dim = static_cast<int32_t>(4 * n + 16);
    const auto cols = MakeCols(rng, n, dim);
    const auto vals = MakeVals(rng, n);
    const int32_t stamp = 42;
    Rng state_rng(7);
    ScatterState scalar_state = MakeState(state_rng, cols, dim, stamp, 0);
    ScatterState vector_state = scalar_state;
    const double av = -1.7;

    simd::SetLevel(simd::Level::kScalar);
    const int32_t scalar_count = simd::ScatterAccumulate(
        av, cols.data(), vals.data(), n, scalar_state.accum.data(),
        scalar_state.marker32.data(), stamp, scalar_state.touched.data());
    simd::SetLevel(simd::Level::kVector);
    const int32_t vector_count = simd::ScatterAccumulate(
        av, cols.data(), vals.data(), n, vector_state.accum.data(),
        vector_state.marker32.data(), stamp, vector_state.touched.data());

    EXPECT_EQ(scalar_count, vector_count) << "n=" << n;
    ExpectBitEqual(scalar_state.accum, vector_state.accum, "accum");
    ExpectBitEqual(scalar_state.marker32, vector_state.marker32, "marker");
    // Insertion order of the touched list is part of the contract.
    ExpectBitEqual(scalar_state.touched, vector_state.touched, "touched");
  }
}

TEST_F(SimdKernelsTest, ScatterAccumulate64MatchesScalarBitwise) {
  for (size_t n : kLengths) {
    Rng rng(2000 + n);
    const int32_t dim = static_cast<int32_t>(4 * n + 16);
    const auto cols = MakeCols(rng, n, dim);
    const auto vals = MakeVals(rng, n);
    // A stamp beyond int32 range pins the 64-bit marker comparisons.
    const int64_t stamp = (int64_t{1} << 40) + 12345;
    Rng state_rng(11);
    ScatterState scalar_state = MakeState(state_rng, cols, dim, 0, stamp);
    ScatterState vector_state = scalar_state;
    const double av = 0.3125;

    simd::SetLevel(simd::Level::kScalar);
    const int32_t scalar_count = simd::ScatterAccumulate64(
        av, cols.data(), vals.data(), n, scalar_state.accum.data(),
        scalar_state.marker64.data(), stamp, scalar_state.touched.data());
    simd::SetLevel(simd::Level::kVector);
    const int32_t vector_count = simd::ScatterAccumulate64(
        av, cols.data(), vals.data(), n, vector_state.accum.data(),
        vector_state.marker64.data(), stamp, vector_state.touched.data());

    EXPECT_EQ(scalar_count, vector_count) << "n=" << n;
    ExpectBitEqual(scalar_state.accum, vector_state.accum, "accum");
    ExpectBitEqual(scalar_state.marker64, vector_state.marker64, "marker");
    ExpectBitEqual(scalar_state.touched, vector_state.touched, "touched");
  }
}

TEST_F(SimdKernelsTest, ScatterAccumulateScaledMatchesScalarBitwise) {
  for (size_t n : kLengths) {
    for (bool with_row_scale : {false, true}) {
      for (bool use_col_scale : {false, true}) {
        Rng rng(3000 + n);
        const int32_t dim = static_cast<int32_t>(4 * n + 16);
        const auto cols = MakeCols(rng, n, dim);
        const auto vals = MakeVals(rng, n);
        std::vector<double> row_scale(static_cast<size_t>(dim));
        for (auto& s : row_scale) s = rng.UniformDouble(0.1, 1.5);
        const int32_t stamp = 7;
        Rng state_rng(13);
        ScatterState scalar_state = MakeState(state_rng, cols, dim, stamp, 0);
        ScatterState vector_state = scalar_state;
        const double av = 1.25;
        const double ck = 0.6180339887;
        const double* rs = with_row_scale ? row_scale.data() : nullptr;

        simd::SetLevel(simd::Level::kScalar);
        const int32_t scalar_count = simd::ScatterAccumulateScaled(
            av, rs, use_col_scale, ck, cols.data(), vals.data(), n,
            scalar_state.accum.data(), scalar_state.marker32.data(), stamp,
            scalar_state.touched.data());
        simd::SetLevel(simd::Level::kVector);
        const int32_t vector_count = simd::ScatterAccumulateScaled(
            av, rs, use_col_scale, ck, cols.data(), vals.data(), n,
            vector_state.accum.data(), vector_state.marker32.data(), stamp,
            vector_state.touched.data());

        EXPECT_EQ(scalar_count, vector_count)
            << "n=" << n << " rs=" << with_row_scale << " cs=" << use_col_scale;
        ExpectBitEqual(scalar_state.accum, vector_state.accum, "accum");
        ExpectBitEqual(scalar_state.marker32, vector_state.marker32, "marker");
        ExpectBitEqual(scalar_state.touched, vector_state.touched, "touched");
      }
    }
  }
}

TEST_F(SimdKernelsTest, GatherPruneMatchesScalarBitwise) {
  for (size_t n : kLengths) {
    for (bool drop_diagonal : {false, true}) {
      Rng rng(4000 + n);
      const int32_t dim = static_cast<int32_t>(4 * n + 16);
      auto touched = MakeCols(rng, n, dim);
      std::vector<double> accum(static_cast<size_t>(dim), 0.0);
      const double threshold = 0.5;
      for (size_t i = 0; i < touched.size(); ++i) {
        const size_t c = static_cast<size_t>(touched[i]);
        switch (i % 6) {
          case 0: accum[c] = 0.75; break;            // kept
          case 1: accum[c] = -0.25; break;           // pruned
          case 2: accum[c] = kNaN; break;            // kept (NaN < t false)
          case 3: accum[c] = kDenormal; break;       // pruned
          case 4: accum[c] = -0.5; break;            // kept (|v| == t)
          case 5: accum[c] = -0.0; break;            // pruned
        }
      }
      // Put the diagonal among the survivors when the row is present.
      const int32_t row = touched.empty() ? 0 : touched[touched.size() / 2];
      if (!touched.empty()) accum[static_cast<size_t>(row)] = 2.0;

      std::vector<int32_t> scalar_cols(n + 8, -1), vector_cols(n + 8, -1);
      std::vector<double> scalar_vals(n + 8, -7.0), vector_vals(n + 8, -7.0);
      int64_t scalar_dropped = 100, vector_dropped = 100;

      simd::SetLevel(simd::Level::kScalar);
      const size_t scalar_kept = simd::GatherPrune(
          touched.data(), n, accum.data(), threshold, drop_diagonal, row,
          scalar_cols.data(), scalar_vals.data(), &scalar_dropped);
      simd::SetLevel(simd::Level::kVector);
      const size_t vector_kept = simd::GatherPrune(
          touched.data(), n, accum.data(), threshold, drop_diagonal, row,
          vector_cols.data(), vector_vals.data(), &vector_dropped);

      EXPECT_EQ(scalar_kept, vector_kept)
          << "n=" << n << " diag=" << drop_diagonal;
      EXPECT_EQ(scalar_dropped, vector_dropped);
      scalar_cols.resize(scalar_kept);
      vector_cols.resize(vector_kept);
      scalar_vals.resize(scalar_kept);
      vector_vals.resize(vector_kept);
      ExpectBitEqual(scalar_cols, vector_cols, "cols");
      ExpectBitEqual(scalar_vals, vector_vals, "vals");
    }
  }
}

TEST_F(SimdKernelsTest, GatherPruneSemanticsPinned) {
  // Direct semantic pins (level-independent): strict < comparison, NaN
  // kept, dropped counts only threshold prunes (not the diagonal).
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kVector}) {
    simd::SetLevel(level);
    const int32_t touched[] = {0, 1, 2, 3, 4};
    const double accum[] = {0.5, 0.499, kNaN, -0.0, 9.0};
    int32_t out_cols[5];
    double out_vals[5];
    int64_t dropped = 0;
    const size_t kept =
        simd::GatherPrune(touched, 5, accum, /*threshold=*/0.5,
                          /*drop_diagonal=*/true, /*row=*/4, out_cols,
                          out_vals, &dropped);
    // 0.5 kept (not < 0.5), 0.499 pruned, NaN kept, -0.0 pruned, 9.0 is
    // the diagonal (dropped but not counted).
    ASSERT_EQ(2u, kept) << simd::LevelName(level);
    EXPECT_EQ(2, dropped);
    EXPECT_EQ(0, out_cols[0]);
    EXPECT_EQ(2, out_cols[1]);
    EXPECT_EQ(0.5, out_vals[0]);
    EXPECT_TRUE(std::isnan(out_vals[1]));
  }
}

TEST_F(SimdKernelsTest, GatherMatchesScalarBitwise) {
  for (size_t n : kLengths) {
    Rng rng(5000 + n);
    const int32_t dim = static_cast<int32_t>(4 * n + 16);
    const auto idx = MakeCols(rng, n, dim);
    std::vector<double> src(static_cast<size_t>(dim));
    for (size_t i = 0; i < src.size(); ++i) {
      src[i] = (i % 9 == 4) ? kNaN : rng.UniformDouble(-3.0, 3.0);
    }
    std::vector<double> scalar_out(n, -1.0), vector_out(n, -1.0);
    simd::SetLevel(simd::Level::kScalar);
    simd::Gather(src.data(), idx.data(), n, scalar_out.data());
    simd::SetLevel(simd::Level::kVector);
    simd::Gather(src.data(), idx.data(), n, vector_out.data());
    ExpectBitEqual(scalar_out, vector_out, "gather");
  }
}

TEST_F(SimdKernelsTest, DivThresholdMaskMatchesScalarBitwise) {
  for (size_t n : kLengths) {
    // sum == 0 exercises inf/NaN quotients wholesale; sum > 0 the normal
    // path with denormal quotients in the mix.
    for (double sum : {0.0, 3.75}) {
      Rng rng(6000 + n);
      auto vals = MakeVals(rng, n);
      std::vector<uint8_t> scalar_mask(n + 1, 0xee), vector_mask(n + 1, 0xee);
      const double threshold = 0.25;
      simd::SetLevel(simd::Level::kScalar);
      simd::DivThresholdMask(vals.data(), n, sum, threshold,
                             scalar_mask.data());
      simd::SetLevel(simd::Level::kVector);
      simd::DivThresholdMask(vals.data(), n, sum, threshold,
                             vector_mask.data());
      ExpectBitEqual(scalar_mask, vector_mask, "mask");
      // NaN quotients must be kept (mask 0) on both paths.
      for (size_t i = 0; i < n; ++i) {
        if (std::isnan(vals[i] / sum)) {
          EXPECT_EQ(0, scalar_mask[i]) << "i=" << i << " sum=" << sum;
        }
      }
    }
  }
}

TEST_F(SimdKernelsTest, AddI64MatchesScalar) {
  for (size_t n : kLengths) {
    Rng rng(7000 + n);
    std::vector<int64_t> src(n), scalar_dst(n), vector_dst(n);
    for (size_t i = 0; i < n; ++i) {
      src[i] = static_cast<int64_t>(rng.Next());
      scalar_dst[i] = static_cast<int64_t>(rng.Next());
      vector_dst[i] = scalar_dst[i];
    }
    simd::SetLevel(simd::Level::kScalar);
    simd::AddI64(scalar_dst.data(), src.data(), n);
    simd::SetLevel(simd::Level::kVector);
    simd::AddI64(vector_dst.data(), src.data(), n);
    ExpectBitEqual(scalar_dst, vector_dst, "addi64");
  }
}

TEST_F(SimdKernelsTest, ProbeHelpersRunAtBothLevels) {
  // The throughput probes are not determinism-sensitive; this only pins
  // that both levels run and produce finite results on sane inputs.
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kVector}) {
    std::vector<double> x(64, 1.0);
    const double sink = simd::MulAddThroughput(x.data(), x.size(), 3, 1.5,
                                               0.25, level);
    EXPECT_TRUE(std::isfinite(sink)) << simd::LevelName(level);
    std::vector<double> a(67, 0.0), b(67, 1.0), c(67, 2.0);
    simd::Triad(a.data(), b.data(), c.data(), 2.0, a.size(), level);
    for (double v : a) EXPECT_EQ(5.0, v);
  }
}

TEST_F(SimdKernelsTest, RadixSortMatchesStdSortOnDistinctKeys) {
  // EmitRow sorts the touched list with RadixSortIndices; CSR rows hold
  // distinct keys, for which LSD radix and std::sort agree exactly.
  for (size_t n : {size_t{0}, size_t{5}, size_t{127}, size_t{128},
                   size_t{1000}, size_t{4096}}) {
    Rng rng(8000 + n);
    const int32_t bound = static_cast<int32_t>(3 * n + 7);
    std::vector<uint64_t> sample = rng.SampleWithoutReplacement(
        static_cast<uint64_t>(bound), static_cast<uint64_t>(n));
    std::vector<int32_t> data(sample.begin(), sample.end());
    std::vector<int32_t> expected = data;
    std::sort(expected.begin(), expected.end());
    std::vector<int32_t> scratch(n);
    RadixSortIndices(data.data(), n, scratch.data(), bound);
    EXPECT_EQ(expected, data) << "n=" << n;
  }
}

TEST_F(SimdKernelsTest, EnvOverrideAndSetLevelInteract) {
  // SetLevel(kScalar) must force the scalar path even on vector hardware;
  // requesting kVector without support stays scalar (no crash, no UB).
  simd::SetLevel(simd::Level::kScalar);
  EXPECT_EQ(simd::Level::kScalar, simd::ActiveLevel());
  simd::SetLevel(simd::Level::kVector);
  EXPECT_EQ(simd::VectorSupported() ? simd::Level::kVector
                                    : simd::Level::kScalar,
            simd::ActiveLevel());
}

// The level DGC_SIMD selects when it doesn't say "scalar": the best the
// hardware supports.
simd::Level BestLevel() {
  return simd::VectorSupported() ? simd::Level::kVector
                                 : simd::Level::kScalar;
}

/// Runs each DGC_SIMD edge-case test against a real environment variable
/// and a cleared dispatch level, then restores both so no state leaks into
/// the bit-identity tests (which assume the kVector default).
class SimdEnvOverrideTest : public ::testing::Test {
 protected:
  void SetEnv(const char* value) { setenv("DGC_SIMD", value, /*overwrite=*/1); }
  void TearDown() override {
    unsetenv("DGC_SIMD");
    simd::ResetLevelForTest();
    simd::SetLevel(simd::Level::kVector);
  }
};

TEST_F(SimdEnvOverrideTest, ParsingTableIsPinned) {
  // LevelFromEnvValue is the single source of truth for the env contract;
  // pin every row of its table.
  EXPECT_EQ(simd::Level::kScalar, simd::LevelFromEnvValue("scalar"));
  EXPECT_EQ(simd::Level::kScalar, simd::LevelFromEnvValue("SCALAR"));
  EXPECT_EQ(simd::Level::kScalar, simd::LevelFromEnvValue("Scalar"));
  EXPECT_EQ(simd::Level::kScalar, simd::LevelFromEnvValue("sCaLaR"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue(nullptr));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue(""));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("vector"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("auto"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("AUTO"));
  // Near-misses must not select scalar: a typo should never silently
  // change which code path a determinism repro runs.
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("scalar "));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue(" scalar"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("scalars"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("scala"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("0"));
  EXPECT_EQ(BestLevel(), simd::LevelFromEnvValue("off"));
}

TEST_F(SimdEnvOverrideTest, ScalarValueForcesScalarThroughActiveLevel) {
  SetEnv("scalar");
  simd::ResetLevelForTest();
  EXPECT_EQ(simd::Level::kScalar, simd::ActiveLevel());
}

TEST_F(SimdEnvOverrideTest, MixedCaseScalarForcesScalarThroughActiveLevel) {
  SetEnv("ScAlAr");
  simd::ResetLevelForTest();
  EXPECT_EQ(simd::Level::kScalar, simd::ActiveLevel());
}

TEST_F(SimdEnvOverrideTest, EmptyValueFallsBackToBestLevel) {
  SetEnv("");
  simd::ResetLevelForTest();
  EXPECT_EQ(BestLevel(), simd::ActiveLevel());
}

TEST_F(SimdEnvOverrideTest, UnrecognizedValueFallsBackToBestLevel) {
  SetEnv("definitely-not-a-level");
  simd::ResetLevelForTest();
  EXPECT_EQ(BestLevel(), simd::ActiveLevel());
}

TEST_F(SimdEnvOverrideTest, SetLevelWinsOverEnvironment) {
  // The env var only seeds the *initial* level; an explicit SetLevel()
  // call afterwards takes precedence until the next reset.
  SetEnv("scalar");
  simd::ResetLevelForTest();
  ASSERT_EQ(simd::Level::kScalar, simd::ActiveLevel());
  simd::SetLevel(simd::Level::kVector);
  EXPECT_EQ(BestLevel(), simd::ActiveLevel());
  // And a reset hands control back to the environment.
  simd::ResetLevelForTest();
  EXPECT_EQ(simd::Level::kScalar, simd::ActiveLevel());
}

TEST_F(SimdEnvOverrideTest, EnvIsReadOncePerInstalledLevel) {
  // Changing DGC_SIMD after the level is installed must not flip the
  // dispatch mid-run — bit-identity of a run depends on one level
  // throughout.
  SetEnv("scalar");
  simd::ResetLevelForTest();
  ASSERT_EQ(simd::Level::kScalar, simd::ActiveLevel());
  SetEnv("vector");
  EXPECT_EQ(simd::Level::kScalar, simd::ActiveLevel());
}

}  // namespace
}  // namespace dgc
