// Golden end-to-end pipeline outputs: the cluster assignments and the
// redacted run report for all four symmetrizations x MLR-MCL on a small
// committed fixture are pinned byte-for-byte under tests/golden/. Any
// change to parsing, kernel arithmetic, iteration order, report schema or
// determinism shows up as a golden diff — deliberate changes regenerate
// with:
//
//   DGC_UPDATE_GOLDEN=1 ./golden_pipeline_test
//
// and commit the rewritten files. Each configuration is additionally run
// at 1, 8 and hardware threads and must match the same golden, which
// pins the thread-count-invariance contract to a concrete artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "cluster/mlr_mcl.h"
#include "cluster/pipeline.h"
#include "core/symmetrize.h"
#include "dynamic/delta.h"
#include "dynamic/incremental.h"
#include "eval/record.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/rng.h"

namespace dgc {
namespace {

const char kFixture[] = DGC_TEST_DATA_DIR "/data/planted_252.txt";
const char kGoldenDir[] = DGC_TEST_DATA_DIR "/golden";

bool UpdateGolden() { return std::getenv("DGC_UPDATE_GOLDEN") != nullptr; }

std::string LabelsToString(const Clustering& clustering) {
  std::ostringstream out;
  for (Index label : clustering.labels()) out << label << '\n';
  return out.str();
}

Result<std::string> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Compares `actual` against the committed golden (or rewrites it under
/// DGC_UPDATE_GOLDEN). Byte-for-byte: goldens are the determinism contract.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(kGoldenDir) + "/" + name;
  if (UpdateGolden()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  auto expected = ReadAll(path);
  ASSERT_TRUE(expected.ok())
      << expected.status().ToString()
      << " (run with DGC_UPDATE_GOLDEN=1 to create goldens)";
  EXPECT_EQ(actual, *expected)
      << "golden mismatch for " << name
      << " (regenerate with DGC_UPDATE_GOLDEN=1 if the change is intended)";
}

std::string MethodSlug(SymmetrizationMethod method) {
  switch (method) {
    case SymmetrizationMethod::kAPlusAT:
      return "a_plus_at";
    case SymmetrizationMethod::kRandomWalk:
      return "random_walk";
    case SymmetrizationMethod::kBibliometric:
      return "bibliometric";
    case SymmetrizationMethod::kDegreeDiscounted:
      return "degree_discounted";
  }
  return "unknown";
}

struct PipelineRun {
  std::string labels;
  std::string report;
};

PipelineRun RunPipeline(const Digraph& g, SymmetrizationMethod method,
                        int threads) {
  MetricsRegistry registry;
  PipelineOptions options;
  options.method = method;
  options.algorithm = ClusterAlgorithm::kMlrMcl;
  options.symmetrization.prune_threshold = 0.001;
  options.mlr_mcl.rmcl.max_iterations = 12;
  options.num_threads = threads;
  options.metrics = &registry;
  auto result = SymmetrizeAndCluster(g, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  PipelineRun run;
  if (result.ok()) {
    run.labels = LabelsToString(result->clustering);
    RecordClusteringMetrics(result->symmetrized, result->clustering,
                            &registry);
  }
  run.report =
      RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
  return run;
}

class GoldenPipelineTest
    : public ::testing::TestWithParam<SymmetrizationMethod> {};

TEST_P(GoldenPipelineTest, LabelsAndReportMatchGoldenAtEveryThreadCount) {
  const SymmetrizationMethod method = GetParam();
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  const PipelineRun serial = RunPipeline(*graph, method, /*threads=*/1);
  const std::string slug = MethodSlug(method);
  CheckGolden(slug + ".labels.txt", serial.labels);
  CheckGolden(slug + ".report.json", serial.report);

  // The same goldens must hold at 8 threads and at hardware concurrency:
  // pinned artifacts make a thread-dependent divergence unmissable.
  for (int threads : {8, 0}) {
    const PipelineRun run = RunPipeline(*graph, method, threads);
    EXPECT_EQ(run.labels, serial.labels) << "threads=" << threads;
    EXPECT_EQ(run.report, serial.report) << "threads=" << threads;
  }
}

// Reorder-enabled runs of the similarity-based methods must reproduce the
// same byte-pinned goldens as the reorder-off runs: the row permutation
// lives entirely inside the similarity products and is undone before the
// product sum, so clustering output is bit-identical (linalg/reorder.h
// contract). Verified against the committed artifact AND the reorder-off
// symmetrized matrix, entry for entry.
TEST_P(GoldenPipelineTest, ReorderedRunsMatchTheSameGoldens) {
  const SymmetrizationMethod method = GetParam();
  if (method != SymmetrizationMethod::kBibliometric &&
      method != SymmetrizationMethod::kDegreeDiscounted) {
    GTEST_SKIP() << "reorder applies to the similarity products only";
  }
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string slug = MethodSlug(method);

  PipelineOptions base;
  base.method = method;
  base.algorithm = ClusterAlgorithm::kMlrMcl;
  base.symmetrization.prune_threshold = 0.001;
  base.mlr_mcl.rmcl.max_iterations = 12;
  auto baseline = SymmetrizeAndCluster(*graph, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (ReorderMethod reorder : {ReorderMethod::kDegree, ReorderMethod::kRcm}) {
    SCOPED_TRACE(ReorderMethodName(reorder));
    PipelineOptions options = base;
    options.reorder = reorder;
    auto result = SymmetrizeAndCluster(*graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckGolden(slug + ".labels.txt", LabelsToString(result->clustering));
    const CsrMatrix& expected = baseline->symmetrized.adjacency();
    const CsrMatrix& actual = result->symmetrized.adjacency();
    ASSERT_EQ(actual.nnz(), expected.nnz());
    EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                           expected.row_ptr().begin()));
    EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                           expected.col_idx().begin()));
    // Bit-level value comparison via memcmp semantics: std::equal on
    // doubles would treat -0.0 == 0.0 as equal, which is weaker than the
    // contract.
    const auto av = actual.values();
    const auto ev = expected.values();
    EXPECT_EQ(0, std::memcmp(av.data(), ev.data(), av.size() * sizeof(Scalar)));
  }
}

// Out-of-core tiled runs must reproduce the same byte-pinned goldens as
// the in-memory runs: tiling only changes the peak memory footprint, never
// the result (docs/OUT_OF_CORE.md). kForce + tile_rows=32 splits the
// 252-vertex fixture into 8 row blocks, exercising the spool + stitch
// path; every thread count must match the committed artifact AND the
// in-memory symmetrized matrix bit for bit. The non-similarity methods
// run too — tiling must be a no-op for them, not an error.
TEST_P(GoldenPipelineTest, OutOfCoreTiledRunsMatchTheSameGoldens) {
  const SymmetrizationMethod method = GetParam();
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string slug = MethodSlug(method);

  PipelineOptions base;
  base.method = method;
  base.algorithm = ClusterAlgorithm::kMlrMcl;
  base.symmetrization.prune_threshold = 0.001;
  base.mlr_mcl.rmcl.max_iterations = 12;
  auto baseline = SymmetrizeAndCluster(*graph, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (int threads : {1, 8, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PipelineOptions options = base;
    options.num_threads = threads;
    options.symmetrization.out_of_core = OutOfCoreMode::kForce;
    options.symmetrization.tile_rows = 32;
    auto result = SymmetrizeAndCluster(*graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckGolden(slug + ".labels.txt", LabelsToString(result->clustering));
    const CsrMatrix& expected = baseline->symmetrized.adjacency();
    const CsrMatrix& actual = result->symmetrized.adjacency();
    ASSERT_EQ(actual.nnz(), expected.nnz());
    EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                           expected.row_ptr().begin()));
    EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                           expected.col_idx().begin()));
    const auto av = actual.values();
    const auto ev = expected.values();
    EXPECT_EQ(0, std::memcmp(av.data(), ev.data(), av.size() * sizeof(Scalar)));
  }
}

bool HasArc(const CsrMatrix& a, Index u, Index v) {
  auto cols = a.RowCols(u);
  return std::binary_search(cols.begin(), cols.end(), v);
}

/// Deterministic delta batch derived from the current adjacency: two
/// deletes of existing arcs and two inserts of fresh arcs, seeded by the
/// batch index so the schedule is reproducible at any thread count (the
/// adjacency bytes it samples from are themselves thread-invariant).
EdgeDeltaBatch MakeReplayBatch(const CsrMatrix& a, uint64_t salt) {
  Rng rng(UINT64_C(0x601dfade) ^ salt);
  EdgeDeltaBatch batch;
  const Index n = a.rows();
  std::set<std::pair<Index, Index>> used;
  while (batch.deletes.size() < 2) {
    const Index u = static_cast<Index>(rng.UniformU64(n));
    auto cols = a.RowCols(u);
    if (cols.empty()) continue;
    const Index v = cols[rng.UniformU64(cols.size())];
    if (!used.insert({u, v}).second) continue;
    batch.deletes.push_back(EdgeKey{u, v});
  }
  while (batch.inserts.size() < 2) {
    const Index u = static_cast<Index>(rng.UniformU64(n));
    const Index v = static_cast<Index>(rng.UniformU64(n));
    if (u == v || HasArc(a, u, v)) continue;
    if (!used.insert({u, v}).second) continue;
    batch.inserts.push_back(
        Edge{u, v, 1.0 + 0.25 * static_cast<double>(rng.UniformU64(4))});
  }
  return batch;
}

// Batched-update replay (docs/DYNAMIC.md): a deterministic 4-batch delta
// schedule streamed through IncrementalSymmetrizer must land on a
// symmetrized matrix byte-identical to re-symmetrizing the updated graph
// from scratch, and the post-update MLR-MCL labels are pinned to a
// committed golden (regenerate with DGC_UPDATE_GOLDEN=1). Run at 1, 8
// and hardware threads: the updated labels carry the same
// thread-invariance contract as the static pipeline goldens above.
TEST_P(GoldenPipelineTest, BatchedUpdateReplayLabelsMatchGolden) {
  const SymmetrizationMethod method = GetParam();
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string slug = MethodSlug(method);

  std::string serial_labels;
  for (int threads : {1, 8, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SymmetrizationOptions sym;
    sym.prune_threshold = 0.001;
    sym.num_threads = threads;
    auto inc = IncrementalSymmetrizer::Create(*graph, method, sym);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    for (uint64_t b = 0; b < 4; ++b) {
      EdgeDeltaBatch batch = MakeReplayBatch(inc->graph().adjacency(), b);
      Status applied = inc->ApplyDelta(batch);
      ASSERT_TRUE(applied.ok()) << "batch " << b << ": " << applied.ToString();
    }

    // The streamed result must be bit-identical to a from-scratch
    // symmetrization of the updated digraph before any label pinning.
    auto updated = inc->graph().ToDigraph();
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    auto scratch = Symmetrize(*updated, method, sym);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    const CsrMatrix& got = inc->symmetrized().adjacency();
    const CsrMatrix& want = scratch->adjacency();
    ASSERT_EQ(got.nnz(), want.nnz());
    EXPECT_EQ(0, std::memcmp(got.row_ptr().data(), want.row_ptr().data(),
                             got.row_ptr().size_bytes()));
    EXPECT_EQ(0, std::memcmp(got.col_idx().data(), want.col_idx().data(),
                             got.col_idx().size_bytes()));
    EXPECT_EQ(0, std::memcmp(got.values().data(), want.values().data(),
                             got.values().size_bytes()));

    MlrMclOptions mlr;
    mlr.rmcl.max_iterations = 12;
    mlr.rmcl.num_threads = threads;
    auto clustering = MlrMcl(inc->symmetrized(), mlr);
    ASSERT_TRUE(clustering.ok()) << clustering.status().ToString();
    const std::string labels = LabelsToString(*clustering);
    if (threads == 1) {
      serial_labels = labels;
      CheckGolden(slug + ".update.labels.txt", labels);
    } else {
      EXPECT_EQ(labels, serial_labels);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, GoldenPipelineTest,
    ::testing::Values(SymmetrizationMethod::kAPlusAT,
                      SymmetrizationMethod::kRandomWalk,
                      SymmetrizationMethod::kBibliometric,
                      SymmetrizationMethod::kDegreeDiscounted),
    [](const ::testing::TestParamInfo<SymmetrizationMethod>& info) {
      switch (info.param) {
        case SymmetrizationMethod::kAPlusAT:
          return "APlusAT";
        case SymmetrizationMethod::kRandomWalk:
          return "RandomWalk";
        case SymmetrizationMethod::kBibliometric:
          return "Bibliometric";
        case SymmetrizationMethod::kDegreeDiscounted:
          return "DegreeDiscounted";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace dgc
