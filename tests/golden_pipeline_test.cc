// Golden end-to-end pipeline outputs: the cluster assignments and the
// redacted run report for all four symmetrizations x MLR-MCL on a small
// committed fixture are pinned byte-for-byte under tests/golden/. Any
// change to parsing, kernel arithmetic, iteration order, report schema or
// determinism shows up as a golden diff — deliberate changes regenerate
// with:
//
//   DGC_UPDATE_GOLDEN=1 ./golden_pipeline_test
//
// and commit the rewritten files. Each configuration is additionally run
// at 1, 8 and hardware threads and must match the same golden, which
// pins the thread-count-invariance contract to a concrete artifact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/pipeline.h"
#include "eval/record.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace dgc {
namespace {

const char kFixture[] = DGC_TEST_DATA_DIR "/data/planted_252.txt";
const char kGoldenDir[] = DGC_TEST_DATA_DIR "/golden";

bool UpdateGolden() { return std::getenv("DGC_UPDATE_GOLDEN") != nullptr; }

std::string LabelsToString(const Clustering& clustering) {
  std::ostringstream out;
  for (Index label : clustering.labels()) out << label << '\n';
  return out.str();
}

Result<std::string> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Compares `actual` against the committed golden (or rewrites it under
/// DGC_UPDATE_GOLDEN). Byte-for-byte: goldens are the determinism contract.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(kGoldenDir) + "/" + name;
  if (UpdateGolden()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  auto expected = ReadAll(path);
  ASSERT_TRUE(expected.ok())
      << expected.status().ToString()
      << " (run with DGC_UPDATE_GOLDEN=1 to create goldens)";
  EXPECT_EQ(actual, *expected)
      << "golden mismatch for " << name
      << " (regenerate with DGC_UPDATE_GOLDEN=1 if the change is intended)";
}

std::string MethodSlug(SymmetrizationMethod method) {
  switch (method) {
    case SymmetrizationMethod::kAPlusAT:
      return "a_plus_at";
    case SymmetrizationMethod::kRandomWalk:
      return "random_walk";
    case SymmetrizationMethod::kBibliometric:
      return "bibliometric";
    case SymmetrizationMethod::kDegreeDiscounted:
      return "degree_discounted";
  }
  return "unknown";
}

struct PipelineRun {
  std::string labels;
  std::string report;
};

PipelineRun RunPipeline(const Digraph& g, SymmetrizationMethod method,
                        int threads) {
  MetricsRegistry registry;
  PipelineOptions options;
  options.method = method;
  options.algorithm = ClusterAlgorithm::kMlrMcl;
  options.symmetrization.prune_threshold = 0.001;
  options.mlr_mcl.rmcl.max_iterations = 12;
  options.num_threads = threads;
  options.metrics = &registry;
  auto result = SymmetrizeAndCluster(g, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  PipelineRun run;
  if (result.ok()) {
    run.labels = LabelsToString(result->clustering);
    RecordClusteringMetrics(result->symmetrized, result->clustering,
                            &registry);
  }
  run.report =
      RunReportToJson(registry, RunReportOptions{/*redact_timings=*/true});
  return run;
}

class GoldenPipelineTest
    : public ::testing::TestWithParam<SymmetrizationMethod> {};

TEST_P(GoldenPipelineTest, LabelsAndReportMatchGoldenAtEveryThreadCount) {
  const SymmetrizationMethod method = GetParam();
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  const PipelineRun serial = RunPipeline(*graph, method, /*threads=*/1);
  const std::string slug = MethodSlug(method);
  CheckGolden(slug + ".labels.txt", serial.labels);
  CheckGolden(slug + ".report.json", serial.report);

  // The same goldens must hold at 8 threads and at hardware concurrency:
  // pinned artifacts make a thread-dependent divergence unmissable.
  for (int threads : {8, 0}) {
    const PipelineRun run = RunPipeline(*graph, method, threads);
    EXPECT_EQ(run.labels, serial.labels) << "threads=" << threads;
    EXPECT_EQ(run.report, serial.report) << "threads=" << threads;
  }
}

// Reorder-enabled runs of the similarity-based methods must reproduce the
// same byte-pinned goldens as the reorder-off runs: the row permutation
// lives entirely inside the similarity products and is undone before the
// product sum, so clustering output is bit-identical (linalg/reorder.h
// contract). Verified against the committed artifact AND the reorder-off
// symmetrized matrix, entry for entry.
TEST_P(GoldenPipelineTest, ReorderedRunsMatchTheSameGoldens) {
  const SymmetrizationMethod method = GetParam();
  if (method != SymmetrizationMethod::kBibliometric &&
      method != SymmetrizationMethod::kDegreeDiscounted) {
    GTEST_SKIP() << "reorder applies to the similarity products only";
  }
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string slug = MethodSlug(method);

  PipelineOptions base;
  base.method = method;
  base.algorithm = ClusterAlgorithm::kMlrMcl;
  base.symmetrization.prune_threshold = 0.001;
  base.mlr_mcl.rmcl.max_iterations = 12;
  auto baseline = SymmetrizeAndCluster(*graph, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (ReorderMethod reorder : {ReorderMethod::kDegree, ReorderMethod::kRcm}) {
    SCOPED_TRACE(ReorderMethodName(reorder));
    PipelineOptions options = base;
    options.reorder = reorder;
    auto result = SymmetrizeAndCluster(*graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckGolden(slug + ".labels.txt", LabelsToString(result->clustering));
    const CsrMatrix& expected = baseline->symmetrized.adjacency();
    const CsrMatrix& actual = result->symmetrized.adjacency();
    ASSERT_EQ(actual.nnz(), expected.nnz());
    EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                           expected.row_ptr().begin()));
    EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                           expected.col_idx().begin()));
    // Bit-level value comparison via memcmp semantics: std::equal on
    // doubles would treat -0.0 == 0.0 as equal, which is weaker than the
    // contract.
    const auto av = actual.values();
    const auto ev = expected.values();
    EXPECT_EQ(0, std::memcmp(av.data(), ev.data(), av.size() * sizeof(Scalar)));
  }
}

// Out-of-core tiled runs must reproduce the same byte-pinned goldens as
// the in-memory runs: tiling only changes the peak memory footprint, never
// the result (docs/OUT_OF_CORE.md). kForce + tile_rows=32 splits the
// 252-vertex fixture into 8 row blocks, exercising the spool + stitch
// path; every thread count must match the committed artifact AND the
// in-memory symmetrized matrix bit for bit. The non-similarity methods
// run too — tiling must be a no-op for them, not an error.
TEST_P(GoldenPipelineTest, OutOfCoreTiledRunsMatchTheSameGoldens) {
  const SymmetrizationMethod method = GetParam();
  auto graph = ReadEdgeList(kFixture);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string slug = MethodSlug(method);

  PipelineOptions base;
  base.method = method;
  base.algorithm = ClusterAlgorithm::kMlrMcl;
  base.symmetrization.prune_threshold = 0.001;
  base.mlr_mcl.rmcl.max_iterations = 12;
  auto baseline = SymmetrizeAndCluster(*graph, base);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (int threads : {1, 8, 0}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PipelineOptions options = base;
    options.num_threads = threads;
    options.symmetrization.out_of_core = OutOfCoreMode::kForce;
    options.symmetrization.tile_rows = 32;
    auto result = SymmetrizeAndCluster(*graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CheckGolden(slug + ".labels.txt", LabelsToString(result->clustering));
    const CsrMatrix& expected = baseline->symmetrized.adjacency();
    const CsrMatrix& actual = result->symmetrized.adjacency();
    ASSERT_EQ(actual.nnz(), expected.nnz());
    EXPECT_TRUE(std::equal(actual.row_ptr().begin(), actual.row_ptr().end(),
                           expected.row_ptr().begin()));
    EXPECT_TRUE(std::equal(actual.col_idx().begin(), actual.col_idx().end(),
                           expected.col_idx().begin()));
    const auto av = actual.values();
    const auto ev = expected.values();
    EXPECT_EQ(0, std::memcmp(av.data(), ev.data(), av.size() * sizeof(Scalar)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, GoldenPipelineTest,
    ::testing::Values(SymmetrizationMethod::kAPlusAT,
                      SymmetrizationMethod::kRandomWalk,
                      SymmetrizationMethod::kBibliometric,
                      SymmetrizationMethod::kDegreeDiscounted),
    [](const ::testing::TestParamInfo<SymmetrizationMethod>& info) {
      switch (info.param) {
        case SymmetrizationMethod::kAPlusAT:
          return "APlusAT";
        case SymmetrizationMethod::kRandomWalk:
          return "RandomWalk";
        case SymmetrizationMethod::kBibliometric:
          return "Bibliometric";
        case SymmetrizationMethod::kDegreeDiscounted:
          return "DegreeDiscounted";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace dgc
