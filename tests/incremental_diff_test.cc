// Differential stream-vs-scratch harness for the incremental symmetrizer
// (src/dynamic/incremental.h): randomized insert/delete schedules over
// seeded R-MAT and LFR graphs, applied in batches, asserting after EVERY
// batch that the incrementally maintained symmetrized matrix is
// byte-identical (memcmp on the CSR arrays) to a from-scratch
// symmetrization of an independently tracked edge set — for all four
// methods and thread counts {1, 8, 0}.
#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/symmetrize.h"
#include "dynamic/delta.h"
#include "dynamic/incremental.h"
#include "gen/lfr.h"
#include "gen/rmat.h"
#include "graph/digraph.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace dgc {
namespace {

using EdgeMap = std::map<std::pair<Index, Index>, Scalar>;

void ExpectSameBytes(const CsrMatrix& got, const CsrMatrix& want,
                     const std::string& context) {
  ASSERT_EQ(got.rows(), want.rows()) << context;
  ASSERT_EQ(got.cols(), want.cols()) << context;
  ASSERT_EQ(got.nnz(), want.nnz()) << context;
  const auto gp = got.row_ptr();
  const auto wp = want.row_ptr();
  const auto gc = got.col_idx();
  const auto wc = want.col_idx();
  const auto gv = got.values();
  const auto wv = want.values();
  EXPECT_EQ(0, std::memcmp(gp.data(), wp.data(), gp.size_bytes()))
      << context << ": row_ptr differs";
  EXPECT_EQ(0, std::memcmp(gc.data(), wc.data(), gc.size_bytes()))
      << context << ": col_idx differs";
  EXPECT_EQ(0, std::memcmp(gv.data(), wv.data(), gv.size_bytes()))
      << context << ": value bit patterns differ";
}

EdgeMap EdgeMapOf(const Digraph& g) {
  EdgeMap edges;
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < a.rows(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      edges.emplace(std::make_pair(u, cols[i]), vals[i]);
    }
  }
  return edges;
}

Digraph DigraphOf(Index n, const EdgeMap& edges) {
  std::vector<Edge> list;
  list.reserve(edges.size());
  for (const auto& [key, w] : edges) {
    list.push_back(Edge{key.first, key.second, w});
  }
  auto g = Digraph::FromEdges(n, list);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

/// One randomized batch against the tracked edge map: deletes sampled from
/// the current edges, inserts of currently-absent pairs, key-disjoint
/// within the batch (the validation contract).
EdgeDeltaBatch MakeBatch(Index n, const EdgeMap& edges, Rng& rng,
                         int num_inserts, int num_deletes) {
  EdgeDeltaBatch batch;
  std::set<std::pair<Index, Index>> used;
  std::vector<std::pair<Index, Index>> keys;
  keys.reserve(edges.size());
  for (const auto& [key, w] : edges) keys.push_back(key);
  for (int i = 0; i < num_deletes && !keys.empty(); ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto& key =
          keys[static_cast<size_t>(rng.UniformU64(keys.size()))];
      if (used.count(key) != 0) continue;
      used.insert(key);
      batch.deletes.push_back(EdgeKey{key.first, key.second});
      break;
    }
  }
  for (int i = 0; i < num_inserts; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const Index u =
          static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
      const Index v =
          static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
      const auto key = std::make_pair(u, v);
      if (edges.count(key) != 0 || used.count(key) != 0) continue;
      used.insert(key);
      batch.inserts.push_back(Edge{u, v, 1.0 + rng.UniformDouble()});
      break;
    }
  }
  return batch;
}

void ApplyToMap(const EdgeDeltaBatch& batch, EdgeMap* edges) {
  for (const EdgeKey& e : batch.deletes) {
    edges->erase(std::make_pair(e.src, e.dst));
  }
  for (const Edge& e : batch.inserts) {
    (*edges)[std::make_pair(e.src, e.dst)] = e.weight;
  }
}

struct DiffCase {
  SymmetrizationMethod method;
  int num_threads;
};

std::string DiffCaseName(const testing::TestParamInfo<DiffCase>& info) {
  std::string name(SymmetrizationMethodName(info.param.method));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_t" + std::to_string(info.param.num_threads);
}

class IncrementalDiffTest : public testing::TestWithParam<DiffCase> {};

void RunSchedule(const Digraph& start, SymmetrizationMethod method,
                 int num_threads, uint64_t seed, int num_batches) {
  SymmetrizationOptions options;
  options.prune_threshold =
      (method == SymmetrizationMethod::kBibliometric ||
       method == SymmetrizationMethod::kDegreeDiscounted)
          ? 1e-3
          : 0.0;
  options.num_threads = num_threads;

  auto inc = IncrementalSymmetrizer::Create(start, method, options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  const Index n = start.NumVertices();
  EdgeMap edges = EdgeMapOf(start);
  Rng rng(seed);
  for (int b = 0; b < num_batches; ++b) {
    const int inserts = 1 + static_cast<int>(rng.UniformU64(12));
    const int deletes = static_cast<int>(rng.UniformU64(12));
    const EdgeDeltaBatch batch = MakeBatch(n, edges, rng, inserts, deletes);
    ASSERT_TRUE(inc->ApplyDelta(batch).ok());
    ApplyToMap(batch, &edges);

    const Digraph scratch_graph = DigraphOf(n, edges);
    auto scratch = Symmetrize(scratch_graph, method, options);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    ExpectSameBytes(inc->symmetrized().adjacency(), scratch->adjacency(),
                    "batch " + std::to_string(b));
    if (testing::Test::HasFailure()) return;  // first divergence is enough

    const IncrementalStats& stats = inc->last_stats();
    EXPECT_EQ(stats.rows_total, n);
    EXPECT_GE(stats.rows_recomputed, 0);
    EXPECT_LE(stats.rows_recomputed, n);
  }
}

TEST_P(IncrementalDiffTest, RmatScheduleMatchesScratch) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.edge_factor = 6.0;
  rmat.seed = 77;
  auto data = GenerateRmat(rmat);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  RunSchedule(data->graph, GetParam().method, GetParam().num_threads,
              /*seed=*/101 + static_cast<uint64_t>(GetParam().num_threads),
              /*num_batches=*/20);
}

TEST_P(IncrementalDiffTest, LfrScheduleMatchesScratch) {
  LfrOptions lfr;
  lfr.num_vertices = 300;
  lfr.min_degree = 3;
  lfr.max_degree = 20;
  lfr.min_community = 15;
  lfr.max_community = 60;
  lfr.style = LfrCommunityStyle::kCocitation;
  lfr.seed = 42;
  auto data = GenerateLfr(lfr);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  RunSchedule(data->graph, GetParam().method, GetParam().num_threads,
              /*seed=*/202 + static_cast<uint64_t>(GetParam().num_threads),
              /*num_batches=*/20);
}

/// Self-loop symmetrizations exercise the A+I frontier variant.
TEST_P(IncrementalDiffTest, SelfLoopOptionsMatchScratch) {
  RmatOptions rmat;
  rmat.scale = 7;
  rmat.edge_factor = 5.0;
  rmat.seed = 9;
  auto data = GenerateRmat(rmat);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  SymmetrizationOptions options;
  options.add_self_loops = true;
  options.num_threads = GetParam().num_threads;
  auto inc =
      IncrementalSymmetrizer::Create(data->graph, GetParam().method, options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();

  const Index n = data->graph.NumVertices();
  EdgeMap edges = EdgeMapOf(data->graph);
  Rng rng(303);
  for (int b = 0; b < 6; ++b) {
    const EdgeDeltaBatch batch = MakeBatch(n, edges, rng, 6, 4);
    ASSERT_TRUE(inc->ApplyDelta(batch).ok());
    ApplyToMap(batch, &edges);
    auto scratch =
        Symmetrize(DigraphOf(n, edges), GetParam().method, options);
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    ExpectSameBytes(inc->symmetrized().adjacency(), scratch->adjacency(),
                    "self-loop batch " + std::to_string(b));
    if (testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllThreads, IncrementalDiffTest,
    testing::Values(
        DiffCase{SymmetrizationMethod::kAPlusAT, 1},
        DiffCase{SymmetrizationMethod::kAPlusAT, 8},
        DiffCase{SymmetrizationMethod::kAPlusAT, 0},
        DiffCase{SymmetrizationMethod::kRandomWalk, 1},
        DiffCase{SymmetrizationMethod::kRandomWalk, 8},
        DiffCase{SymmetrizationMethod::kRandomWalk, 0},
        DiffCase{SymmetrizationMethod::kBibliometric, 1},
        DiffCase{SymmetrizationMethod::kBibliometric, 8},
        DiffCase{SymmetrizationMethod::kBibliometric, 0},
        DiffCase{SymmetrizationMethod::kDegreeDiscounted, 1},
        DiffCase{SymmetrizationMethod::kDegreeDiscounted, 8},
        DiffCase{SymmetrizationMethod::kDegreeDiscounted, 0}),
    DiffCaseName);

/// The acceptance criterion for incrementality itself: a ~1% edge batch on
/// a sparse graph must recompute well under 30% of the rows (similarity
/// methods; A+Aᵀ touches even fewer). The affected-row fraction scales
/// with avg-degree^2 for degree-discounted (its discount perturbations
/// propagate two hops), so the bound is meaningful on degree-bounded
/// graphs — LFR here — and saturates on hub-heavy ones by design.
TEST(IncrementalLocalityTest, SmallBatchRecomputesFewRows) {
  LfrOptions lfr;
  lfr.num_vertices = 4096;
  lfr.min_degree = 2;
  lfr.max_degree = 5;
  lfr.mixing = 0.1;
  lfr.min_community = 20;
  lfr.max_community = 100;
  lfr.seed = 19;
  auto data = GenerateLfr(lfr);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  const Index n = data->graph.NumVertices();
  const int64_t num_edges = data->graph.NumEdges();

  for (SymmetrizationMethod method :
       {SymmetrizationMethod::kAPlusAT, SymmetrizationMethod::kBibliometric,
        SymmetrizationMethod::kDegreeDiscounted}) {
    SymmetrizationOptions options;
    auto inc = IncrementalSymmetrizer::Create(data->graph, method, options);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();

    EdgeMap edges = EdgeMapOf(data->graph);
    Rng rng(7);
    const int batch_ops = static_cast<int>(num_edges / 100);  // ~1%
    const EdgeDeltaBatch batch =
        MakeBatch(n, edges, rng, batch_ops / 2, batch_ops / 2);
    ASSERT_TRUE(inc->ApplyDelta(batch).ok());
    const IncrementalStats& stats = inc->last_stats();
    EXPECT_EQ(stats.rows_total, n);
    EXPECT_LT(stats.rows_recomputed, (3 * static_cast<int64_t>(n)) / 10)
        << SymmetrizationMethodName(method) << ": " << stats.rows_recomputed
        << " of " << n << " rows recomputed for a 1% batch";
  }
}

}  // namespace
}  // namespace dgc
