#include <gtest/gtest.h>

#include "graph/clustering.h"
#include "graph/components.h"
#include "graph/digraph.h"
#include "graph/graph_stats.h"
#include "graph/ugraph.h"

namespace dgc {
namespace {

Digraph MakeDigraph(Index n, std::vector<Edge> edges) {
  auto g = Digraph::FromEdges(n, edges);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).ValueOrDie();
}

TEST(DigraphTest, BasicConstruction) {
  Digraph g = MakeDigraph(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_EQ(g.NumVertices(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DigraphTest, ParallelEdgesMerge) {
  Digraph g = MakeDigraph(2, {{0, 1, 1.0}, {0, 1, 2.0}});
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_DOUBLE_EQ(g.adjacency().At(0, 1), 3.0);
}

TEST(DigraphTest, Degrees) {
  Digraph g = MakeDigraph(3, {{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0}});
  auto out = g.OutDegrees();
  auto in = g.InDegrees();
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(in[2], 2);
  EXPECT_EQ(in[0], 0);
}

TEST(DigraphTest, FractionSymmetricEdges) {
  // 0<->1 symmetric (2 edges), 0->2 not: 2/3.
  Digraph g = MakeDigraph(3, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 1.0}});
  EXPECT_NEAR(g.FractionSymmetricEdges(), 2.0 / 3.0, 1e-12);
}

TEST(DigraphTest, FractionSymmetricEmptyGraph) {
  Digraph g = MakeDigraph(3, {});
  EXPECT_DOUBLE_EQ(g.FractionSymmetricEdges(), 0.0);
}

TEST(DigraphTest, Reversed) {
  Digraph g = MakeDigraph(3, {{0, 1, 5.0}});
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_FALSE(r.HasEdge(0, 1));
}

TEST(DigraphTest, FromAdjacencyRejectsNonSquare) {
  EXPECT_FALSE(Digraph::FromAdjacency(CsrMatrix::Zero(2, 3)).ok());
}

TEST(UGraphTest, FromEdgesSymmetric) {
  auto g = UGraph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2);
  EXPECT_EQ(g->NumArcs(), 4);
  EXPECT_DOUBLE_EQ(g->adjacency().At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g->adjacency().At(1, 0), 2.0);
}

TEST(UGraphTest, FromEdgesDropsSelfLoops) {
  auto g = UGraph::FromEdges(2, {{0, 0, 5.0}, {0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1);
}

TEST(UGraphTest, RejectsAsymmetricAdjacency) {
  auto bad = CsrMatrix::FromTriplets(2, 2, {{0, 1, 1.0}});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(
      UGraph::FromSymmetricAdjacency(std::move(bad).ValueOrDie()).ok());
}

TEST(UGraphTest, VolumeAndDegrees) {
  auto g = UGraph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  ASSERT_TRUE(g.ok());
  auto degrees = g->WeightedDegrees();
  EXPECT_DOUBLE_EQ(degrees[1], 5.0);
  EXPECT_DOUBLE_EQ(g->Volume(), 10.0);  // 2 * sum of edge weights
}

TEST(UGraphTest, Singletons) {
  auto g = UGraph::FromEdges(4, {{0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumSingletons(), 2);
}

TEST(ClusteringTest, CompactRemapsLabels) {
  Clustering c(std::vector<Index>{7, 7, 3, -1, 3, 9});
  EXPECT_EQ(c.NumClusters(), 3);
  EXPECT_EQ(c.Compact(), 3);
  EXPECT_EQ(c.LabelOf(0), 0);
  EXPECT_EQ(c.LabelOf(2), 1);
  EXPECT_EQ(c.LabelOf(3), Clustering::kUnassigned);
  EXPECT_EQ(c.LabelOf(5), 2);
}

TEST(ClusteringTest, ToClustersAndSizes) {
  Clustering c(std::vector<Index>{0, 1, 0, -1});
  auto clusters = c.ToClusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 2u);
  EXPECT_EQ(clusters[1].size(), 1u);
  auto sizes = c.ClusterSizes();
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 1);
}

TEST(ClusteringTest, AssignSingletons) {
  Clustering c(std::vector<Index>{0, -1, -1});
  c.AssignSingletons();
  EXPECT_EQ(c.NumClusters(), 3);
  EXPECT_NE(c.LabelOf(1), c.LabelOf(2));
}

TEST(GroundTruthTest, RemoveSmallCategories) {
  GroundTruth truth;
  truth.categories = {{0, 1, 2}, {3}, {4, 5}};
  truth.RemoveSmallCategories(2);
  EXPECT_EQ(truth.NumCategories(), 2);
  EXPECT_EQ(truth.NumMemberships(), 5);
}

TEST(ComponentsTest, FindsComponents) {
  auto g = UGraph::FromEdges(6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}});
  ASSERT_TRUE(g.ok());
  auto comps = ConnectedComponents(*g);
  EXPECT_EQ(NumComponents(comps), 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comps[0], comps[2]);
  EXPECT_NE(comps[0], comps[3]);
  EXPECT_NE(comps[3], comps[5]);
}

TEST(ComponentsTest, WeaklyConnectedIgnoresDirection) {
  Digraph g = MakeDigraph(4, {{0, 1, 1.0}, {2, 1, 1.0}});
  auto comps = WeaklyConnectedComponents(g);
  EXPECT_EQ(NumComponents(comps), 2);
  EXPECT_EQ(comps[0], comps[2]);
}

TEST(GraphStatsTest, DatasetStats) {
  Digraph g = MakeDigraph(3, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 1.0}});
  GroundTruth truth;
  truth.categories = {{0, 1}, {2}};
  DatasetStats stats = ComputeDatasetStats("toy", g, &truth);
  EXPECT_EQ(stats.vertices, 3);
  EXPECT_EQ(stats.edges, 3);
  EXPECT_NEAR(stats.percent_symmetric, 66.67, 0.1);
  EXPECT_EQ(stats.num_categories, 2);
}

TEST(GraphStatsTest, DegreeHistogramBuckets) {
  // Degrees: 0:3 (star center), 1,2,3: 1 each... build a star of 4 nodes.
  auto g = UGraph::FromEdges(5, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  DegreeHistogram h = ComputeDegreeHistogram(*g);
  EXPECT_EQ(h.zero_count, 1);    // node 4 isolated
  EXPECT_EQ(h.max_degree, 3);
  ASSERT_GE(h.bucket_counts.size(), 2u);
  EXPECT_EQ(h.bucket_counts[0], 3);  // degree 1: nodes 1,2,3
  EXPECT_EQ(h.bucket_counts[1], 1);  // degree 2-3: node 0
  EXPECT_NEAR(h.mean_degree, 6.0 / 5.0, 1e-12);
  std::string text = FormatDegreeHistogram(h);
  EXPECT_NE(text.find("1-1,3"), std::string::npos);
}

}  // namespace
}  // namespace dgc
