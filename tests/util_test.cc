#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "linalg/vector_ops.h"
#include "util/options.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dgc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotConverged), "NotConverged");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  DGC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsOutOfRange());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  DGC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 5);
  Result<int> err = Status::NotFound("x");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
  EXPECT_EQ(err.ValueOr(42), 42);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoublePositive(4).ValueOrDie(), 8);
  EXPECT_FALSE(DoublePositive(-1).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformU64(17);
    EXPECT_LT(v, 17u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sum2 / trials, 1.0, 0.05);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(21);
  ZipfDistribution zipf(100, 1.5);
  int64_t ones = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate under s = 1.5 (its mass is ~38%).
  EXPECT_GT(ones, trials / 4);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(22);
  ZipfDistribution zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(rng)];
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(counts[k] / 40000.0, 0.25, 0.02);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(33);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
  // Dense path.
  auto all = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> full(all.begin(), all.end());
  EXPECT_EQ(full.size(), 10u);
}

TEST(OptionsTest, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--nodes=500", "--threshold=0.25",
                        "--verbose", "input.txt"};
  auto opts = Options::Parse(5, argv);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->GetInt("nodes", 0), 500);
  EXPECT_DOUBLE_EQ(opts->GetDouble("threshold", 0.0), 0.25);
  EXPECT_TRUE(opts->GetBool("verbose", false));
  EXPECT_FALSE(opts->GetBool("quiet", false));
  ASSERT_EQ(opts->positional().size(), 1u);
  EXPECT_EQ(opts->positional()[0], "input.txt");
}

TEST(OptionsTest, ParsesLists) {
  const char* argv[] = {"prog", "--ks=10,20,30", "--ts=0.5,1.5"};
  auto opts = Options::Parse(3, argv);
  ASSERT_TRUE(opts.ok());
  auto ks = opts->GetIntList("ks", {});
  ASSERT_EQ(ks.size(), 3u);
  EXPECT_EQ(ks[1], 20);
  auto ts = opts->GetDoubleList("ts", {});
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[1], 1.5);
}

TEST(OptionsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  auto opts = Options::Parse(1, argv);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->GetInt("n", 7), 7);
  EXPECT_EQ(opts->GetString("name", "x"), "x");
  auto ks = opts->GetIntList("ks", {1, 2});
  EXPECT_EQ(ks.size(), 2u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversRangeOnce) {
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(0, 200, 4, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadInline) {
  int sum = 0;
  ParallelFor(0, 10, 1, [&sum](int64_t i) {
    sum += static_cast<int>(i);  // dgc-analyze: allow(par-shared-compound-assign) threads=1 runs inline on the caller; this test pins that contract
  });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, EmptyRange) {
  bool called = false;
  ParallelFor(5, 5, 4, [&called](int64_t) {
    called = true;  // dgc-analyze: allow(par-shared-compound-assign) empty range: the body must never run; the write is the tripwire
  });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ZeroThreadsResolvesToHardwareConcurrency) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(0, 100, 0, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ResolveNumThreadsTest, Convention) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  EXPECT_GE(ResolveNumThreads(0), 1);  // hardware concurrency
  EXPECT_EQ(ResolveNumThreads(-3), 1);
}

TEST(ParallelForWorkersTest, WorkerIdsAreInRangeAndRangeIsCovered) {
  constexpr int kThreads = 4;
  std::vector<std::atomic<int>> hits(512);
  std::atomic<bool> bad_worker{false};
  ParallelForWorkers(0, 512, kThreads, /*grain=*/16,
                     [&](int worker, int64_t lo, int64_t hi) {
                       if (worker < 0 || worker >= kThreads) {
                         bad_worker.store(true);
                       }
                       for (int64_t i = lo; i < hi; ++i) {
                         hits[static_cast<size_t>(i)].fetch_add(1);
                       }
                     });
  EXPECT_FALSE(bad_worker.load());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForWorkersTest, NestedCallsRunInline) {
  // A parallel region inside a parallel region must serialize instead of
  // deadlocking the shared pool.
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 8, 4, [&hits](int64_t outer) {
    ParallelFor(0, 8, 4, [&hits, outer](int64_t inner) {
      hits[static_cast<size_t>(outer * 8 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureWorkers(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, ManyMoreThreadsThanCoresStillCovers) {
  // Requesting more threads than hardware cores must still terminate and
  // cover the range exactly once (the pool grows on demand).
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 16, [&hits](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(VectorOpsTest, BasicOps) {
  std::vector<Scalar> x = {3.0, 4.0};
  std::vector<Scalar> y = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), -1.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(y), 2.0);
  Axpy(2.0, y, x);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(L1Distance(x, y), 7.0);
}

TEST(VectorOpsTest, Normalization) {
  std::vector<Scalar> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(NormalizeL2(x), 5.0);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-12);
  std::vector<Scalar> p = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(NormalizeL1(p), 4.0);
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  std::vector<Scalar> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(NormalizeL2(zero), 0.0);
}

TEST(VectorOpsTest, InversePowerHandlesZeros) {
  std::vector<Scalar> d = {4.0, 0.0, 9.0};
  auto inv = InversePower(d, 0.5);
  EXPECT_DOUBLE_EQ(inv[0], 0.5);
  EXPECT_DOUBLE_EQ(inv[1], 0.0);  // zero-degree convention
  EXPECT_NEAR(inv[2], 1.0 / 3.0, 1e-12);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace dgc
