// Behavior of the DGC_PARALLEL_AUDIT write-set race auditor in both compile
// modes. With the CMake option ON, disjoint chunk writes must pass, kernel
// instrumentation must be live, and a seeded cross-chunk overlap must abort
// the process; with it OFF (the default), AuditSpan must compile to nothing
// and register nothing.
#include "util/parallel_audit.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/csr_matrix.h"
#include "linalg/spgemm.h"
#include "util/thread_pool.h"

namespace dgc {
namespace {

CsrMatrix SmallRing(Index n) {
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, (i + 1) % n, 1.0});
    t.push_back({i, (i + 2) % n, 0.5});
  }
  return CsrMatrix::FromTriplets(n, n, std::move(t)).ValueOrDie();
}

#if defined(DGC_PARALLEL_AUDIT)

TEST(ParallelAuditTest, DisjointChunkWritesPassAndRegister) {
  const int64_t before = audit::TotalSpansRegistered();
  std::vector<double> out(64, 0.0);
  // grain = 1: every index is its own chunk, the sharpest audit setting.
  ParallelForWorkers(0, 64, /*num_threads=*/4, /*grain=*/1,
                     [&](int, int64_t lo, int64_t hi) {
                       audit::AuditSpan span(out.data() + lo,
                                             static_cast<size_t>(hi - lo),
                                             "test.disjoint");
                       for (int64_t i = lo; i < hi; ++i) {
                         out[static_cast<size_t>(i)] =
                             static_cast<double>(i);
                       }
                     });
  EXPECT_GT(audit::TotalSpansRegistered(), before);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], static_cast<double>(i));
  }
}

TEST(ParallelAuditTest, SerialLoopIsOneChunkEvenWhenRangesRepeat) {
  // threads = 1 runs the whole range as a single chunk on the caller;
  // re-registering the same buffer from one chunk coalesces, never fires.
  std::vector<double> out(8, 0.0);
  ParallelForWorkers(0, 4, /*num_threads=*/1, /*grain=*/1,
                     [&](int, int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         audit::AuditSpan span(out.data(), out.size(),
                                               "test.serial");
                         out[0] += static_cast<double>(i);  // dgc-analyze: allow(par-shared-element-write) threads=1: single-chunk serial execution is the property under test
                       }
                     });
  EXPECT_EQ(out[0], 0.0 + 1.0 + 2.0 + 3.0);
}

TEST(ParallelAuditTest, NestedLoopInheritsTheEnclosingChunk) {
  // A nested ParallelFor is serialized into the caller's chunk, so its
  // writes must attribute to that chunk: overlapping registrations between
  // a chunk and its own nested loop are not a hazard.
  std::vector<double> out(16, 0.0);
  ParallelForWorkers(
      0, 16, /*num_threads=*/2, /*grain=*/8,
      [&](int, int64_t lo, int64_t hi) {
        audit::AuditSpan outer(out.data() + lo,
                               static_cast<size_t>(hi - lo), "test.outer");
        ParallelForWorkers(lo, hi, /*num_threads=*/2, /*grain=*/1,
                           [&](int, int64_t nlo, int64_t nhi) {
                             audit::AuditSpan inner(
                                 out.data() + nlo,
                                 static_cast<size_t>(nhi - nlo),
                                 "test.inner");
                             for (int64_t i = nlo; i < nhi; ++i) {
                               out[static_cast<size_t>(i)] = 1.0;
                             }
                           });
      });
  for (double v : out) EXPECT_EQ(v, 1.0);
}

TEST(ParallelAuditTest, InstrumentedSpGemmRegistersSpans) {
  // The kernels' own AuditSpans (row_nnz pass + assembly copy) must be
  // live, and an audited product must still be correct and race-clean.
  const int64_t before = audit::TotalSpansRegistered();
  const CsrMatrix a = SmallRing(64);
  SpGemmOptions options;
  options.num_threads = 4;
  const CsrMatrix c = SpGemm(a, a, options).ValueOrDie();
  EXPECT_GT(c.nnz(), 0);
  EXPECT_GT(audit::TotalSpansRegistered(), before);
}

TEST(ParallelAuditDeathTest, CrossChunkOverlapAborts) {
  // "threadsafe" re-execs the child from main(): the parent's pool
  // threads never leak into the forked death-test child.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<double> out(8, 0.0);
  // Both chunks claim the whole buffer: a scheduling-dependent write-write
  // conflict, exactly what the auditor exists to catch. The audited abort
  // is deterministic even when one worker happens to run both chunks.
  EXPECT_DEATH(
      ParallelForWorkers(0, 2, /*num_threads=*/2, /*grain=*/1,
                         [&](int, int64_t, int64_t) {
                           audit::AuditSpan span(out.data(), out.size(),
                                                 "test.overlap");
                         }),
      "parallel write-set overlap");
}

TEST(ParallelAuditDeathTest, PartialOverlapAcrossChunksAborts) {
  // "threadsafe" re-execs the child from main(): the parent's pool
  // threads never leak into the forked death-test child.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<double> out(8, 0.0);
  // Chunks write [i, i + 2): neighbouring chunks share one element.
  EXPECT_DEATH(
      ParallelForWorkers(0, 4, /*num_threads=*/2, /*grain=*/1,
                         [&](int, int64_t lo, int64_t) {
                           audit::AuditSpan span(out.data() + lo, 2,
                                                 "test.partial");
                         }),
      "parallel write-set overlap");
}

#else  // !DGC_PARALLEL_AUDIT

TEST(ParallelAuditTest, DisabledAuditorIsANoOp) {
  EXPECT_FALSE(audit::kEnabled);
  const int64_t before = audit::TotalSpansRegistered();
  EXPECT_EQ(before, 0);
  std::vector<double> out(8, 0.0);
  ParallelForWorkers(0, 8, /*num_threads=*/2, /*grain=*/1,
                     [&](int, int64_t lo, int64_t hi) {
                       // Deliberately overlapping *registrations* (no
                       // overlapping writes): with the auditor compiled
                       // out they must be ignored entirely.
                       audit::AuditSpan span(out.data(), out.size(),
                                             "test.ignored");
                       for (int64_t i = lo; i < hi; ++i) {
                         out[static_cast<size_t>(i)] = 1.0;
                       }
                     });
  EXPECT_EQ(audit::TotalSpansRegistered(), 0);
}

TEST(ParallelAuditTest, InstrumentedKernelStillCorrectWithAuditOff) {
  const CsrMatrix a = SmallRing(64);
  SpGemmOptions options;
  options.num_threads = 4;
  const CsrMatrix c = SpGemm(a, a, options).ValueOrDie();
  EXPECT_GT(c.nnz(), 0);
  EXPECT_EQ(audit::TotalSpansRegistered(), 0);
}

#endif  // DGC_PARALLEL_AUDIT

}  // namespace
}  // namespace dgc
