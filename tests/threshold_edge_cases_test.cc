// Edge cases for the threshold-selection and top-edges reporting helpers:
// empty graphs, single vertices, graphs whose edges are entirely pruned
// away, and weight ties at the selection cut. These are the degenerate
// inputs a hardened CLI can feed the library after parsing an unusual but
// valid file.
#include <gtest/gtest.h>

#include <vector>

#include "core/symmetrize.h"
#include "core/threshold_select.h"
#include "core/top_edges.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/budget.h"

namespace dgc {
namespace {

TEST(ThresholdSelectTest, EmptyGraphIsRejectedNotNaN) {
  Digraph empty;
  auto selection = SelectPruneThreshold(
      empty, SymmetrizationMethod::kDegreeDiscounted);
  ASSERT_FALSE(selection.ok());
  EXPECT_TRUE(selection.status().IsInvalidArgument())
      << selection.status().ToString();
}

TEST(ThresholdSelectTest, SingleVertexSelectsZeroThreshold) {
  auto g = Digraph::FromEdges(1, {});
  ASSERT_TRUE(g.ok());
  auto selection = SelectPruneThreshold(
      *g, SymmetrizationMethod::kDegreeDiscounted);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->threshold, 0.0);
  EXPECT_EQ(selection->sampled_avg_degree, 0.0);
}

TEST(ThresholdSelectTest, SparseGraphNeedsNoPruning) {
  // Average sampled degree far below the target => threshold 0.
  auto g = Digraph::FromEdges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  auto selection = SelectPruneThreshold(
      *g, SymmetrizationMethod::kBibliometric);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->threshold, 0.0);
}

TEST(ThresholdSelectTest, TiesAtTheCutPickTheTiedValue) {
  // A directed star: every leaf cites the hub, so every leaf pair gets the
  // identical co-citation similarity — the rank statistic lands inside a
  // run of ties and must return that tied value (pruning at it keeps the
  // graph deterministic rather than keeping an arbitrary subset).
  std::vector<Edge> edges;
  const Index leaves = 20;
  for (Index i = 1; i <= leaves; ++i) edges.push_back({i, 0, 1.0});
  auto g = Digraph::FromEdges(leaves + 1, edges);
  ASSERT_TRUE(g.ok());
  ThresholdSelectOptions select;
  select.target_avg_degree = 1;  // force a cut inside the tied run
  select.sample_size = leaves + 1;
  auto selection = SelectPruneThreshold(
      *g, SymmetrizationMethod::kBibliometric, {}, select);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  SymmetrizationOptions sym;
  auto u = Symmetrize(*g, SymmetrizationMethod::kBibliometric, sym);
  ASSERT_TRUE(u.ok());
  // All off-diagonal similarities are equal, so the selected threshold is
  // exactly that shared value.
  Scalar expected = 0.0;
  for (Scalar v : u->adjacency().values()) {
    if (v > 0.0) {
      expected = v;
      break;
    }
  }
  EXPECT_GT(expected, 0.0);
  EXPECT_DOUBLE_EQ(selection->threshold, expected);
}

TEST(ThresholdSelectTest, HonorsCancelToken) {
  auto g = Digraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(g.ok());
  CancelToken token;
  ResourceBudget budget;
  budget.max_memory_bytes = 1;
  token.Arm(budget);
  token.ChargeMemory(2);  // trip it
  ThresholdSelectOptions select;
  select.cancel = &token;
  auto selection = SelectPruneThreshold(
      *g, SymmetrizationMethod::kDegreeDiscounted, {}, select);
  ASSERT_FALSE(selection.ok());
  EXPECT_TRUE(selection.status().IsResourceExhausted())
      << selection.status().ToString();
}

TEST(ThresholdSelectTest, AllEdgesPrunedYieldsEmptySymmetrization) {
  // A threshold above every similarity prunes everything; the pipeline
  // then sees a graph with vertices but no edges, which must be a valid
  // (if useless) UGraph rather than an error or a malformed CSR.
  auto g = Digraph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  ASSERT_TRUE(g.ok());
  SymmetrizationOptions sym;
  sym.prune_threshold = 1e9;
  auto u = Symmetrize(*g, SymmetrizationMethod::kDegreeDiscounted, sym);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->NumVertices(), 4);
  EXPECT_EQ(u->NumEdges(), 0);
  EXPECT_TRUE(TopWeightedEdges(*u, 10).empty());
}

TEST(TopEdgesTest, EmptyAndSingleVertexGraphs) {
  UGraph empty;
  EXPECT_TRUE(TopWeightedEdges(empty, 5).empty());
  EXPECT_TRUE(TopWeightedEdgesNormalized(empty, 5).empty());
  auto single = UGraph::FromEdges(1, {});
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(TopWeightedEdges(*single, 5).empty());
}

TEST(TopEdgesTest, NonPositiveKAndOversizedK) {
  auto g = UGraph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 1.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(TopWeightedEdges(*g, 0).empty());
  EXPECT_TRUE(TopWeightedEdges(*g, -3).empty());
  // k larger than the edge count returns every edge, heaviest first.
  auto top = TopWeightedEdges(*g, 100);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (WeightedEdge{0, 1, 2.0}));
  EXPECT_EQ(top[1], (WeightedEdge{1, 2, 1.0}));
}

TEST(TopEdgesTest, TiesAtTheCutBreakByVertexPair) {
  // Three edges of equal weight and k = 2: the kept set must be the
  // lexicographically smallest pairs, independent of CSR layout.
  auto g = UGraph::FromEdges(
      4, {{2, 3, 1.0}, {0, 1, 1.0}, {1, 2, 1.0}});
  ASSERT_TRUE(g.ok());
  auto top = TopWeightedEdges(*g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], (WeightedEdge{0, 1, 1.0}));
  EXPECT_EQ(top[1], (WeightedEdge{1, 2, 1.0}));
}

TEST(TopEdgesTest, NormalizationDividesBySmallestPositiveWeight) {
  auto g = UGraph::FromEdges(3, {{0, 1, 0.5}, {1, 2, 2.0}});
  ASSERT_TRUE(g.ok());
  auto top = TopWeightedEdgesNormalized(*g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].weight, 4.0);
  EXPECT_DOUBLE_EQ(top[1].weight, 1.0);
}

}  // namespace
}  // namespace dgc
