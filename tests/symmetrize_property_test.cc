// Parameterized property tests over all symmetrization methods and several
// random graph families: structural invariants that must hold for every
// (method, graph) combination.
#include <gtest/gtest.h>

#include <tuple>

#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "util/rng.h"

namespace dgc {
namespace {

Digraph RandomDigraph(Index n, int edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> list;
  for (int i = 0; i < edges; ++i) {
    Index u = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    Index v = static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(n)));
    if (u != v) list.push_back(Edge{u, v, 1.0});
  }
  return std::move(Digraph::FromEdges(n, list)).ValueOrDie();
}

class SymmetrizationProperty
    : public ::testing::TestWithParam<
          std::tuple<SymmetrizationMethod, uint64_t>> {
 protected:
  SymmetrizationMethod method() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(SymmetrizationProperty, OutputSymmetricNonNegativeLoopFree) {
  Digraph g = RandomDigraph(40, 300, seed());
  auto u = Symmetrize(g, method());
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_TRUE(u->adjacency().IsSymmetric(1e-9));
  for (Scalar v : u->adjacency().values()) {
    EXPECT_GT(v, 0.0);
  }
  for (Index i = 0; i < g.NumVertices(); ++i) {
    EXPECT_DOUBLE_EQ(u->adjacency().At(i, i), 0.0);
  }
}

TEST_P(SymmetrizationProperty, Deterministic) {
  Digraph g = RandomDigraph(30, 200, seed());
  auto u1 = Symmetrize(g, method());
  auto u2 = Symmetrize(g, method());
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(u1->adjacency(), u2->adjacency());
}

TEST_P(SymmetrizationProperty, VertexRelabelingEquivariant) {
  // Symmetrizing a relabeled graph equals relabeling the symmetrized graph.
  const Index n = 25;
  Digraph g = RandomDigraph(n, 150, seed());
  Rng rng(seed() + 99);
  std::vector<Index> perm(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(perm);

  std::vector<Edge> permuted;
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < n; ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      permuted.push_back(Edge{perm[static_cast<size_t>(u)],
                              perm[static_cast<size_t>(cols[i])], vals[i]});
    }
  }
  auto g2 = Digraph::FromEdges(n, permuted);
  ASSERT_TRUE(g2.ok());

  auto u1 = Symmetrize(g, method());
  auto u2 = Symmetrize(*g2, method());
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      EXPECT_NEAR(u1->adjacency().At(i, j),
                  u2->adjacency().At(perm[static_cast<size_t>(i)],
                                     perm[static_cast<size_t>(j)]),
                  1e-9);
    }
  }
}

TEST_P(SymmetrizationProperty, PruningIsMonotone) {
  // A higher threshold always yields a subset of the edges, with equal
  // weights on the surviving ones.
  if (method() == SymmetrizationMethod::kAPlusAT ||
      method() == SymmetrizationMethod::kRandomWalk) {
    GTEST_SKIP() << "structure-preserving methods are not pruned";
  }
  Digraph g = RandomDigraph(40, 400, seed());
  SymmetrizationOptions low, high;
  low.prune_threshold = 0.0;
  high.prune_threshold =
      method() == SymmetrizationMethod::kBibliometric ? 2.0 : 0.2;
  auto u_low = Symmetrize(g, method(), low);
  auto u_high = Symmetrize(g, method(), high);
  ASSERT_TRUE(u_low.ok());
  ASSERT_TRUE(u_high.ok());
  EXPECT_LE(u_high->NumEdges(), u_low->NumEdges());
  const CsrMatrix& hi = u_high->adjacency();
  for (Index i = 0; i < hi.rows(); ++i) {
    auto cols = hi.RowCols(i);
    auto vals = hi.RowValues(i);
    for (size_t e = 0; e < cols.size(); ++e) {
      // Surviving entries may underestimate the exact similarity by up to
      // threshold/2: the two addends (out-link and in-link similarity) are
      // each pruned at threshold/2 before summation (see bibliometric.cc).
      const Scalar exact = u_low->adjacency().At(i, cols[e]);
      EXPECT_LE(vals[e], exact + 1e-9);
      EXPECT_GE(vals[e], exact - high.prune_threshold / 2.0 - 1e-9);
      EXPECT_GE(vals[e], high.prune_threshold);
    }
  }
}

TEST_P(SymmetrizationProperty, WorksOnPowerLawGraphs) {
  RmatOptions rmat;
  rmat.scale = 8;
  rmat.seed = seed();
  auto dataset = GenerateRmat(rmat);
  ASSERT_TRUE(dataset.ok());
  auto u = Symmetrize(dataset->graph, method());
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_TRUE(u->adjacency().IsSymmetric(1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAndSeeds, SymmetrizationProperty,
    ::testing::Combine(
        ::testing::Values(SymmetrizationMethod::kAPlusAT,
                          SymmetrizationMethod::kRandomWalk,
                          SymmetrizationMethod::kBibliometric,
                          SymmetrizationMethod::kDegreeDiscounted),
        ::testing::Values(1u, 7u, 42u)),
    [](const auto& info) {
      const auto method = std::get<0>(info.param);
      std::string name;
      switch (method) {
        case SymmetrizationMethod::kAPlusAT:
          name = "APlusAT";
          break;
        case SymmetrizationMethod::kRandomWalk:
          name = "RandomWalk";
          break;
        case SymmetrizationMethod::kBibliometric:
          name = "Bibliometric";
          break;
        case SymmetrizationMethod::kDegreeDiscounted:
          name = "DegreeDiscounted";
          break;
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dgc
