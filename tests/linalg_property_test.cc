// Algebraic property tests for the sparse kernels: identities that must
// hold for random matrices (transpose/addition/product interplay,
// eigensolver agreement between the sparse Lanczos and dense Jacobi paths).
#include <gtest/gtest.h>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/lanczos.h"
#include "linalg/spgemm.h"
#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix RandomMatrix(Index rows, Index cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(rows))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(cols))),
                rng.UniformDouble() - 0.3});
  }
  return std::move(CsrMatrix::FromTriplets(rows, cols, t)).ValueOrDie();
}

class LinalgProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinalgProperty, TransposeDistributesOverAddition) {
  CsrMatrix a = RandomMatrix(20, 15, 120, GetParam());
  CsrMatrix b = RandomMatrix(20, 15, 100, GetParam() + 1);
  auto sum = CsrMatrix::Add(a, b);
  ASSERT_TRUE(sum.ok());
  auto lhs = sum->Transpose();
  auto rhs = CsrMatrix::Add(a.Transpose(), b.Transpose());
  ASSERT_TRUE(rhs.ok());
  auto dl = lhs.ToDense();
  auto dr = rhs->ToDense();
  for (size_t i = 0; i < dl.size(); ++i) EXPECT_NEAR(dl[i], dr[i], 1e-12);
}

TEST_P(LinalgProperty, ProductTransposeIdentity) {
  // (A B)ᵀ == Bᵀ Aᵀ.
  CsrMatrix a = RandomMatrix(12, 18, 90, GetParam());
  CsrMatrix b = RandomMatrix(18, 10, 80, GetParam() + 2);
  auto ab = SpGemm(a, b);
  ASSERT_TRUE(ab.ok());
  auto lhs = ab->Transpose().ToDense();
  auto btat = SpGemm(b.Transpose(), a.Transpose());
  ASSERT_TRUE(btat.ok());
  auto rhs = btat->ToDense();
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-10);
}

TEST_P(LinalgProperty, ProductAssociativity) {
  CsrMatrix a = RandomMatrix(8, 10, 40, GetParam());
  CsrMatrix b = RandomMatrix(10, 9, 45, GetParam() + 3);
  CsrMatrix c = RandomMatrix(9, 7, 35, GetParam() + 4);
  auto ab = SpGemm(a, b);
  auto bc = SpGemm(b, c);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(bc.ok());
  auto left = SpGemm(*ab, c);
  auto right = SpGemm(a, *bc);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto dl = left->ToDense();
  auto dr = right->ToDense();
  for (size_t i = 0; i < dl.size(); ++i) EXPECT_NEAR(dl[i], dr[i], 1e-10);
}

TEST_P(LinalgProperty, MatVecAgreesWithProduct) {
  // (A B) x == A (B x).
  CsrMatrix a = RandomMatrix(15, 12, 80, GetParam());
  CsrMatrix b = RandomMatrix(12, 15, 80, GetParam() + 5);
  Rng rng(GetParam() + 6);
  std::vector<Scalar> x(15);
  for (auto& v : x) v = rng.UniformDouble();
  auto ab = SpGemm(a, b);
  ASSERT_TRUE(ab.ok());
  std::vector<Scalar> direct(15), tmp(12), chained(15);
  ab->Multiply(x, direct);
  b.Multiply(x, tmp);
  a.Multiply(tmp, chained);
  for (size_t i = 0; i < 15; ++i) EXPECT_NEAR(direct[i], chained[i], 1e-10);
}

TEST_P(LinalgProperty, LanczosAgreesWithJacobiOnSmallMatrices) {
  // Build a random symmetric sparse matrix and compare extremal
  // eigenvalues computed by (a) sparse Lanczos and (b) dense Jacobi.
  const Index n = 24;
  Rng rng(GetParam() + 7);
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) {
      if (i != j && !rng.Bernoulli(0.3)) continue;
      const Scalar v = rng.UniformDouble() - 0.5;
      t.push_back({i, j, v});
      if (i != j) t.push_back({j, i, v});
    }
  }
  auto sparse = CsrMatrix::FromTriplets(n, n, t);
  ASSERT_TRUE(sparse.ok());
  DenseMatrix dense(n, n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) dense(i, j) = sparse->At(i, j);
  }
  std::vector<Scalar> jacobi_values;
  DenseMatrix jacobi_vectors;
  JacobiEigenSymmetric(dense, &jacobi_values, &jacobi_vectors);

  LanczosOptions options;
  options.num_eigenpairs = 4;
  options.max_subspace = n;
  auto lanczos = LanczosSymmetric(*sparse, options);
  ASSERT_TRUE(lanczos.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(lanczos->eigenvalues[static_cast<size_t>(i)],
                jacobi_values[static_cast<size_t>(i)], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinalgProperty,
                         ::testing::Values(11u, 29u, 47u));

}  // namespace
}  // namespace dgc
