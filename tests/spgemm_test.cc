#include "linalg/spgemm.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dgc {
namespace {

CsrMatrix Random(Index rows, Index cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (int i = 0; i < nnz; ++i) {
    triplets.push_back(
        Triplet{static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(rows))),
                static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(cols))),
                rng.UniformDouble() + 0.1});
  }
  return std::move(CsrMatrix::FromTriplets(rows, cols, triplets)).ValueOrDie();
}

std::vector<Scalar> DenseProduct(const CsrMatrix& a, const CsrMatrix& b) {
  auto da = a.ToDense();
  auto db = b.ToDense();
  std::vector<Scalar> dc(static_cast<size_t>(a.rows()) * b.cols(), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const Scalar av = da[static_cast<size_t>(i) * a.cols() + k];
      if (av == 0.0) continue;
      for (Index j = 0; j < b.cols(); ++j) {
        dc[static_cast<size_t>(i) * b.cols() + j] +=
            av * db[static_cast<size_t>(k) * b.cols() + j];
      }
    }
  }
  return dc;
}

TEST(SpGemmTest, SmallKnownProduct) {
  auto a = std::move(CsrMatrix::FromTriplets(
                         2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}}))
               .ValueOrDie();
  auto b = std::move(CsrMatrix::FromTriplets(
                         2, 2, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}}))
               .ValueOrDie();
  auto c = SpGemm(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c->At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(c->At(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(c->At(1, 1), 3.0);
}

TEST(SpGemmTest, MatchesDenseReference) {
  CsrMatrix a = Random(25, 18, 120, 1);
  CsrMatrix b = Random(18, 30, 140, 2);
  auto c = SpGemm(a, b);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c->Validate().ok());
  auto expected = DenseProduct(a, b);
  auto actual = c->ToDense();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-10);
  }
}

TEST(SpGemmTest, RejectsDimensionMismatch) {
  EXPECT_FALSE(SpGemm(CsrMatrix::Zero(2, 3), CsrMatrix::Zero(4, 2)).ok());
}

TEST(SpGemmTest, ThresholdDropsSmallEntries) {
  CsrMatrix a = Random(20, 20, 100, 3);
  SpGemmOptions options;
  options.threshold = 0.5;
  auto c = SpGemm(a, a, options);
  ASSERT_TRUE(c.ok());
  for (Scalar v : c->values()) {
    EXPECT_GE(std::abs(v), 0.5);
  }
  // The thresholded result must be a subset of the full product.
  auto full = SpGemm(a, a);
  ASSERT_TRUE(full.ok());
  for (Index i = 0; i < c->rows(); ++i) {
    auto cols = c->RowCols(i);
    auto vals = c->RowValues(i);
    for (size_t e = 0; e < cols.size(); ++e) {
      EXPECT_NEAR(full->At(i, cols[e]), vals[e], 1e-10);
    }
  }
}

TEST(SpGemmTest, DropDiagonalRemovesSelfEntries) {
  CsrMatrix a = Random(20, 20, 100, 4);
  SpGemmOptions options;
  options.drop_diagonal = true;
  auto c = SpGemmAAt(a, options);
  ASSERT_TRUE(c.ok());
  for (Index i = 0; i < c->rows(); ++i) {
    EXPECT_DOUBLE_EQ(c->At(i, i), 0.0);
  }
}

TEST(SpGemmTest, AAtIsExactlySymmetric) {
  CsrMatrix a = Random(40, 25, 300, 5);
  auto c = SpGemmAAt(a);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsSymmetric(0.0));  // bitwise symmetry (same summation order)
}

TEST(SpGemmTest, AtAIsExactlySymmetric) {
  CsrMatrix a = Random(40, 25, 300, 6);
  auto c = SpGemmAtA(a);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsSymmetric(0.0));
  EXPECT_EQ(c->rows(), 25);
}

TEST(SpGemmTest, AAtCountsCommonOutLinks) {
  // Paper Section 2.2: B(i,j) = number of nodes both i and j point to.
  auto a = std::move(CsrMatrix::FromTriplets(3, 3,
                                             {{0, 2, 1.0},
                                              {1, 2, 1.0},
                                              {0, 1, 1.0},
                                              {1, 0, 1.0}}))
               .ValueOrDie();
  auto b = SpGemmAAt(a);
  ASSERT_TRUE(b.ok());
  // Nodes 0 and 1 share exactly one out-neighbor (node 2).
  EXPECT_DOUBLE_EQ(b->At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(b->At(1, 0), 1.0);
}

TEST(SpGemmTest, MultiThreadedMatchesSingleThreaded) {
  CsrMatrix a = Random(60, 60, 700, 7);
  SpGemmOptions single;
  SpGemmOptions multi;
  multi.num_threads = 4;
  auto c1 = SpGemm(a, a, single);
  auto c4 = SpGemm(a, a, multi);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c4.ok());
  EXPECT_EQ(*c1, *c4);
}

TEST(SpGemmTest, FlopsCountsMultiplies) {
  auto a = std::move(CsrMatrix::FromTriplets(
                         2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}}))
               .ValueOrDie();
  // Row 0 touches rows 0 (2 nnz) and 1 (1 nnz) of a: 3 flops.
  // Row 1 touches row 0: 2 flops. Total 5.
  EXPECT_EQ(SpGemmFlops(a, a), 5);
}

TEST(SpGemmTest, EmptyProduct) {
  auto c = SpGemm(CsrMatrix::Zero(3, 4), CsrMatrix::Zero(4, 5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nnz(), 0);
  EXPECT_EQ(c->rows(), 3);
  EXPECT_EQ(c->cols(), 5);
}

}  // namespace
}  // namespace dgc
