#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/coarsen.h"
#include "cluster/graclus.h"
#include "cluster/kmeans.h"
#include "cluster/mcl.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "eval/fscore.h"
#include "util/rng.h"

namespace dgc {
namespace {

/// k dense blobs of size `size` connected in a ring by single weak edges.
UGraph BlockGraph(Index blocks, Index size, Scalar intra_weight = 1.0) {
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  for (Index b = 0; b < blocks; ++b) {
    const Index base = b * size;
    for (Index i = 0; i < size; ++i) {
      for (Index j = i + 1; j < size; ++j) {
        edges.emplace_back(base + i, base + j, intra_weight);
      }
    }
    // Weak bridge to the next block.
    const Index next = ((b + 1) % blocks) * size;
    edges.emplace_back(base, next, 0.05);
  }
  auto g = UGraph::FromEdges(blocks * size, edges);
  EXPECT_TRUE(g.ok());
  return std::move(g).ValueOrDie();
}

GroundTruth BlockTruth(Index blocks, Index size) {
  GroundTruth truth;
  truth.categories.resize(static_cast<size_t>(blocks));
  for (Index b = 0; b < blocks; ++b) {
    for (Index i = 0; i < size; ++i) {
      truth.categories[static_cast<size_t>(b)].push_back(b * size + i);
    }
  }
  return truth;
}

double FScoreOf(const Clustering& c, const GroundTruth& truth) {
  auto result = EvaluateFScore(c, truth);
  EXPECT_TRUE(result.ok());
  return result->avg_f;
}

TEST(CoarsenTest, HierarchyShrinks) {
  UGraph g = BlockGraph(8, 16);
  CoarsenOptions options;
  options.target_vertices = 16;
  auto h = BuildHierarchy(g, options);
  ASSERT_TRUE(h.ok());
  ASSERT_GE(h->NumLevels(), 2);
  for (int l = 1; l < h->NumLevels(); ++l) {
    EXPECT_LT(h->levels[static_cast<size_t>(l)].adj.rows(),
              h->levels[static_cast<size_t>(l) - 1].adj.rows());
  }
}

TEST(CoarsenTest, PreservesTotalNodeWeightAndVolume) {
  UGraph g = BlockGraph(6, 10);
  auto h = BuildHierarchy(g, {.target_vertices = 8});
  ASSERT_TRUE(h.ok());
  Scalar fine_volume = 0.0;
  for (Scalar v : g.adjacency().values()) fine_volume += v;
  for (const GraphLevel& level : h->levels) {
    Scalar weight = 0.0;
    for (Scalar w : level.node_weight) weight += w;
    EXPECT_DOUBLE_EQ(weight, static_cast<Scalar>(g.NumVertices()));
    // Volume including diagonal (collapsed) entries is invariant.
    Scalar volume = 0.0;
    for (Scalar v : level.adj.values()) volume += v;
    EXPECT_NEAR(volume, fine_volume, 1e-9);
  }
}

TEST(CoarsenTest, MatchingIsValid) {
  UGraph g = BlockGraph(4, 12);
  auto [map, count] = HeavyEdgeMatching(g.adjacency(), 7);
  std::vector<int> children(static_cast<size_t>(count), 0);
  for (Index c : map) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, count);
    ++children[static_cast<size_t>(c)];
  }
  for (int c : children) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);  // matching: at most two fine nodes per supernode
  }
}

TEST(CoarsenTest, ProjectLabelsRoundTrip) {
  std::vector<Index> coarse = {5, 9};
  std::vector<Index> map = {0, 1, 1, 0};
  auto fine = ProjectLabels(coarse, map);
  EXPECT_EQ(fine, (std::vector<Index>{5, 9, 9, 5}));
}

TEST(MetisTest, RecoversBlocks) {
  UGraph g = BlockGraph(6, 20);
  MetisOptions options;
  options.k = 6;
  auto c = MetisPartition(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->NumClusters(), 6);
  EXPECT_GT(FScoreOf(*c, BlockTruth(6, 20)), 0.9);
}

TEST(MetisTest, RespectsBalance) {
  UGraph g = BlockGraph(4, 25);
  MetisOptions options;
  options.k = 4;
  options.imbalance = 0.25;
  auto c = MetisPartition(g, options);
  ASSERT_TRUE(c.ok());
  auto sizes = c->ClusterSizes();
  for (Index s : sizes) {
    EXPECT_LE(s, static_cast<Index>(1.3 * 100 / 4 + 1));
    EXPECT_GE(s, 1);
  }
}

TEST(MetisTest, EdgeCutHelper) {
  UGraph g = BlockGraph(2, 4);
  std::vector<Index> perfect = {0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<Index> bad = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LT(EdgeCut(g.adjacency(), perfect), EdgeCut(g.adjacency(), bad));
}

TEST(MetisTest, KEqualsOneAndN) {
  UGraph g = BlockGraph(2, 5);
  MetisOptions options;
  options.k = 1;
  auto one = MetisPartition(g, options);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->NumClusters(), 1);
  options.k = 10;
  auto n = MetisPartition(g, options);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->NumVertices(), 10);
  options.k = 0;
  EXPECT_FALSE(MetisPartition(g, options).ok());
  options.k = 11;
  EXPECT_FALSE(MetisPartition(g, options).ok());
}

TEST(GraclusTest, RecoversBlocks) {
  UGraph g = BlockGraph(6, 20);
  GraclusOptions options;
  options.k = 6;
  auto c = GraclusCluster(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(FScoreOf(*c, BlockTruth(6, 20)), 0.9);
}

TEST(GraclusTest, ImprovesNormalizedCutOverInitial) {
  UGraph g = BlockGraph(5, 16);
  GraclusOptions options;
  options.k = 5;
  auto c = GraclusCluster(g, options);
  ASSERT_TRUE(c.ok());
  // Perfect block split has ncut ~= 5 * (2*0.05)/vol_block; clustered ncut
  // must be near it and far below random assignment's.
  Rng rng(4);
  std::vector<Index> random_labels(static_cast<size_t>(g.NumVertices()));
  for (auto& l : random_labels) {
    l = static_cast<Index>(rng.UniformU64(5));
  }
  const Scalar clustered = LevelNormalizedCut(g.adjacency(), c->labels(), 5);
  const Scalar random = LevelNormalizedCut(g.adjacency(), random_labels, 5);
  EXPECT_LT(clustered, random / 4.0);
}

TEST(RmclTest, RecoversBlocks) {
  UGraph g = BlockGraph(5, 12);
  RmclOptions options;
  options.inflation = 2.0;
  auto c = Rmcl(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(FScoreOf(*c, BlockTruth(5, 12)), 0.9);
}

TEST(RmclTest, InflationControlsGranularity) {
  UGraph g = BlockGraph(6, 15);
  RmclOptions fine_grain, coarse_grain;
  fine_grain.inflation = 3.0;
  coarse_grain.inflation = 1.3;
  auto many = Rmcl(g, fine_grain);
  auto few = Rmcl(g, coarse_grain);
  ASSERT_TRUE(many.ok());
  ASSERT_TRUE(few.ok());
  EXPECT_GE(many->NumClusters(), few->NumClusters());
}

TEST(RmclTest, FlowMatrixIsRowStochastic) {
  UGraph g = BlockGraph(3, 10);
  CsrMatrix mg = BuildFlowMatrix(g, 1.0);
  auto sums = mg.RowSums();
  for (Scalar s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
  // Self-loops present on the diagonal.
  for (Index v = 0; v < g.NumVertices(); ++v) {
    EXPECT_GT(mg.At(v, v), 0.0);
  }
}

TEST(RmclTest, IsolatedVertexGetsPureSelfLoop) {
  auto g = UGraph::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(g.ok());
  CsrMatrix mg = BuildFlowMatrix(*g, 1.0);
  EXPECT_DOUBLE_EQ(mg.At(2, 2), 1.0);
}

TEST(RmclTest, RejectsBadInflation) {
  UGraph g = BlockGraph(2, 5);
  RmclOptions bad;
  bad.inflation = 1.0;
  EXPECT_FALSE(Rmcl(g, bad).ok());
}

TEST(FlowToClusteringTest, AttractorChainsMerge) {
  // Rows point at attractors: 0->1, 1->1, 2->1 => single cluster {0,1,2}.
  auto m = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0}, {1, 1, 1.0}, {2, 1, 1.0}});
  ASSERT_TRUE(m.ok());
  Clustering c = FlowToClustering(std::move(m).ValueOrDie());
  EXPECT_EQ(c.NumClusters(), 1);
}

TEST(MlrMclTest, RecoversBlocksFaster) {
  UGraph g = BlockGraph(8, 20);
  MlrMclOptions options;
  options.rmcl.inflation = 2.0;
  options.coarsen.target_vertices = 40;
  auto c = MlrMcl(g, options);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(FScoreOf(*c, BlockTruth(8, 20)), 0.85);
}

TEST(MlrMclTest, ProjectFlowPreservesStochasticity) {
  auto coarse = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 0.75}, {0, 1, 0.25}, {1, 1, 1.0}});
  ASSERT_TRUE(coarse.ok());
  std::vector<Index> map = {0, 0, 1};  // fine 0,1 -> coarse 0; fine 2 -> 1
  auto fine = ProjectFlow(std::move(coarse).ValueOrDie(), map, 3);
  ASSERT_TRUE(fine.ok());
  auto sums = fine->RowSums();
  for (Scalar s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
  // Fine row 0 = parent row: 0.75 split over children {0,1}, 0.25 to {2}.
  EXPECT_NEAR(fine->At(0, 0), 0.375, 1e-12);
  EXPECT_NEAR(fine->At(0, 2), 0.25, 1e-12);
}

TEST(KMeansTest, SeparatedBlobs) {
  Rng rng(3);
  DenseMatrix points(60, 2);
  for (Index i = 0; i < 60; ++i) {
    const int blob = i / 20;
    points(i, 0) = blob * 10.0 + rng.Normal() * 0.5;
    points(i, 1) = blob * -5.0 + rng.Normal() * 0.5;
  }
  KMeansOptions options;
  options.k = 3;
  auto result = KMeans(points, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.NumClusters(), 3);
  // All points in a blob share a label.
  for (Index i = 0; i < 60; ++i) {
    EXPECT_EQ(result->clustering.LabelOf(i),
              result->clustering.LabelOf((i / 20) * 20));
  }
}

TEST(KMeansTest, SseDecreasesWithMoreClusters) {
  Rng rng(9);
  DenseMatrix points(100, 3);
  for (Index i = 0; i < 100; ++i) {
    for (Index d = 0; d < 3; ++d) points(i, d) = rng.UniformDouble();
  }
  auto k2 = KMeans(points, {.k = 2, .seed = 1});
  auto k10 = KMeans(points, {.k = 10, .seed = 1});
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k10.ok());
  EXPECT_LT(k10->sse, k2->sse);
}

TEST(KMeansTest, RejectsBadK) {
  DenseMatrix points(5, 2);
  EXPECT_FALSE(KMeans(points, {.k = 0}).ok());
  EXPECT_FALSE(KMeans(points, {.k = 6}).ok());
}

}  // namespace
}  // namespace dgc
