// Reproduction of the paper's Section 5.7 case study (Figure 10): the
// Wikipedia pages for plant species of the genus Guzmania form a natural
// cluster although none of them links to another — they all point to the
// same pages ("Poales", "Ecuador", the "Guzmania" genus page) and are
// pointed to by the same pages. Degree-discounted symmetrization recovers
// the cluster with both MLR-MCL and Metis; A+Aᵀ cannot.
//
//   $ ./case_study_guzmania
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "core/symmetrize.h"
#include "gen/hyperlink.h"

namespace {

using namespace dgc;

/// Finds the output cluster containing the majority of `members` and
/// reports how many of them it captured.
std::pair<int, Index> MajorityCapture(const Clustering& clustering,
                                      const std::vector<Index>& members) {
  std::map<Index, int> counts;
  for (Index v : members) {
    const Index label = clustering.LabelOf(v);
    if (label != Clustering::kUnassigned) ++counts[label];
  }
  int best = 0;
  Index best_label = -1;
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      best_label = label;
    }
  }
  return {best, best_label};
}

}  // namespace

int main() {
  // A small Wikipedia-like graph; we graft a Guzmania-style species
  // cluster onto it: 14 species pages that never link to one another but
  // all link to "Poales", "Ecuador" and "Guzmania", with "Guzmania" and a
  // "List of Guzmania species" page linking back.
  HyperlinkOptions options;
  options.num_articles = 4000;
  options.num_categories = 60;
  options.seed = 17;
  auto base = GenerateHyperlink(options);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  const Index n0 = base->graph.NumVertices();
  const Index num_species = 14;
  // New vertices: species pages, then Poales / Ecuador / Guzmania / List.
  const Index poales = n0 + num_species;
  const Index ecuador = poales + 1;
  const Index guzmania = ecuador + 1;
  const Index list_page = guzmania + 1;
  const Index n = list_page + 1;

  std::vector<Edge> edges;
  const CsrMatrix& a = base->graph.adjacency();
  for (Index u = 0; u < n0; ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      edges.push_back(Edge{u, cols[i], vals[i]});
    }
  }
  std::vector<Index> species;
  std::vector<std::string> names(static_cast<size_t>(n));
  for (Index v = 0; v < n0; ++v) names[static_cast<size_t>(v)] = base->NameOf(v);
  for (Index s = 0; s < num_species; ++s) {
    const Index page = n0 + s;
    species.push_back(page);
    names[static_cast<size_t>(page)] =
        "Guzmania species " + std::to_string(s + 1);
    edges.push_back(Edge{page, poales, 1.0});
    edges.push_back(Edge{page, ecuador, 1.0});
    edges.push_back(Edge{page, guzmania, 1.0});
    edges.push_back(Edge{guzmania, page, 1.0});
    edges.push_back(Edge{list_page, page, 1.0});
    // Each species page also links to a few unrelated pages of its own
    // (references, localities), so the cluster is not a clean star.
    for (int e = 0; e < 6; ++e) {
      edges.push_back(
          Edge{page, static_cast<Index>((s * 131 + e * 977 + 7) % n0), 1.0});
    }
  }
  names[static_cast<size_t>(poales)] = "Poales";
  names[static_cast<size_t>(ecuador)] = "Ecuador";
  names[static_cast<size_t>(guzmania)] = "Guzmania";
  names[static_cast<size_t>(list_page)] = "List of Guzmania species";
  // Like their real-Wikipedia counterparts, the shared pages are popular:
  // Ecuador/Poales have many unrelated in-links, and the Guzmania/List
  // pages link to and are linked from plenty of other botany pages. This
  // is what prevents A+Aᵀ from recovering the species cluster through the
  // shared pages acting as star centers.
  for (int i = 0; i < 400; ++i) {
    edges.push_back(Edge{static_cast<Index>(i * 7 % n0), ecuador, 1.0});
    if (i % 4 == 0) {
      edges.push_back(Edge{static_cast<Index>(i * 13 % n0), poales, 1.0});
    }
    if (i % 2 == 0) {
      edges.push_back(Edge{static_cast<Index>(i * 11 % n0), guzmania, 1.0});
      edges.push_back(Edge{guzmania, static_cast<Index>(i * 17 % n0), 1.0});
    }
    if (i % 3 == 0) {
      edges.push_back(Edge{list_page, static_cast<Index>(i * 19 % n0), 1.0});
      edges.push_back(Edge{static_cast<Index>(i * 23 % n0), list_page, 1.0});
    }
  }
  auto graph = Digraph::FromEdges(n, edges);
  if (!graph.ok()) return 1;

  std::printf("graph: %d pages, %lld links; %d Guzmania species planted\n",
              n, static_cast<long long>(graph->NumEdges()), num_species);
  std::printf("(species pages share out-links {Poales, Ecuador, Guzmania}\n"
              " and in-links {Guzmania, List of Guzmania species}, but no\n"
              " species page links to another)\n\n");

  for (dgc::SymmetrizationMethod method :
       {SymmetrizationMethod::kAPlusAT,
        SymmetrizationMethod::kDegreeDiscounted}) {
    SymmetrizationOptions sym;
    sym.prune_threshold =
        method == SymmetrizationMethod::kDegreeDiscounted ? 0.01 : 0.0;
    auto u = Symmetrize(*graph, method, sym);
    if (!u.ok()) return 1;
    std::printf("--- %s\n", SymmetrizationMethodName(method).data());
    // Direct check: are species pages even connected to one another?
    std::printf("  species<->species edge weight in symmetrized graph: "
                "%.3f\n",
                u->adjacency().At(species[0], species[1]));

    MlrMclOptions mcl;
    mcl.rmcl.inflation = 2.0;
    auto mcl_clustering = MlrMcl(*u, mcl);
    MetisOptions metis;
    metis.k = 60;
    auto metis_clustering = MetisPartition(*u, metis);
    if (!mcl_clustering.ok() || !metis_clustering.ok()) return 1;
    auto [mcl_count, mcl_label] = MajorityCapture(*mcl_clustering, species);
    auto [metis_count, metis_label] =
        MajorityCapture(*metis_clustering, species);
    std::printf("  MLR-MCL : %2d/%d species in one cluster\n", mcl_count,
                num_species);
    std::printf("  Metis   : %2d/%d species in one cluster\n", metis_count,
                num_species);
  }
  std::printf(
      "\nAs in the paper's Figure 10, the species cluster is recovered by\n"
      "Degree-discounted symmetrization under both clustering algorithms,\n"
      "independent of the clusterer; A+A' leaves the species pages\n"
      "mutually unconnected, so no clustering algorithm can group them.\n");
  return 0;
}
