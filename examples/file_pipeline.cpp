// Command-line pipeline over files: read a directed edge list, symmetrize,
// optionally write the symmetrized graph in METIS format, cluster, and
// write the cluster labels — the workflow a practitioner would run on
// their own data.
//
//   $ ./file_pipeline --input=graph.txt --method=dd --algorithm=metis
//         --clusters=64 --output=labels.txt [--metis-out=sym.graph]
//         [--threshold=auto|<value>] [--target-degree=100]
//         [--threads=1] [--report=run_report.json]
//         [--max-edges=N] [--deadline-ms=N] [--max-memory-mb=N]
//         [--spill-dir=DIR]
//
// --max-edges bounds the input scan (rejecting oversized files at the
// parse stage); --deadline-ms / --max-memory-mb arm a ResourceBudget for
// the symmetrize+cluster stages. A memory budget no longer simply aborts
// the similarity products: the symmetrization degrades to out-of-core row
// tiles (spilling to --spill-dir, default system temp) when its in-memory
// estimate exceeds the budget, bit-identical to the unbudgeted run
// (docs/OUT_OF_CORE.md). Other stages keep abort semantics; a
// budget-exceeded run exits non-zero but still writes the partial run
// report when --report= is given.
#include <cstdio>
#include <string>

#include "cluster/pipeline.h"
#include "core/threshold_select.h"
#include "eval/record.h"
#include "graph/io.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/options.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 1;
  }
  const std::string input = opts->GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: file_pipeline --input=<edge-list> [--method=dd] "
                 "[--algorithm=metis|graclus|mlrmcl] [--clusters=64] "
                 "[--threshold=auto] [--target-degree=100] "
                 "[--output=labels.txt] [--metis-out=sym.graph] "
                 "[--threads=1] [--report=run_report.json] "
                 "[--max-edges=N] [--deadline-ms=N] [--max-memory-mb=N] "
                 "[--spill-dir=DIR]\n");
    return 2;
  }

  IoLimits limits;
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0) limits.max_edges = max_edges;
  auto graph = ReadEdgeList(input, /*num_vertices=*/0, limits);
  if (!graph.ok()) {
    std::fprintf(stderr, "reading %s: %s\n", input.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("read %s: %d vertices, %lld edges, %.1f%% symmetric\n",
              input.c_str(), graph->NumVertices(),
              static_cast<long long>(graph->NumEdges()),
              100.0 * graph->FractionSymmetricEdges());

  auto method = ParseSymmetrizationMethod(opts->GetString("method", "dd"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }

  PipelineOptions pipeline;
  pipeline.method = *method;
  const std::string algorithm = opts->GetString("algorithm", "metis");
  const Index k = static_cast<Index>(opts->GetInt("clusters", 64));
  if (algorithm == "metis") {
    pipeline.algorithm = ClusterAlgorithm::kMetis;
    pipeline.metis.k = k;
  } else if (algorithm == "graclus") {
    pipeline.algorithm = ClusterAlgorithm::kGraclus;
    pipeline.graclus.k = k;
  } else if (algorithm == "mlrmcl") {
    pipeline.algorithm = ClusterAlgorithm::kMlrMcl;
    pipeline.mlr_mcl.rmcl.inflation = opts->GetDouble("inflation", 2.0);
  } else {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm.c_str());
    return 2;
  }

  const std::string threshold = opts->GetString("threshold", "auto");
  if (threshold == "auto") {
    if (*method == SymmetrizationMethod::kBibliometric ||
        *method == SymmetrizationMethod::kDegreeDiscounted) {
      ThresholdSelectOptions select;
      select.target_avg_degree =
          static_cast<Index>(opts->GetInt("target-degree", 100));
      auto selection = SelectPruneThreshold(*graph, *method,
                                            pipeline.symmetrization, select);
      if (!selection.ok()) {
        std::fprintf(stderr, "threshold selection: %s\n",
                     selection.status().ToString().c_str());
        return 1;
      }
      pipeline.symmetrization.prune_threshold = selection->threshold;
      std::printf("auto-selected prune threshold: %.6f (sampled avg degree "
                  "%.1f)\n",
                  selection->threshold, selection->sampled_avg_degree);
    }
  } else {
    pipeline.symmetrization.prune_threshold =
        opts->GetDouble("threshold", 0.0);
  }

  pipeline.num_threads = static_cast<int>(opts->GetInt("threads", 1));
  pipeline.budget.deadline_ms = opts->GetInt("deadline-ms", 0);
  pipeline.budget.max_memory_bytes =
      opts->GetInt("max-memory-mb", 0) * (int64_t{1} << 20);
  pipeline.spill_dir = opts->GetString("spill-dir", "");
  // With --report= every stage records into the registry; without it the
  // null sink keeps the run instrumentation-free.
  const std::string report_path = opts->GetString("report", "");
  MetricsRegistry registry;
  if (!report_path.empty()) pipeline.metrics = &registry;

  WallTimer timer;
  auto result = SymmetrizeAndCluster(*graph, pipeline);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result.status().ToString().c_str());
    // A budget abort still leaves the partial span tree in the registry;
    // write it out so the report shows how far the run got.
    if (!report_path.empty() &&
        (result.status().IsDeadlineExceeded() ||
         result.status().IsResourceExhausted())) {
      auto status = WriteRunReport(registry, report_path);
      if (status.ok()) {
        std::printf("wrote partial run report to %s\n", report_path.c_str());
      } else {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
      }
    }
    return 1;
  }
  std::printf(
      "symmetrize: %.2fs (%lld undirected edges)   cluster: %.2fs "
      "(%d clusters)   total %.2fs\n",
      result->symmetrize_seconds,
      static_cast<long long>(result->symmetrized.NumEdges()),
      result->cluster_seconds, result->num_clusters,
      timer.ElapsedSeconds());

  const std::string metis_out = opts->GetString("metis-out", "");
  if (!metis_out.empty()) {
    auto status = WriteMetisGraph(result->symmetrized, metis_out,
                                  opts->GetDouble("metis-scale", 1000.0));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote symmetrized graph to %s\n", metis_out.c_str());
  }
  const std::string output = opts->GetString("output", "");
  if (!output.empty()) {
    auto status = WriteClustering(result->clustering, output);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote cluster labels to %s\n", output.c_str());
  }
  if (!report_path.empty()) {
    RecordClusteringMetrics(result->symmetrized, result->clustering,
                            &registry);
    auto status = WriteRunReport(registry, report_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote run report to %s\n", report_path.c_str());
  }
  return 0;
}
