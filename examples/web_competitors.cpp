// The paper's introduction scenario (Section 2.1.1): websites of competing
// companies serve the same market, so they point to a common set of
// external pages (suppliers, standards, reviews) and are pointed to by a
// common set of pages (directories, press) — but never link to each other,
// "for fear of driving customers to a competitor's website".
//
// This example builds several such market segments, shows the directed
// normalized cut of a true segment is terrible (so directed-Ncut methods
// reject it), and then recovers the segments via Degree-discounted
// symmetrization while A+Aᵀ provably cannot.
//
//   $ ./web_competitors
#include <cstdio>

#include "cluster/pipeline.h"
#include "eval/fscore.h"
#include "eval/ncut.h"
#include "gen/planted.h"
#include "linalg/power_iteration.h"

int main() {
  using namespace dgc;

  PlantedOptions options;
  options.num_clusters = 8;       // 8 market segments
  options.cluster_size = 12;      // 12 competitor sites each
  options.targets_per_cluster = 6;  // shared suppliers/standards pages
  options.sources_per_cluster = 4;  // shared directories/press pages
  options.target_pool = 16;       // segments share some external pages
  options.source_pool = 10;
  options.p_intra = 0.0;          // competitors never link to each other
  options.noise_per_vertex = 0.5;
  options.seed = 99;
  auto dataset = GeneratePlanted(options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Digraph& web = dataset->graph;
  std::printf("web graph: %d sites, %lld links\n", web.NumVertices(),
              static_cast<long long>(web.NumEdges()));

  // 1. Directed normalized cut (Eq. 3) of the first true segment: high,
  // i.e. the objective the prior spectral work optimizes would never pick
  // this cluster.
  auto pagerank = PageRank(web.adjacency());
  if (!pagerank.ok()) return 1;
  std::vector<bool> segment(static_cast<size_t>(web.NumVertices()), false);
  for (Index v : dataset->truth.categories[0]) {
    segment[static_cast<size_t>(v)] = true;
  }
  std::printf(
      "\ndirected Ncut of true segment 0: %.3f (out of a max of 2.0 -\n"
      "every random-walk step leaves the segment, so directed-cut\n"
      "objectives consider it a terrible cluster)\n",
      DirectedNormalizedCut(web, pagerank->pi, segment));

  // 2. Cluster via both A+Aᵀ and Degree-discounted symmetrization.
  for (SymmetrizationMethod method : {SymmetrizationMethod::kAPlusAT,
                                      SymmetrizationMethod::kDegreeDiscounted}) {
    PipelineOptions pipeline;
    pipeline.method = method;
    pipeline.algorithm = ClusterAlgorithm::kGraclus;
    pipeline.graclus.k = 10;
    auto result = SymmetrizeAndCluster(web, pipeline);
    if (!result.ok()) return 1;
    auto f = EvaluateFScore(result->clustering, dataset->truth);
    if (!f.ok()) return 1;
    std::printf("\n%s + Graclus: AvgF = %.1f%%\n",
                SymmetrizationMethodName(method).data(), 100.0 * f->avg_f);
    // How intact is segment 0 in the output?
    const auto& members = dataset->truth.categories[0];
    Index label0 = result->clustering.LabelOf(members[0]);
    int intact = 0;
    for (Index v : members) {
      if (result->clustering.LabelOf(v) == label0) ++intact;
    }
    std::printf("  segment 0: %d/%zu competitor sites in one cluster\n",
                intact, members.size());
  }
  std::printf(
      "\nA+A' leaves competitor sites disconnected from one another, so\n"
      "they scatter; Degree-discounted connects them through their shared\n"
      "in/out-link profile and recovers the market segments.\n");
  return 0;
}
