// Research-field discovery in a citation network (the paper's Cora
// scenario, Section 4.1): generate a synthetic citation graph with known
// subfields, run every symmetrization through Metis, and report
// micro-averaged F-scores plus a paired sign test of the best method
// against the A+Aᵀ baseline (Section 5.6).
//
//   $ ./citation_communities [--papers=6000] [--clusters=70]
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/partition_metis.h"
#include "core/symmetrize.h"
#include "core/threshold_select.h"
#include "eval/fscore.h"
#include "eval/sign_test.h"
#include "gen/citation.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 1;
  }
  CitationOptions gen_options;
  gen_options.num_papers =
      static_cast<Index>(opts->GetInt("papers", 6000));
  const Index k = static_cast<Index>(opts->GetInt("clusters", 70));

  auto dataset = GenerateCitation(gen_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("citation graph: %d papers, %lld citations, %d subfields\n\n",
              dataset->graph.NumVertices(),
              static_cast<long long>(dataset->graph.NumEdges()),
              dataset->truth.NumCategories());

  std::printf("%-18s %10s %8s %8s %8s\n", "symmetrization", "edges", "AvgF",
              "prec", "recall");
  std::vector<bool> best_mask, baseline_mask;
  double best_f = -1.0;
  std::string best_name;
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    SymmetrizationOptions sym;
    if (method == SymmetrizationMethod::kBibliometric ||
        method == SymmetrizationMethod::kDegreeDiscounted) {
      ThresholdSelectOptions select;
      select.target_avg_degree = 60;
      auto threshold = SelectPruneThreshold(dataset->graph, method, sym,
                                            select);
      if (!threshold.ok()) continue;
      sym.prune_threshold = threshold->threshold;
    }
    auto u = Symmetrize(dataset->graph, method, sym);
    if (!u.ok()) continue;
    MetisOptions metis;
    metis.k = k;
    auto clustering = MetisPartition(*u, metis);
    if (!clustering.ok()) continue;
    auto f = EvaluateFScore(*clustering, dataset->truth);
    if (!f.ok()) continue;
    std::printf("%-18s %10lld %8.2f %8.2f %8.2f\n",
                SymmetrizationMethodName(method).data(),
                static_cast<long long>(u->NumEdges()), 100.0 * f->avg_f,
                100.0 * f->avg_precision, 100.0 * f->avg_recall);
    auto mask = CorrectlyClusteredMask(*clustering, dataset->truth);
    if (!mask.ok()) continue;
    if (method == SymmetrizationMethod::kAPlusAT) {
      baseline_mask = *mask;
    }
    if (f->avg_f > best_f) {
      best_f = f->avg_f;
      best_name = SymmetrizationMethodName(method);
      best_mask = *mask;
    }
  }

  if (!best_mask.empty() && !baseline_mask.empty()) {
    auto sign = PairedSignTest(best_mask, baseline_mask);
    if (sign.ok()) {
      std::printf(
          "\nsign test, %s vs A+A': %lld nodes correct only under %s,\n"
          "%lld only under A+A'; log10(p) = %.1f\n",
          best_name.c_str(), static_cast<long long>(sign->a_only),
          best_name.c_str(), static_cast<long long>(sign->b_only),
          sign->log10_p_value);
    }
  }
  return 0;
}
