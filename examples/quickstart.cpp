// Quickstart: the two-stage framework in ~30 lines.
//
// Build a small directed graph, symmetrize it with the Degree-discounted
// transformation (Section 3.4 of Satuluri & Parthasarathy, EDBT 2011), and
// cluster the result with MLR-MCL.
//
//   $ ./quickstart
#include <cstdio>

#include "cluster/pipeline.h"
#include "graph/digraph.h"

int main() {
  using namespace dgc;

  // A directed graph with two "co-citation" clusters (the paper's Figure 1
  // pattern): members never link to each other, but share targets/sources.
  //   cluster {0,1,2}: all point to 6,7 and are pointed to by 8
  //   cluster {3,4,5}: all point to 9,10 and are pointed to by 11
  std::vector<Edge> edges;
  for (Index m : {0, 1, 2}) {
    edges.push_back({m, 6, 1.0});
    edges.push_back({m, 7, 1.0});
    edges.push_back({8, m, 1.0});
  }
  for (Index m : {3, 4, 5}) {
    edges.push_back({m, 9, 1.0});
    edges.push_back({m, 10, 1.0});
    edges.push_back({11, m, 1.0});
  }
  auto graph = Digraph::FromEdges(12, edges);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph construction failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  // Stage 1 + 2: Degree-discounted symmetrization, then MLR-MCL.
  PipelineOptions options;
  options.method = SymmetrizationMethod::kDegreeDiscounted;
  options.algorithm = ClusterAlgorithm::kMlrMcl;
  options.mlr_mcl.rmcl.inflation = 2.0;
  auto result = SymmetrizeAndCluster(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("symmetrized graph: %lld undirected edges\n",
              static_cast<long long>(result->symmetrized.NumEdges()));
  std::printf("found %d clusters:\n", result->num_clusters);
  for (const auto& members : result->clustering.ToClusters()) {
    std::printf("  {");
    for (size_t i = 0; i < members.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", members[i]);
    }
    std::printf("}\n");
  }
  std::printf(
      "\nNote how {0,1,2} and {3,4,5} cluster together despite having no\n"
      "edges among themselves - the similarity comes entirely from shared\n"
      "in- and out-links, which A+A' symmetrization cannot capture.\n");
  return 0;
}
