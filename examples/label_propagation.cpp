// Semi-supervised classification on a directed citation graph: label a
// handful of papers per subfield and propagate over the directed Laplacian
// kernel (Zhou et al. 2005, the paper's reference [25] — Section 3.4
// credits it with the same degree-discounting intuition the symmetrization
// framework builds on).
//
//   $ ./label_propagation [--papers=3000] [--seeds-per-class=3]
#include <cstdio>
#include <vector>

#include "cluster/semi_supervised.h"
#include "gen/citation.h"
#include "util/options.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  CitationOptions gen_options;
  gen_options.num_papers = static_cast<Index>(opts->GetInt("papers", 3000));
  gen_options.num_fields = 5;
  gen_options.subfields_per_field = 1;  // 5 coarse classes
  gen_options.p_unlabeled = 0.0;
  // Stronger field cohesion than the clustering benchmarks use: label
  // propagation needs within-class paths, not co-citation structure.
  gen_options.p_same_subfield = 0.7;
  gen_options.p_same_field = 0.1;
  gen_options.p_global_hub = 0.1;
  gen_options.mean_citations = 8.0;
  auto dataset = GenerateCitation(gen_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const Index num_classes = dataset->truth.NumCategories();
  std::printf("citation graph: %d papers, %lld citations, %d fields\n",
              dataset->graph.NumVertices(),
              static_cast<long long>(dataset->graph.NumEdges()),
              num_classes);

  // Pick a few random seeds per class.
  const int per_class =
      static_cast<int>(opts->GetInt("seeds-per-class", 10));
  Rng rng(7);
  std::vector<std::pair<Index, Index>> seeds;
  for (Index c = 0; c < num_classes; ++c) {
    const auto& members = dataset->truth.categories[static_cast<size_t>(c)];
    if (members.empty()) continue;
    for (int s = 0; s < per_class; ++s) {
      seeds.emplace_back(
          members[static_cast<size_t>(rng.UniformU64(members.size()))], c);
    }
  }
  std::printf("propagating from %zu seeds (%d per class)\n", seeds.size(),
              per_class);

  SemiSupervisedOptions propagate;
  propagate.mu = 0.8;
  auto result =
      PropagateLabelsDirected(dataset->graph, seeds, num_classes, propagate);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  // Accuracy against the generating classes.
  std::vector<Index> truth_class(
      static_cast<size_t>(dataset->graph.NumVertices()),
      Clustering::kUnassigned);
  for (size_t c = 0; c < dataset->truth.categories.size(); ++c) {
    for (Index v : dataset->truth.categories[c]) {
      truth_class[static_cast<size_t>(v)] = static_cast<Index>(c);
    }
  }
  int64_t correct = 0, predicted = 0;
  for (Index v = 0; v < dataset->graph.NumVertices(); ++v) {
    const Index label = result->labels.LabelOf(v);
    if (label == Clustering::kUnassigned) continue;
    ++predicted;
    if (label == truth_class[static_cast<size_t>(v)]) ++correct;
  }
  std::printf(
      "converged=%s after %d iterations; predicted %lld/%d vertices, "
      "accuracy %.1f%%\n",
      result->converged ? "yes" : "no", result->iterations,
      static_cast<long long>(predicted), dataset->graph.NumVertices(),
      predicted > 0 ? 100.0 * static_cast<double>(correct) /
                          static_cast<double>(predicted)
                    : 0.0);
  std::printf(
      "\nWith only %d labels per field the directed Laplacian kernel\n"
      "recovers the bulk of the field assignments - the same smoothness-on-directed-\n"
      "graphs machinery (Eq. 5) that powers the spectral baselines.\n",
      per_class);
  return 0;
}
