// Figure 5: effectiveness of the four symmetrizations on Cora, using (a)
// MLR-MCL and (b) Graclus as the stage-2 clustering algorithm. Avg F-score
// as a function of the number of clusters.
//
// MLR-MCL's cluster count is controlled indirectly via the inflation
// parameter (Section 4.2), so the MLR-MCL series sweeps inflation and
// reports the resulting (clusters, F) pairs; Graclus takes k directly.
//
// Paper shape to match (Fig. 5): Degree-discounted best overall (peak
// 36.62 with MLR-MCL), Bibliometric close behind, A+Aᵀ and Random walk
// similar and clearly worse; peaks near the true category count (70).
#include <vector>

#include "bench/bench_common.h"
#include "cluster/graclus.h"
#include "cluster/mlr_mcl.h"

namespace dgc {
namespace {

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Figure 5: symmetrization effectiveness on Cora",
                "Satuluri & Parthasarathy, EDBT 2011, Figure 5(a,b)");
  Dataset cora = bench::MakeCora(scale);
  std::printf("dataset: %d vertices, %lld edges, %d categories\n\n",
              cora.graph.NumVertices(),
              static_cast<long long>(cora.graph.NumEdges()),
              cora.truth.NumCategories());

  const std::vector<double> inflations = {1.4, 1.7, 2.0, 2.5, 3.0};
  const std::vector<Index> ks = {20, 50, 70, 90, 110, 140};

  std::printf("(a) MLR-MCL (inflation sweep -> clusters, Avg F)\n");
  std::printf("%-18s %-9s %9s %8s %8s\n", "symmetrization", "inflation",
              "clusters", "AvgF", "sec");
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    UGraph u = bench::SymmetrizeAuto(cora.graph, method, 100);
    for (double inflation : inflations) {
      MlrMclOptions options;
      options.rmcl.inflation = inflation;
      WallTimer timer;
      auto clustering = MlrMcl(u, options);
      DGC_CHECK(clustering.ok()) << clustering.status();
      std::printf("%-18s %-9.2f %9d %8.2f %8.2f\n",
                  SymmetrizationMethodName(method).data(), inflation,
                  clustering->NumClusters(),
                  100.0 * bench::AvgF(*clustering, cora.truth),
                  timer.ElapsedSeconds());
    }
  }

  std::printf("\n(b) Graclus (k sweep)\n");
  std::printf("%-18s %9s %8s %8s\n", "symmetrization", "clusters", "AvgF",
              "sec");
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    UGraph u = bench::SymmetrizeAuto(cora.graph, method, 100);
    for (Index k : ks) {
      GraclusOptions options;
      options.k = k;
      WallTimer timer;
      auto clustering = GraclusCluster(u, options);
      DGC_CHECK(clustering.ok()) << clustering.status();
      std::printf("%-18s %9d %8.2f %8.2f\n",
                  SymmetrizationMethodName(method).data(), k,
                  100.0 * bench::AvgF(*clustering, cora.truth),
                  timer.ElapsedSeconds());
    }
  }

  std::printf(
      "\nExpected shape vs paper (Fig. 5): Degree-discounted and\n"
      "Bibliometric dominate A+A' and Random walk for both clusterers,\n"
      "with Degree-discounted best overall.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
