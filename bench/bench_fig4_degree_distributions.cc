// Figure 4: degree distributions of the symmetrized Wikipedia graph, one
// log-binned histogram per symmetrization.
//
// Paper shape to match: A+Aᵀ and Random walk share one distribution (same
// edge set); Bibliometric has both many low-degree nodes and many hubs;
// Degree-discounted concentrates nodes in medium degrees (~50-200, the
// natural cluster size) and eliminates hubs.
#include "bench/bench_common.h"
#include "core/symmetrize.h"
#include "core/threshold_select.h"

namespace dgc {
namespace {

void PrintHistogram(const std::string& label, const UGraph& g) {
  DegreeHistogram h = ComputeDegreeHistogram(g);
  std::printf("\n--- %s: mean degree %.1f, max degree %lld, isolated %lld\n",
              label.c_str(), h.mean_degree,
              static_cast<long long>(h.max_degree),
              static_cast<long long>(h.zero_count));
  std::printf("%s", FormatDegreeHistogram(h).c_str());
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Figure 4: degree distributions of symmetrized Wikipedia",
                "Satuluri & Parthasarathy, EDBT 2011, Figure 4");
  Dataset wiki = bench::MakeWiki(scale);

  auto sum = SymmetrizeAPlusAT(wiki.graph);
  DGC_CHECK(sum.ok());
  PrintHistogram("A+A' (same structure as Random walk)", *sum);

  ThresholdSelectOptions select;
  select.target_avg_degree = 80;
  auto biblio_threshold = SelectPruneThreshold(
      wiki.graph, SymmetrizationMethod::kBibliometric, {}, select);
  DGC_CHECK(biblio_threshold.ok());
  SymmetrizationOptions biblio_options;
  biblio_options.prune_threshold =
      std::max(0.0, std::floor(biblio_threshold->threshold));
  auto biblio = SymmetrizeBibliometric(wiki.graph, biblio_options);
  DGC_CHECK(biblio.ok());
  PrintHistogram("Bibliometric (threshold " +
                     std::to_string(biblio_options.prune_threshold) + ")",
                 *biblio);

  auto dd_threshold = SelectPruneThreshold(
      wiki.graph, SymmetrizationMethod::kDegreeDiscounted, {}, select);
  DGC_CHECK(dd_threshold.ok());
  SymmetrizationOptions dd_options;
  dd_options.prune_threshold = dd_threshold->threshold;
  auto dd = SymmetrizeDegreeDiscounted(wiki.graph, dd_options);
  DGC_CHECK(dd.ok());
  PrintHistogram("Degree-discounted (threshold " +
                     std::to_string(dd_options.prune_threshold) + ")",
                 *dd);

  std::printf(
      "\nExpected shape vs paper: Degree-discounted has the smallest max\n"
      "degree (hubs eliminated) and few isolated nodes; Bibliometric keeps\n"
      "hub-scale degrees and strands many nodes.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
