// Table 3: effect of varying the Degree-discounted pruning threshold on
// Wikipedia — number of edges, Avg F, and clustering time for MLR-MCL and
// Metis at each threshold.
//
// Paper shape to match: raising the threshold removes edges, costs a
// gradual sliver of F-score, and buys large clustering-time savings; even
// the most aggressive threshold beats A+Aᵀ on both axes.
#include <vector>

#include "bench/bench_common.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"

namespace dgc {
namespace {

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv, 0.75);
  bench::Banner("Table 3: effect of the pruning threshold",
                "Satuluri & Parthasarathy, EDBT 2011, Table 3");
  Dataset wiki = bench::MakeWiki(scale);
  const Index n = wiki.graph.NumVertices();
  const Index metis_k = n / 100;

  // Anchor the threshold ladder on the auto-selected value.
  double base = 0.0;
  bench::SymmetrizeAuto(wiki.graph,
                        SymmetrizationMethod::kDegreeDiscounted, 100, &base);
  if (base <= 0.0) base = 0.01;
  const std::vector<double> thresholds = {base, base * 1.5, base * 2.0,
                                          base * 2.5};

  std::printf("%-10s %12s | %8s %10s | %8s %10s\n", "threshold", "edges",
              "mcl-F", "mcl-sec", "metis-F", "metis-sec");
  for (double threshold : thresholds) {
    SymmetrizationOptions options;
    options.prune_threshold = threshold;
    auto u = SymmetrizeDegreeDiscounted(wiki.graph, options);
    DGC_CHECK(u.ok());

    MlrMclOptions mcl;
    mcl.rmcl.inflation = 2.0;
    WallTimer mcl_timer;
    auto mcl_clustering = MlrMcl(*u, mcl);
    DGC_CHECK(mcl_clustering.ok());
    const double mcl_seconds = mcl_timer.ElapsedSeconds();
    const double mcl_f = bench::AvgF(*mcl_clustering, wiki.truth);

    MetisOptions metis;
    metis.k = metis_k;
    WallTimer metis_timer;
    auto metis_clustering = MetisPartition(*u, metis);
    DGC_CHECK(metis_clustering.ok());
    const double metis_seconds = metis_timer.ElapsedSeconds();
    const double metis_f = bench::AvgF(*metis_clustering, wiki.truth);

    std::printf("%-10.4f %12lld | %8.2f %10.2f | %8.2f %10.2f\n", threshold,
                static_cast<long long>(u->NumArcs()), 100.0 * mcl_f,
                mcl_seconds, 100.0 * metis_f, metis_seconds);
  }

  std::printf(
      "\nExpected shape vs paper (Table 3): edges and clustering time fall\n"
      "as the threshold rises, while Avg F drops only gradually.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
