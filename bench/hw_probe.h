// Hardware probe for the roofline mode of bench_kernels: cache geometry
// from sysconf plus *measured* machine ceilings — sustained memory
// bandwidth (STREAM triad) and mul+add throughput at both dispatch levels.
// The ceilings are measured with the same simd primitives the kernels use
// (no FMA), so a kernel sitting on the roof is genuinely at the limit this
// code can reach, not at a theoretical peak it was never going to hit.
#pragma once

#include <cstdint>
#include <string>

namespace dgc {

struct HwInfo {
  /// Online logical CPUs (sysconf).
  int logical_cpus = 0;
  /// Cache sizes in bytes; 0 when the platform does not report one.
  int64_t l1d_bytes = 0;
  int64_t l2_bytes = 0;
  int64_t l3_bytes = 0;
  /// Data-cache line size in bytes (64 assumed when unreported).
  int64_t cacheline_bytes = 64;
  /// Best vector backend this binary can run here: "avx2"/"neon"/"scalar".
  std::string simd_backend;
  /// Sustained STREAM-triad bandwidth, GB/s (best of several passes over a
  /// working set several times the last-level cache).
  double stream_triad_gbps = 0.0;
  /// Mul+add throughput over an L1-resident buffer, GFLOP/s, at the scalar
  /// and vector dispatch levels (equal when no vector backend exists).
  double scalar_mulladd_gflops = 0.0;
  double vector_mulladd_gflops = 0.0;
};

/// Probes the machine. The bandwidth/compute measurements take a few
/// hundred milliseconds total.
HwInfo ProbeHardware();

/// The probe as a JSON object (the "hardware" field of dgc.roofline.v1).
std::string HwInfoJson(const HwInfo& info);

}  // namespace dgc
