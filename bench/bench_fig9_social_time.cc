// Figure 9: clustering times with MLR-MCL on (a) Flickr and (b)
// LiveJournal. The paper omits Bibliometric here — its pruned graph
// strands too many singletons to be viable (Table 2) — and so do we.
//
// Paper shape to match: Degree-discounted is at least ~2x faster to
// cluster than A+Aᵀ / Random walk at the higher cluster counts.
#include "bench/bench_common.h"
#include "cluster/mlr_mcl.h"

namespace dgc {
namespace {

void RunDataset(const Dataset& dataset) {
  std::printf("\n--- %s: %d vertices, %lld edges\n", dataset.name.c_str(),
              dataset.graph.NumVertices(),
              static_cast<long long>(dataset.graph.NumEdges()));
  std::printf("%-18s %12s %9s %9s %10s\n", "symmetrization", "sym-edges",
              "inflation", "clusters", "time(s)");
  for (SymmetrizationMethod method :
       {SymmetrizationMethod::kAPlusAT, SymmetrizationMethod::kRandomWalk,
        SymmetrizationMethod::kDegreeDiscounted}) {
    UGraph u = bench::SymmetrizeAuto(dataset.graph, method, 30);
    for (double inflation : {1.6, 2.2}) {
      MlrMclOptions options;
      options.rmcl.inflation = inflation;
      WallTimer timer;
      auto clustering = MlrMcl(u, options);
      DGC_CHECK(clustering.ok());
      std::printf("%-18s %12lld %9.2f %9d %10.2f\n",
                  SymmetrizationMethodName(method).data(),
                  static_cast<long long>(u.NumEdges()), inflation,
                  clustering->NumClusters(), timer.ElapsedSeconds());
    }
  }
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv, 0.35);
  bench::Banner("Figure 9: clustering times on Flickr and LiveJournal",
                "Satuluri & Parthasarathy, EDBT 2011, Figure 9(a,b)");
  RunDataset(bench::MakeFlickr(scale));
  RunDataset(bench::MakeLivejournal(scale));
  std::printf(
      "\nExpected shape vs paper (Fig. 9): Degree-discounted clusters\n"
      "fastest on both social graphs, mirroring the Wikipedia trends.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
