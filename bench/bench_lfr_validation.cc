// Validation on synthetically controlled datasets — the experiment the
// paper's conclusion calls for but could not run ("we would like to
// validate results on synthetically controlled datasets. Unfortunately, we
// are aware of no synthetic graph generators for producing realistic
// directed graphs with known ground truth clusters").
//
// Using the directed LFR-style generator (src/gen/lfr.*), this sweeps the
// mixing parameter mu under both intra-community edge styles and reports
// NMI per symmetrization (Graclus, k = true community count):
//   * dense style (members cite each other): all methods work at low mu
//     and degrade together as mu grows — symmetrization choice matters
//     little when interconnectivity carries the signal;
//   * co-citation style with authority overlap (the Figure-1 regime):
//     A+Aᵀ fails even at low mu while Degree-discounted stays accurate,
//     directly validating the paper's central hypothesis under controlled
//     conditions.
#include <vector>

#include "bench/bench_common.h"
#include "cluster/pipeline.h"
#include "eval/partition_metrics.h"
#include "gen/lfr.h"

namespace dgc {
namespace {

double RunOne(const Dataset& dataset, const Clustering& truth_clustering,
              SymmetrizationMethod method) {
  PipelineOptions pipeline;
  pipeline.method = method;
  if (method == SymmetrizationMethod::kBibliometric ||
      method == SymmetrizationMethod::kDegreeDiscounted) {
    ThresholdSelectOptions select;
    select.target_avg_degree = 80;
    auto selection = SelectPruneThreshold(dataset.graph, method,
                                          pipeline.symmetrization, select);
    DGC_CHECK(selection.ok());
    pipeline.symmetrization.prune_threshold = selection->threshold;
  }
  pipeline.algorithm = ClusterAlgorithm::kGraclus;
  pipeline.graclus.k = dataset.truth.NumCategories();
  auto result = SymmetrizeAndCluster(dataset.graph, pipeline);
  DGC_CHECK(result.ok()) << result.status();
  auto cmp = ComparePartitions(result->clustering, truth_clustering);
  DGC_CHECK(cmp.ok());
  return cmp->nmi;
}

void RunStyle(LfrCommunityStyle style, double authority_overlap, Index n,
              uint64_t seed) {
  std::printf("%-6s %10s %10s %10s %10s\n", "mu", "A+A'", "RandomWalk",
              "Biblio", "DegDisc");
  for (double mu : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    LfrOptions options;
    options.num_vertices = n;
    options.mixing = mu;
    options.style = style;
    options.authority_overlap = authority_overlap;
    options.seed = seed;
    auto dataset = GenerateLfr(options);
    DGC_CHECK(dataset.ok()) << dataset.status();
    auto truth_clustering =
        TruthToClustering(dataset->truth, dataset->graph.NumVertices());
    DGC_CHECK(truth_clustering.ok());
    std::printf("%-6.2f", mu);
    for (SymmetrizationMethod method : kAllSymmetrizations) {
      std::printf(" %10.3f", RunOne(*dataset, *truth_clustering, method));
    }
    std::printf("\n");
  }
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  const Index n = static_cast<Index>(4000 * scale);
  bench::Banner(
      "LFR validation: controlled directed graphs with known clusters",
      "Satuluri & Parthasarathy, EDBT 2011, Section 6 (future work)");

  std::printf("\n(a) dense style (classic LFR: members cite each other)\n");
  RunStyle(LfrCommunityStyle::kDense, 0.0, n, 101);

  std::printf(
      "\n(b) co-citation style, authority overlap 0.5 (Figure-1 regime)\n");
  RunStyle(LfrCommunityStyle::kCocitation, 0.5, n, 102);

  std::printf(
      "\nExpected shape: in (a) all symmetrizations work at low mu and\n"
      "degrade together; in (b) the similarity symmetrizations retain much\n"
      "higher NMI than A+A' and Random walk at every mu - the members do\n"
      "not inter-link, so only in/out-link similarity carries the cluster\n"
      "signal. Bibliometric matches Degree-discounted here because LFR\n"
      "communities have no hub contamination to discount; the hub-heavy\n"
      "Wikipedia experiments (Figs. 7-8) are where discounting separates\n"
      "them.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
