// Figure 8: clustering times on Wikipedia using (a) MLR-MCL and (b) Metis
// for each symmetrization.
//
// Paper shape to match: clustering the Degree-discounted graph is fastest
// for both algorithms — 4.5-5x faster than the alternatives at high
// cluster counts — because hubs are gone and cluster structure is cleaner.
#include <vector>

#include "bench/bench_common.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"

namespace dgc {
namespace {

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv, 0.6);
  bench::Banner("Figure 8: clustering times on Wikipedia",
                "Satuluri & Parthasarathy, EDBT 2011, Figure 8(a,b)");
  Dataset wiki = bench::MakeWiki(scale);
  const Index n = wiki.graph.NumVertices();
  const std::vector<Index> ks = {n / 220, n / 140, n / 90, n / 60};

  std::printf("(a) MLR-MCL time (s) per symmetrization\n");
  std::printf("%-18s %12s %9s %9s %10s\n", "symmetrization", "sym-edges",
              "inflation", "clusters", "time(s)");
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    UGraph u = bench::SymmetrizeAuto(wiki.graph, method, 80);
    for (double inflation : {1.5, 2.0, 2.6}) {
      MlrMclOptions options;
      options.rmcl.inflation = inflation;
      WallTimer timer;
      auto clustering = MlrMcl(u, options);
      DGC_CHECK(clustering.ok());
      std::printf("%-18s %12lld %9.2f %9d %10.2f\n",
                  SymmetrizationMethodName(method).data(),
                  static_cast<long long>(u.NumEdges()), inflation,
                  clustering->NumClusters(), timer.ElapsedSeconds());
    }
  }

  std::printf("\n(b) Metis time (s) per symmetrization\n");
  std::printf("%-18s %12s %9s %10s\n", "symmetrization", "sym-edges",
              "clusters", "time(s)");
  for (SymmetrizationMethod method :
       {SymmetrizationMethod::kDegreeDiscounted,
        SymmetrizationMethod::kAPlusAT,
        SymmetrizationMethod::kBibliometric}) {
    UGraph u = bench::SymmetrizeAuto(wiki.graph, method, 80);
    for (Index k : ks) {
      MetisOptions options;
      options.k = k;
      WallTimer timer;
      auto clustering = MetisPartition(u, options);
      DGC_CHECK(clustering.ok());
      std::printf("%-18s %12lld %9d %10.2f\n",
                  SymmetrizationMethodName(method).data(),
                  static_cast<long long>(u.NumEdges()), k,
                  timer.ElapsedSeconds());
    }
  }

  std::printf(
      "\nExpected shape vs paper (Fig. 8): the Degree-discounted graph\n"
      "clusters fastest under both algorithms, with the gap widening at\n"
      "higher cluster counts.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
