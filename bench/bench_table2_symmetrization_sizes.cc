// Table 2: number of edges produced by each symmetrization and the pruning
// thresholds used. The thresholds for the similarity methods are picked
// with the sampling procedure of Section 5.3.1 (target average degree
// ~50-150, the paper's recommended operating range).
//
// Paper shape to match: A+Aᵀ and Random walk always share one edge count;
// Bibliometric needs coarse integer thresholds and still produces the most
// edges; Degree-discounted supports fine-grained thresholds.
#include <vector>

#include "bench/bench_common.h"
#include "core/symmetrize.h"
#include "core/threshold_select.h"

namespace dgc {
namespace {

void RunDataset(const Dataset& dataset, Index target_degree) {
  // A + Aᵀ (and Random walk: same structure, Section 3.2).
  auto sum = SymmetrizeAPlusAT(dataset.graph);
  DGC_CHECK(sum.ok()) << sum.status();

  ThresholdSelectOptions select;
  select.target_avg_degree = target_degree;

  auto biblio_threshold = SelectPruneThreshold(
      dataset.graph, SymmetrizationMethod::kBibliometric, {}, select);
  DGC_CHECK(biblio_threshold.ok()) << biblio_threshold.status();
  SymmetrizationOptions biblio_options;
  // Bibliometric entries are integer counts; the paper's Table 2 uses
  // integer thresholds (25, 20, 0, 5).
  biblio_options.prune_threshold =
      std::max(0.0, std::floor(biblio_threshold->threshold));
  auto biblio = SymmetrizeBibliometric(dataset.graph, biblio_options);
  DGC_CHECK(biblio.ok()) << biblio.status();

  auto dd_threshold = SelectPruneThreshold(
      dataset.graph, SymmetrizationMethod::kDegreeDiscounted, {}, select);
  DGC_CHECK(dd_threshold.ok()) << dd_threshold.status();
  SymmetrizationOptions dd_options;
  dd_options.prune_threshold = dd_threshold->threshold;
  auto dd = SymmetrizeDegreeDiscounted(dataset.graph, dd_options);
  DGC_CHECK(dd.ok()) << dd.status();

  std::printf("%-16s %14lld %14lld %10.0f %14lld %10.4f\n",
              dataset.name.c_str(),
              static_cast<long long>(sum->NumArcs()),
              static_cast<long long>(biblio->NumArcs()),
              biblio_options.prune_threshold,
              static_cast<long long>(dd->NumArcs()),
              dd_options.prune_threshold);
  std::printf("%-16s biblio singletons: %d (%.1f%%)   dd singletons: %d "
              "(%.1f%%)\n",
              "", biblio->NumSingletons(),
              100.0 * biblio->NumSingletons() / biblio->NumVertices(),
              dd->NumSingletons(),
              100.0 * dd->NumSingletons() / dd->NumVertices());
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Table 2: edges per symmetrization + pruning thresholds",
                "Satuluri & Parthasarathy, EDBT 2011, Table 2");
  std::printf("%-16s %14s %14s %10s %14s %10s\n", "dataset", "A+A'/RW-edges",
              "biblio-edges", "biblio-thr", "dd-edges", "dd-thr");
  RunDataset(bench::MakeCora(scale), /*target_degree=*/60);
  RunDataset(bench::MakeWiki(scale), /*target_degree=*/80);
  RunDataset(bench::MakeFlickr(scale * 0.5), /*target_degree=*/60);
  RunDataset(bench::MakeLivejournal(scale * 0.5), /*target_degree=*/60);
  std::printf(
      "\nExpected shape vs paper (Table 2 + Section 5.3): Bibliometric's\n"
      "integer thresholds strand a large fraction of nodes as singletons\n"
      "on hub-heavy graphs, while Degree-discounted reaches a similar edge\n"
      "budget with near-zero singletons.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
