// Table 5: the heaviest edges in each symmetrization of Wikipedia, with
// node names. Weights are normalized by the smallest edge weight, as in
// the paper ("the non-normalized weights are incommensurable").
//
// Paper shape to match: Random walk and Bibliometric rank hub pairs
// ("Area" - "Population density", ...) on top; Degree-discounted surfaces
// near-duplicate page pairs ("Sepiidae" - "Sepia (genus)", ...).
#include "bench/bench_common.h"
#include "core/top_edges.h"

namespace dgc {
namespace {

void PrintTop(const Dataset& dataset, const std::string& label,
              const UGraph& u, Index k) {
  std::printf("\n--- %s\n", label.c_str());
  std::printf("%-42s %-42s %12s\n", "node 1", "node 2", "weight");
  for (const WeightedEdge& e : TopWeightedEdgesNormalized(u, k)) {
    std::printf("%-42s %-42s %12.1f\n", dataset.NameOf(e.u).c_str(),
                dataset.NameOf(e.v).c_str(), e.weight);
  }
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Table 5: top-weight edges per symmetrization",
                "Satuluri & Parthasarathy, EDBT 2011, Table 5");
  Dataset wiki = bench::MakeWiki(scale);
  const Index top_k = 5;

  auto rw = Symmetrize(wiki.graph, SymmetrizationMethod::kRandomWalk);
  DGC_CHECK(rw.ok());
  PrintTop(wiki, "Random walk", *rw, top_k);

  UGraph biblio = bench::SymmetrizeAuto(
      wiki.graph, SymmetrizationMethod::kBibliometric, 80);
  PrintTop(wiki, "Bibliometric", biblio, top_k);

  UGraph dd = bench::SymmetrizeAuto(
      wiki.graph, SymmetrizationMethod::kDegreeDiscounted, 80);
  PrintTop(wiki, "Degree-discounted", dd, top_k);

  std::printf(
      "\nExpected shape vs paper (Table 5): hub pages dominate the Random\n"
      "walk and Bibliometric rankings; Degree-discounted's top edges join\n"
      "specific, near-duplicate pages instead.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
