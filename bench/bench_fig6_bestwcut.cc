// Figure 6: Degree-discounted symmetrization + {MLR-MCL, Graclus, Metis}
// versus Meila & Pentney's BestWCut on Cora: (a) Avg F-scores, (b)
// clustering times.
//
// Paper shape to match: every multilevel clusterer on the degree-
// discounted graph beats BestWCut on quality (peaks 36.6/34.7/34.3 vs
// 29.9) and is orders of magnitude faster (Fig. 6b is log-scale seconds).
#include <vector>

#include "bench/bench_common.h"
#include "cluster/bestwcut.h"
#include "cluster/graclus.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"

namespace dgc {
namespace {

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner(
      "Figure 6: Degree-discounted + multilevel clusterers vs BestWCut",
      "Satuluri & Parthasarathy, EDBT 2011, Figure 6(a,b)");
  Dataset cora = bench::MakeCora(scale);
  const std::vector<Index> ks = {20, 50, 70, 110, 140};

  double symmetrize_seconds = 0.0;
  WallTimer sym_timer;
  UGraph dd = bench::SymmetrizeAuto(
      cora.graph, SymmetrizationMethod::kDegreeDiscounted, 100);
  symmetrize_seconds = sym_timer.ElapsedSeconds();
  std::printf("degree-discounted symmetrization: %.2f s\n\n",
              symmetrize_seconds);

  std::printf("%-28s %9s %8s %10s\n", "method", "clusters", "AvgF",
              "time(s)");
  // MLR-MCL: inflation sweep to cover the cluster range.
  for (double inflation : {1.4, 1.8, 2.2, 2.8}) {
    MlrMclOptions options;
    options.rmcl.inflation = inflation;
    WallTimer timer;
    auto clustering = MlrMcl(dd, options);
    DGC_CHECK(clustering.ok());
    std::printf("%-28s %9d %8.2f %10.2f\n", "DD + MLR-MCL",
                clustering->NumClusters(),
                100.0 * bench::AvgF(*clustering, cora.truth),
                timer.ElapsedSeconds());
  }
  for (Index k : ks) {
    GraclusOptions options;
    options.k = k;
    WallTimer timer;
    auto clustering = GraclusCluster(dd, options);
    DGC_CHECK(clustering.ok());
    std::printf("%-28s %9d %8.2f %10.2f\n", "DD + Graclus", k,
                100.0 * bench::AvgF(*clustering, cora.truth),
                timer.ElapsedSeconds());
  }
  for (Index k : ks) {
    MetisOptions options;
    options.k = k;
    WallTimer timer;
    auto clustering = MetisPartition(dd, options);
    DGC_CHECK(clustering.ok());
    std::printf("%-28s %9d %8.2f %10.2f\n", "DD + Metis", k,
                100.0 * bench::AvgF(*clustering, cora.truth),
                timer.ElapsedSeconds());
  }
  // BestWCut: spectral, so cap the eigen subspace to keep the sweep
  // tractable; it is still far slower than the multilevel methods.
  for (Index k : ks) {
    BestWCutOptions options;
    options.k = k;
    options.spectral.max_subspace = static_cast<int>(2 * k + 50);
    options.spectral.kmeans_restarts = 1;
    WallTimer timer;
    auto result = BestWCut(cora.graph, options);
    DGC_CHECK(result.ok()) << result.status();
    std::printf("%-28s %9d %8.2f %10.2f  (weights: %s)\n", "BestWCut", k,
                100.0 * bench::AvgF(result->clustering, cora.truth),
                timer.ElapsedSeconds(),
                WCutWeightingName(result->chosen).data());
  }

  std::printf(
      "\nExpected shape vs paper (Fig. 6): the three multilevel methods on\n"
      "the degree-discounted graph all reach higher Avg F than BestWCut,\n"
      "at 1-3 orders of magnitude lower clustering time.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
