// Ablation: SpGEMM-with-threshold versus Bayardo-style all-pairs candidate
// pruning (Section 3.6's suggested optimization, reference [2]) for
// computing the thresholded out-link similarity M Mᵀ of the
// degree-discounted factor matrix, across thresholds and graph families.
//
// Expected shape: both produce identical matrices (verified); the
// all-pairs backend wins increasingly as the threshold rises, because the
// row-level and suffix bounds cut candidate generation — the mechanism the
// paper's complexity analysis points to for "significant speedups compared
// to computing all the entries in the similarity matrix".
#include <vector>

#include "bench/bench_common.h"
#include "core/all_pairs.h"
#include "gen/rmat.h"
#include "linalg/spgemm.h"

namespace dgc {
namespace {

void RunGraph(const std::string& name, const Digraph& g) {
  auto factors = BuildSimilarityFactors(
      g, SymmetrizationMethod::kDegreeDiscounted);
  DGC_CHECK(factors.ok());
  const CsrMatrix& m = factors->m;
  std::printf("\n--- %s: factor matrix %s\n", name.c_str(),
              m.DebugString().c_str());
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "threshold", "spgemm-s",
              "allpairs-s", "pairs-out", "candidates", "rows-skip");
  for (Scalar threshold : {0.02, 0.05, 0.1, 0.2}) {
    SpGemmOptions reference;
    reference.threshold = threshold;
    reference.drop_diagonal = true;
    WallTimer spgemm_timer;
    auto dense_path = SpGemmAAt(m, reference);
    const double spgemm_seconds = spgemm_timer.ElapsedSeconds();
    DGC_CHECK(dense_path.ok());

    AllPairsOptions pruned;
    pruned.threshold = threshold;
    AllPairsStats stats;
    WallTimer allpairs_timer;
    auto pruned_path = AllPairsSimilarity(m, pruned, &stats);
    const double allpairs_seconds = allpairs_timer.ElapsedSeconds();
    DGC_CHECK(pruned_path.ok());
    DGC_CHECK_EQ(dense_path->nnz(), pruned_path->nnz())
        << "backends disagree at threshold " << threshold;

    std::printf("%-10.3f %12.3f %12.3f %12lld %12lld %10lld\n", threshold,
                spgemm_seconds, allpairs_seconds,
                static_cast<long long>(stats.output_pairs),
                static_cast<long long>(stats.candidate_pairs),
                static_cast<long long>(stats.skipped_rows));
  }
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Ablation: SpGEMM vs all-pairs candidate pruning",
                "Satuluri & Parthasarathy, EDBT 2011, Section 3.6 / ref [2]");
  RmatOptions rmat;
  rmat.scale = scale >= 1.0 ? 14 : 12;
  auto rmat_data = GenerateRmat(rmat);
  DGC_CHECK(rmat_data.ok());
  RunGraph(rmat_data->name, rmat_data->graph);

  Dataset cora = bench::MakeCora(scale);
  RunGraph(cora.name, cora.graph);

  std::printf(
      "\nExpected shape: identical output pair counts; the all-pairs\n"
      "backend's advantage grows with the threshold as candidate pruning\n"
      "kicks in (candidates << all pairs, rows-skip > 0).\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
