// Section 5.6: statistical significance of the Degree-discounted
// improvements via the paired binomial sign test. The paper reports
// p-values down to 1e-22767; we compute them in log10 space.
//
// Paper shape to match: Degree-discounted beats A+Aᵀ and BestWCut with
// overwhelmingly significant (hugely negative log10 p) margins on both
// labeled datasets.
#include "bench/bench_common.h"
#include "cluster/bestwcut.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"
#include "eval/sign_test.h"

namespace dgc {
namespace {

void Report(const std::string& label, const std::vector<bool>& a,
            const std::vector<bool>& b) {
  auto sign = PairedSignTest(a, b);
  DGC_CHECK(sign.ok());
  std::printf("%-46s %8lld %8lld %14.1f\n", label.c_str(),
              static_cast<long long>(sign->a_only),
              static_cast<long long>(sign->b_only), sign->log10_p_value);
}

std::vector<bool> Mask(const Clustering& c, const GroundTruth& truth) {
  auto mask = CorrectlyClusteredMask(c, truth);
  DGC_CHECK(mask.ok());
  return std::move(mask).ValueOrDie();
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Section 5.6: paired binomial sign tests",
                "Satuluri & Parthasarathy, EDBT 2011, Section 5.6");
  std::printf("%-46s %8s %8s %14s\n", "comparison (A vs B)", "A-only",
              "B-only", "log10(p)");

  {
    Dataset cora = bench::MakeCora(scale);
    UGraph dd = bench::SymmetrizeAuto(
        cora.graph, SymmetrizationMethod::kDegreeDiscounted, 100);
    UGraph sum = bench::SymmetrizeAuto(cora.graph,
                                       SymmetrizationMethod::kAPlusAT, 100);
    MlrMclOptions mcl;
    mcl.rmcl.inflation = 2.0;
    auto dd_mcl = MlrMcl(dd, mcl);
    auto sum_mcl = MlrMcl(sum, mcl);
    DGC_CHECK(dd_mcl.ok());
    DGC_CHECK(sum_mcl.ok());
    Report("Cora: DD+MLR-MCL vs A+A'+MLR-MCL",
           Mask(*dd_mcl, cora.truth), Mask(*sum_mcl, cora.truth));

    MetisOptions metis;
    metis.k = 70;
    auto dd_metis = MetisPartition(dd, metis);
    auto sum_metis = MetisPartition(sum, metis);
    DGC_CHECK(dd_metis.ok());
    DGC_CHECK(sum_metis.ok());
    Report("Cora: DD+Metis vs A+A'+Metis", Mask(*dd_metis, cora.truth),
           Mask(*sum_metis, cora.truth));

    BestWCutOptions wcut;
    wcut.k = 70;
    wcut.spectral.max_subspace = 190;
    wcut.spectral.kmeans_restarts = 1;
    auto best = BestWCut(cora.graph, wcut);
    DGC_CHECK(best.ok());
    Report("Cora: DD+MLR-MCL vs BestWCut", Mask(*dd_mcl, cora.truth),
           Mask(best->clustering, cora.truth));
    Report("Cora: DD+Metis vs BestWCut", Mask(*dd_metis, cora.truth),
           Mask(best->clustering, cora.truth));
  }

  {
    Dataset wiki = bench::MakeWiki(scale * 0.5);
    const Index k = wiki.graph.NumVertices() / 100;
    UGraph dd = bench::SymmetrizeAuto(
        wiki.graph, SymmetrizationMethod::kDegreeDiscounted, 80);
    UGraph sum = bench::SymmetrizeAuto(wiki.graph,
                                       SymmetrizationMethod::kAPlusAT, 80);
    MetisOptions metis;
    metis.k = k;
    auto dd_metis = MetisPartition(dd, metis);
    auto sum_metis = MetisPartition(sum, metis);
    DGC_CHECK(dd_metis.ok());
    DGC_CHECK(sum_metis.ok());
    Report("Wiki: DD+Metis vs A+A'+Metis", Mask(*dd_metis, wiki.truth),
           Mask(*sum_metis, wiki.truth));

    MlrMclOptions mcl;
    mcl.rmcl.inflation = 2.0;
    auto dd_mcl = MlrMcl(dd, mcl);
    auto sum_mcl = MlrMcl(sum, mcl);
    DGC_CHECK(dd_mcl.ok());
    DGC_CHECK(sum_mcl.ok());
    Report("Wiki: DD+MLR-MCL vs A+A'+MLR-MCL", Mask(*dd_mcl, wiki.truth),
           Mask(*sum_mcl, wiki.truth));
  }

  std::printf(
      "\nExpected shape vs paper (Section 5.6): every Degree-discounted\n"
      "comparison wins far more nodes than it loses, with log10 p-values\n"
      "deep below zero (the paper reports -312 to -22767 at full scale).\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
