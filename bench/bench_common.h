// Shared experiment plumbing for the per-table / per-figure benchmark
// binaries: the four synthetic stand-in datasets (Section 4.1) at a
// configurable scale, and small output helpers.
//
// Scale note: the paper's datasets range from 17.6k (Cora) to 5.3M
// (LiveJournal) vertices. The default scales here are chosen so the entire
// harness finishes in minutes on a laptop while preserving the structural
// features each experiment measures (hubs, reciprocity, overlapping
// categories). Pass --scale=<factor> to any binary to grow them.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "core/symmetrize.h"
#include "core/threshold_select.h"
#include "eval/fscore.h"
#include "gen/citation.h"
#include "gen/hyperlink.h"
#include "gen/planted.h"
#include "gen/social.h"
#include "graph/graph_stats.h"
#include "util/logging.h"
#include "util/options.h"
#include "util/timer.h"

namespace dgc {
namespace bench {

/// Cora stand-in: ~6k papers, 70 subfield categories.
inline Dataset MakeCora(double scale = 1.0) {
  CitationOptions options;
  options.num_papers = static_cast<Index>(6000 * scale);
  auto dataset = GenerateCitation(options);
  DGC_CHECK(dataset.ok()) << dataset.status();
  dataset->name = "cora-syn";
  return std::move(dataset).ValueOrDie();
}

/// Wikipedia stand-in: ~20k articles, hubs, overlapping categories.
inline Dataset MakeWiki(double scale = 1.0) {
  HyperlinkOptions options;
  options.num_articles = static_cast<Index>(20000 * scale);
  options.num_categories = static_cast<Index>(250 * scale);
  auto dataset = GenerateHyperlink(options);
  DGC_CHECK(dataset.ok()) << dataset.status();
  dataset->name = "wiki-syn";
  return std::move(dataset).ValueOrDie();
}

/// Flickr stand-in: ~60k users, 62% reciprocity.
inline Dataset MakeFlickr(double scale = 1.0) {
  SocialOptions options;
  options.num_users = static_cast<Index>(60000 * scale);
  options.avg_out_degree = 10.0;
  options.p_reciprocal = 0.5;
  options.seed = 1001;
  auto dataset = GenerateSocial(options);
  DGC_CHECK(dataset.ok()) << dataset.status();
  dataset->name = "flickr-syn";
  return std::move(dataset).ValueOrDie();
}

/// LiveJournal stand-in: ~100k users, 73% reciprocity.
inline Dataset MakeLivejournal(double scale = 1.0) {
  SocialOptions options;
  options.num_users = static_cast<Index>(100000 * scale);
  options.avg_out_degree = 12.0;
  options.p_reciprocal = 0.65;
  options.seed = 1002;
  auto dataset = GenerateSocial(options);
  DGC_CHECK(dataset.ok()) << dataset.status();
  dataset->name = "livejournal-syn";
  return std::move(dataset).ValueOrDie();
}

/// Symmetrizes with an automatically selected prune threshold (sampling
/// procedure of Section 5.3.1) for the similarity methods; A+Aᵀ and Random
/// walk need no pruning.
inline UGraph SymmetrizeAuto(const Digraph& g, SymmetrizationMethod method,
                             Index target_degree,
                             double* threshold_out = nullptr) {
  SymmetrizationOptions options;
  if (method == SymmetrizationMethod::kBibliometric ||
      method == SymmetrizationMethod::kDegreeDiscounted) {
    ThresholdSelectOptions select;
    select.target_avg_degree = target_degree;
    auto selection = SelectPruneThreshold(g, method, options, select);
    DGC_CHECK(selection.ok()) << selection.status();
    options.prune_threshold =
        method == SymmetrizationMethod::kBibliometric
            ? std::max(0.0, std::floor(selection->threshold))
            : selection->threshold;
  }
  if (threshold_out != nullptr) *threshold_out = options.prune_threshold;
  auto u = Symmetrize(g, method, options);
  DGC_CHECK(u.ok()) << u.status();
  return std::move(u).ValueOrDie();
}

/// Evaluates a clustering against the dataset's ground truth (micro-
/// averaged best-match F, Section 4.3).
inline double AvgF(const Clustering& clustering, const GroundTruth& truth) {
  auto result = EvaluateFScore(clustering, truth);
  DGC_CHECK(result.ok()) << result.status();
  return result->avg_f;
}

/// Prints the experiment banner with the paper reference.
inline void Banner(const std::string& experiment,
                   const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

/// Parses --scale (default 1.0) from the command line.
inline double ScaleArg(int argc, const char* const* argv,
                       double default_scale = 1.0) {
  auto options = Options::Parse(argc, argv);
  DGC_CHECK(options.ok()) << options.status();
  return options->GetDouble("scale", default_scale);
}

}  // namespace bench
}  // namespace dgc
