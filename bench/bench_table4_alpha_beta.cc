// Table 4: effect of the out-degree discount alpha and in-degree discount
// beta on clustering quality (Metis, fixed cluster count), on Cora and
// Wikipedia. Includes the alpha = beta = 0 (no discounting) and log
// (IDF-style) rows.
//
// Paper shape to match: alpha = beta = 0.5 is best on both datasets; any
// discounting beats none; log is an insufficient penalty; 1.0 is too much.
#include <vector>

#include "bench/bench_common.h"
#include "cluster/partition_metis.h"

namespace dgc {
namespace {

struct Config {
  DiscountSpec alpha;
  DiscountSpec beta;
};

double RunConfig(const Dataset& dataset, const Config& config, Index k,
                 Index target_degree) {
  SymmetrizationOptions options;
  options.out_discount = config.alpha;
  options.in_discount = config.beta;
  ThresholdSelectOptions select;
  select.target_avg_degree = target_degree;
  auto selection = SelectPruneThreshold(
      dataset.graph, SymmetrizationMethod::kDegreeDiscounted, options,
      select);
  DGC_CHECK(selection.ok());
  options.prune_threshold = selection->threshold;
  auto u = SymmetrizeDegreeDiscounted(dataset.graph, options);
  DGC_CHECK(u.ok());
  MetisOptions metis;
  metis.k = k;
  auto clustering = MetisPartition(*u, metis);
  DGC_CHECK(clustering.ok());
  return 100.0 * bench::AvgF(*clustering, dataset.truth);
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Table 4: effect of varying alpha and beta (Metis)",
                "Satuluri & Parthasarathy, EDBT 2011, Table 4");
  Dataset cora = bench::MakeCora(scale);
  Dataset wiki = bench::MakeWiki(scale * 0.75);

  const std::vector<Config> configs = {
      {DiscountSpec::Power(0.0), DiscountSpec::Power(0.0)},
      {DiscountSpec::Log(), DiscountSpec::Log()},
      {DiscountSpec::Power(0.25), DiscountSpec::Power(0.25)},
      {DiscountSpec::Power(0.5), DiscountSpec::Power(0.5)},
      {DiscountSpec::Power(0.75), DiscountSpec::Power(0.75)},
      {DiscountSpec::Power(1.0), DiscountSpec::Power(1.0)},
      {DiscountSpec::Power(0.25), DiscountSpec::Power(0.5)},
      {DiscountSpec::Power(0.25), DiscountSpec::Power(0.75)},
      {DiscountSpec::Power(0.5), DiscountSpec::Power(0.25)},
      {DiscountSpec::Power(0.5), DiscountSpec::Power(0.75)},
      {DiscountSpec::Power(0.75), DiscountSpec::Power(0.25)},
      {DiscountSpec::Power(0.75), DiscountSpec::Power(0.5)},
  };

  // Paper fixes 70 clusters for Cora, 10000 for Wikipedia (scaled here).
  const Index cora_k = 70;
  const Index wiki_k = wiki.graph.NumVertices() / 100;

  std::printf("%-6s %-6s %14s %14s\n", "alpha", "beta", "F-on-Cora",
              "F-on-Wiki");
  for (const Config& config : configs) {
    const double f_cora = RunConfig(cora, config, cora_k, 60);
    const double f_wiki = RunConfig(wiki, config, wiki_k, 80);
    std::printf("%-6s %-6s %14.2f %14.2f\n",
                config.alpha.ToString().c_str(),
                config.beta.ToString().c_str(), f_cora, f_wiki);
  }

  std::printf(
      "\nExpected shape vs paper (Table 4): alpha = beta = 0.5 yields the\n"
      "best F on both datasets; no discounting (0/0) is clearly worst.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
