// Micro-benchmarks (google-benchmark) for the computational kernels the
// symmetrization framework is built on: sparse transpose, SpGEMM with and
// without pruning, PageRank power iteration, the four symmetrizations, and
// the fused-vs-reference similarity engines on the paper's four stand-in
// datasets. Complements the per-table experiment binaries.
//
// Flags (consumed before google-benchmark sees the command line):
//   --json=<path>   write the google-benchmark JSON report to <path>
//                   (shorthand for --benchmark_out=<path>
//                   --benchmark_out_format=json)
//   --scale=<f>     scale factor for the stand-in datasets (default 1;
//                   CI smoke runs use a small fraction)
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/mcl.h"
#include "core/all_pairs.h"
#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "util/logging.h"
#include "linalg/power_iteration.h"
#include "linalg/spgemm.h"
#include "obs/metrics.h"

// Stand-in dataset scale, settable via --scale= (file-scope so the custom
// main below can write it before benchmark registration runs).
static double g_dataset_scale = 1.0;

namespace dgc {
namespace {

Dataset MakeGraph(int scale) {
  RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  DGC_CHECK(dataset.ok());
  return std::move(dataset).ValueOrDie();
}

/// The paper's four stand-in datasets (Section 4.1), generated lazily and
/// cached: benchmark registration enumerates them by index 0..3.
const Dataset& StandIn(int64_t index) {
  static std::array<std::unique_ptr<Dataset>, 4> cache;
  auto& slot = cache[static_cast<size_t>(index)];
  if (slot == nullptr) {
    switch (index) {
      case 0:
        slot = std::make_unique<Dataset>(bench::MakeCora(g_dataset_scale));
        break;
      case 1:
        slot = std::make_unique<Dataset>(bench::MakeWiki(g_dataset_scale));
        break;
      case 2:
        slot = std::make_unique<Dataset>(bench::MakeFlickr(g_dataset_scale));
        break;
      default:
        slot = std::make_unique<Dataset>(
            bench::MakeLivejournal(g_dataset_scale));
        break;
    }
  }
  return *slot;
}

void BM_Transpose(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Arg(12)->Arg(14);

void BM_SpGemmAAt(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAt)->Arg(10)->Arg(12);

void BM_PageRank(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.teleport = 0.05;
  for (auto _ : state) {
    auto pr = PageRank(d.graph.adjacency(), options);
    benchmark::DoNotOptimize(pr);
  }
  state.SetItemsProcessed(state.iterations() * d.graph.NumEdges());
}
BENCHMARK(BM_PageRank)->Arg(12)->Arg(14);

void BM_SymmetrizeAPlusAT(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeAPlusAT(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeAPlusAT)->Arg(12)->Arg(14);

void BM_SymmetrizeRandomWalk(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeRandomWalk(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeRandomWalk)->Arg(12)->Arg(14);

void BM_SymmetrizeBibliometric(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeBibliometric)->Arg(10)->Arg(12);

void BM_SymmetrizeDegreeDiscounted(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeDegreeDiscounted)->Arg(10)->Arg(12);

void BM_DegreeDiscountedParallel(benchmark::State& state) {
  Dataset d = MakeGraph(12);
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_DegreeDiscountedParallel)->Arg(1)->Arg(2)->Arg(4);

// Threaded kernel variants — ArgPair(scale, threads). These measure the
// speedup curve of the row-parallel hot path (the ISSUE-1 acceptance
// criterion compares threads = 8 against threads = 1 at scale 14).

void BM_TransposeThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose(threads));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_TransposeThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_SpGemmAAtThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAtThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_RmclIterateThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  auto u = SymmetrizeAPlusAT(d.graph);
  DGC_CHECK(u.ok());
  RmclOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  options.convergence_tol = 0.0;  // fixed work: never early-exit
  const CsrMatrix mg =
      BuildFlowMatrix(*u, options.self_loop_scale, options.num_threads);
  for (auto _ : state) {
    auto flow = RmclIterate(mg, mg, options, /*iterations=*/4);
    benchmark::DoNotOptimize(flow);
  }
  state.SetItemsProcessed(state.iterations() * 4 * mg.nnz());
}
BENCHMARK(BM_RmclIterateThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

// Fused vs reference similarity engines on the four stand-in datasets
// (Arg = dataset index). The acceptance criterion for the fused path is
// CPU time: fused Degree-discounted must be >= 1.5x faster than reference
// on at least 3 of the 4 datasets.

void RunDegreeDiscounted(benchmark::State& state, SimilarityEngine engine) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.engine = engine;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_DegreeDiscountedFused(benchmark::State& state) {
  RunDegreeDiscounted(state, SimilarityEngine::kFused);
}
BENCHMARK(BM_DegreeDiscountedFused)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_DegreeDiscountedReference(benchmark::State& state) {
  RunDegreeDiscounted(state, SimilarityEngine::kReference);
}
BENCHMARK(BM_DegreeDiscountedReference)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void RunBibliometric(benchmark::State& state, SimilarityEngine engine) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  options.engine = engine;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_BibliometricFused(benchmark::State& state) {
  RunBibliometric(state, SimilarityEngine::kFused);
}
BENCHMARK(BM_BibliometricFused)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_BibliometricReference(benchmark::State& state) {
  RunBibliometric(state, SimilarityEngine::kReference);
}
BENCHMARK(BM_BibliometricReference)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

// Observability overhead — the same Degree-discounted run with the null
// sink (no --report=, the library default) vs a live MetricsRegistry.
// Interleaved by Arg so both variants see the same machine state; the
// acceptance criterion is no measurable regression for the null sink
// relative to the pre-instrumentation baseline, and the live sink shows
// the true cost of recording.

void RunSinkOverhead(benchmark::State& state, bool live_sink) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    MetricsRegistry registry;
    options.metrics = live_sink ? &registry : nullptr;
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_DegreeDiscountedNullSink(benchmark::State& state) {
  RunSinkOverhead(state, /*live_sink=*/false);
}
BENCHMARK(BM_DegreeDiscountedNullSink)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_DegreeDiscountedLiveSink(benchmark::State& state) {
  RunSinkOverhead(state, /*live_sink=*/true);
}
BENCHMARK(BM_DegreeDiscountedLiveSink)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_AllPairsSimilarityThreads(benchmark::State& state) {
  const Dataset& d = StandIn(1);  // wiki stand-in: hubs + skewed weights
  auto factors = BuildSimilarityFactors(
      d.graph, SymmetrizationMethod::kDegreeDiscounted, {});
  DGC_CHECK(factors.ok());
  AllPairsOptions options;
  options.threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sim = AllPairsSimilarity(factors->m, options);
    benchmark::DoNotOptimize(sim);
  }
  state.SetLabel(d.name);
}
BENCHMARK(BM_AllPairsSimilarityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dgc

// Custom main: peel off --json= / --scale= before handing the remaining
// flags to google-benchmark.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      storage.emplace_back(std::string("--benchmark_out=") + (arg + 7));
      storage.emplace_back("--benchmark_out_format=json");
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      g_dataset_scale = std::strtod(arg + 8, nullptr);
      DGC_CHECK(g_dataset_scale > 0.0) << "--scale must be positive";
    } else {
      storage.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
