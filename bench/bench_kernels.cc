// Micro-benchmarks (google-benchmark) for the computational kernels the
// symmetrization framework is built on: sparse transpose, SpGEMM with and
// without pruning, PageRank power iteration, and the four symmetrizations,
// on R-MAT graphs (the paper's reference [14] for realistic directed
// networks). Complements the per-table experiment binaries.
#include <benchmark/benchmark.h>

#include "cluster/mcl.h"
#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "util/logging.h"
#include "linalg/power_iteration.h"
#include "linalg/spgemm.h"

namespace dgc {
namespace {

Dataset MakeGraph(int scale) {
  RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  DGC_CHECK(dataset.ok());
  return std::move(dataset).ValueOrDie();
}

void BM_Transpose(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Arg(12)->Arg(14);

void BM_SpGemmAAt(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAt)->Arg(10)->Arg(12);

void BM_PageRank(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.teleport = 0.05;
  for (auto _ : state) {
    auto pr = PageRank(d.graph.adjacency(), options);
    benchmark::DoNotOptimize(pr);
  }
  state.SetItemsProcessed(state.iterations() * d.graph.NumEdges());
}
BENCHMARK(BM_PageRank)->Arg(12)->Arg(14);

void BM_SymmetrizeAPlusAT(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeAPlusAT(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeAPlusAT)->Arg(12)->Arg(14);

void BM_SymmetrizeRandomWalk(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeRandomWalk(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeRandomWalk)->Arg(12)->Arg(14);

void BM_SymmetrizeBibliometric(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeBibliometric)->Arg(10)->Arg(12);

void BM_SymmetrizeDegreeDiscounted(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeDegreeDiscounted)->Arg(10)->Arg(12);

void BM_DegreeDiscountedParallel(benchmark::State& state) {
  Dataset d = MakeGraph(12);
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_DegreeDiscountedParallel)->Arg(1)->Arg(2)->Arg(4);

// Threaded kernel variants — ArgPair(scale, threads). These measure the
// speedup curve of the row-parallel hot path (the ISSUE-1 acceptance
// criterion compares threads = 8 against threads = 1 at scale 14).

void BM_TransposeThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose(threads));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_TransposeThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_SpGemmAAtThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAtThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_RmclIterateThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  auto u = SymmetrizeAPlusAT(d.graph);
  DGC_CHECK(u.ok());
  RmclOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  options.convergence_tol = 0.0;  // fixed work: never early-exit
  const CsrMatrix mg =
      BuildFlowMatrix(*u, options.self_loop_scale, options.num_threads);
  for (auto _ : state) {
    auto flow = RmclIterate(mg, mg, options, /*iterations=*/4);
    benchmark::DoNotOptimize(flow);
  }
  state.SetItemsProcessed(state.iterations() * 4 * mg.nnz());
}
BENCHMARK(BM_RmclIterateThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

}  // namespace
}  // namespace dgc

BENCHMARK_MAIN();
