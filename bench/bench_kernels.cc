// Micro-benchmarks (google-benchmark) for the computational kernels the
// symmetrization framework is built on: sparse transpose, SpGEMM with and
// without pruning, PageRank power iteration, and the four symmetrizations,
// on R-MAT graphs (the paper's reference [14] for realistic directed
// networks). Complements the per-table experiment binaries.
#include <benchmark/benchmark.h>

#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "util/logging.h"
#include "linalg/power_iteration.h"
#include "linalg/spgemm.h"

namespace dgc {
namespace {

Dataset MakeGraph(int scale) {
  RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  DGC_CHECK(dataset.ok());
  return std::move(dataset).ValueOrDie();
}

void BM_Transpose(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Arg(12)->Arg(14);

void BM_SpGemmAAt(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAt)->Arg(10)->Arg(12);

void BM_PageRank(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.teleport = 0.05;
  for (auto _ : state) {
    auto pr = PageRank(d.graph.adjacency(), options);
    benchmark::DoNotOptimize(pr);
  }
  state.SetItemsProcessed(state.iterations() * d.graph.NumEdges());
}
BENCHMARK(BM_PageRank)->Arg(12)->Arg(14);

void BM_SymmetrizeAPlusAT(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeAPlusAT(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeAPlusAT)->Arg(12)->Arg(14);

void BM_SymmetrizeRandomWalk(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeRandomWalk(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeRandomWalk)->Arg(12)->Arg(14);

void BM_SymmetrizeBibliometric(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeBibliometric)->Arg(10)->Arg(12);

void BM_SymmetrizeDegreeDiscounted(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeDegreeDiscounted)->Arg(10)->Arg(12);

void BM_DegreeDiscountedParallel(benchmark::State& state) {
  Dataset d = MakeGraph(12);
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_DegreeDiscountedParallel)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace dgc

BENCHMARK_MAIN();
