// Micro-benchmarks (google-benchmark) for the computational kernels the
// symmetrization framework is built on: sparse transpose, SpGEMM with and
// without pruning, PageRank power iteration, the four symmetrizations, and
// the fused-vs-reference similarity engines on the paper's four stand-in
// datasets. Complements the per-table experiment binaries.
//
// Flags (consumed before google-benchmark sees the command line):
//   --json=<path>   write the google-benchmark JSON report to <path>
//                   (shorthand for --benchmark_out=<path>
//                   --benchmark_out_format=json). Refused in non-Release
//                   builds so a debug binary cannot silently overwrite the
//                   committed baseline; --allow-debug-json overrides and
//                   tags the report context with dgc_build_type=debug.
//   --scale=<f>     scale factor for the stand-in datasets (default 1;
//                   CI smoke runs use a small fraction)
//   --tile-rows=<n> pin the tiled SpGEMM benches to one tile height
//                   instead of their registered sweep
//   --roofline=<path>  skip google-benchmark entirely: measure per-kernel
//                   arithmetic intensity and achieved GFLOP/s / GB/s for
//                   the SpGEMM / R-MCL hot-path kernels against ceilings
//                   probed from this machine (bench/hw_probe.h), write a
//                   dgc.roofline.v1 JSON document to <path> and exit.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/hw_probe.h"
#include "cluster/mcl.h"
#include "core/all_pairs.h"
#include "core/symmetrize.h"
#include "gen/rmat.h"
#include "util/logging.h"
#include "linalg/power_iteration.h"
#include "linalg/reorder.h"
#include "linalg/spgemm.h"
#include "linalg/spgemm_tiled.h"
#include "obs/metrics.h"
#include "util/simd.h"
#include "util/timer.h"

// Stand-in dataset scale, settable via --scale= (file-scope so the custom
// main below can write it before benchmark registration runs).
static double g_dataset_scale = 1.0;

// Tile height override for the tiled SpGEMM benches, settable via
// --tile-rows=. 0 (the default) keeps the registered sweep; a positive
// value pins every tiled bench to that height (the benches read it at run
// time, so no re-registration is needed).
static long g_tile_rows = 0;

namespace dgc {
namespace {

Dataset MakeGraph(int scale) {
  RmatOptions options;
  options.scale = scale;
  options.edge_factor = 8.0;
  auto dataset = GenerateRmat(options);
  DGC_CHECK(dataset.ok());
  return std::move(dataset).ValueOrDie();
}

/// The paper's four stand-in datasets (Section 4.1), generated lazily and
/// cached: benchmark registration enumerates them by index 0..3.
const Dataset& StandIn(int64_t index) {
  static std::array<std::unique_ptr<Dataset>, 4> cache;
  auto& slot = cache[static_cast<size_t>(index)];
  if (slot == nullptr) {
    switch (index) {
      case 0:
        slot = std::make_unique<Dataset>(bench::MakeCora(g_dataset_scale));
        break;
      case 1:
        slot = std::make_unique<Dataset>(bench::MakeWiki(g_dataset_scale));
        break;
      case 2:
        slot = std::make_unique<Dataset>(bench::MakeFlickr(g_dataset_scale));
        break;
      default:
        slot = std::make_unique<Dataset>(
            bench::MakeLivejournal(g_dataset_scale));
        break;
    }
  }
  return *slot;
}

void BM_Transpose(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Arg(12)->Arg(14);

void BM_SpGemmAAt(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAt)->Arg(10)->Arg(12);

void BM_PageRank(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  PageRankOptions options;
  options.teleport = 0.05;
  for (auto _ : state) {
    auto pr = PageRank(d.graph.adjacency(), options);
    benchmark::DoNotOptimize(pr);
  }
  state.SetItemsProcessed(state.iterations() * d.graph.NumEdges());
}
BENCHMARK(BM_PageRank)->Arg(12)->Arg(14);

void BM_SymmetrizeAPlusAT(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeAPlusAT(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeAPlusAT)->Arg(12)->Arg(14);

void BM_SymmetrizeRandomWalk(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = SymmetrizeRandomWalk(d.graph);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeRandomWalk)->Arg(12)->Arg(14);

void BM_SymmetrizeBibliometric(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeBibliometric)->Arg(10)->Arg(12);

void BM_SymmetrizeDegreeDiscounted(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_SymmetrizeDegreeDiscounted)->Arg(10)->Arg(12);

void BM_DegreeDiscountedParallel(benchmark::State& state) {
  Dataset d = MakeGraph(12);
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_DegreeDiscountedParallel)->Arg(1)->Arg(2)->Arg(4);

// Threaded kernel variants — ArgPair(scale, threads). These measure the
// speedup curve of the row-parallel hot path (the ISSUE-1 acceptance
// criterion compares threads = 8 against threads = 1 at scale 14).

void BM_TransposeThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Transpose(threads));
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_TransposeThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_SpGemmAAtThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  const CsrMatrix& a = d.graph.adjacency();
  SpGemmOptions options;
  options.threshold = 0.5;  // keep counts >= 1
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto c = SpGemmAAt(a, options);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() *
                          SpGemmFlops(a, a.Transpose()));
}
BENCHMARK(BM_SpGemmAAtThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

void BM_RmclIterateThreads(benchmark::State& state) {
  Dataset d = MakeGraph(static_cast<int>(state.range(0)));
  auto u = SymmetrizeAPlusAT(d.graph);
  DGC_CHECK(u.ok());
  RmclOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  options.convergence_tol = 0.0;  // fixed work: never early-exit
  const CsrMatrix mg =
      BuildFlowMatrix(*u, options.self_loop_scale, options.num_threads);
  for (auto _ : state) {
    auto flow = RmclIterate(mg, mg, options, /*iterations=*/4);
    benchmark::DoNotOptimize(flow);
  }
  state.SetItemsProcessed(state.iterations() * 4 * mg.nnz());
}
BENCHMARK(BM_RmclIterateThreads)
    ->ArgPair(14, 1)
    ->ArgPair(14, 2)
    ->ArgPair(14, 4)
    ->ArgPair(14, 8)
    ->UseRealTime();

// Fused vs reference similarity engines on the four stand-in datasets
// (Arg = dataset index). The acceptance criterion for the fused path is
// CPU time: fused Degree-discounted must be >= 1.5x faster than reference
// on at least 3 of the 4 datasets.

void RunDegreeDiscounted(benchmark::State& state, SimilarityEngine engine) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.engine = engine;
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_DegreeDiscountedFused(benchmark::State& state) {
  RunDegreeDiscounted(state, SimilarityEngine::kFused);
}
BENCHMARK(BM_DegreeDiscountedFused)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_DegreeDiscountedReference(benchmark::State& state) {
  RunDegreeDiscounted(state, SimilarityEngine::kReference);
}
BENCHMARK(BM_DegreeDiscountedReference)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void RunBibliometric(benchmark::State& state, SimilarityEngine engine) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  options.engine = engine;
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_BibliometricFused(benchmark::State& state) {
  RunBibliometric(state, SimilarityEngine::kFused);
}
BENCHMARK(BM_BibliometricFused)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_BibliometricReference(benchmark::State& state) {
  RunBibliometric(state, SimilarityEngine::kReference);
}
BENCHMARK(BM_BibliometricReference)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

// Observability overhead — the same Degree-discounted run with the null
// sink (no --report=, the library default) vs a live MetricsRegistry.
// Interleaved by Arg so both variants see the same machine state; the
// acceptance criterion is no measurable regression for the null sink
// relative to the pre-instrumentation baseline, and the live sink shows
// the true cost of recording.

void RunSinkOverhead(benchmark::State& state, bool live_sink) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  for (auto _ : state) {
    MetricsRegistry registry;
    options.metrics = live_sink ? &registry : nullptr;
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}

void BM_DegreeDiscountedNullSink(benchmark::State& state) {
  RunSinkOverhead(state, /*live_sink=*/false);
}
BENCHMARK(BM_DegreeDiscountedNullSink)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_DegreeDiscountedLiveSink(benchmark::State& state) {
  RunSinkOverhead(state, /*live_sink=*/true);
}
BENCHMARK(BM_DegreeDiscountedLiveSink)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

// SIMD / reorder ablation grid on the Degree-discounted fused path —
// Args(dataset, simd_level, reorder: 0=none 1=degree 2=rcm). The
// full-optimization cell (vector, rcm) against the baseline cell (scalar,
// none) is this PR's acceptance ratio: >= 1.3x CPU time on >= 3 of the 4
// stand-in datasets. Output is bit-identical across the whole grid (the
// golden and reorder tests pin that), so the cells are freely comparable.
void BM_DegreeDiscountedAblation(benchmark::State& state) {
  const Dataset& d = StandIn(state.range(0));
  const auto level = state.range(1) == 0 ? simd::Level::kScalar
                                         : simd::Level::kVector;
  static const ReorderMethod kReorderGrid[] = {
      ReorderMethod::kNone, ReorderMethod::kDegree, ReorderMethod::kRcm};
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.reorder = kReorderGrid[static_cast<size_t>(state.range(2))];
  simd::SetLevel(level);
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  simd::SetLevel(simd::Level::kVector);
  state.SetLabel(d.name + "/" + simd::LevelName(level) + "/" +
                 std::string(ReorderMethodName(options.reorder)));
}
BENCHMARK(BM_DegreeDiscountedAblation)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void BM_BibliometricAblation(benchmark::State& state) {
  const Dataset& d = StandIn(state.range(0));
  const auto level = state.range(1) == 0 ? simd::Level::kScalar
                                         : simd::Level::kVector;
  SymmetrizationOptions options;
  options.prune_threshold = 2.0;
  options.reorder = state.range(2) == 0 ? ReorderMethod::kNone
                                        : ReorderMethod::kRcm;
  simd::SetLevel(level);
  for (auto _ : state) {
    auto u = SymmetrizeBibliometric(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  simd::SetLevel(simd::Level::kVector);
  state.SetLabel(d.name + "/" + simd::LevelName(level) + "/" +
                 std::string(ReorderMethodName(options.reorder)));
}
BENCHMARK(BM_BibliometricAblation)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Tiled vs in-memory fused similarity sum (docs/OUT_OF_CORE.md) on the
// four stand-in datasets. BM_SymmetricProductSumInMemory is the in-memory
// oracle (two upper-triangle products + fused merge); the tiled variant
// runs the identical math through row-block tiles and the disk spool —
// ArgsProduct(dataset, tile_rows), overridable with --tile-rows=N. The
// outputs are bit-identical (tests/spgemm_tiled_test.cc pins that), so
// cpu_time ratios directly price the spool + stitch overhead per tile
// geometry.

void BM_SymmetricProductSumInMemory(benchmark::State& state) {
  const Dataset& d = StandIn(state.range(0));
  const CsrMatrix& a = d.graph.adjacency();
  const CsrMatrix at = a.Transpose();
  SpGemmOptions product;
  product.threshold = 0.025;
  product.drop_diagonal = true;
  SpGemmOptions sum;
  sum.threshold = 0.05;
  sum.drop_diagonal = true;
  for (auto _ : state) {
    auto b = SpGemmAAtSymmetric(a, {}, {}, product, &at);
    DGC_CHECK(b.ok());
    auto c = SpGemmAAtSymmetric(at, {}, {}, product, &a);
    DGC_CHECK(c.ok());
    auto u = SpGemmSymmetricSum(*b, *c, sum);
    DGC_CHECK(u.ok());
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name);
}
BENCHMARK(BM_SymmetricProductSumInMemory)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

void BM_SymmetricProductSumTiled(benchmark::State& state) {
  const Dataset& d = StandIn(state.range(0));
  const CsrMatrix& a = d.graph.adjacency();
  const CsrMatrix at = a.Transpose();
  TiledSymmetricSumOptions options;
  options.product_threshold = 0.025;
  options.product_drop_diagonal = true;
  options.sum_threshold = 0.05;
  options.sum_drop_diagonal = true;
  options.tile_rows = g_tile_rows > 0 ? static_cast<Index>(g_tile_rows)
                                      : static_cast<Index>(state.range(1));
  for (auto _ : state) {
    auto u = TiledSymmetricProductSum(a, at, {}, {}, {}, {}, options);
    DGC_CHECK(u.ok());
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name + "/tile" + std::to_string(options.tile_rows));
}
BENCHMARK(BM_SymmetricProductSumTiled)
    ->ArgsProduct({{0, 1, 2, 3}, {1024, 8192}})
    ->Unit(benchmark::kMillisecond);

// End-to-end: the degree-discounted symmetrization forced through the
// out-of-core path, directly comparable to BM_DegreeDiscountedFused.
void BM_DegreeDiscountedTiled(benchmark::State& state) {
  const Dataset& d = StandIn(state.range(0));
  SymmetrizationOptions options;
  options.prune_threshold = 0.05;
  options.out_of_core = OutOfCoreMode::kForce;
  options.tile_rows = g_tile_rows > 0 ? static_cast<Index>(g_tile_rows)
                                      : static_cast<Index>(state.range(1));
  for (auto _ : state) {
    auto u = SymmetrizeDegreeDiscounted(d.graph, options);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel(d.name + "/tile" + std::to_string(options.tile_rows));
}
BENCHMARK(BM_DegreeDiscountedTiled)
    ->ArgsProduct({{0, 1, 2, 3}, {1024, 8192}})
    ->Unit(benchmark::kMillisecond);

void BM_AllPairsSimilarityThreads(benchmark::State& state) {
  const Dataset& d = StandIn(1);  // wiki stand-in: hubs + skewed weights
  auto factors = BuildSimilarityFactors(
      d.graph, SymmetrizationMethod::kDegreeDiscounted, {});
  DGC_CHECK(factors.ok());
  AllPairsOptions options;
  options.threshold = 0.05;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sim = AllPairsSimilarity(factors->m, options);
    benchmark::DoNotOptimize(sim);
  }
  state.SetLabel(d.name);
}
BENCHMARK(BM_AllPairsSimilarityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// ---------------------------------------------------------------------------
// Roofline mode (--roofline=<path>): direct CPU-time measurement of the
// SpGEMM / R-MCL hot-path kernels with explicit flop and byte models,
// reported against this machine's measured ceilings (bench/hw_probe.h).
//
// Traffic model (documented in docs/PERFORMANCE.md): every inner
// multiply-add streams one 12-byte (col, val) CSR pair; each input matrix
// is additionally read once and the output written once at 12 bytes per
// entry — bytes = 12*madds + 12*(nnz_in + nnz_out). Dense-accumulator and
// marker traffic is deliberately excluded (it is the cache-resident part
// the reorder optimization targets), so the reported GB/s understates true
// traffic when the accumulator misses; flops count 2 per multiply-add with
// scaling multiplies excluded. The models make intensities comparable
// across kernels and runs — they are not a hardware counter substitute.
// ---------------------------------------------------------------------------

namespace {

struct RooflineRow {
  std::string kernel;
  std::string dataset;
  double cpu_seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
};

/// Best-of-reps CPU time for one kernel invocation (one warm-up run, then
/// repetitions until 0.25 CPU-seconds or 10 reps, min taken).
double TimeBest(const std::function<void()>& fn) {
  fn();  // warm-up: page in inputs, size workspaces
  double best = -1.0;
  double total = 0.0;
  for (int rep = 0; rep < 10 && (total < 0.25 || rep < 3); ++rep) {
    ProcessCpuTimer timer;
    fn();
    const double seconds = timer.ElapsedSeconds();
    total += seconds;
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

int RunRoofline(const std::string& path) {
  const HwInfo hw = ProbeHardware();
  std::vector<RooflineRow> rows;

  for (int64_t index = 0; index < 4; ++index) {
    const Dataset& d = StandIn(index);
    const CsrMatrix& a = d.graph.adjacency();
    const CsrMatrix at = a.Transpose();
    const double nnz = static_cast<double>(a.nnz());
    const double madds = static_cast<double>(SpGemmFlops(a, at));

    SpGemmOptions product_options;
    product_options.threshold = 0.025;
    product_options.drop_diagonal = true;

    RooflineRow transpose{"transpose", d.name, 0.0, 0.0, 24.0 * nnz};
    transpose.cpu_seconds = TimeBest([&] {
      benchmark::DoNotOptimize(a.Transpose());
    });
    rows.push_back(transpose);

    RooflineRow aat{"spgemm_aat", d.name, 0.0, 2.0 * madds,
                    12.0 * madds + 12.0 * 2.0 * nnz};
    aat.cpu_seconds = TimeBest([&] {
      auto c = SpGemmAAt(a, product_options);
      DGC_CHECK(c.ok());
      benchmark::DoNotOptimize(c);
    });
    rows.push_back(aat);

    // The symmetric kernel computes only the upper triangle: half the
    // multiply-adds of the full product (model; the exact share depends on
    // the candidate distribution).
    auto upper = SpGemmAAtSymmetric(a, {}, {}, product_options, &at);
    DGC_CHECK(upper.ok());
    RooflineRow sym{"spgemm_aat_symmetric", d.name, 0.0, madds,
                    6.0 * madds + 12.0 * (nnz + static_cast<double>(
                                                    upper->nnz()))};
    sym.cpu_seconds = TimeBest([&] {
      auto c = SpGemmAAtSymmetric(a, {}, {}, product_options, &at);
      DGC_CHECK(c.ok());
      benchmark::DoNotOptimize(c);
    });
    rows.push_back(sym);

    auto upper_c = SpGemmAAtSymmetric(at, {}, {}, product_options, &a);
    DGC_CHECK(upper_c.ok());
    const double sum_in = static_cast<double>(upper->nnz() + upper_c->nnz());
    SpGemmOptions sum_options;
    sum_options.threshold = 0.05;
    sum_options.drop_diagonal = true;
    RooflineRow sum{"spgemm_symmetric_sum", d.name, 0.0, sum_in,
                    12.0 * 2.0 * sum_in};
    sum.cpu_seconds = TimeBest([&] {
      auto c = SpGemmSymmetricSum(*upper, *upper_c, sum_options);
      DGC_CHECK(c.ok());
      benchmark::DoNotOptimize(c);
    });
    rows.push_back(sum);

    // Out-of-core tiled product sum at ~8 tiles (enough spool traffic to
    // be representative). Flops: both upper products, 2 per multiply-add
    // over half the candidates each. Bytes extend the streaming model
    // with the spool round trip: each merged tile entry is written to and
    // read back from disk at 12 bytes (24 per entry total), on top of the
    // product streams, one read of each input and the output write.
    {
      TiledSymmetricSumOptions tiled_options;
      tiled_options.product_threshold = 0.025;
      tiled_options.product_drop_diagonal = true;
      tiled_options.sum_threshold = 0.05;
      tiled_options.sum_drop_diagonal = true;
      tiled_options.tile_rows = std::max<Index>(1, a.rows() / 8);
      auto tiled_out =
          TiledSymmetricProductSum(a, at, {}, {}, {}, {}, tiled_options);
      DGC_CHECK(tiled_out.ok());
      const double madds_c = static_cast<double>(SpGemmFlops(at, a));
      const double spooled =
          static_cast<double>(upper->nnz() + upper_c->nnz());
      RooflineRow tiled{"spgemm_tiled_product_sum", d.name, 0.0,
                       madds + madds_c,
                       6.0 * (madds + madds_c) + 24.0 * spooled +
                           12.0 * (2.0 * nnz +
                                   static_cast<double>(tiled_out->nnz()))};
      tiled.cpu_seconds = TimeBest([&] {
        auto c = TiledSymmetricProductSum(a, at, {}, {}, {}, {},
                                          tiled_options);
        DGC_CHECK(c.ok());
        benchmark::DoNotOptimize(c);
      });
      rows.push_back(tiled);
    }

    auto mirrored = MirrorUpperTriangle(*upper);
    DGC_CHECK(mirrored.ok());
    RooflineRow mirror{"mirror_upper_triangle", d.name, 0.0, 0.0,
                       12.0 * (static_cast<double>(upper->nnz()) +
                               static_cast<double>(mirrored->nnz()))};
    mirror.cpu_seconds = TimeBest([&] {
      auto c = MirrorUpperTriangle(*upper);
      DGC_CHECK(c.ok());
      benchmark::DoNotOptimize(c);
    });
    rows.push_back(mirror);

    auto u = SymmetrizeAPlusAT(d.graph);
    DGC_CHECK(u.ok());
    RmclOptions rmcl_options;
    rmcl_options.convergence_tol = 0.0;
    const CsrMatrix mg = BuildFlowMatrix(*u, rmcl_options.self_loop_scale,
                                         rmcl_options.num_threads);
    const double rmcl_madds = static_cast<double>(SpGemmFlops(mg, mg));
    const double mg_nnz = static_cast<double>(mg.nnz());
    RooflineRow rmcl{"rmcl_iterate", d.name, 0.0, 2.0 * rmcl_madds,
                     12.0 * rmcl_madds + 12.0 * 2.0 * mg_nnz};
    rmcl.cpu_seconds = TimeBest([&] {
      auto flow = RmclIterate(mg, mg, rmcl_options, /*iterations=*/1);
      DGC_CHECK(flow.ok());
      benchmark::DoNotOptimize(flow);
    });
    rows.push_back(rmcl);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[512];
  out << "{\"schema\":\"dgc.roofline.v1\",\n";
  out << "\"hardware\":" << HwInfoJson(hw) << ",\n";
  std::snprintf(buf, sizeof(buf),
                "\"dataset_scale\":%.6g,\"simd_level\":\"%s\","
                "\"build_type\":\"%s\",\n",
                g_dataset_scale, simd::LevelName(simd::ActiveLevel()),
#ifdef NDEBUG
                "release"
#else
                "debug"
#endif
  );
  out << buf;
  out << "\"kernels\":[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RooflineRow& r = rows[i];
    const double intensity = r.bytes > 0.0 ? r.flops / r.bytes : 0.0;
    const double gflops =
        r.cpu_seconds > 0.0 ? r.flops / r.cpu_seconds / 1e9 : 0.0;
    const double gbps =
        r.cpu_seconds > 0.0 ? r.bytes / r.cpu_seconds / 1e9 : 0.0;
    // The roof at this intensity: bandwidth-limited below the ridge point,
    // compute-limited above it (single-thread kernels measure against the
    // vector mul+add ceiling — they cannot exceed one core's peak).
    const double bw_roof = hw.stream_triad_gbps * intensity;
    const double roof = r.flops > 0.0
                            ? std::min(bw_roof, hw.vector_mulladd_gflops)
                            : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "{\"kernel\":\"%s\",\"dataset\":\"%s\",\"cpu_seconds\":%.6g,"
        "\"flops\":%.6g,\"bytes\":%.6g,\"arithmetic_intensity\":%.6g,"
        "\"gflops\":%.6g,\"gbps\":%.6g,\"roof_gflops\":%.6g,"
        "\"percent_of_roof\":%.4g,\"bound\":\"%s\"}%s\n",
        r.kernel.c_str(), r.dataset.c_str(), r.cpu_seconds, r.flops, r.bytes,
        intensity, gflops, gbps, roof,
        roof > 0.0 ? 100.0 * gflops / roof : 0.0,
        r.flops <= 0.0 ? "memory"
        : bw_roof < hw.vector_mulladd_gflops ? "memory"
                                             : "compute",
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "]}\n";
  std::printf("roofline: %zu kernel measurements -> %s\n", rows.size(),
              path.c_str());
  return 0;
}

}  // namespace
}  // namespace dgc

// Custom main: peel off --json= / --scale= / --roofline= before handing the
// remaining flags to google-benchmark.
int main(int argc, char** argv) {
#ifdef NDEBUG
  const bool release_build = true;
#else
  const bool release_build = false;
#endif
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 2);
  std::string roofline_path;
  bool wants_json = false;
  bool allow_debug_json = false;
  for (int i = 0; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0) {
      wants_json = true;
      storage.emplace_back(std::string("--benchmark_out=") + (arg + 7));
      storage.emplace_back("--benchmark_out_format=json");
    } else if (std::strcmp(arg, "--allow-debug-json") == 0) {
      allow_debug_json = true;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      g_dataset_scale = std::strtod(arg + 8, nullptr);
      DGC_CHECK(g_dataset_scale > 0.0) << "--scale must be positive";
    } else if (std::strncmp(arg, "--tile-rows=", 12) == 0) {
      g_tile_rows = std::strtol(arg + 12, nullptr, 10);
      DGC_CHECK(g_tile_rows > 0) << "--tile-rows must be positive";
    } else if (std::strncmp(arg, "--roofline=", 11) == 0) {
      roofline_path = arg + 11;
    } else {
      storage.emplace_back(arg);
    }
  }
  // Baseline-integrity guard: a debug binary must not silently produce the
  // JSON that BENCH_kernels.json baselines are appended from. The override
  // still tags the report so a debug artifact can never masquerade as a
  // Release measurement.
  if (wants_json && !release_build && !allow_debug_json) {
    std::fprintf(stderr,
                 "bench_kernels: refusing --json= from a non-Release build "
                 "(assertions skew timings); rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release or pass --allow-debug-json to "
                 "emit a debug-tagged report\n");
    return 1;
  }
  benchmark::AddCustomContext("dgc_build_type",
                              release_build ? "release" : "debug");
  benchmark::AddCustomContext("dgc_simd_backend", dgc::simd::BackendName());
  if (!roofline_path.empty()) {
    return dgc::RunRoofline(roofline_path);
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
