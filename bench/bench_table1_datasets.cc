// Table 1: dataset statistics — vertices, edges, % symmetric links, and
// number of ground-truth categories, for the four synthetic stand-ins.
//
// Paper values (for the real datasets):
//   Wikipedia   1,129,060 V  67,178,092 E  42.1% sym  17,950 categories
//   Cora           17,604 V      77,171 E   7.7% sym      70 categories
//   Flickr      1,861,228 V  22,613,980 E  62.4% sym     n.a.
//   LiveJournal 5,284,457 V  77,402,652 E  73.4% sym     n.a.
#include "bench/bench_common.h"

namespace dgc {
namespace {

void PrintRow(const Dataset& dataset, bool has_truth) {
  const DatasetStats stats = ComputeDatasetStats(
      dataset.name, dataset.graph, has_truth ? &dataset.truth : nullptr);
  std::printf("%-16s %10d %12lld %10.1f %12s\n", stats.name.c_str(),
              stats.vertices, static_cast<long long>(stats.edges),
              stats.percent_symmetric,
              has_truth ? std::to_string(stats.num_categories).c_str()
                        : "n.a.");
}

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv);
  bench::Banner("Table 1: dataset details",
                "Satuluri & Parthasarathy, EDBT 2011, Table 1");
  std::printf("%-16s %10s %12s %10s %12s\n", "dataset", "vertices", "edges",
              "%sym", "categories");
  PrintRow(bench::MakeWiki(scale), /*has_truth=*/true);
  PrintRow(bench::MakeCora(scale), /*has_truth=*/true);
  PrintRow(bench::MakeFlickr(scale), /*has_truth=*/false);
  PrintRow(bench::MakeLivejournal(scale), /*has_truth=*/false);
  std::printf(
      "\nExpected shape vs paper: Wikipedia-like graph is the densest with\n"
      "~40%% symmetric links; Cora-like is small and nearly acyclic (<10%%\n"
      "symmetric); the social graphs have the highest reciprocity.\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
