// Figure 7: effectiveness of the symmetrizations on Wikipedia using (a)
// MLR-MCL and (b) Metis. The paper sweeps 5,000-20,000 clusters on the
// 1.1M-node graph (avg cluster size 60-200); our stand-in sweeps the
// equivalent k range for its size.
//
// Paper shape to match: Degree-discounted best (peak 22.79 MLR-MCL, 20.15
// Metis), A+Aᵀ next, Random walk slightly worse, Bibliometric collapses
// (~13) because pruning strands half the graph as singletons.
#include <vector>

#include "bench/bench_common.h"
#include "cluster/mlr_mcl.h"
#include "cluster/partition_metis.h"

namespace dgc {
namespace {

int Run(int argc, const char* const* argv) {
  const double scale = bench::ScaleArg(argc, argv, 0.6);
  bench::Banner("Figure 7: symmetrization effectiveness on Wikipedia",
                "Satuluri & Parthasarathy, EDBT 2011, Figure 7(a,b)");
  Dataset wiki = bench::MakeWiki(scale);
  std::printf("dataset: %d vertices, %lld edges, %d categories\n\n",
              wiki.graph.NumVertices(),
              static_cast<long long>(wiki.graph.NumEdges()),
              wiki.truth.NumCategories());
  // Paper k range scaled by |V|: 5000..20000 on 1.13M nodes is avg cluster
  // size 57..226; for our stand-in that is k = n/226 .. n/57.
  const Index n = wiki.graph.NumVertices();
  const std::vector<Index> ks = {n / 220, n / 140, n / 90, n / 60};

  std::printf("(a) MLR-MCL (inflation sweep -> clusters, Avg F)\n");
  std::printf("%-18s %-9s %9s %8s %8s\n", "symmetrization", "inflation",
              "clusters", "AvgF", "sec");
  for (SymmetrizationMethod method : kAllSymmetrizations) {
    UGraph u = bench::SymmetrizeAuto(wiki.graph, method, 80);
    for (double inflation : {1.5, 2.0, 2.6}) {
      MlrMclOptions options;
      options.rmcl.inflation = inflation;
      WallTimer timer;
      auto clustering = MlrMcl(u, options);
      DGC_CHECK(clustering.ok()) << clustering.status();
      std::printf("%-18s %-9.2f %9d %8.2f %8.2f\n",
                  SymmetrizationMethodName(method).data(), inflation,
                  clustering->NumClusters(),
                  100.0 * bench::AvgF(*clustering, wiki.truth),
                  timer.ElapsedSeconds());
    }
  }

  std::printf("\n(b) Metis (k sweep; Random walk omitted as in the paper)\n");
  std::printf("%-18s %9s %8s %8s\n", "symmetrization", "clusters", "AvgF",
              "sec");
  for (SymmetrizationMethod method :
       {SymmetrizationMethod::kDegreeDiscounted,
        SymmetrizationMethod::kAPlusAT,
        SymmetrizationMethod::kBibliometric}) {
    UGraph u = bench::SymmetrizeAuto(wiki.graph, method, 80);
    for (Index k : ks) {
      MetisOptions options;
      options.k = k;
      WallTimer timer;
      auto clustering = MetisPartition(u, options);
      DGC_CHECK(clustering.ok()) << clustering.status();
      std::printf("%-18s %9d %8.2f %8.2f\n",
                  SymmetrizationMethodName(method).data(), k,
                  100.0 * bench::AvgF(*clustering, wiki.truth),
                  timer.ElapsedSeconds());
    }
  }

  std::printf(
      "\nExpected shape vs paper (Fig. 7): Degree-discounted best for both\n"
      "clusterers; Bibliometric far behind (hub-induced pruning damage).\n");
  return 0;
}

}  // namespace
}  // namespace dgc

int main(int argc, char** argv) { return dgc::Run(argc, argv); }
