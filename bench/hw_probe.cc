#include "bench/hw_probe.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/simd.h"
#include "util/timer.h"

namespace dgc {

namespace {

int64_t SysconfBytes(int name) {
  const long v = sysconf(name);
  return v > 0 ? static_cast<int64_t>(v) : 0;
}

/// Best-of-passes STREAM triad over a working set that defeats every cache
/// level: bytes/s counted as 24n per pass (two streamed reads + one write).
double MeasureTriadGbps(int64_t llc_bytes) {
  const int64_t working_set =
      std::max<int64_t>(4 * std::max<int64_t>(llc_bytes, int64_t{8} << 20),
                        int64_t{64} << 20);
  const size_t n = static_cast<size_t>(working_set / (3 * 8));
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const simd::Level level =
      simd::VectorSupported() ? simd::Level::kVector : simd::Level::kScalar;
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    WallTimer timer;
    simd::Triad(a.data(), b.data(), c.data(), 3.0, n, level);
    const double seconds = timer.ElapsedSeconds();
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(n) * 24.0 / seconds / 1e9);
    }
  }
  return best;
}

/// Mul+add GFLOP/s over an L1-resident buffer (2 flops per element per
/// pass). Iteration count is calibrated so the timed run lasts ~50 ms.
double MeasureMulAddGflops(simd::Level level) {
  const size_t n = 4096;  // 32 KiB: L1-resident on anything current
  std::vector<double> x(n, 1.0);
  int iters = 2000;
  double sink = 0.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    std::fill(x.begin(), x.end(), 1.0);
    WallTimer timer;
    sink += simd::MulAddThroughput(x.data(), n, iters, 1.0000001, 1e-9, level);
    const double seconds = timer.ElapsedSeconds();
    if (seconds >= 0.05) {
      const double gflops = 2.0 * static_cast<double>(n) *
                            static_cast<double>(iters) / seconds / 1e9;
      // The sink must observe the computation or the whole probe folds.
      return sink == sink ? gflops : 0.0;
    }
    iters *= 4;
  }
  return 0.0;
}

void AppendField(std::string* out, const char* key, double value,
                 bool trailing_comma) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6g%s", key, value,
                trailing_comma ? "," : "");
  out->append(buf);
}

void AppendField(std::string* out, const char* key, int64_t value,
                 bool trailing_comma) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld%s", key,
                static_cast<long long>(value), trailing_comma ? "," : "");
  out->append(buf);
}

}  // namespace

HwInfo ProbeHardware() {
  HwInfo info;
  info.logical_cpus = static_cast<int>(SysconfBytes(_SC_NPROCESSORS_ONLN));
#ifdef _SC_LEVEL1_DCACHE_SIZE
  info.l1d_bytes = SysconfBytes(_SC_LEVEL1_DCACHE_SIZE);
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
  info.l2_bytes = SysconfBytes(_SC_LEVEL2_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
  info.l3_bytes = SysconfBytes(_SC_LEVEL3_CACHE_SIZE);
#endif
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  if (const int64_t line = SysconfBytes(_SC_LEVEL1_DCACHE_LINESIZE); line > 0) {
    info.cacheline_bytes = line;
  }
#endif
  info.simd_backend = simd::BackendName();
  info.stream_triad_gbps = MeasureTriadGbps(info.l3_bytes);
  info.scalar_mulladd_gflops = MeasureMulAddGflops(simd::Level::kScalar);
  info.vector_mulladd_gflops =
      simd::VectorSupported() ? MeasureMulAddGflops(simd::Level::kVector)
                              : info.scalar_mulladd_gflops;
  return info;
}

std::string HwInfoJson(const HwInfo& info) {
  std::string out = "{";
  AppendField(&out, "logical_cpus", int64_t{info.logical_cpus}, true);
  AppendField(&out, "l1d_bytes", info.l1d_bytes, true);
  AppendField(&out, "l2_bytes", info.l2_bytes, true);
  AppendField(&out, "l3_bytes", info.l3_bytes, true);
  AppendField(&out, "cacheline_bytes", info.cacheline_bytes, true);
  out += "\"simd_backend\":\"" + info.simd_backend + "\",";
  AppendField(&out, "stream_triad_gbps", info.stream_triad_gbps, true);
  AppendField(&out, "scalar_mulladd_gflops", info.scalar_mulladd_gflops, true);
  AppendField(&out, "vector_mulladd_gflops", info.vector_mulladd_gflops,
              false);
  out += "}";
  return out;
}

}  // namespace dgc
