// dgc_generate: writes one of the synthetic dataset families to disk as a
// directed edge list plus (when available) a ground-truth category file —
// so the rest of the toolchain (dgc_symmetrize, dgc_score, file_pipeline)
// can be exercised on reproducible data, and so users can inspect the
// stand-in workloads outside the benchmark binaries.
//
//   $ ./dgc_generate --family=citation --out=graph.txt --truth=truth.txt
//         [--n=6000] [--seed=2] [--mixing=0.2] [--style=cocitation]
//         [--max-edges=N] [--deadline-ms=N] [--max-memory-mb=N]
//
// Families: planted | citation | hyperlink | social | rmat | lfr
//
// --max-edges rejects a generated graph larger than the cap before any
// file is written; --deadline-ms bounds the whole generate+write run,
// checked at stage granularity. --max-memory-mb arms the token's memory
// ledger so budget-aware stages trip kResourceExhausted instead of
// over-allocating.
#include <cstdio>
#include <string>

#include "gen/citation.h"
#include "gen/hyperlink.h"
#include "gen/lfr.h"
#include "gen/planted.h"
#include "gen/rmat.h"
#include "gen/social.h"
#include "graph/io.h"
#include "util/budget.h"
#include "util/options.h"

namespace {

using namespace dgc;

Result<Dataset> Generate(const Options& opts) {
  const std::string family = opts.GetString("family", "citation");
  const uint64_t seed = static_cast<uint64_t>(opts.GetInt("seed", 1));
  if (family == "planted") {
    PlantedOptions o;
    o.num_clusters = static_cast<Index>(opts.GetInt("clusters", 20));
    o.cluster_size = static_cast<Index>(opts.GetInt("cluster-size", 40));
    o.target_pool = static_cast<Index>(opts.GetInt("target-pool", 0));
    o.source_pool = static_cast<Index>(opts.GetInt("source-pool", 0));
    o.p_intra = opts.GetDouble("p-intra", 0.0);
    o.seed = seed;
    return GeneratePlanted(o);
  }
  if (family == "citation") {
    CitationOptions o;
    o.num_papers = static_cast<Index>(opts.GetInt("n", 6000));
    o.seed = seed;
    return GenerateCitation(o);
  }
  if (family == "hyperlink") {
    HyperlinkOptions o;
    o.num_articles = static_cast<Index>(opts.GetInt("n", 20000));
    o.num_categories = static_cast<Index>(opts.GetInt("categories", 250));
    o.seed = seed;
    return GenerateHyperlink(o);
  }
  if (family == "social") {
    SocialOptions o;
    o.num_users = static_cast<Index>(opts.GetInt("n", 60000));
    o.p_reciprocal = opts.GetDouble("reciprocal", 0.55);
    o.seed = seed;
    return GenerateSocial(o);
  }
  if (family == "rmat") {
    RmatOptions o;
    o.scale = static_cast<int>(opts.GetInt("rmat-scale", 14));
    o.edge_factor = opts.GetDouble("edge-factor", 8.0);
    o.seed = seed;
    return GenerateRmat(o);
  }
  if (family == "lfr") {
    LfrOptions o;
    o.num_vertices = static_cast<Index>(opts.GetInt("n", 5000));
    o.mixing = opts.GetDouble("mixing", 0.2);
    o.style = opts.GetString("style", "dense") == "cocitation"
                  ? LfrCommunityStyle::kCocitation
                  : LfrCommunityStyle::kDense;
    o.authority_overlap = opts.GetDouble("authority-overlap", 0.0);
    o.seed = seed;
    return GenerateLfr(o);
  }
  return Status::InvalidArgument("unknown --family=" + family);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  CancelToken cancel;
  ResourceBudget budget;
  budget.deadline_ms = opts->GetInt("deadline-ms", 0);
  budget.max_memory_bytes =
      opts->GetInt("max-memory-mb", 0) * (int64_t{1} << 20);
  cancel.Arm(budget);
  auto dataset = Generate(*opts);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0 && dataset->graph.NumEdges() > max_edges) {
    std::fprintf(stderr,
                 "generated graph has %lld edges, over --max-edges=%lld\n",
                 static_cast<long long>(dataset->graph.NumEdges()),
                 static_cast<long long>(max_edges));
    return 1;
  }
  if (cancel.Expired()) {
    std::fprintf(stderr, "%s\n", cancel.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %d vertices, %lld edges, %d categories, %.1f%% symmetric\n",
              dataset->name.c_str(), dataset->graph.NumVertices(),
              static_cast<long long>(dataset->graph.NumEdges()),
              dataset->truth.NumCategories(),
              100.0 * dataset->graph.FractionSymmetricEdges());
  const std::string out = opts->GetString("out", "");
  if (!out.empty()) {
    auto status = WriteEdgeList(dataset->graph, out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote edges to %s\n", out.c_str());
  }
  const std::string truth = opts->GetString("truth", "");
  if (!truth.empty() && cancel.Expired()) {
    std::fprintf(stderr, "%s\n", cancel.status().ToString().c_str());
    return 1;
  }
  if (!truth.empty() && dataset->truth.NumCategories() > 0) {
    auto status = WriteGroundTruth(dataset->truth, truth);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote ground truth to %s\n", truth.c_str());
  }
  return 0;
}
