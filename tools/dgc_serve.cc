// dgc_serve: the pipeline as a long-running daemon (docs/SERVING.md).
// Accepts newline-delimited `dgc.serve.request.v1` JSON objects, runs
// symmetrize+cluster per request on the process-wide thread pool, and
// answers one `dgc.serve.response.v1` line per request with the run report
// embedded. Repeat requests for the same (graph, symmetrization
// parameters) hit the content-addressed cache and skip straight to
// stage 2.
//
//   $ ./dgc_serve --stdio
//       serve requests on stdin, responses on stdout (one process per
//       client; the mode scripted transports and tests use)
//   $ ./dgc_serve --port=0 [--bind=127.0.0.1]
//       TCP mode; prints "listening on <addr>:<port>" on stdout once
//       ready (port 0 = kernel-assigned, read the printed value)
//
// Shared flags:
//   --cache-mb=N      symmetrization cache budget in MiB (default 256;
//                     0 disables caching)
//   --max-edges=N     per-request graph-file edge cap (default unlimited)
//   --max-request-kb=N request line cap in KiB (default 1024)
//
// The daemon never exits because of anything a client sends; stop it with
// {"op": "shutdown"} (both modes) or EOF on stdin (--stdio).
#include <cstdio>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "serve/server.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  const bool stdio = opts->GetBool("stdio", false);
  const bool tcp = opts->Has("port");
  if (stdio == tcp) {
    std::fprintf(stderr,
                 "usage: dgc_serve (--stdio | --port=N) [--bind=ADDR] "
                 "[--cache-mb=N] [--max-edges=N] [--max-request-kb=N]\n");
    return 2;
  }

  MetricsRegistry server_metrics;
  ServeOptions options;
  options.metrics = &server_metrics;
  options.cache_max_bytes = opts->GetInt("cache-mb", 256) * (int64_t{1} << 20);
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0) options.limits.io.max_edges = max_edges;
  const int64_t max_request_kb = opts->GetInt("max-request-kb", 0);
  if (max_request_kb > 0) {
    options.limits.json.max_bytes = max_request_kb * 1024;
  }
  options.bind_address = opts->GetString("bind", "127.0.0.1");
  options.port = static_cast<int>(opts->GetInt("port", 0));

  Server server(std::move(options));
  if (stdio) {
    const Status status = server.ServeStream(std::cin, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  auto port = server.StartTcp();
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.status().ToString().c_str());
    return 1;
  }
  // The readiness line is part of the contract: supervisors (and the CI
  // smoke job) block on it before connecting, and with --port=0 it is the
  // only way to learn the kernel-assigned port.
  std::printf("listening on %s:%d\n",
              opts->GetString("bind", "127.0.0.1").c_str(), *port);
  std::fflush(stdout);
  const Status status = server.RunTcp();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
