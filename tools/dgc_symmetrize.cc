// dgc_symmetrize: stage 1 of the framework as a standalone tool. Reads a
// directed edge list, applies the chosen symmetrization (auto-selecting the
// prune threshold if asked), and writes the undirected result as a weighted
// edge list and/or METIS file for consumption by any external clusterer.
//
//   $ ./dgc_symmetrize --input=graph.txt --method=dd --target-degree=100
//         --out=sym.txt [--metis-out=sym.graph] [--threshold=0.01]
//         [--alpha=0.5] [--beta=0.5] [--report-top=10]
//         [--max-edges=N] [--deadline-ms=N] [--max-memory-mb=N]
//         [--spill-dir=DIR]
//
// --max-memory-mb arms a soft memory budget for the symmetrization: the
// fused similarity kernels degrade to out-of-core row tiles (spilling to
// --spill-dir, default system temp) when the in-memory estimate exceeds
// the budget, instead of aborting (docs/OUT_OF_CORE.md).
#include <cstdio>
#include <fstream>
#include <string>

#include "core/symmetrize.h"
#include "core/threshold_select.h"
#include "core/top_edges.h"
#include "graph/graph_stats.h"
#include "graph/io.h"
#include "util/budget.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

dgc::Status WriteUndirectedEdgeList(const dgc::UGraph& g,
                                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return dgc::Status::IOError("cannot open " + path);
  out << "# undirected weighted edge list: u v weight (u < v)\n";
  const dgc::CsrMatrix& a = g.adjacency();
  for (dgc::Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] > u) out << u << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
  if (!out) return dgc::Status::IOError("write failed for " + path);
  return dgc::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  const std::string input = opts->GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr,
                 "usage: dgc_symmetrize --input=<edge-list> [--method=dd] "
                 "[--threshold=auto] [--target-degree=100] [--alpha=0.5] "
                 "[--beta=0.5] [--out=sym.txt] [--metis-out=sym.graph] "
                 "[--report-top=0] [--max-edges=N] [--deadline-ms=N] "
                 "[--max-memory-mb=N] [--spill-dir=DIR]\n");
    return 2;
  }
  IoLimits limits;
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0) limits.max_edges = max_edges;
  auto graph = ReadEdgeList(input, /*num_vertices=*/0, limits);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto method = ParseSymmetrizationMethod(opts->GetString("method", "dd"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }
  SymmetrizationOptions sym;
  sym.out_discount = DiscountSpec::Power(opts->GetDouble("alpha", 0.5));
  sym.in_discount = DiscountSpec::Power(opts->GetDouble("beta", 0.5));
  sym.add_self_loops = opts->GetBool("self-loops", false);
  // --deadline-ms bounds the symmetrization kernels; the token trips
  // cooperatively inside the SpGEMM row loops. --max-memory-mb feeds both
  // the token's ledger and the out-of-core auto-tiling decision, so a
  // tight budget tiles instead of tripping.
  CancelToken cancel;
  ResourceBudget budget;
  budget.deadline_ms = opts->GetInt("deadline-ms", 0);
  budget.max_memory_bytes =
      opts->GetInt("max-memory-mb", 0) * (int64_t{1} << 20);
  sym.max_memory_bytes = budget.max_memory_bytes;
  sym.spill_dir = opts->GetString("spill-dir", "");
  if (!budget.unlimited()) {
    cancel.Arm(budget);
    sym.cancel = &cancel;
  }

  const std::string threshold = opts->GetString("threshold", "auto");
  const bool prunable = *method == SymmetrizationMethod::kBibliometric ||
                        *method == SymmetrizationMethod::kDegreeDiscounted;
  if (prunable) {
    if (threshold == "auto") {
      ThresholdSelectOptions select;
      select.target_avg_degree =
          static_cast<Index>(opts->GetInt("target-degree", 100));
      auto selection = SelectPruneThreshold(*graph, *method, sym, select);
      if (!selection.ok()) {
        std::fprintf(stderr, "%s\n", selection.status().ToString().c_str());
        return 1;
      }
      sym.prune_threshold = selection->threshold;
      std::printf("auto threshold: %.6f (sampled avg degree %.1f)\n",
                  selection->threshold, selection->sampled_avg_degree);
    } else {
      sym.prune_threshold = opts->GetDouble("threshold", 0.0);
    }
  }

  WallTimer timer;
  auto u = Symmetrize(*graph, *method, sym);
  if (!u.ok()) {
    std::fprintf(stderr, "%s\n", u.status().ToString().c_str());
    return 1;
  }
  DegreeHistogram histogram = ComputeDegreeHistogram(*u);
  std::printf(
      "%s: %lld undirected edges in %.2fs; mean degree %.1f, max %lld, "
      "%lld isolated\n",
      SymmetrizationMethodName(*method).data(),
      static_cast<long long>(u->NumEdges()), timer.ElapsedSeconds(),
      histogram.mean_degree, static_cast<long long>(histogram.max_degree),
      static_cast<long long>(histogram.zero_count));

  const Index report_top = static_cast<Index>(opts->GetInt("report-top", 0));
  if (report_top > 0) {
    std::printf("top-%d edges by weight:\n", report_top);
    for (const WeightedEdge& e : TopWeightedEdgesNormalized(*u, report_top)) {
      std::printf("  %d -- %d  %.2f\n", e.u, e.v, e.weight);
    }
  }

  const std::string out = opts->GetString("out", "");
  if (!out.empty()) {
    auto status = WriteUndirectedEdgeList(*u, out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote undirected edge list to %s\n", out.c_str());
  }
  const std::string metis_out = opts->GetString("metis-out", "");
  if (!metis_out.empty()) {
    auto status = WriteMetisGraph(*u, metis_out,
                                  opts->GetDouble("metis-scale", 1000.0));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote METIS graph to %s\n", metis_out.c_str());
  }
  return 0;
}
