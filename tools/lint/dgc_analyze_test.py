#!/usr/bin/env python3
"""Self-test for dgc-analyze: every determinism rule must fire on its seeded
corpus file — and only there — suppression must work via the allowlist and
inline comments, and the GitHub-annotation mirror must track the JSON
report. This is the CI "negative test": if a rule silently stops firing,
this fails before the tree can rot."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
ANALYZE = os.path.join(HERE, "dgc_analyze.py")
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))
CORPUS = os.path.join("tools", "lint", "analyze_corpus")

# file stem -> the exact rule set it must trigger (empty = must be clean).
CORPUS_EXPECTATIONS = {
    "par_container_mutation": {"par-shared-container-mutation"},
    "par_compound_assign": {"par-shared-compound-assign"},
    "par_element_write": {"par-shared-element-write"},
    "fp_fma": {"fp-fma"},
    "fp_unordered_reduce": {"fp-unordered-reduce"},
    "fp_atomic_float": {"fp-atomic-float"},
    "fp_fast_math": {"fp-fast-math"},
    "nd_unordered_iteration": {"nd-unordered-iteration"},
    "nd_pointer_keyed": {"nd-pointer-keyed"},
    "nd_entropy_seed": {"nd-entropy-seed"},
    "par_clean": set(),
}


def run_analyze(root, *extra, env_extra=None):
    env = {k: v for k, v in os.environ.items() if k != "GITHUB_ACTIONS"}
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, ANALYZE, "--root", root, *extra],
        capture_output=True, text=True, env=env)


def rules_fired(result):
    rules = set()
    for line in result.stdout.splitlines():
        if "] " in line and ": [" in line:
            rules.add(line.split(": [")[1].split("]")[0])
    return rules


class CorpusTest(unittest.TestCase):
    """Each seeded violation file triggers exactly its intended rule."""

    def test_corpus_covers_three_rules_per_family(self):
        families = {"par": 0, "fp": 0, "nd": 0}
        for stem, rules in CORPUS_EXPECTATIONS.items():
            for rule in rules:
                families[rule.split("-")[0]] += 1
        self.assertGreaterEqual(families["par"], 3)
        self.assertGreaterEqual(families["fp"], 3)
        self.assertGreaterEqual(families["nd"], 3)

    def test_every_corpus_file_has_an_expectation(self):
        stems = {os.path.splitext(f)[0]
                 for f in os.listdir(os.path.join(REPO_ROOT, CORPUS))
                 if f.endswith(".cc")}
        self.assertEqual(stems, set(CORPUS_EXPECTATIONS))

    def test_each_file_fires_exactly_its_rule(self):
        for stem, expected in CORPUS_EXPECTATIONS.items():
            path = os.path.join(CORPUS, stem + ".cc")
            result = run_analyze(REPO_ROOT, "--allowlist", os.devnull, path)
            with self.subTest(file=stem):
                self.assertEqual(result.returncode, 1 if expected else 0,
                                 result.stdout + result.stderr)
                self.assertEqual(rules_fired(result), expected,
                                 result.stdout + result.stderr)

    def test_corpus_is_pruned_from_tree_discovery(self):
        # The fixtures are deliberately broken; a full-tree run must not see
        # them (it would otherwise report their seeded violations).
        result = run_analyze(REPO_ROOT)
        self.assertNotIn("analyze_corpus", result.stdout)


class SyntheticTreeTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        os.makedirs(os.path.join(self.root, "src", "util"))
        os.makedirs(os.path.join(self.root, "tools", "lint"))

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    SHARED_SUM = """\
template <class F>
void ParallelFor(long lo, long hi, int threads, F body);
void f(const double* v, long n, int threads) {
  double total = 0.0;
  ParallelFor(0, n, threads, [&](long i) { total += v[i]; });
}
"""

    def test_violations_in_comments_and_strings_ignored(self):
        self.write("src/util/prose.cc", """\
// std::fma(a, b, c) and rand() belong in comments.
/* ParallelFor(0, n, t, [&](long i) { shared.push_back(i); }); */
const char* kMsg = "std::random_device std::reduce(v.begin(), v.end())";
const char* kRaw = R"(for (const auto& kv : an_unordered_map_use) {})";
""")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_value_capture_is_not_shared_state(self):
        # A by-value capture (even mutable) writes a private copy; only
        # by-reference captures and globals are shared across workers.
        self.write("src/util/bycopy.cc", """\
template <class F>
void ParallelFor(long lo, long hi, int threads, F body);
void f(long n, int threads) {
  double total = 0.0;
  ParallelFor(0, n, threads,
              [total](long i) mutable { total += static_cast<double>(i); });
}
""")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_plain_function_with_container_mutation_is_not_a_lambda_body(self):
        # push_back outside a ParallelFor lambda is ordinary serial code.
        self.write("src/util/serial.cc", """\
#include <vector>
void f(std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) out.push_back(i);
}
""")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_simd_files_exempt_from_fp_rules(self):
        body = "double f(double a, double b, double c) " \
               "{ return __builtin_fma(a, b, c); }\n"
        self.write("src/util/simd.cc", body)
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.write("src/linalg/leaky.cc", body)
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(rules_fired(result), {"fp-fma"})

    def test_gen_and_rng_exempt_from_entropy_rule(self):
        body = "#include <random>\nunsigned f() " \
               "{ std::random_device rd; return rd(); }\n"
        self.write("src/gen/sampler.cc", body)
        self.write("src/util/rng.cc", body)
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.write("src/cluster/seedy.cc", body)
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(rules_fired(result), {"nd-entropy-seed"})

    def test_sorted_copy_of_unordered_map_passes(self):
        # Copy-then-sort is the sanctioned pattern: iterating the copy is
        # order-defined even though the source container is unordered.
        self.write("src/eval/sorted.cc", """\
#include <algorithm>
#include <unordered_map>
#include <vector>
double f(const std::unordered_map<int, double>& m) {
  std::vector<std::pair<int, double>> items(m.begin(), m.end());
  std::sort(items.begin(), items.end());
  double total = 0.0;
  for (const auto& kv : items) total = total + kv.second;
  return total;
}
""")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_inline_allow_comment_suppresses(self):
        self.write("src/util/bad.cc", self.SHARED_SUM.replace(
            "total += v[i];",
            "total += v[i];  "
            "// dgc-analyze: allow(par-shared-compound-assign) exercising"))
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_dgc_lint_marker_does_not_suppress_analyze(self):
        # The two tools have separate allow vocabularies on purpose: a
        # dgc-lint waiver must not silence a determinism finding.
        self.write("src/util/bad.cc", self.SHARED_SUM.replace(
            "total += v[i];",
            "total += v[i];  "
            "// dgc-lint: allow(par-shared-compound-assign) wrong tool"))
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_allowlist_suppresses_with_justification(self):
        self.write("src/util/bad.cc", self.SHARED_SUM)
        self.write("tools/lint/analyze_allowlist.txt",
                   "par-shared-compound-assign|src/util/bad.cc|total"
                   "|vetted: exercising the allowlist in a test\n")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("1 allowlisted", result.stderr)

    def test_malformed_allowlist_entry_is_a_finding(self):
        self.write("src/util/fine.cc", "void f();\n")
        self.write("tools/lint/analyze_allowlist.txt",
                   "fp-fma|src/util/bad.cc|fma|\n")
        result = run_analyze(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("allowlist-malformed", result.stdout)

    def test_json_report_shape(self):
        self.write("src/util/bad.cc", self.SHARED_SUM)
        out = os.path.join(self.root, "report.json")
        result = run_analyze(self.root, "--json", out)
        self.assertEqual(result.returncode, 1)
        with open(out, encoding="utf-8") as f:
            report = json.load(f)
        self.assertEqual(report["tool"], "dgc-analyze")
        self.assertIn("engine_version", report)
        finding = report["findings"][0]
        self.assertEqual(finding["rule"], "par-shared-compound-assign")
        self.assertEqual(finding["file"], "src/util/bad.cc")
        self.assertEqual(finding["line"], 5)
        self.assertIn("total", finding["text"])

    def test_github_annotations_only_under_actions_env(self):
        self.write("src/util/bad.cc", self.SHARED_SUM)
        result = run_analyze(self.root)
        self.assertNotIn("::error", result.stdout)
        result = run_analyze(self.root,
                             env_extra={"GITHUB_ACTIONS": "true"})
        self.assertEqual(result.returncode, 1)
        self.assertIn("::error file=src/util/bad.cc,line=5::"
                      "[par-shared-compound-assign]", result.stdout)


if __name__ == "__main__":
    unittest.main()
