// Seeded violation: nd-entropy-seed (and nothing else).
// Hardware/libc entropy and wall-clock seeding make runs unrepeatable;
// all stochastic code takes an explicit seeded dgc::Rng.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned HardwareSeed() {
  std::random_device rd;
  return rd();
}

void ReseedLibc() { srand(42); }

unsigned TimeSeed() {
  unsigned seed = static_cast<unsigned>(time(nullptr));
  return seed;
}
