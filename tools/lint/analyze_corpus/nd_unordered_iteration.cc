// Seeded violation: nd-unordered-iteration (and nothing else).
// Hash-map iteration order is a function of hashing, load factor and the
// standard library, not of the data; accumulating in that order is not
// portably reproducible.
#include <unordered_map>

double SumWeights(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total = total + kv.second;
  }
  return total;
}
