// Seeded violation: par-shared-compound-assign (and nothing else).
// Accumulating into a shared capture commits in scheduling order: FP sums
// change bits, integer sums race. Use per-worker shards, reduce serially.
#include <cstdint>

template <class F>
void ParallelForWorkers(int64_t lo, int64_t hi, int threads, int64_t grain,
                        F body);

double SumValues(const double* values, int64_t n, int threads) {
  double total = 0.0;
  int64_t visited = 0;
  ParallelForWorkers(0, n, threads, 256,
                     [&](int worker, int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) {
                         total += values[i];
                         ++visited;
                       }
                     });
  return total + static_cast<double>(visited);
}
