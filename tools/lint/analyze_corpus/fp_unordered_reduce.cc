// Seeded violation: fp-unordered-reduce (and nothing else).
// std::reduce/transform_reduce leave the reduction order unspecified;
// std::accumulate over floating operands sums in iteration order, which is
// not auditable at the call site. Write explicit index-order loops.
#include <numeric>
#include <vector>

double Total(const std::vector<double>& values) {
  double r = std::reduce(values.begin(), values.end(), 0.0);
  double a = std::accumulate(values.begin(), values.end(), 0.0);
  return r + a;
}
