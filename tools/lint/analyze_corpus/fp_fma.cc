// Seeded violation: fp-fma (and nothing else).
// Fused multiply-add rounds once where the determinism contract pins
// two-rounding semantics (-ffp-contract=off) for scalar/SIMD bit-identity.
#include <cmath>

double DotTail(const double* a, const double* b, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc = std::fma(a[i], b[i], acc);
  }
  return acc;
}

float DotTailF(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    acc = fmaf(a[i], b[i], acc);
  }
  return acc;
}
