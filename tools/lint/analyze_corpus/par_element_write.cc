// Seeded violation: par-shared-element-write (and nothing else).
// The written index involves no loop-local variable or lambda parameter,
// so nothing proves the writes are disjoint across workers.
#include <cstdint>

template <class F>
void ParallelFor(int64_t lo, int64_t hi, int threads, F body);

void FillSlots(double* out, const int64_t* slot_of, int64_t n, int threads) {
  ParallelFor(0, n, threads, [&](int64_t r) {
    out[0] = static_cast<double>(r);
    out[slot_of[0]] = 1.0;
  });
}
