// Conforming control: must trigger NOTHING.
// Every parallel write lands through the loop index or a per-worker slot;
// accumulation uses per-worker shards reduced serially after the barrier —
// the exact shape the par-* rules sanction.
#include <cstdint>
#include <vector>

template <class F>
void ParallelForWorkers(int64_t lo, int64_t hi, int threads, int64_t grain,
                        F body);

void RowSums(const double* values, const int64_t* row_ptr, int64_t rows,
             int threads, double* out, double* grand_total) {
  std::vector<double> shard(16, 0.0);
  ParallelForWorkers(0, rows, threads, 128,
                     [&](int worker, int64_t lo_r, int64_t hi_r) {
                       for (int64_t r = lo_r; r < hi_r; ++r) {
                         double acc = 0.0;
                         for (int64_t p = row_ptr[r]; p < row_ptr[r + 1];
                              ++p) {
                           acc += values[p];
                         }
                         out[r] = acc;
                         shard[static_cast<size_t>(worker)] += acc;
                       }
                     });
  double total = 0.0;
  for (size_t w = 0; w < shard.size(); ++w) {
    total += shard[w];
  }
  grand_total[0] = total;
}
