// Seeded violation: nd-pointer-keyed (and nothing else).
// Pointer-keyed containers order/hash by address, which changes every run
// under ASLR. Key on a stable id instead.
#include <map>
#include <set>

struct Node;

std::map<Node*, int> g_rank;
std::set<const Node*> g_visited;
