// Seeded violation: par-shared-container-mutation (and nothing else).
// Growth mutations on a by-reference shared capture race on the container
// size and make element order depend on chunk scheduling.
#include <cstdint>
#include <map>
#include <vector>

template <class F>
void ParallelFor(int64_t lo, int64_t hi, int threads, F body);

void BuildRows(int64_t n, int threads) {
  std::vector<int> rows;
  std::map<int, int> first_seen;
  ParallelFor(0, n, threads, [&](int64_t r) {
    rows.push_back(static_cast<int>(r));
    first_seen.insert({static_cast<int>(r), 0});
  });
}
