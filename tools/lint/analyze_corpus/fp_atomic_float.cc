// Seeded violation: fp-atomic-float (and nothing else).
// Atomic FP accumulation commits in scheduling order, reordering roundings
// run to run. Use per-worker shards and a serial reduction.
#include <atomic>

std::atomic<double> g_total{0.0};

void Add(double x) { g_total.fetch_add(x); }
