// Seeded violation: fp-fast-math (and nothing else).
// Pragmas that re-enable contraction/reassociation bypass the build-wide
// -ffp-contract=off pin; OpenMP bypasses the deterministic pool.
#pragma STDC FP_CONTRACT ON

double MulAdd(double a, double b, double c) { return a * b + c; }

void Scale(double* v, int n, double s) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    v[i] *= s;
  }
}
