#!/usr/bin/env python3
"""dgc-lint: project-invariant static analysis for the dgc codebase.

Enforces conventions that generic tooling cannot know about:

  no-raw-assert            raw assert()/abort() outside src/util/logging.*;
                           invariants must use DGC_CHECK* so they survive
                           NDEBUG and log through one place.
  no-raw-random            std::rand/std::mt19937/std::random_device &c.
                           outside src/util/rng.*; all stochastic code takes
                           an explicit seeded dgc::Rng for reproducibility.
  unchecked-needs-validate every CsrMatrix::FromPartsUnchecked call site must
                           be paired with a ValidateStructure(...) /
                           DGC_DCHECK_OK(...Validate()) within the next few
                           lines, so checked builds re-verify the structure.
  no-void-status-discard   no explicit (void)-discard of Status/Result
                           expressions; handle or DGC_CHECK_OK them.
  nodiscard-declared       Status and Result must stay [[nodiscard]] so the
                           compiler flags silently dropped errors.
  simd-intrinsics-contained raw SIMD intrinsics (_mm*/__m128/__m256/__m512,
                           NEON v*q_* types/intrinsics) and intrinsic
                           headers (immintrin.h &c.) outside
                           src/util/simd.{h,cc}; kernels must compose the
                           dispatch-checked primitives of util/simd.h so the
                           scalar/vector bit-identity contract stays
                           auditable in one file.
  include-pragma-once      every header starts include guarding via
                           #pragma once.
  include-no-relative      no "../" includes; use project-root-relative paths.
  include-no-bits          never include <bits/...> internals.
  include-project-quotes   project headers are included with quotes, angle
                           brackets are reserved for system/third-party.

File set: every *.h/*.cc/*.cpp/*.hpp under src/, tests/, bench/, tools/ of
--root, optionally unioned with the translation units of a
--compile-commands compile_commands.json (entries outside --root or inside
build dirs are ignored).

Suppression, in order of preference:
  1. Fix the finding.
  2. Inline: append  // dgc-lint: allow(<rule>) <reason>  to the line.
  3. Entry in the allowlist file (see --allowlist; format documented there).

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
--json FILE writes a machine-readable report regardless of outcome.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
SOURCE_DIRS = ("src", "tests", "bench", "tools", "examples")
PROJECT_INCLUDE_DIRS = (
    "util", "obs", "linalg", "graph", "gen", "core", "cluster", "eval",
    "bench", "tools",
)
# How many lines after a FromPartsUnchecked call the paired validation may
# appear on (calls span lines; the hook follows the full statement).
VALIDATE_WINDOW = 12

INLINE_ALLOW_RE = re.compile(r"//\s*dgc-lint:\s*allow\(([\w,\- ]+)\)")


class Finding:
    def __init__(self, rule, path, line, message, text):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.text = text.strip()

    def to_json(self):
        return {
            "rule": self.rule,
            "file": self.path,
            "line": self.line,
            "message": self.message,
            "text": self.text,
        }

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _gha_escape(value):
    # GitHub workflow-command escaping: % first, then the line breaks.
    return (value.replace("%", "%25")
                 .replace("\r", "%0D")
                 .replace("\n", "%0A"))


def emit_github_annotations(findings, stream=None):
    """When running under GitHub Actions, mirrors findings as ::error
    workflow commands so they surface inline on PR diffs. The printed
    findings and the JSON report are the source of truth; this is pure
    presentation and a no-op everywhere else."""
    if not os.environ.get("GITHUB_ACTIONS"):
        return
    stream = stream or sys.stdout
    for f in findings:
        print(f"::error file={_gha_escape(f.path)},line={f.line}::"
              f"{_gha_escape(f'[{f.rule}] {f.message}')}", file=stream)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so rules never fire on prose or quoted text."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR, RAW_STRING = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim" — only when the preceding characters
                # form a genuine raw-string prefix (R, uR, u8R, UR, LR) that
                # is not the tail of a longer identifier: FACTOR"(..." is the
                # identifier FACTOR followed by an ordinary string, and
                # misreading it as a raw string desyncs the scanner for the
                # rest of the file.
                pm = re.search(r'(?:u8|[uUL])?R$', text[max(0, i - 3):i])
                if pm:
                    pstart = max(0, i - 3) + pm.start()
                    before = text[pstart - 1] if pstart > 0 else ""
                    if before and (before.isalnum() or before in "_\"'"):
                        pm = None
                m = re.match(r'"([^\s()\\]{0,16})\(', text[i:i + 20]) \
                    if pm else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW_STRING
                else:
                    state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == STRING:
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == '"':
                state = NORMAL
                out.append('"')
                i += 1
            elif c == "\n":
                # A plain literal cannot contain a raw newline; the input is
                # ill-formed, so resynchronize here instead of silently
                # swallowing the rest of the file.
                state = NORMAL
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == CHAR:
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == "'":
                state = NORMAL
                out.append("'")
                i += 1
            elif c == "\n":
                state = NORMAL
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
        else:  # RAW_STRING
            if text.startswith(raw_delim, i):
                # Blank the `)delim` part too (a delimiter is arbitrary text
                # and must not leak into the stripped output); keep the final
                # quote so the literal stays delimited.
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = NORMAL
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


# --- rules -----------------------------------------------------------------

RAW_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])(?:std::)?(assert|abort)\s*\(")
RAW_RANDOM_RE = re.compile(
    r"std::(rand\b|mt19937|minstd_rand|random_device|default_random_engine|"
    r"uniform_int_distribution|uniform_real_distribution|"
    r"normal_distribution|bernoulli_distribution)"
    r"|(?<![A-Za-z0-9_:])s?rand\s*\("
)
UNCHECKED_RE = re.compile(r"FromPartsUnchecked")
UNCHECKED_DECL_RE = re.compile(
    r"static\s+CsrMatrix\s+FromPartsUnchecked|"
    r"CsrMatrix\s+CsrMatrix::FromPartsUnchecked"
)
VALIDATE_PAIR_RE = re.compile(r"ValidateStructure\s*\(|DGC_DCHECK_OK\s*\(")
VOID_DISCARD_RE = re.compile(
    r"\(\s*void\s*\)\s*[^;]*(\.Validate\s*\(|Status\s*(::|\()|Result<)"
)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')
SIMD_INTRINSIC_RE = re.compile(
    r"(?<![A-Za-z0-9_])(_mm\d*_[a-z0-9_]+\s*\(|__m(128|256|512)[di]?\b|"
    r"v(ld1|st1|add|sub|mul|div|clt|cle|ceq|dup|get|set)q?_[a-z0-9_]+\s*\(|"
    r"(float|int|uint)(32|64)x\d+(x\d+)?_t\b)"
)
SIMD_HEADER_RE = re.compile(
    r"^(immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|tmmintrin|"
    r"smmintrin|nmmintrin|avxintrin|avx2intrin|arm_neon)\.h$"
)


def is_under(path, prefix):
    return path == prefix or path.startswith(prefix.rstrip("/") + "/") or \
        fnmatch.fnmatch(path, prefix)


def lint_file(relpath, raw_text, findings):
    code = strip_comments_and_strings(raw_text)
    raw_lines = raw_text.splitlines()
    lines = code.splitlines()
    is_header = relpath.endswith((".h", ".hpp"))

    def add(rule, lineno, message):
        text = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        findings.append(Finding(rule, relpath, lineno, message, text))

    in_logging = is_under(relpath, "src/util/logging.*")
    in_rng = is_under(relpath, "src/util/rng.*")
    in_simd = is_under(relpath, "src/util/simd.*")

    for idx, line in enumerate(lines, start=1):
        if not in_logging:
            m = RAW_ASSERT_RE.search(line)
            if m:
                add("no-raw-assert", idx,
                    f"raw {m.group(1)}() outside src/util/logging.*; use "
                    "DGC_CHECK*/DGC_DCHECK* (or DGC_LOG(Fatal)) instead")
        if not in_rng:
            m = RAW_RANDOM_RE.search(line)
            if m:
                add("no-raw-random", idx,
                    "unseeded/non-portable RNG outside src/util/rng.*; "
                    "take an explicit dgc::Rng instead")
        m = VOID_DISCARD_RE.search(line)
        if m:
            add("no-void-status-discard", idx,
                "(void)-discarding a Status/Result; handle the error or "
                "use DGC_CHECK_OK / DGC_DCHECK_OK")
        if not in_simd:
            m = SIMD_INTRINSIC_RE.search(line)
            if m:
                add("simd-intrinsics-contained", idx,
                    "raw SIMD intrinsic outside src/util/simd.*; compose "
                    "the dispatch-checked primitives of util/simd.h "
                    "instead")
        # Include targets live inside quotes, which the stripper blanks, so
        # match the raw line — but only when the stripped line is still an
        # #include (i.e. the directive is not commented out).
        m = INCLUDE_RE.match(raw_lines[idx - 1]) \
            if re.match(r"^\s*#\s*include", line) else None
        if m:
            style, target = m.group(1), m.group(2)
            if target.startswith("../") or "/../" in target:
                add("include-no-relative", idx,
                    f'relative include "{target}"; include project headers '
                    "by their root-relative path")
            if target.startswith("bits/"):
                add("include-no-bits", idx,
                    f"<{target}> is a libstdc++ internal; include the "
                    "standard header instead")
            first_dir = target.split("/", 1)[0]
            if style == "<" and first_dir in PROJECT_INCLUDE_DIRS:
                add("include-project-quotes", idx,
                    f"project header <{target}> included with angle "
                    "brackets; use quotes")
            if not in_simd and SIMD_HEADER_RE.match(target):
                add("simd-intrinsics-contained", idx,
                    f"intrinsic header <{target}> outside src/util/simd.*; "
                    "compose the primitives of util/simd.h instead")

    # unchecked-needs-validate: window search on the stripped code.
    for idx, line in enumerate(lines, start=1):
        if not UNCHECKED_RE.search(line):
            continue
        if UNCHECKED_DECL_RE.search(line):
            continue  # declaration or definition, not a call site
        window = "\n".join(lines[idx - 1: idx - 1 + VALIDATE_WINDOW])
        if not VALIDATE_PAIR_RE.search(window):
            add("unchecked-needs-validate", idx,
                "FromPartsUnchecked call without ValidateStructure(...) or "
                f"DGC_DCHECK_OK(...Validate()) within {VALIDATE_WINDOW} "
                "lines")

    if is_header and "#pragma once" not in code:
        add("include-pragma-once", 1, "header is missing #pragma once")

    if relpath == "src/util/status.h" and \
            not re.search(r"class\s+\[\[nodiscard\]\]\s+Status", code):
        add("nodiscard-declared", 1,
            "class Status must be declared [[nodiscard]]")
    if relpath == "src/util/result.h" and \
            not re.search(r"class\s+\[\[nodiscard\]\]\s+Result", code):
        add("nodiscard-declared", 1,
            "class Result must be declared [[nodiscard]]")


# --- allowlist -------------------------------------------------------------

def load_allowlist(path):
    """Allowlist entries, one per line:

        <rule>|<path glob>|<line regex>|<justification>

    Blank lines and lines starting with # are ignored. The justification is
    mandatory: entries without one are themselves a lint error.
    """
    entries = []
    problems = []
    if not os.path.exists(path):
        return entries, problems
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|", 3)
            if len(parts) != 4 or not parts[3].strip():
                problems.append(
                    f"{path}:{lineno}: malformed allowlist entry (want "
                    "rule|path-glob|line-regex|justification)")
                continue
            rule, glob, regex, why = (p.strip() for p in parts)
            try:
                entries.append((rule, glob, re.compile(regex), why))
            except re.error as e:
                problems.append(f"{path}:{lineno}: bad regex: {e}")
    return entries, problems


def is_allowlisted(finding, entries, raw_lines_by_file):
    lines = raw_lines_by_file.get(finding.path, [])
    raw = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
    m = INLINE_ALLOW_RE.search(raw)
    if m and finding.rule in [r.strip() for r in m.group(1).split(",")]:
        return True
    for rule, glob, regex, _why in entries:
        if rule != finding.rule and rule != "*":
            continue
        if not fnmatch.fnmatch(finding.path, glob):
            continue
        if regex.search(raw) or regex.pattern == "":
            return True
    return False


# --- file discovery --------------------------------------------------------

def discover_files(root, compile_commands):
    files = set()
    for d in SOURCE_DIRS:
        base = os.path.join(root, d)
        for dirpath, dirnames, filenames in os.walk(base):
            # analyze_corpus holds the dgc-analyze seeded-violation fixtures:
            # deliberately broken sources that must never be linted as tree
            # code (their self-test passes them explicitly).
            dirnames[:] = [x for x in dirnames
                           if not x.startswith("build")
                           and x != "analyze_corpus"]
            for name in filenames:
                if name.endswith(SOURCE_EXTENSIONS):
                    files.add(
                        os.path.relpath(os.path.join(dirpath, name), root))
    if compile_commands:
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                path = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"]))
                rel = os.path.relpath(path, root)
                if rel.startswith("..") or rel.split(os.sep)[0].startswith(
                        "build"):
                    continue
                if rel.endswith(SOURCE_EXTENSIONS):
                    files.add(rel)
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="dgc-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two dirs above this file)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to union TUs from")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/lint/allowlist.txt under --root)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write machine-readable findings report here")
    parser.add_argument("paths", nargs="*",
                        help="lint only these files (relative to --root)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print(f"dgc-lint: no such root: {root}", file=sys.stderr)
        return 2
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "lint", "allowlist.txt")
    entries, problems = load_allowlist(allowlist_path)

    if args.paths:
        files = sorted(set(args.paths))
    else:
        files = discover_files(root, args.compile_commands)
    if not files:
        print("dgc-lint: no source files found", file=sys.stderr)
        return 2

    findings = []
    raw_lines_by_file = {}
    checked = 0
    for rel in files:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"dgc-lint: cannot read {rel}: {e}", file=sys.stderr)
            return 2
        raw_lines_by_file[rel] = text.splitlines()
        lint_file(rel, text, findings)
        checked += 1

    kept, suppressed = [], 0
    for finding in findings:
        if is_allowlisted(finding, entries, raw_lines_by_file):
            suppressed += 1
        else:
            kept.append(finding)
    for problem in problems:
        kept.append(Finding("allowlist-malformed", allowlist_path, 0,
                            problem, ""))

    if args.json_out:
        report = {
            "tool": "dgc-lint",
            "root": root,
            "checked_files": checked,
            "suppressed": suppressed,
            "findings": [f.to_json() for f in kept],
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    for finding in kept:
        print(finding)
    emit_github_annotations(kept)
    summary = (f"dgc-lint: {checked} files, {len(kept)} finding(s), "
               f"{suppressed} allowlisted")
    print(summary, file=sys.stderr)
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
