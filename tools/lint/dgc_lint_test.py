#!/usr/bin/env python3
"""Self-test for dgc-lint: every rule must fire on a seeded violation and
stay quiet on conforming code; suppression must work via both the allowlist
and inline comments. This is the CI "negative test" — if a rule silently
stops firing, this fails before the tree can rot."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "dgc_lint.py")


def run_lint(root, *extra, env_extra=None):
    # GITHUB_ACTIONS is scrubbed so stdout stays annotation-free when the
    # suite itself runs in CI; the annotation test opts back in explicitly.
    env = {k: v for k, v in os.environ.items() if k != "GITHUB_ACTIONS"}
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, LINT, "--root", root, *extra],
        capture_output=True, text=True, env=env)


class DgcLintTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        os.makedirs(os.path.join(self.root, "src", "util"))
        os.makedirs(os.path.join(self.root, "tests"))
        os.makedirs(os.path.join(self.root, "tools", "lint"))

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def rules_fired(self, result):
        rules = set()
        for line in result.stdout.splitlines():
            if "] " in line and ": [" in line:
                rules.add(line.split(": [")[1].split("]")[0])
        return rules

    def test_every_rule_fires_on_seeded_violations(self):
        self.write("src/util/bad.cc", """\
#include "../util/x.h"
#include <bits/stdc++.h>
#include <util/logging.h>
void f(int x) {
  assert(x > 0);
  abort();
  std::mt19937 gen(42);
}
void g() {
  auto m = CsrMatrix::FromPartsUnchecked(1, 1, {0, 0}, {}, {});
  use(m);
}
void h(const Thing& t) { (void)t.Validate(); }
void v(double* p) { __m256d x = _mm256_loadu_pd(p); (void)x; }
""")
        self.write("src/util/noguard.h", "int x;\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(
            self.rules_fired(result),
            {"no-raw-assert", "no-raw-random", "unchecked-needs-validate",
             "no-void-status-discard", "include-no-relative",
             "include-no-bits", "include-project-quotes",
             "include-pragma-once", "simd-intrinsics-contained"})

    def test_clean_tree_passes(self):
        self.write("src/util/good.cc", """\
#include "util/logging.h"
void f(int x) { DGC_CHECK_GT(x, 0); }
void g() {
  auto m = CsrMatrix::FromPartsUnchecked(1, 1, {0, 0}, {}, {});
  m.ValidateStructure("g");
}
""")
        self.write("src/util/good.h", "#pragma once\nint declared();\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_violations_in_comments_and_strings_ignored(self):
        self.write("src/util/prose.cc", """\
// assert(x) and std::mt19937 belong in comments; so does abort().
/* FromPartsUnchecked( without validation, in a block comment. */
const char* kMsg = "assert(failed) std::rand()";
""")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_logging_and_rng_are_exempt_in_their_own_files(self):
        self.write("src/util/logging.cc",
                   "void Die() { abort(); }\n")
        self.write("src/util/rng.cc",
                   "int Legacy() { return std::mt19937(7)(); }\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_simd_intrinsics_exempt_in_simd_files_only(self):
        body = """\
#include <immintrin.h>
#include <arm_neon.h>
void f(double* p) {
  __m256d x = _mm256_loadu_pd(p);
  _mm256_storeu_pd(p, x);
  float64x2_t y = vld1q_f64(p);
  vst1q_f64(p, y);
}
"""
        self.write("src/util/simd.cc", body)
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.write("src/linalg/leaky.cc", body)
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(self.rules_fired(result),
                         {"simd-intrinsics-contained"})

    def test_raw_string_contents_are_ignored(self):
        # Rule text inside raw strings (all prefix forms, with and without
        # delimiters, spanning lines) must never fire; the delimiter text
        # itself must not leak into the stripped output either.
        self.write("src/util/raw.cc", """\
const char* a = R"(assert(x) std::rand() abort();)";
const char* b = R"==(std::mt19937 gen; FromPartsUnchecked()==";
const char* c = u8R"(abort();)";
const char* d = LR"(assert(1))";
const char* e = R"assert(x)assert";
const char* f = R"(line one
assert(2) abort();
line three)";
""")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_identifier_ending_in_r_is_not_a_raw_string_prefix(self):
        # FACTOR"(..." is the identifier FACTOR followed by an ordinary
        # string literal. The old stripper misread it as a raw string and
        # hunted for a )delim" that never comes, desynchronizing the scanner
        # and silently swallowing real violations later in the file.
        self.write("src/util/identr.cc", """\
int x = FACTOR"(no close here";
int y = VER"(1.2)";
void later() { abort(); }
""")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(self.rules_fired(result), {"no-raw-assert"})
        self.assertIn("identr.cc:3", result.stdout)

    def test_unterminated_string_resyncs_at_end_of_line(self):
        # Ill-formed input (a quote that never closes) must not swallow the
        # rest of the file: plain literals cannot span lines, so the
        # stripper resynchronizes at the newline.
        self.write("src/util/unterm.cc", """\
const char* s = "oops;
void later() { abort(); }
""")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(self.rules_fired(result), {"no-raw-assert"})

    def test_static_assert_is_not_a_raw_assert(self):
        self.write("src/util/sa.cc",
                   "static_assert(sizeof(int) == 4);\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_allowlist_suppresses_with_justification(self):
        self.write("src/util/bad.cc", "void f() { abort(); }\n")
        self.write("tools/lint/allowlist.txt",
                   "no-raw-assert|src/util/bad.cc|abort"
                   "|vetted: exercising the allowlist in a test\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("1 allowlisted", result.stderr)

    def test_malformed_allowlist_entry_is_a_finding(self):
        self.write("src/util/fine.cc", "void f();\n")
        self.write("tools/lint/allowlist.txt",
                   "no-raw-assert|src/util/bad.cc|abort|\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("allowlist-malformed", result.stdout)

    def test_inline_allow_comment_suppresses(self):
        self.write(
            "src/util/bad.cc",
            "void f() { abort(); }  "
            "// dgc-lint: allow(no-raw-assert) exercising inline allow\n")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_json_report_shape(self):
        self.write("src/util/bad.cc", "void f() { abort(); }\n")
        out = os.path.join(self.root, "report.json")
        result = run_lint(self.root, "--json", out)
        self.assertEqual(result.returncode, 1)
        with open(out, encoding="utf-8") as f:
            report = json.load(f)
        self.assertEqual(report["tool"], "dgc-lint")
        self.assertEqual(report["checked_files"], 1)
        finding = report["findings"][0]
        self.assertEqual(finding["rule"], "no-raw-assert")
        self.assertEqual(finding["file"], "src/util/bad.cc")
        self.assertEqual(finding["line"], 1)
        self.assertIn("abort", finding["text"])

    def test_compile_commands_union(self):
        # A TU reachable only via compile_commands.json is still linted.
        os.makedirs(os.path.join(self.root, "extra"))
        self.write("extra/stray.cc", "void f() { abort(); }\n")
        cc = os.path.join(self.root, "compile_commands.json")
        with open(cc, "w", encoding="utf-8") as f:
            json.dump([{"directory": self.root, "file": "extra/stray.cc",
                        "command": "c++ -c extra/stray.cc"}], f)
        result = run_lint(self.root, "--compile-commands", cc)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("extra/stray.cc", result.stdout)

    def test_github_annotations_only_under_actions_env(self):
        self.write("src/util/bad.cc", "void f() { abort(); }\n")
        result = run_lint(self.root)
        self.assertNotIn("::error", result.stdout)
        result = run_lint(self.root, env_extra={"GITHUB_ACTIONS": "true"})
        self.assertEqual(result.returncode, 1)
        self.assertIn("::error file=src/util/bad.cc,line=1::[no-raw-assert]",
                      result.stdout)

    def test_github_annotation_escapes_workflow_metacharacters(self):
        # % and newlines in paths/messages must be %-escaped or the runner
        # truncates the annotation at the first line break.
        self.write("src/util/100%.cc", "void f() { abort(); }\n")
        result = run_lint(self.root, env_extra={"GITHUB_ACTIONS": "true"})
        self.assertEqual(result.returncode, 1)
        self.assertIn("::error file=src/util/100%25.cc,line=1::",
                      result.stdout)

    def test_declaration_and_definition_are_not_call_sites(self):
        self.write("src/util/decl.h", """\
#pragma once
class CsrMatrix {
  static CsrMatrix FromPartsUnchecked(int rows, int cols);
};
""")
        self.write("src/util/decl.cc", """\
CsrMatrix CsrMatrix::FromPartsUnchecked(int rows, int cols) {
  return CsrMatrix(rows, cols);
}
""")
        result = run_lint(self.root)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
