#!/usr/bin/env python3
"""dgc-analyze: determinism static analysis for the dgc codebase.

The library's headline guarantee is bit-identical clustering output at any
thread count and any SIMD dispatch level. The end-to-end determinism tests
catch violations after they happen; this analyzer proves the invariants
structurally, before they ship, with three rule families:

Parallel-capture audit (every lambda passed to ParallelFor /
ParallelForWorkers / ParallelForChunked):

  par-shared-container-mutation  push_back / emplace / insert / erase /
                           clear / resize on a by-reference-captured (or
                           global) container. Growth mutations from inside a
                           parallel body race on the container's size and
                           make element order depend on chunk scheduling.
  par-shared-compound-assign  +=, -=, ++ &c. (or plain =) on a shared
                           captured scalar. Cross-worker accumulation order
                           is scheduling-dependent; FP sums change bits,
                           integer sums race. Accumulate into per-worker
                           shards and reduce serially instead.
  par-shared-element-write shared[expr] = ... where expr involves neither a
                           loop-local variable, a lambda parameter (loop
                           index / worker id), nor anything derived from
                           them. Writes through the loop index or a
                           per-worker slot are the only sanctioned pattern.

FP-ordering hazards (outside src/util/simd.*):

  fp-fma                   std::fma / fmaf / fmal / __builtin_fma. Fused
                           multiply-add rounds once where the scalar
                           contract rounds twice; the whole build pins
                           -ffp-contract=off so scalar and vector paths stay
                           bit-identical. FMA must not come back by hand.
  fp-unordered-reduce      std::reduce / std::transform_reduce (reduction
                           order unspecified by the standard), and
                           std::accumulate over floating-point operands
                           (order fixed but container-iteration-dependent).
                           Use explicit index-order loops.
  fp-atomic-float          std::atomic<float/double/Scalar>. Atomic FP
                           accumulation commits in scheduling order, which
                           reorders roundings run to run.
  fp-fast-math             pragmas / attributes that re-enable FP
                           reassociation or contraction (fast-math,
                           FP_CONTRACT ON, float_control(precise, off)) or
                           OpenMP constructs, which bypass the deterministic
                           pool and its reduction conventions.

Nondeterminism sources:

  nd-unordered-iteration   range-for over a std::unordered_map/set.
                           Iteration order is a function of hashing, load
                           factor and the standard library, not of the data;
                           anything accumulated or tie-broken in that order
                           is not portably reproducible.
  nd-pointer-keyed         std::map/set (or unordered) keyed on a pointer
                           type: comparison/hash order is allocation order,
                           different every run under ASLR.
  nd-entropy-seed          std::random_device, srand/rand, or seeding an
                           Rng from wall-clock time / pid. All stochastic
                           code takes an explicit seeded dgc::Rng
                           (src/gen and src/util/rng.* are exempt).

Analysis engine: the analyzer parses each translation unit into an AST-lite
form of its own — comment/string stripping (shared with dgc-lint), a
bracket-matched call tree around every ParallelFor* call site, lambda
capture-list / parameter / body extraction, and declaration scanning for
body-local names. It deliberately does not depend on the libclang Python
bindings: the pinned toolchain image does not ship them, and the engine's
file-local checks need no cross-TU type information. CI pins the clang
tooling versions separately so the clang-tidy half of the static-analysis
gate is reproducible.

File set, CLI, JSON report, exit codes and suppression follow dgc-lint:
  1. Fix the finding.
  2. Inline: append  // dgc-analyze: allow(<rule>) <reason>  to the line.
  3. Entry in tools/lint/analyze_allowlist.txt (same format as the dgc-lint
     allowlist; the justification field is mandatory).

Exit codes: 0 clean, 1 findings, 2 usage/environment error.
--json FILE writes a machine-readable report regardless of outcome.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from dgc_lint import (  # noqa: E402  (path bootstrap above)
    Finding,
    discover_files,
    emit_github_annotations,
    is_under,
    load_allowlist,
    strip_comments_and_strings,
)

ENGINE_VERSION = "1"

INLINE_ALLOW_RE = re.compile(r"//\s*dgc-analyze:\s*allow\(([\w,\- ]+)\)")

PARALLEL_CALL_RE = re.compile(
    r"\b(ParallelFor|ParallelForWorkers|ParallelForChunked)\s*\(")

# C++ keywords that must never be mistaken for a declaration's type name.
NON_TYPE_KEYWORDS = frozenset({
    "return", "else", "new", "delete", "throw", "case", "do", "while", "if",
    "switch", "goto", "sizeof", "template", "typename", "using", "namespace",
    "public", "private", "protected", "operator", "break", "continue",
    "co_return", "co_await", "co_yield", "default", "typedef", "static_cast",
    "const_cast", "dynamic_cast", "reinterpret_cast", "not", "and", "or",
})

# `Type name =`, `Type& name;`, `auto name{`, `for (Type name : ...` — a
# type-ish token followed by a new identifier. Template arguments are
# consumed non-greedily so `std::vector<int> v` resolves to `v`.
DECL_RE = re.compile(
    r"(?:^|[;{(,]|\bfor\s*\()\s*"
    r"(?:const\s+|constexpr\s+|static\s+|volatile\s+|unsigned\s+|signed\s+)*"
    r"(auto|[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)"
    r"(?:\s*<[^;{}]{0,240}?>)?"
    r"[&*\s]+([A-Za-z_]\w*)\s*(?==[^=]|[;{(,)]|:[^:])",
    re.MULTILINE)

# Structured bindings: `auto& [a, b] = ...` / `for (const auto& [k, v] : m)`.
STRUCTURED_BINDING_RE = re.compile(
    r"\bauto\s*[&*]{0,2}\s*\[([^\]]{1,120})\]")

CONTAINER_MUTATION_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*"
    r"((?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(push_back|emplace_back|emplace|insert|erase|clear|resize)\s*\(")

COMPOUND_ASSIGN_RE = re.compile(
    r"(?<![\w.>\[])([A-Za-z_]\w*)\s*"
    r"(\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|=(?![=>]))")

# The (?!\w) after the identifier forces a full-identifier match: without
# it, `++counts[i]` backtracks to the identifier `count` so the trailing
# `s` satisfies the not-an-element-write lookahead.
INCDEC_RE = re.compile(
    r"(?:(\+\+|--)\s*([A-Za-z_]\w*)(?!\w)(?!\s*[\[.])"
    r"|(?<![\w.>\]])([A-Za-z_]\w*)\s*(\+\+|--))")

ELEMENT_WRITE_RE = re.compile(
    r"(?<![\w.>])([A-Za-z_]\w*)\s*\[")

FMA_RE = re.compile(
    r"(?<![\w.:])(?:std::|__builtin_)?(fma|fmaf|fmal)\s*\(")
UNORDERED_REDUCE_RE = re.compile(
    r"std::(reduce|transform_reduce)\s*\(")
ACCUMULATE_RE = re.compile(r"std::accumulate\s*\(")
FLOATISH_RE = re.compile(
    r"\b(?:Scalar|double|float)\b|(?<![\w.])\d+\.\d*f?|(?<![\w.])\.\d+f?")
ATOMIC_FLOAT_RE = re.compile(
    r"std::atomic\s*<\s*(?:long\s+double|double|float|Scalar)\b")
FAST_MATH_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+(?:"
    r".*\b(?:fast_math|fast-math)\b"
    r"|STDC\s+FP_CONTRACT\s+ON"
    r"|.*\bfp_contract\s*\(\s*on"
    r"|.*float_control\s*\(\s*precise\s*,\s*off"
    r"|omp\b"
    r")|__attribute__\s*\(\(\s*optimize\s*\(.*(?:fast-math|unsafe-math)")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]{0,200}?:\s*([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*\)")
POINTER_KEYED_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^<>]{0,80}>)?\s*\*")
ENTROPY_RE = re.compile(
    r"std::random_device|(?<![\w:.])s?rand\s*\(")
TIME_SEED_RE = re.compile(
    r"(?:\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)|::now\s*\(\s*\)"
    r"|\bgetpid\s*\(\s*\))")
SEED_CONTEXT_RE = re.compile(r"\b[Ss]eed\b|\bRng\s*\(|\brng\s*\(")


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_bracket(text, open_pos):
    """Returns the offset one past the bracket matching text[open_pos]
    (one of ([{), or len(text) if unbalanced."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    close = pairs[text[open_pos]]
    openc = text[open_pos]
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == openc:
            depth += 1
        elif c == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def split_top_level(text, sep=","):
    """Splits on `sep` at bracket depth 0 (angle brackets included, since
    capture lists / parameter lists may carry template arguments)."""
    parts = []
    depth = 0
    current = []
    for c in text:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(c)
    parts.append("".join(current))
    return parts


class Lambda:
    """A lambda literal found at argument position of a ParallelFor* call."""

    def __init__(self, captures, params, body, body_offset):
        self.captures = captures      # list of raw capture strings
        self.params = params          # list of parameter names
        self.body = body              # stripped body text, braces excluded
        self.body_offset = body_offset  # offset of body start in file text

    @property
    def by_ref_default(self):
        return any(c.strip() == "&" for c in self.captures)

    @property
    def by_ref_names(self):
        names = set()
        for c in self.captures:
            c = c.strip()
            m = re.match(r"&\s*([A-Za-z_]\w*)", c)
            if m and "=" not in c:
                names.add(m.group(1))
            m = re.match(r"&\s*([A-Za-z_]\w*)\s*=", c)
            if m:
                names.add(m.group(1))  # init-capture by reference
        return names


def extract_lambda(arg_text, arg_offset):
    """Finds the first lambda literal in a call's argument text. Returns a
    Lambda or None. `arg_offset` is the argument text's offset in the file,
    so body positions can be mapped back to lines."""
    i = 0
    n = len(arg_text)
    while i < n:
        c = arg_text[i]
        if c in "({":
            i = match_bracket(arg_text, i)
            continue
        if c == "[":
            prev = arg_text[:i].rstrip()
            # A capture list opens an argument (after '(' or ',') — an
            # index expression never does.
            if prev and prev[-1] not in "(,":
                i = match_bracket(arg_text, i)
                continue
            cap_end = match_bracket(arg_text, i)
            captures = split_top_level(arg_text[i + 1:cap_end - 1])
            j = cap_end
            while j < n and arg_text[j].isspace():
                j += 1
            params = []
            if j < n and arg_text[j] == "(":
                par_end = match_bracket(arg_text, j)
                for p in split_top_level(arg_text[j + 1:par_end - 1]):
                    ids = re.findall(r"[A-Za-z_]\w*", p.split("=")[0])
                    if len(ids) >= 2:  # type + name; unnamed params skipped
                        params.append(ids[-1])
                j = par_end
            while j < n and arg_text[j] != "{":
                j += 1
            if j >= n:
                return None
            body_end = match_bracket(arg_text, j)
            return Lambda(captures, params,
                          arg_text[j + 1:body_end - 1],
                          arg_offset + j + 1)
        i += 1
    return None


def declared_names_in_statement(body, name_start):
    """Names declared by a (possibly multi-declarator) declaration whose
    first declarator begins at name_start: `size_t a = 0, b = 0;` declares
    both a and b. Scans to the statement end, stopping at an unbalanced
    close bracket so expression contexts contribute only their first name."""
    names = []

    def take(segment):
        m = re.match(r"\s*[&*\s]*([A-Za-z_]\w*)", segment)
        if m:
            names.append(m.group(1))

    depth = 0
    i = name_start
    seg_start = name_start
    n = len(body)
    while i < n:
        c = body[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif c == ";" and depth == 0:
            break
        elif c == "," and depth == 0:
            take(body[seg_start:i])
            seg_start = i + 1
        i += 1
    take(body[seg_start:i])
    return names


def local_names(body):
    """Heuristic set of names declared inside a lambda body (locals, nested
    loop variables, nested lambda parameters, structured bindings)."""
    names = set()
    for m in DECL_RE.finditer(body):
        type_name = m.group(1).split("::")[0]
        if type_name in NON_TYPE_KEYWORDS:
            continue
        names.update(declared_names_in_statement(body, m.start(2)))
    for m in STRUCTURED_BINDING_RE.finditer(body):
        for name in re.findall(r"[A-Za-z_]\w*", m.group(1)):
            names.add(name)
    # Nested lambda capture lists and parameters: [&x](const auto& y) {...}
    for m in re.finditer(r"\[([^\]]{0,120})\]\s*\(([^)]{0,200})\)\s*"
                         r"(?:mutable\s*)?(?:->[^{]{0,80})?\{", body):
        for p in split_top_level(m.group(2)):
            ids = re.findall(r"[A-Za-z_]\w*", p.split("=")[0])
            if len(ids) >= 2:
                names.add(ids[-1])
    return names


def analyze_parallel_lambda(relpath, text, lam, call_name, add):
    """Applies the par-* rules to one ParallelFor* lambda body."""
    body = lam.body
    locals_ = local_names(body) | set(lam.params)

    def is_shared(name):
        if name in locals_ or name in NON_TYPE_KEYWORDS:
            return False
        if name in ("std", "simd", "this"):
            return False
        if lam.by_ref_default or name in lam.by_ref_names:
            return True
        # Not captured at all and not local: namespace-scope state.
        explicit_value = any(
            re.fullmatch(r"=|\s*" + re.escape(name) + r"\s*(=.*)?",
                         c.strip()) for c in lam.captures)
        return not explicit_value

    def body_line(offset):
        return line_of(text, lam.body_offset + offset)

    # Rule: par-shared-container-mutation ------------------------------------
    for m in CONTAINER_MUTATION_RE.finditer(body):
        base = m.group(1)
        if not is_shared(base):
            continue
        add("par-shared-container-mutation", body_line(m.start()),
            f"{call_name} body calls {m.group(3)}() on '{base}', which is "
            "shared across workers; growth mutations race on the container "
            "size and make element order depend on chunk scheduling — "
            "buffer into a per-worker workspace and assemble after the loop")

    # Rule: par-shared-compound-assign ---------------------------------------
    masked = CONTAINER_MUTATION_RE.sub(lambda m: " " * len(m.group(0)), body)
    for m in COMPOUND_ASSIGN_RE.finditer(masked):
        base, op = m.group(1), m.group(2)
        # `x == y`, `<=`, `>=` never match (op regex); skip declarations
        # (`Type x = ...` puts x in locals_) and member stores via locals.
        if not is_shared(base):
            continue
        tail = masked[m.end():m.end() + 1]
        if op == "=" and tail == "=":
            continue
        add("par-shared-compound-assign", body_line(m.start()),
            f"{call_name} body writes shared capture '{base}' with '{op}'; "
            "cross-worker accumulation order is scheduling-dependent — "
            "accumulate into a per-worker shard and reduce serially after "
            "the loop")
    for m in INCDEC_RE.finditer(masked):
        base = m.group(2) or m.group(3)
        if base is None or not is_shared(base):
            continue
        add("par-shared-compound-assign", body_line(m.start()),
            f"{call_name} body increments shared capture '{base}'; "
            "cross-worker increment order is scheduling-dependent — use a "
            "per-worker shard and reduce serially after the loop")

    # Rule: par-shared-element-write -----------------------------------------
    for m in ELEMENT_WRITE_RE.finditer(body):
        base = m.group(1)
        if not is_shared(base):
            continue
        idx_open = body.index("[", m.end() - 1)
        idx_close = match_bracket(body, idx_open)
        after = body[idx_close:].lstrip()
        wrote = (re.match(r"(?:=(?![=>])|\+=|-=|\*=|/=|%=|\|=|&=|\^=|"
                          r"<<=(?!=)|>>=|\+\+|--)", after) is not None or
                 re.search(r"(?:\+\+|--)\s*" + re.escape(base) + r"\s*\[",
                           body[max(0, m.start() - 8):m.start() + 1
                                + len(base)]) is not None)
        if not wrote:
            continue
        index_expr = body[idx_open + 1:idx_close - 1]
        index_ids = set(re.findall(r"[A-Za-z_]\w*", index_expr))
        if index_ids & (locals_ | set(lam.params)):
            continue  # loop-index / worker-slot / derived-local write
        add("par-shared-element-write", body_line(m.start()),
            f"{call_name} body writes '{base}[{index_expr.strip()}]' but "
            "the index involves no loop-local variable or lambda parameter; "
            "only writes through the loop index or a per-worker slot are "
            "provably disjoint across workers")


def unordered_container_names(code):
    """Names declared (file-locally) with an unordered container type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        # Walk past the template argument list, then take the first
        # identifier at angle depth 0: `unordered_map<Index, Scalar> link;`
        # and `std::vector<std::unordered_map<Index, Scalar>> boundary(...`.
        i = code.index("<", m.start())
        depth = 0
        n = len(code)
        while i < n:
            c = code[i]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth <= 0:
                    i += 1
                    break
            elif c in ";{}":
                break
            i += 1
        m2 = re.match(r"[>\s&*]*([A-Za-z_]\w*)", code[i:])
        if m2 and m2.group(1) not in NON_TYPE_KEYWORDS:
            names.add(m2.group(1))
    return names


def analyze_file(relpath, raw_text, findings):
    code = strip_comments_and_strings(raw_text)
    raw_lines = raw_text.splitlines()
    lines = code.splitlines()

    def add(rule, lineno, message):
        text = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        findings.append(Finding(rule, relpath, lineno, message, text))

    in_simd = is_under(relpath, "src/util/simd.*")
    in_rng = is_under(relpath, "src/util/rng.*")
    in_gen = relpath.startswith("src/gen/")

    # --- family: parallel-capture audit ------------------------------------
    for m in PARALLEL_CALL_RE.finditer(code):
        call_name = m.group(1)
        open_paren = code.index("(", m.end() - 1)
        close = match_bracket(code, open_paren)
        args = code[open_paren + 1:close - 1]
        lam = extract_lambda(args, open_paren + 1)
        if lam is None:
            continue  # declaration, definition, or opaque callable
        analyze_parallel_lambda(relpath, code, lam, call_name, add)

    # --- family: FP-ordering hazards ---------------------------------------
    if not in_simd:
        for idx, line in enumerate(lines, start=1):
            fm = FMA_RE.search(line)
            if fm:
                add("fp-fma", idx,
                    f"{fm.group(1)}() fuses multiply-add into one rounding; "
                    "the determinism contract pins two-rounding semantics "
                    "(-ffp-contract=off) so scalar and SIMD paths stay "
                    "bit-identical — multiply and add separately")
            rm = UNORDERED_REDUCE_RE.search(line)
            if rm:
                add("fp-unordered-reduce", idx,
                    f"std::{rm.group(1)} has unspecified reduction order; "
                    "over floating-point operands the bits depend on the "
                    "implementation — write an explicit index-order loop")
            am = ACCUMULATE_RE.search(line)
            if am:
                start = code.find("(", sum(len(x) + 1 for x in
                                           lines[:idx - 1]) + am.start())
                span = code[start:match_bracket(code, start)]
                if FLOATISH_RE.search(span):
                    add("fp-unordered-reduce", idx,
                        "std::accumulate over floating-point operands sums "
                        "in container-iteration order; make the order "
                        "explicit with an index loop so it is auditable")
            atm = ATOMIC_FLOAT_RE.search(line)
            if atm:
                add("fp-atomic-float", idx,
                    "std::atomic over a floating-point type: concurrent "
                    "accumulation commits in scheduling order, reordering "
                    "roundings run to run — use per-worker shards and a "
                    "serial reduction")
            pm = FAST_MATH_PRAGMA_RE.search(line)
            if pm:
                add("fp-fast-math", idx,
                    "pragma/attribute re-enables FP reassociation, "
                    "contraction, or OpenMP scheduling, bypassing the "
                    "-ffp-contract=off pin and the deterministic pool")

    # --- family: nondeterminism sources ------------------------------------
    unordered_names = unordered_container_names(code)
    for idx, line in enumerate(lines, start=1):
        if unordered_names:
            fm = RANGE_FOR_RE.search(line)
            if fm and fm.group(1) in unordered_names:
                add("nd-unordered-iteration", idx,
                    f"range-for over unordered container '{fm.group(1)}': "
                    "iteration order is a function of hashing and the "
                    "standard library, not the data — sort the keys (or "
                    "copy to a vector) before anything order-sensitive")
        pk = POINTER_KEYED_RE.search(line)
        if pk:
            add("nd-pointer-keyed", idx,
                "container keyed on a pointer type orders/hashes by "
                "address, which changes every run under ASLR — key on a "
                "stable id instead")
        if not (in_rng or in_gen):
            em = ENTROPY_RE.search(line)
            if em:
                add("nd-entropy-seed", idx,
                    "hardware/libc entropy source outside src/gen and "
                    "src/util/rng.*; all stochastic code takes an explicit "
                    "seeded dgc::Rng for reproducibility")
            tm = TIME_SEED_RE.search(line)
            if tm and SEED_CONTEXT_RE.search(line):
                add("nd-entropy-seed", idx,
                    "time/pid-seeded RNG: the seed changes every run — "
                    "thread an explicit seed through the options struct "
                    "instead")


def is_allowlisted(finding, entries, raw_lines_by_file):
    import fnmatch
    lines = raw_lines_by_file.get(finding.path, [])
    raw = lines[finding.line - 1] if finding.line - 1 < len(lines) else ""
    m = INLINE_ALLOW_RE.search(raw)
    if m and finding.rule in [r.strip() for r in m.group(1).split(",")]:
        return True
    for rule, glob, regex, _why in entries:
        if rule != finding.rule and rule != "*":
            continue
        if not fnmatch.fnmatch(finding.path, glob):
            continue
        if regex.search(raw) or regex.pattern == "":
            return True
    return False


def main(argv):
    parser = argparse.ArgumentParser(
        prog="dgc-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two dirs above this file)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to union TUs from")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/lint/analyze_allowlist.txt under --root)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write machine-readable findings report here")
    parser.add_argument("paths", nargs="*",
                        help="analyze only these files (relative to --root)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root or
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print(f"dgc-analyze: no such root: {root}", file=sys.stderr)
        return 2
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "lint", "analyze_allowlist.txt")
    entries, problems = load_allowlist(allowlist_path)

    if args.paths:
        files = sorted(set(args.paths))
    else:
        files = discover_files(root, args.compile_commands)
    if not files:
        print("dgc-analyze: no source files found", file=sys.stderr)
        return 2

    findings = []
    raw_lines_by_file = {}
    checked = 0
    for rel in files:
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"dgc-analyze: cannot read {rel}: {e}", file=sys.stderr)
            return 2
        raw_lines_by_file[rel] = text.splitlines()
        analyze_file(rel, text, findings)
        checked += 1

    kept, suppressed = [], 0
    for finding in findings:
        if is_allowlisted(finding, entries, raw_lines_by_file):
            suppressed += 1
        else:
            kept.append(finding)
    for problem in problems:
        kept.append(Finding("allowlist-malformed", allowlist_path, 0,
                            problem, ""))

    if args.json_out:
        report = {
            "tool": "dgc-analyze",
            "engine_version": ENGINE_VERSION,
            "root": root,
            "checked_files": checked,
            "suppressed": suppressed,
            "findings": [f.to_json() for f in kept],
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    for finding in kept:
        print(finding)
    emit_github_annotations(kept)
    summary = (f"dgc-analyze: {checked} files, {len(kept)} finding(s), "
               f"{suppressed} allowlisted")
    print(summary, file=sys.stderr)
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
