// dgc_update: offline replay of an edge-delta stream against a directed
// graph, maintaining the symmetrization incrementally (docs/DYNAMIC.md).
//
//   $ ./dgc_update --graph=graph.txt --deltas=stream.txt --method=dd
//         [--threshold=0.01] [--alpha=0.5] [--beta=0.5] [--self-loops]
//         [--threads=1] [--verify] [--out=sym.txt] [--max-edges=N]
//
// The delta file is batches of `+ u v [w]` / `- u v` lines separated by
// `---` lines (src/dynamic/delta_io.h). Each batch is applied atomically;
// the per-batch affected-row counts (the quantity the serve counters
// export) print to stdout. --verify re-symmetrizes from scratch after
// every batch and memcmp-compares the CSR arrays — the differential
// harness of tests/incremental_diff_test.cc as a field tool.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/symmetrize.h"
#include "dynamic/delta_io.h"
#include "dynamic/incremental.h"
#include "graph/io.h"
#include "util/options.h"
#include "util/timer.h"

namespace {

dgc::Status WriteUndirectedEdgeList(const dgc::UGraph& g,
                                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return dgc::Status::IOError("cannot open " + path);
  out << "# undirected weighted edge list: u v weight (u < v)\n";
  const dgc::CsrMatrix& a = g.adjacency();
  for (dgc::Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] > u) out << u << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
  if (!out) return dgc::Status::IOError("write failed for " + path);
  return dgc::Status::OK();
}

/// Byte-level equality of two CSR matrices (the incremental correctness
/// contract is bit-identity, not numeric closeness).
bool SameBytes(const dgc::CsrMatrix& a, const dgc::CsrMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) {
    return false;
  }
  const auto ap = a.row_ptr();
  const auto bp = b.row_ptr();
  const auto ac = a.col_idx();
  const auto bc = b.col_idx();
  const auto av = a.values();
  const auto bv = b.values();
  return std::memcmp(ap.data(), bp.data(), ap.size_bytes()) == 0 &&
         std::memcmp(ac.data(), bc.data(), ac.size_bytes()) == 0 &&
         std::memcmp(av.data(), bv.data(), av.size_bytes()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  const std::string graph_path = opts->GetString("graph", "");
  const std::string delta_path = opts->GetString("deltas", "");
  if (graph_path.empty() || delta_path.empty()) {
    std::fprintf(stderr,
                 "usage: dgc_update --graph=<edge-list> --deltas=<delta-file> "
                 "[--method=dd] [--threshold=0] [--alpha=0.5] [--beta=0.5] "
                 "[--self-loops] [--threads=1] [--verify] [--out=sym.txt] "
                 "[--max-edges=N]\n");
    return 2;
  }
  IoLimits limits;
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0) limits.max_edges = max_edges;
  auto graph = ReadEdgeList(graph_path, /*num_vertices=*/0, limits);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto method = ParseSymmetrizationMethod(opts->GetString("method", "dd"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 2;
  }
  auto batches = ReadDeltaBatches(delta_path, graph->NumVertices(), limits);
  if (!batches.ok()) {
    std::fprintf(stderr, "%s\n", batches.status().ToString().c_str());
    return 1;
  }

  SymmetrizationOptions sym;
  sym.out_discount = DiscountSpec::Power(opts->GetDouble("alpha", 0.5));
  sym.in_discount = DiscountSpec::Power(opts->GetDouble("beta", 0.5));
  sym.prune_threshold = opts->GetDouble("threshold", 0.0);
  sym.add_self_loops = opts->GetBool("self-loops", false);
  sym.num_threads = static_cast<int>(opts->GetInt("threads", 1));
  const bool verify = opts->GetBool("verify", false);

  WallTimer timer;
  auto inc = IncrementalSymmetrizer::Create(*graph, *method, sym);
  if (!inc.ok()) {
    std::fprintf(stderr, "%s\n", inc.status().ToString().c_str());
    return 1;
  }
  std::printf("seeded %s over %lld vertices / %lld arcs in %.2fs\n",
              SymmetrizationMethodName(*method).data(),
              static_cast<long long>(graph->NumVertices()),
              static_cast<long long>(graph->NumEdges()),
              timer.ElapsedSeconds());

  int64_t total_recomputed = 0;
  for (size_t i = 0; i < batches->size(); ++i) {
    const EdgeDeltaBatch& batch = (*batches)[i];
    WallTimer batch_timer;
    Status status = inc->ApplyDelta(batch);
    if (!status.ok()) {
      std::fprintf(stderr, "batch %zu: %s\n", i + 1,
                   status.ToString().c_str());
      return 1;
    }
    const IncrementalStats& stats = inc->last_stats();
    total_recomputed += stats.rows_recomputed;
    std::printf("batch %zu: +%zu -%zu edges, rows recomputed %lld/%lld "
                "(%.1f%%) in %.3fs\n",
                i + 1, batch.inserts.size(), batch.deletes.size(),
                static_cast<long long>(stats.rows_recomputed),
                static_cast<long long>(stats.rows_total),
                100.0 * static_cast<double>(stats.rows_recomputed) /
                    static_cast<double>(stats.rows_total),
                batch_timer.ElapsedSeconds());
    if (verify) {
      auto current = inc->graph().ToDigraph();
      if (!current.ok()) {
        std::fprintf(stderr, "batch %zu verify: %s\n", i + 1,
                     current.status().ToString().c_str());
        return 1;
      }
      auto scratch = Symmetrize(*current, *method, sym);
      if (!scratch.ok()) {
        std::fprintf(stderr, "batch %zu verify: %s\n", i + 1,
                     scratch.status().ToString().c_str());
        return 1;
      }
      if (!SameBytes(inc->symmetrized().adjacency(), scratch->adjacency())) {
        std::fprintf(stderr,
                     "batch %zu verify: incremental result diverged from "
                     "from-scratch symmetrization\n",
                     i + 1);
        return 1;
      }
      std::printf("batch %zu: verified byte-identical to from-scratch\n",
                  i + 1);
    }
  }
  std::printf("replayed %zu batches in %.2fs; %lld rows recomputed total\n",
              batches->size(), timer.ElapsedSeconds(),
              static_cast<long long>(total_recomputed));

  const std::string out = opts->GetString("out", "");
  if (!out.empty()) {
    auto status = WriteUndirectedEdgeList(inc->symmetrized(), out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote undirected edge list to %s\n", out.c_str());
  }
  return 0;
}
