#!/usr/bin/env python3
"""End-to-end smoke driver for dgc_serve (docs/SERVING.md).

Starts the daemon in TCP mode on an ephemeral port, drives the three
request shapes the serving contract promises through a real socket --

  1. cold:  cache miss, full pipeline, report contains the symmetrize span
  2. hit:   same stage-1 parameters, different stage-2 parameters ->
            cache hit, report has NO symmetrize span (the SpGEMM was
            skipped) and the wall time drops
  3. abort: deadline_ms=1 on a graph big enough that the budget trips ->
            structured DeadlineExceeded envelope, daemon survives

-- then shuts the daemon down via {"op": "shutdown"} and writes every raw
response line to --out as a JSON array (the CI artifact).

Exit 0 on success; any violated expectation prints the offending response
and exits 1.
"""

import argparse
import json
import re
import socket
import subprocess
import sys


def fail(message, response=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if response is not None:
        print(f"response: {response}", file=sys.stderr)
    sys.exit(1)


def request_line(sock_file, sock, payload):
    sock.sendall((json.dumps(payload) + "\n").encode())
    line = sock_file.readline()
    if not line:
        fail("daemon closed the connection mid-conversation")
    return line.rstrip("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="path to dgc_serve")
    parser.add_argument("--graph", required=True,
                        help="edge-list input for the cold/hit requests")
    parser.add_argument("--big-graph", required=True,
                        help="larger edge list whose pipeline outlives a "
                             "1ms deadline")
    parser.add_argument("--out", required=True,
                        help="file receiving all raw response lines as a "
                             "JSON array")
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.binary, "--port=0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = daemon.stdout.readline()
        match = re.match(r"listening on ([0-9.]+):(\d+)", ready)
        if not match:
            fail(f"no readiness line, got: {ready!r}")
        with socket.create_connection((match.group(1),
                                       int(match.group(2)))) as sock:
            sock_file = sock.makefile()
            responses = []

            cold = request_line(sock_file, sock, {
                "id": "cold", "graph": args.graph, "threshold": 0.01})
            responses.append(cold)
            doc = json.loads(cold)
            if not doc.get("ok") or doc.get("cache") != "miss":
                fail("cold request should be an ok cache miss", cold)
            if '"name": "symmetrize"' not in cold:
                fail("cold report must contain the symmetrize span", cold)
            cold_wall = doc["report"]["spans"][0]["wall_seconds"]

            hit = request_line(sock_file, sock, {
                "id": "hit", "graph": args.graph, "threshold": 0.01,
                "inflation": 3.0})
            responses.append(hit)
            doc = json.loads(hit)
            if not doc.get("ok") or doc.get("cache") != "hit":
                fail("repeat request should be an ok cache hit", hit)
            if '"name": "symmetrize"' in hit:
                fail("hit report must not contain a symmetrize span", hit)
            if '"symmetrize": "cached"' not in hit:
                fail("hit report must stamp symmetrize=cached", hit)
            hit_wall = doc["report"]["spans"][0]["wall_seconds"]
            if hit_wall >= cold_wall:
                fail(f"cache hit should be faster: cold {cold_wall}s "
                     f"vs hit {hit_wall}s", hit)

            abort = request_line(sock_file, sock, {
                "id": "abort", "graph": args.big_graph, "threshold": 0.01,
                "deadline_ms": 1, "cache": "bypass"})
            responses.append(abort)
            doc = json.loads(abort)
            if doc.get("ok") or doc.get("status") != "DeadlineExceeded":
                fail("1ms deadline should abort with DeadlineExceeded", abort)

            alive = request_line(sock_file, sock, {
                "id": "alive", "graph": args.graph, "threshold": 0.01})
            responses.append(alive)
            if not json.loads(alive).get("ok"):
                fail("daemon should keep serving after an abort", alive)

            bye = request_line(sock_file, sock, {"op": "shutdown"})
            responses.append(bye)
            if not json.loads(bye).get("shutdown"):
                fail("shutdown should be acknowledged", bye)

        if daemon.wait(timeout=30) != 0:
            fail(f"daemon exited nonzero: {daemon.returncode}: "
                 f"{daemon.stderr.read()}")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    with open(args.out, "w") as out:
        json.dump([json.loads(r) for r in responses], out, indent=2)
        out.write("\n")
    print(f"serve smoke OK: cold {cold_wall:.3f}s -> hit {hit_wall:.3f}s, "
          f"{len(responses)} responses in {args.out}")


if __name__ == "__main__":
    main()
