#!/usr/bin/env python3
"""End-to-end smoke driver for dgc_serve (docs/SERVING.md).

Starts the daemon in TCP mode on an ephemeral port, drives the three
request shapes the serving contract promises through a real socket --

  1. cold:  cache miss, full pipeline, report contains the symmetrize span
  2. hit:   same stage-1 parameters, different stage-2 parameters ->
            cache hit, report has NO symmetrize span (the SpGEMM was
            skipped) and the wall time drops
  3. abort: deadline_ms=1 on a graph big enough that the budget trips ->
            structured DeadlineExceeded envelope, daemon survives
  4. delta: op=apply_delta streams an edge batch into an incremental
            session -> rows_recomputed < rows_total (the point of the
            incremental path), chained digest stamped; a second batch on
            the same session warm-starts clustering (cache=chain+warm)
            and advances the digest (docs/DYNAMIC.md)

-- then shuts the daemon down via {"op": "shutdown"} and writes every raw
response line to --out as a JSON array (the CI artifact).

Exit 0 on success; any violated expectation prints the offending response
and exits 1.
"""

import argparse
import json
import re
import socket
import subprocess
import sys


def fail(message, response=None):
    print(f"FAIL: {message}", file=sys.stderr)
    if response is not None:
        print(f"response: {response}", file=sys.stderr)
    sys.exit(1)


def sample_delta_edges(graph_path):
    """Returns (existing_arc, missing_arc) from an edge-list file: the
    first listed arc (a valid delete) and a deterministic (0, k) arc not
    present in the file (a valid insert)."""
    arcs = set()
    first = None
    with open(graph_path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            arcs.add((u, v))
            if first is None:
                first = [u, v]
    if first is None:
        fail(f"no arcs in {graph_path}")
    k = 0
    while (0, k) in arcs or k == first[1]:
        k += 1
    return first, [0, k]


def request_line(sock_file, sock, payload):
    sock.sendall((json.dumps(payload) + "\n").encode())
    line = sock_file.readline()
    if not line:
        fail("daemon closed the connection mid-conversation")
    return line.rstrip("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="path to dgc_serve")
    parser.add_argument("--graph", required=True,
                        help="edge-list input for the cold/hit requests")
    parser.add_argument("--big-graph", required=True,
                        help="larger edge list whose pipeline outlives a "
                             "1ms deadline")
    parser.add_argument("--out", required=True,
                        help="file receiving all raw response lines as a "
                             "JSON array")
    args = parser.parse_args()

    daemon = subprocess.Popen(
        [args.binary, "--port=0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = daemon.stdout.readline()
        match = re.match(r"listening on ([0-9.]+):(\d+)", ready)
        if not match:
            fail(f"no readiness line, got: {ready!r}")
        with socket.create_connection((match.group(1),
                                       int(match.group(2)))) as sock:
            sock_file = sock.makefile()
            responses = []

            cold = request_line(sock_file, sock, {
                "id": "cold", "graph": args.graph, "threshold": 0.01})
            responses.append(cold)
            doc = json.loads(cold)
            if not doc.get("ok") or doc.get("cache") != "miss":
                fail("cold request should be an ok cache miss", cold)
            if '"name": "symmetrize"' not in cold:
                fail("cold report must contain the symmetrize span", cold)
            cold_wall = doc["report"]["spans"][0]["wall_seconds"]

            hit = request_line(sock_file, sock, {
                "id": "hit", "graph": args.graph, "threshold": 0.01,
                "inflation": 3.0})
            responses.append(hit)
            doc = json.loads(hit)
            if not doc.get("ok") or doc.get("cache") != "hit":
                fail("repeat request should be an ok cache hit", hit)
            if '"name": "symmetrize"' in hit:
                fail("hit report must not contain a symmetrize span", hit)
            if '"symmetrize": "cached"' not in hit:
                fail("hit report must stamp symmetrize=cached", hit)
            hit_wall = doc["report"]["spans"][0]["wall_seconds"]
            if hit_wall >= cold_wall:
                fail(f"cache hit should be faster: cold {cold_wall}s "
                     f"vs hit {hit_wall}s", hit)

            abort = request_line(sock_file, sock, {
                "id": "abort", "graph": args.big_graph, "threshold": 0.01,
                "deadline_ms": 1, "cache": "bypass"})
            responses.append(abort)
            doc = json.loads(abort)
            if doc.get("ok") or doc.get("status") != "DeadlineExceeded":
                fail("1ms deadline should abort with DeadlineExceeded", abort)

            alive = request_line(sock_file, sock, {
                "id": "alive", "graph": args.graph, "threshold": 0.01})
            responses.append(alive)
            if not json.loads(alive).get("ok"):
                fail("daemon should keep serving after an abort", alive)

            # Incremental path: delete the first listed arc, insert an arc
            # the generator never produced. The affected-row machinery must
            # recompute a strict subset of rows and stamp a chained digest.
            arc, fresh = sample_delta_edges(args.graph)
            delta1 = request_line(sock_file, sock, {
                "id": "delta1", "op": "apply_delta", "graph": args.graph,
                "threshold": 0.01,
                "deletes": [arc], "inserts": [fresh + [1.5]]})
            responses.append(delta1)
            doc = json.loads(delta1)
            if not doc.get("ok") or doc.get("cache") != "chain":
                fail("first apply_delta should be an ok chain", delta1)
            rows = doc.get("rows_recomputed")
            total = doc.get("rows_total")
            if rows is None or total is None or not 0 < rows < total:
                fail(f"small delta must recompute a strict subset of rows, "
                     f"got {rows}/{total}", delta1)
            digest1 = doc.get("delta")
            if not digest1:
                fail("apply_delta must stamp the chained digest", delta1)

            # Second batch on the same session: undo the first. The session
            # holds the previous flow matrix, so clustering warm-starts,
            # and the chain digest must advance.
            delta2 = request_line(sock_file, sock, {
                "id": "delta2", "op": "apply_delta", "graph": args.graph,
                "threshold": 0.01,
                "deletes": [fresh], "inserts": [arc + [1.0]]})
            responses.append(delta2)
            doc = json.loads(delta2)
            if not doc.get("ok") or doc.get("cache") != "chain+warm":
                fail("second apply_delta should warm-start (chain+warm)",
                     delta2)
            if doc.get("delta") == digest1:
                fail("chain digest must advance with each batch", delta2)

            bye = request_line(sock_file, sock, {"op": "shutdown"})
            responses.append(bye)
            if not json.loads(bye).get("shutdown"):
                fail("shutdown should be acknowledged", bye)

        if daemon.wait(timeout=30) != 0:
            fail(f"daemon exited nonzero: {daemon.returncode}: "
                 f"{daemon.stderr.read()}")
    finally:
        if daemon.poll() is None:
            daemon.kill()

    with open(args.out, "w") as out:
        json.dump([json.loads(r) for r in responses], out, indent=2)
        out.write("\n")
    print(f"serve smoke OK: cold {cold_wall:.3f}s -> hit {hit_wall:.3f}s, "
          f"{len(responses)} responses in {args.out}")


if __name__ == "__main__":
    main()
