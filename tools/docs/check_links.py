#!/usr/bin/env python3
"""Verify that relative links in the markdown docs point at real files.

Scans the repo's markdown (README.md & friends plus docs/*.md) for
`[text](target)` links, resolves relative targets against the linking
file, and fails listing every dangling one. External links (http/https/
mailto) and pure in-page anchors (#...) are skipped — CI has no network
and anchor checking would duplicate the renderer's logic.

Usage: check_links.py [--root DIR] [FILE.md ...]
"""

import argparse
import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; markdown
# images ![alt](target) match too via the same tail.
LINK_RE = re.compile(r"\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

DEFAULT_DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                "CHANGES.md", "PAPER.md", "PAPERS.md", "ISSUE.md"]


def check_file(path, root):
    dangling = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                dangling.append(f"{path.relative_to(root)}:{lineno}: "
                                f"dangling link -> {match.group(1)}")
    return dangling


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2])
    parser.add_argument("files", nargs="*", type=pathlib.Path)
    args = parser.parse_args()

    docs = args.files or [
        p for p in
        ([args.root / d for d in DEFAULT_DOCS] +
         sorted((args.root / "docs").glob("*.md")))
        if p.is_file()
    ]
    dangling = []
    for doc in docs:
        dangling.extend(check_file(doc, args.root))
    if dangling:
        print("\n".join(dangling), file=sys.stderr)
        return 1
    print(f"{len(docs)} markdown files: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
