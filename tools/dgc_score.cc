// dgc_score: evaluates a clustering file against ground truth with the
// paper's micro-averaged best-match F-measure (Section 4.3), plus NMI/ARI
// when the truth is a partition, plus normalized cuts when a graph is
// supplied. Also runs the paired sign test between two clusterings
// (Section 5.6).
//
//   $ ./dgc_score --labels=c.txt --truth=truth.txt --n=6000
//         [--graph=graph.txt] [--labels-b=other.txt]
//         [--max-edges=N] [--deadline-ms=N] [--max-memory-mb=N]
//         [--spill-dir=DIR]
//
// --max-edges bounds the --graph edge-list scan; --deadline-ms is checked
// at stage granularity (between metric computations) and inside the
// symmetrization kernels. --max-memory-mb arms the token's memory ledger
// and lets the ncut symmetrization degrade to out-of-core row tiles
// (spilled to --spill-dir) instead of aborting (docs/OUT_OF_CORE.md).
#include <cstdio>
#include <string>

#include "core/symmetrize.h"
#include "eval/fscore.h"
#include "eval/ncut.h"
#include "eval/partition_metrics.h"
#include "eval/sign_test.h"
#include "graph/io.h"
#include "linalg/power_iteration.h"
#include "util/budget.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace dgc;
  auto opts = Options::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  const std::string labels_path = opts->GetString("labels", "");
  const std::string truth_path = opts->GetString("truth", "");
  if (labels_path.empty() || truth_path.empty()) {
    std::fprintf(stderr,
                 "usage: dgc_score --labels=<file> --truth=<file> "
                 "[--n=<vertices>] [--graph=<edge-list>] "
                 "[--labels-b=<file>] [--max-edges=N] [--deadline-ms=N] "
                 "[--max-memory-mb=N] [--spill-dir=DIR]\n");
    return 2;
  }
  IoLimits limits;
  const int64_t max_edges = opts->GetInt("max-edges", 0);
  if (max_edges > 0) limits.max_edges = max_edges;
  CancelToken cancel;
  ResourceBudget budget;
  budget.deadline_ms = opts->GetInt("deadline-ms", 0);
  budget.max_memory_bytes =
      opts->GetInt("max-memory-mb", 0) * (int64_t{1} << 20);
  cancel.Arm(budget);
  auto clustering = ReadClustering(labels_path, limits);
  if (!clustering.ok()) {
    std::fprintf(stderr, "%s\n", clustering.status().ToString().c_str());
    return 1;
  }
  const Index n = static_cast<Index>(
      opts->GetInt("n", clustering->NumVertices()));
  auto truth = ReadGroundTruth(truth_path, n, limits);
  if (!truth.ok()) {
    std::fprintf(stderr, "%s\n", truth.status().ToString().c_str());
    return 1;
  }
  if (cancel.Expired()) {
    std::fprintf(stderr, "%s\n", cancel.status().ToString().c_str());
    return 1;
  }

  auto f = EvaluateFScore(*clustering, *truth);
  if (!f.ok()) {
    std::fprintf(stderr, "%s\n", f.status().ToString().c_str());
    return 1;
  }
  std::printf("clusters:   %d\n", clustering->NumClusters());
  std::printf("avg F:      %.4f\n", f->avg_f);
  std::printf("precision:  %.4f\n", f->avg_precision);
  std::printf("recall:     %.4f\n", f->avg_recall);

  // NMI/ARI only make sense when the truth is a partition.
  auto truth_clustering = TruthToClustering(*truth, n);
  if (truth_clustering.ok()) {
    auto cmp = ComparePartitions(*clustering, *truth_clustering);
    if (cmp.ok()) {
      std::printf("NMI:        %.4f\n", cmp->nmi);
      std::printf("ARI:        %.4f\n", cmp->ari);
    }
  } else {
    std::printf("NMI/ARI:    skipped (%s)\n",
                truth_clustering.status().message().c_str());
  }

  const std::string graph_path = opts->GetString("graph", "");
  if (!graph_path.empty()) {
    auto graph = ReadEdgeList(graph_path, n, limits);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    if (cancel.Expired()) {
      std::fprintf(stderr, "%s\n", cancel.status().ToString().c_str());
      return 1;
    }
    SymmetrizationOptions ncut_sym;
    ncut_sym.cancel = &cancel;
    ncut_sym.max_memory_bytes = budget.max_memory_bytes;
    ncut_sym.spill_dir = opts->GetString("spill-dir", "");
    auto u = Symmetrize(*graph, SymmetrizationMethod::kAPlusAT, ncut_sym);
    auto pr = PageRank(graph->adjacency());
    if (u.ok() && pr.ok()) {
      std::printf("ncut(A+A'): %.4f\n", NormalizedCut(*u, *clustering));
      std::printf("ncut_dir:   %.4f\n",
                  DirectedNormalizedCut(*graph, pr->pi, *clustering));
    }
  }

  const std::string labels_b = opts->GetString("labels-b", "");
  if (!labels_b.empty()) {
    auto other = ReadClustering(labels_b);
    if (!other.ok()) {
      std::fprintf(stderr, "%s\n", other.status().ToString().c_str());
      return 1;
    }
    auto mask_a = CorrectlyClusteredMask(*clustering, *truth);
    auto mask_b = CorrectlyClusteredMask(*other, *truth);
    if (mask_a.ok() && mask_b.ok()) {
      auto sign = PairedSignTest(*mask_a, *mask_b);
      if (sign.ok()) {
        std::printf(
            "sign test (A = --labels, B = --labels-b): A-only %lld, "
            "B-only %lld, log10(p) = %.2f\n",
            static_cast<long long>(sign->a_only),
            static_cast<long long>(sign->b_only), sign->log10_p_value);
      }
    }
  }
  return 0;
}
