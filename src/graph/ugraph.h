// Undirected weighted graph: the output of a symmetrization and the input
// to every stage-2 clustering algorithm.
#pragma once

#include <tuple>
#include <utility>
#include <vector>

#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// \brief Undirected weighted graph stored as a symmetric CSR adjacency.
///
/// Construction enforces symmetry (within a tolerance) and strips diagonal
/// entries unless asked otherwise, since the multilevel clusterers treat
/// self-loops specially.
class UGraph {
 public:
  UGraph() = default;

  /// Wraps a symmetric adjacency matrix. Returns InvalidArgument if the
  /// matrix is not symmetric within `tol`. Drops self-loops when
  /// `drop_self_loops`.
  static Result<UGraph> FromSymmetricAdjacency(CsrMatrix adjacency,
                                               bool drop_self_loops = true,
                                               Scalar tol = 1e-9);

  /// Builds from undirected edges (u, v, w); each inserted in both
  /// directions, duplicates summed, self-loops dropped.
  static Result<UGraph> FromEdges(
      Index num_vertices,
      const std::vector<std::tuple<Index, Index, Scalar>>& edges);

  Index NumVertices() const { return adjacency_.rows(); }
  /// Number of undirected edges (stored nonzeros / 2).
  Offset NumEdges() const { return adjacency_.nnz() / 2; }
  /// Number of stored directed arcs (2 per undirected edge).
  Offset NumArcs() const { return adjacency_.nnz(); }

  const CsrMatrix& adjacency() const { return adjacency_; }

  std::span<const Index> Neighbors(Index u) const {
    return adjacency_.RowCols(u);
  }
  std::span<const Scalar> NeighborWeights(Index u) const {
    return adjacency_.RowValues(u);
  }

  /// Weighted degree of every vertex (sum of incident edge weights).
  std::vector<Scalar> WeightedDegrees() const { return adjacency_.RowSums(); }
  /// Unweighted degree of every vertex.
  std::vector<Offset> Degrees() const { return adjacency_.RowCounts(); }
  /// Total edge-weight volume: sum of weighted degrees.
  Scalar Volume() const;

  /// Number of vertices with no incident edges.
  Index NumSingletons() const;

 private:
  explicit UGraph(CsrMatrix adjacency) : adjacency_(std::move(adjacency)) {}

  CsrMatrix adjacency_;
};

}  // namespace dgc
