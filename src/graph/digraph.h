// Directed graph over a CSR adjacency matrix. The input object of the
// symmetrization framework (the paper's G with adjacency A).
#pragma once

#include <utility>
#include <vector>

#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// A weighted directed edge used during graph construction.
struct Edge {
  Index src = 0;
  Index dst = 0;
  Scalar weight = 1.0;

  bool operator==(const Edge&) const = default;
};

/// \brief Immutable directed graph G = (V, E) with weighted edges.
///
/// Self-loops are allowed; parallel edges are merged (weights summed) at
/// construction. Adjacency is exposed as a CsrMatrix A with A(i, j) = weight
/// of edge i -> j, so the symmetrizations are direct matrix expressions.
class Digraph {
 public:
  Digraph() = default;

  /// Builds from an edge list; duplicate (src, dst) weights are summed.
  static Result<Digraph> FromEdges(Index num_vertices,
                                   const std::vector<Edge>& edges);

  /// Wraps an existing square adjacency matrix.
  static Result<Digraph> FromAdjacency(CsrMatrix adjacency);

  Index NumVertices() const { return adjacency_.rows(); }
  Offset NumEdges() const { return adjacency_.nnz(); }

  const CsrMatrix& adjacency() const { return adjacency_; }

  /// Out-degree (stored-edge count) of every vertex.
  std::vector<Offset> OutDegrees() const { return adjacency_.RowCounts(); }
  /// In-degree (stored-edge count) of every vertex.
  std::vector<Offset> InDegrees() const { return adjacency_.ColCounts(); }
  /// Weighted out-degree (sum of outgoing weights).
  std::vector<Scalar> OutWeights() const { return adjacency_.RowSums(); }
  /// Weighted in-degree.
  std::vector<Scalar> InWeights() const { return adjacency_.ColSums(); }

  /// True if edge u -> v exists.
  bool HasEdge(Index u, Index v) const { return adjacency_.At(u, v) != 0.0; }

  /// Out-neighbors of u.
  std::span<const Index> OutNeighbors(Index u) const {
    return adjacency_.RowCols(u);
  }

  /// Fraction of edges (u, v) for which (v, u) also exists — the paper's
  /// "percentage of symmetric links" (Table 1). Self-loops count as
  /// symmetric.
  double FractionSymmetricEdges() const;

  /// The reverse graph (all edges flipped).
  Digraph Reversed() const { return Digraph(adjacency_.Transpose()); }

 private:
  explicit Digraph(CsrMatrix adjacency) : adjacency_(std::move(adjacency)) {}

  CsrMatrix adjacency_;
};

}  // namespace dgc
