// Connected components (weakly connected for directed graphs), used by
// tests and by the clustering pipelines to report fragmentation.
#pragma once

#include <vector>

#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dgc {

/// Per-vertex component ids (dense, starting at 0) of an undirected graph.
std::vector<Index> ConnectedComponents(const UGraph& g);

/// Weakly connected components of a directed graph (direction ignored).
std::vector<Index> WeaklyConnectedComponents(const Digraph& g);

/// Number of distinct components in a component-label vector.
Index NumComponents(const std::vector<Index>& components);

}  // namespace dgc
