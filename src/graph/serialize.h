// Binary serialization of CSR matrices and graphs: a small versioned
// format so symmetrized graphs (expensive to compute at scale) can be
// cached between runs. Little-endian, header-checked, no external deps.
#pragma once

#include <string>

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// Writes `m` to `path` in the dgc binary matrix format (magic "DGCM",
/// version, dims, then the three CSR arrays).
Status SaveMatrix(const CsrMatrix& m, const std::string& path);

/// Reads a matrix written by SaveMatrix. Validates the header, version,
/// array sizes, and full CSR invariants before returning.
Result<CsrMatrix> LoadMatrix(const std::string& path);

/// Digraph convenience wrappers (adjacency matrix + squareness check).
Status SaveDigraph(const Digraph& g, const std::string& path);
Result<Digraph> LoadDigraph(const std::string& path);

/// UGraph convenience wrappers (symmetry re-validated on load).
Status SaveUGraph(const UGraph& g, const std::string& path);
Result<UGraph> LoadUGraph(const std::string& path);

}  // namespace dgc
