// Binary serialization of CSR matrices and graphs: a small versioned
// format so symmetrized graphs (expensive to compute at scale) can be
// cached between runs, plus an mmap-backed zero-copy read path for
// out-of-core pipelines. Header-checked, no external deps.
//
// Format v2 (docs/OUT_OF_CORE.md has the byte-level spec): a 64-byte
// header carrying magic "DGCM", version, an endianness tag, the element
// widths, 64-bit dimensions, and 64-bit byte offsets of the three CSR
// sections. Sections are 8-byte aligned so a straight mmap of the file
// yields correctly aligned Offset/Index/Scalar arrays. v1 files (PR 4's
// 32-bit-dimension streaming format) remain loadable by LoadMatrix;
// MappedCsr requires v2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// Size in bytes of the fixed v2 file header.
inline constexpr size_t kBinaryCsrHeaderBytes = 64;
/// Current version written by SaveMatrix.
inline constexpr uint32_t kBinaryCsrVersion = 2;

/// Writes `m` to `path` in the dgc binary matrix format (v2: 64-byte
/// header, aligned row_ptr / col_idx / values sections).
Status SaveMatrix(const CsrMatrix& m, const std::string& path);

/// Reads a matrix written by SaveMatrix (v2) or by older releases (v1).
/// Validates the header, endianness, element widths, section extents
/// against the actual file size (so a corrupt header cannot trigger a
/// huge allocation), and full CSR invariants before returning. Every
/// error Status message is anchored with `path`.
Result<CsrMatrix> LoadMatrix(const std::string& path);

/// \brief A read-only CSR view backed by an mmap of a v2 matrix file.
///
/// Exposes the same view API as CsrMatrix (rows/cols/nnz/row_ptr/col_idx/
/// values/RowCols/RowValues/RowNnz) without copying the arrays into heap
/// memory: pages are faulted in on demand and the OS may drop clean pages
/// under memory pressure, which is what lets kernels stream a graph larger
/// than RAM. Open() fully validates the header and the CSR invariants, so
/// a successfully opened view is as trustworthy as a loaded CsrMatrix.
///
/// Movable, not copyable; the mapping is released by the destructor.
class MappedCsr {
 public:
  MappedCsr() = default;
  ~MappedCsr();

  MappedCsr(MappedCsr&& other) noexcept;
  MappedCsr& operator=(MappedCsr&& other) noexcept;
  MappedCsr(const MappedCsr&) = delete;
  MappedCsr& operator=(const MappedCsr&) = delete;

  /// Maps `path` (a v2 file written by SaveMatrix) read-only. Returns a
  /// path-anchored error for directories, truncated or foreign-endian
  /// files, overflowing section extents, and CSR invariant violations.
  static Result<MappedCsr> Open(const std::string& path);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Offset nnz() const { return row_ptr_[rows_]; }

  std::span<const Offset> row_ptr() const {
    return {row_ptr_, static_cast<size_t>(rows_) + 1};
  }
  std::span<const Index> col_idx() const {
    return {col_idx_, static_cast<size_t>(nnz())};
  }
  std::span<const Scalar> values() const {
    return {values_, static_cast<size_t>(nnz())};
  }

  /// Nonzeros of row i as parallel (col, value) spans — the CsrMatrix
  /// row-view contract, so row kernels template cleanly over either type.
  std::span<const Index> RowCols(Index i) const {
    return {col_idx_ + row_ptr_[i], static_cast<size_t>(RowNnz(i))};
  }
  std::span<const Scalar> RowValues(Index i) const {
    return {values_ + row_ptr_[i], static_cast<size_t>(RowNnz(i))};
  }
  Offset RowNnz(Index i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// Owning in-memory copy (one pass over the mapping).
  CsrMatrix Materialize() const;

  /// The file backing this view.
  const std::string& path() const { return path_; }

 private:
  void Reset() noexcept;

  void* map_ = nullptr;
  size_t map_len_ = 0;
  Index rows_ = 0;
  Index cols_ = 0;
  const Offset* row_ptr_ = nullptr;
  const Index* col_idx_ = nullptr;
  const Scalar* values_ = nullptr;
  std::string path_;
};

/// Digraph convenience wrappers (adjacency matrix + squareness check).
Status SaveDigraph(const Digraph& g, const std::string& path);
Result<Digraph> LoadDigraph(const std::string& path);

/// UGraph convenience wrappers (symmetry re-validated on load).
Status SaveUGraph(const UGraph& g, const std::string& path);
Result<UGraph> LoadUGraph(const std::string& path);

}  // namespace dgc
