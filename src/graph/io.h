// File I/O: whitespace edge lists (SNAP style), the METIS graph format, and
// ground-truth category files. Everything returns Status/Result.
//
// All readers are streaming line/token parsers hardened for untrusted input:
// every malformed case (overflowing or negative ids, non-finite/negative
// weights, truncated lines, METIS header/body mismatches, over-long lines)
// yields a clean Status carrying a `path:line:column:` diagnostic — never a
// crash, silent clamp, or unbounded allocation. IoLimits bounds are enforced
// *during* the scan, before anything is allocated proportionally to a parsed
// value.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "linalg/types.h"
#include "util/result.h"

namespace dgc {

/// \brief Hard caps enforced while scanning an input file.
///
/// The defaults only guarantee that parsed quantities fit the library's
/// Index type; they do not protect against large-but-representable inputs.
/// When reading untrusted data, set caps sized to the expected dataset so a
/// hostile file cannot make the reader allocate arbitrarily (vertex counts
/// drive CSR allocation, category ids drive ground-truth table allocation).
/// Violations surface as Status(kOutOfRange) with a file:line:column
/// diagnostic.
struct IoLimits {
  /// Max vertex count (ids must lie in [0, max_vertices)).
  int64_t max_vertices = std::numeric_limits<Index>::max();
  /// Max number of edges accepted from one file.
  int64_t max_edges = std::numeric_limits<int64_t>::max();
  /// Max bytes in a single line; longer lines are rejected without being
  /// buffered whole.
  int64_t max_line_bytes = int64_t{16} << 20;
  /// Max category count in a ground-truth file (category ids must lie in
  /// [0, max_categories)).
  int64_t max_categories = std::numeric_limits<Index>::max();
};

/// \brief Reads a directed edge list: one "src dst [weight]" triple per
/// line; '#' and '%' lines are comments. Vertex ids must be in
/// [0, num_vertices); pass num_vertices = 0 to size the graph as
/// max(id) + 1. Ids at or beyond a declared num_vertices are rejected during
/// the scan, as are negative ids, non-finite or negative weights, trailing
/// junk, and anything exceeding `limits`.
Result<Digraph> ReadEdgeList(const std::string& path, Index num_vertices = 0,
                             const IoLimits& limits = {});

/// Writes "src dst weight" lines (weight omitted when uniformly 1).
Status WriteEdgeList(const Digraph& g, const std::string& path);

/// \brief Reads an undirected graph in METIS format: header "n m [fmt]",
/// then line i lists the neighbors of vertex i (1-based), with weights when
/// fmt has the edge-weight bit (001). Vertex-weight/size fmt bits are
/// rejected as unsupported; the body must contain exactly n adjacency lines
/// totalling 2m endpoint entries or the mismatch is reported.
Result<UGraph> ReadMetisGraph(const std::string& path,
                              const IoLimits& limits = {});

/// Writes METIS format with edge weights (fmt=001). Weights are rounded to
/// positive integers as METIS requires; `weight_scale` multiplies weights
/// before rounding (use for fractional similarity matrices). A weight that
/// rounds to zero or below is an error (kInvalidArgument) naming the edge —
/// raise `weight_scale` rather than silently writing an invalid file.
Status WriteMetisGraph(const UGraph& g, const std::string& path,
                       double weight_scale = 1.0);

/// \brief Reads ground truth: each line "vertex cat1 [cat2 ...]" assigns a
/// vertex to one or more categories. Category ids are bounded by
/// `limits.max_categories` before the category table is grown.
Result<GroundTruth> ReadGroundTruth(const std::string& path,
                                    Index num_vertices,
                                    const IoLimits& limits = {});

/// Writes ground truth in the same format.
Status WriteGroundTruth(const GroundTruth& truth, const std::string& path);

/// Reads a clustering: line i holds the cluster label of vertex i (-1 for
/// unassigned).
Result<Clustering> ReadClustering(const std::string& path,
                                  const IoLimits& limits = {});

/// Writes one label per line.
Status WriteClustering(const Clustering& clustering, const std::string& path);

}  // namespace dgc
