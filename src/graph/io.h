// File I/O: whitespace edge lists (SNAP style), the METIS graph format, and
// ground-truth category files. Everything returns Status/Result.
#pragma once

#include <string>

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

/// \brief Reads a directed edge list: one "src dst [weight]" triple per
/// line; '#' and '%' lines are comments. Vertex ids must be in
/// [0, num_vertices); pass num_vertices = 0 to size the graph as
/// max(id) + 1.
Result<Digraph> ReadEdgeList(const std::string& path, Index num_vertices = 0);

/// Writes "src dst weight" lines (weight omitted when uniformly 1).
Status WriteEdgeList(const Digraph& g, const std::string& path);

/// \brief Reads an undirected graph in METIS format: header "n m [fmt]",
/// then line i lists the neighbors of vertex i (1-based), with weights when
/// fmt has the edge-weight bit (001).
Result<UGraph> ReadMetisGraph(const std::string& path);

/// Writes METIS format with edge weights (fmt=001). Weights are rounded to
/// positive integers as METIS requires; `weight_scale` multiplies weights
/// before rounding (use for fractional similarity matrices).
Status WriteMetisGraph(const UGraph& g, const std::string& path,
                       double weight_scale = 1.0);

/// \brief Reads ground truth: each line "vertex cat1 [cat2 ...]" assigns a
/// vertex to one or more categories. Category ids are compacted.
Result<GroundTruth> ReadGroundTruth(const std::string& path,
                                    Index num_vertices);

/// Writes ground truth in the same format.
Status WriteGroundTruth(const GroundTruth& truth, const std::string& path);

/// Reads a clustering: line i holds the cluster label of vertex i (-1 for
/// unassigned).
Result<Clustering> ReadClustering(const std::string& path);

/// Writes one label per line.
Status WriteClustering(const Clustering& clustering, const std::string& path);

}  // namespace dgc
