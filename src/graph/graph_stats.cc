#include "graph/graph_stats.h"

#include <cmath>
#include <sstream>

namespace dgc {

DatasetStats ComputeDatasetStats(const std::string& name, const Digraph& g,
                                 const GroundTruth* truth) {
  DatasetStats stats;
  stats.name = name;
  stats.vertices = g.NumVertices();
  stats.edges = g.NumEdges();
  stats.percent_symmetric = 100.0 * g.FractionSymmetricEdges();
  stats.num_categories = truth ? truth->NumCategories() : 0;
  return stats;
}

DegreeHistogram ComputeDegreeHistogram(const UGraph& g) {
  DegreeHistogram h;
  const std::vector<Offset> degrees = g.Degrees();
  double total = 0.0;
  for (Offset d : degrees) {
    total += static_cast<double>(d);
    h.max_degree = std::max(h.max_degree, d);
    if (d == 0) {
      ++h.zero_count;
      continue;
    }
    size_t bucket = 0;
    for (Offset x = d; x > 1; x >>= 1) ++bucket;
    if (h.bucket_counts.size() <= bucket) h.bucket_counts.resize(bucket + 1, 0);
    ++h.bucket_counts[bucket];
  }
  h.mean_degree =
      degrees.empty() ? 0.0 : total / static_cast<double>(degrees.size());
  return h;
}

std::string FormatDegreeHistogram(const DegreeHistogram& h) {
  std::ostringstream os;
  os << "degree_range,count\n";
  os << "0," << h.zero_count << "\n";
  for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
    const Offset lo = static_cast<Offset>(1) << b;
    const Offset hi = (static_cast<Offset>(1) << (b + 1)) - 1;
    os << lo << "-" << hi << "," << h.bucket_counts[b] << "\n";
  }
  return os.str();
}

}  // namespace dgc
