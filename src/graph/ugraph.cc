#include "graph/ugraph.h"

#include <cmath>
#include <tuple>

namespace dgc {

Result<UGraph> UGraph::FromSymmetricAdjacency(CsrMatrix adjacency,
                                              bool drop_self_loops,
                                              Scalar tol) {
  if (adjacency.rows() != adjacency.cols()) {
    return Status::InvalidArgument("adjacency must be square, got " +
                                   adjacency.DebugString());
  }
  if (!adjacency.IsSymmetric(tol)) {
    return Status::InvalidArgument(
        "adjacency is not symmetric within tolerance");
  }
  if (drop_self_loops) {
    adjacency = adjacency.Pruned(0.0, /*drop_diagonal=*/true);
  }
  return UGraph(std::move(adjacency));
}

Result<UGraph> UGraph::FromEdges(
    Index num_vertices,
    const std::vector<std::tuple<Index, Index, Scalar>>& edges) {
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2);
  for (const auto& [u, v, w] : edges) {
    if (u == v) continue;
    triplets.push_back(Triplet{u, v, w});
    triplets.push_back(Triplet{v, u, w});
  }
  DGC_ASSIGN_OR_RETURN(
      CsrMatrix adj,
      CsrMatrix::FromTriplets(num_vertices, num_vertices,
                              std::move(triplets)));
  return UGraph(std::move(adj));
}

Scalar UGraph::Volume() const {
  Scalar v = 0.0;
  for (Scalar w : adjacency_.values()) v += w;
  return v;
}

Index UGraph::NumSingletons() const {
  Index count = 0;
  for (Index i = 0; i < NumVertices(); ++i) {
    if (adjacency_.RowNnz(i) == 0) ++count;
  }
  return count;
}

}  // namespace dgc
