#include "graph/components.h"

#include <algorithm>
#include <vector>

namespace dgc {

namespace {

/// Union-find with path halving + union by size.
class DisjointSets {
 public:
  explicit DisjointSets(Index n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1) {
    for (Index i = 0; i < n; ++i) parent_[static_cast<size_t>(i)] = i;
  }

  Index Find(Index x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  void Union(Index a, Index b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
  }

 private:
  std::vector<Index> parent_;
  std::vector<Index> size_;
};

std::vector<Index> ComponentsFromCsr(const CsrMatrix& adj) {
  const Index n = adj.rows();
  DisjointSets sets(n);
  for (Index u = 0; u < n; ++u) {
    for (Index v : adj.RowCols(u)) sets.Union(u, v);
  }
  std::vector<Index> labels(static_cast<size_t>(n));
  std::vector<Index> remap(static_cast<size_t>(n), -1);
  Index next = 0;
  for (Index v = 0; v < n; ++v) {
    Index root = sets.Find(v);
    if (remap[static_cast<size_t>(root)] == -1) {
      remap[static_cast<size_t>(root)] = next++;
    }
    labels[static_cast<size_t>(v)] = remap[static_cast<size_t>(root)];
  }
  return labels;
}

}  // namespace

std::vector<Index> ConnectedComponents(const UGraph& g) {
  return ComponentsFromCsr(g.adjacency());
}

std::vector<Index> WeaklyConnectedComponents(const Digraph& g) {
  return ComponentsFromCsr(g.adjacency());
}

Index NumComponents(const std::vector<Index>& components) {
  Index max_label = -1;
  for (Index c : components) max_label = std::max(max_label, c);
  return max_label + 1;
}

}  // namespace dgc
