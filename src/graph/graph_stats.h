// Dataset-summary statistics (the paper's Table 1) and degree histograms
// (Figure 4 input).
#pragma once

#include <string>
#include <vector>

#include "graph/clustering.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"

namespace dgc {

/// One row of the paper's Table 1.
struct DatasetStats {
  std::string name;
  Index vertices = 0;
  Offset edges = 0;
  double percent_symmetric = 0.0;  ///< % of edges with a reverse edge
  Index num_categories = 0;        ///< 0 when no ground truth exists
};

/// Computes Table-1 statistics for a directed graph (+ optional truth).
DatasetStats ComputeDatasetStats(const std::string& name, const Digraph& g,
                                 const GroundTruth* truth = nullptr);

/// \brief Log-binned degree histogram: bucket b counts vertices whose degree
/// d satisfies 2^b <= d < 2^{b+1}; bucket 0 additionally holds d == 1 and a
/// separate `zero_count` holds isolated vertices.
struct DegreeHistogram {
  std::vector<Offset> bucket_counts;  ///< index b covers [2^b, 2^{b+1})
  Offset zero_count = 0;
  Offset max_degree = 0;
  double mean_degree = 0.0;
};

/// Histogram of (unweighted) vertex degrees of an undirected graph.
DegreeHistogram ComputeDegreeHistogram(const UGraph& g);

/// Formats a histogram as "deg_range count" lines for experiment output.
std::string FormatDegreeHistogram(const DegreeHistogram& h);

}  // namespace dgc
