#include "graph/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dgc {

Index Clustering::NumClusters() const {
  std::vector<Index> seen(labels_.begin(), labels_.end());
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  Index count = static_cast<Index>(seen.size());
  if (!seen.empty() && seen.front() == kUnassigned) --count;
  return count;
}

Index Clustering::Compact() {
  std::unordered_map<Index, Index> remap;
  remap.reserve(labels_.size());
  Index next = 0;
  for (Index& label : labels_) {
    if (label == kUnassigned) continue;
    auto [it, inserted] = remap.emplace(label, next);
    if (inserted) ++next;
    label = it->second;
  }
  return next;
}

std::vector<std::vector<Index>> Clustering::ToClusters() const {
  Index k = 0;
  for (Index label : labels_) {
    DGC_CHECK_GE(label, kUnassigned);
    k = std::max(k, label + 1);
  }
  std::vector<std::vector<Index>> clusters(static_cast<size_t>(k));
  for (size_t v = 0; v < labels_.size(); ++v) {
    if (labels_[v] == kUnassigned) continue;
    clusters[static_cast<size_t>(labels_[v])].push_back(
        static_cast<Index>(v));
  }
  return clusters;
}

std::vector<Index> Clustering::ClusterSizes() const {
  Index k = 0;
  for (Index label : labels_) k = std::max(k, label + 1);
  std::vector<Index> sizes(static_cast<size_t>(k), 0);
  for (Index label : labels_) {
    if (label != kUnassigned) ++sizes[static_cast<size_t>(label)];
  }
  return sizes;
}

void Clustering::AssignSingletons() {
  Index next = 0;
  for (Index label : labels_) next = std::max(next, label + 1);
  for (Index& label : labels_) {
    if (label == kUnassigned) label = next++;
  }
}

void GroundTruth::RemoveSmallCategories(Index min_size) {
  categories.erase(
      std::remove_if(categories.begin(), categories.end(),
                     [min_size](const std::vector<Index>& c) {
                       return static_cast<Index>(c.size()) < min_size;
                     }),
      categories.end());
}

}  // namespace dgc
