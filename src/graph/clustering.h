// Clustering and ground-truth container types shared between the clustering
// algorithms (src/cluster) and the evaluation code (src/eval).
#pragma once

#include <vector>

#include "linalg/types.h"
#include "util/result.h"

namespace dgc {

/// \brief A hard (disjoint) clustering: labels[v] is the cluster id of
/// vertex v, or kUnassigned for vertices no cluster claims.
class Clustering {
 public:
  static constexpr Index kUnassigned = -1;

  Clustering() = default;
  /// All vertices unassigned.
  explicit Clustering(Index num_vertices)
      : labels_(static_cast<size_t>(num_vertices), kUnassigned) {}
  /// From explicit labels; ids need not be contiguous (call Compact()).
  explicit Clustering(std::vector<Index> labels)
      : labels_(std::move(labels)) {}

  Index NumVertices() const { return static_cast<Index>(labels_.size()); }

  Index LabelOf(Index v) const { return labels_[static_cast<size_t>(v)]; }
  void Assign(Index v, Index cluster) {
    labels_[static_cast<size_t>(v)] = cluster;
  }

  const std::vector<Index>& labels() const { return labels_; }

  /// Number of distinct non-negative labels.
  Index NumClusters() const;

  /// Remaps labels to a dense [0, NumClusters()) range, preserving
  /// unassigned markers. Returns the new number of clusters.
  Index Compact();

  /// Materializes per-cluster member lists (index = compacted label).
  /// Requires compact labels (call Compact() first if unsure).
  std::vector<std::vector<Index>> ToClusters() const;

  /// Sizes of each cluster (index = label). Requires compact labels.
  std::vector<Index> ClusterSizes() const;

  /// Assigns each unassigned vertex its own fresh singleton cluster.
  void AssignSingletons();

  bool operator==(const Clustering&) const = default;

 private:
  std::vector<Index> labels_;
};

/// \brief Ground truth: a set of possibly-overlapping categories, each a
/// list of member vertices. Vertices may belong to zero or many categories
/// (35% of Wikipedia nodes have none, Section 4.1).
struct GroundTruth {
  std::vector<std::vector<Index>> categories;

  Index NumCategories() const {
    return static_cast<Index>(categories.size());
  }

  /// Total number of (vertex, category) memberships.
  Offset NumMemberships() const {
    Offset total = 0;
    for (const auto& c : categories) total += static_cast<Offset>(c.size());
    return total;
  }

  /// Drops categories with fewer than `min_size` members (the paper removes
  /// Wikipedia categories with <= 20 pages).
  void RemoveSmallCategories(Index min_size);
};

}  // namespace dgc
