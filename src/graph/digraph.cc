#include "graph/digraph.h"

#include <algorithm>

namespace dgc {

Result<Digraph> Digraph::FromEdges(Index num_vertices,
                                   const std::vector<Edge>& edges) {
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size());
  for (const Edge& e : edges) {
    triplets.push_back(Triplet{e.src, e.dst, e.weight});
  }
  DGC_ASSIGN_OR_RETURN(
      CsrMatrix adj,
      CsrMatrix::FromTriplets(num_vertices, num_vertices,
                              std::move(triplets)));
  return Digraph(std::move(adj));
}

Result<Digraph> Digraph::FromAdjacency(CsrMatrix adjacency) {
  if (adjacency.rows() != adjacency.cols()) {
    return Status::InvalidArgument("adjacency must be square, got " +
                                   adjacency.DebugString());
  }
  DGC_RETURN_IF_ERROR(adjacency.Validate());
  return Digraph(std::move(adjacency));
}

double Digraph::FractionSymmetricEdges() const {
  if (NumEdges() == 0) return 0.0;
  Offset symmetric = 0;
  for (Index u = 0; u < NumVertices(); ++u) {
    for (Index v : adjacency_.RowCols(u)) {
      if (u == v || adjacency_.At(v, u) != 0.0) ++symmetric;
    }
  }
  return static_cast<double>(symmetric) / static_cast<double>(NumEdges());
}

}  // namespace dgc
