#include "graph/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace dgc {

namespace {

constexpr char kMagic[4] = {'D', 'G', 'C', 'M'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  int32_t rows;
  int32_t cols;
  int64_t nnz;
};

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool WriteVector(std::ofstream& out, const std::vector<T>& v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVector(std::ifstream& in, size_t count, std::vector<T>* v) {
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveMatrix(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.rows = m.rows();
  header.cols = m.cols();
  header.nnz = m.nnz();
  if (!WritePod(out, header)) return Status::IOError("header write failed");
  const std::vector<Offset> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  const std::vector<Index> col_idx(m.col_idx().begin(), m.col_idx().end());
  const std::vector<Scalar> values(m.values().begin(), m.values().end());
  if (!WriteVector(out, row_ptr) || !WriteVector(out, col_idx) ||
      !WriteVector(out, values)) {
    return Status::IOError("array write failed for " + path);
  }
  return Status::OK();
}

Result<CsrMatrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  Header header;
  if (!ReadPod(in, &header)) {
    return Status::IOError(path + ": truncated header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a dgc matrix file");
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument(
        path + ": unsupported version " + std::to_string(header.version));
  }
  if (header.rows < 0 || header.cols < 0 || header.nnz < 0) {
    return Status::InvalidArgument(path + ": negative dimensions");
  }
  std::vector<Offset> row_ptr;
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  if (!ReadVector(in, static_cast<size_t>(header.rows) + 1, &row_ptr) ||
      !ReadVector(in, static_cast<size_t>(header.nnz), &col_idx) ||
      !ReadVector(in, static_cast<size_t>(header.nnz), &values)) {
    return Status::IOError(path + ": truncated arrays");
  }
  // FromParts re-validates every CSR invariant, so corrupt files cannot
  // produce an inconsistent matrix.
  return CsrMatrix::FromParts(header.rows, header.cols, std::move(row_ptr),
                              std::move(col_idx), std::move(values));
}

Status SaveDigraph(const Digraph& g, const std::string& path) {
  return SaveMatrix(g.adjacency(), path);
}

Result<Digraph> LoadDigraph(const std::string& path) {
  DGC_ASSIGN_OR_RETURN(CsrMatrix adjacency, LoadMatrix(path));
  return Digraph::FromAdjacency(std::move(adjacency));
}

Status SaveUGraph(const UGraph& g, const std::string& path) {
  return SaveMatrix(g.adjacency(), path);
}

Result<UGraph> LoadUGraph(const std::string& path) {
  DGC_ASSIGN_OR_RETURN(CsrMatrix adjacency, LoadMatrix(path));
  return UGraph::FromSymmetricAdjacency(std::move(adjacency),
                                        /*drop_self_loops=*/false);
}

}  // namespace dgc
