#include "graph/serialize.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <system_error>
#include <utility>
#include <vector>

namespace dgc {

namespace {

constexpr char kMagic[4] = {'D', 'G', 'C', 'M'};
constexpr uint32_t kVersionV1 = 1;
/// Written as a native 32-bit word; a reader on a foreign-endian machine
/// sees the byte-reversed value and rejects the file instead of silently
/// mis-decoding every array element.
constexpr uint32_t kEndianTag = 0x01020304u;
/// Element widths baked into the file: sizeof(Offset) << 16 |
/// sizeof(Index) << 8 | sizeof(Scalar). Guards against a build with
/// different linalg/types.h widths mmapping incompatible arrays.
constexpr uint32_t kTypeWidths = (sizeof(Offset) << 16) |
                                 (sizeof(Index) << 8) | sizeof(Scalar);

/// v1 streaming header (PR 4): 32-bit dims, arrays packed immediately
/// after the header with no alignment. Still loadable, never written.
struct HeaderV1 {
  char magic[4];
  uint32_t version;
  int32_t rows;
  int32_t cols;
  int64_t nnz;
};
static_assert(sizeof(HeaderV1) == 24, "v1 header layout drifted");

/// v2 header: fixed 64 bytes, 64-bit dims, explicit 8-aligned section
/// offsets so the file can be mmapped and indexed in place.
struct HeaderV2 {
  char magic[4];
  uint32_t version;
  uint32_t endian;       ///< kEndianTag as written by the producer
  uint32_t type_widths;  ///< kTypeWidths of the producer
  int64_t rows;
  int64_t cols;
  int64_t nnz;
  uint64_t row_ptr_offset;
  uint64_t col_idx_offset;
  uint64_t values_offset;
};
static_assert(sizeof(HeaderV2) == kBinaryCsrHeaderBytes,
              "v2 header must be exactly 64 bytes");

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

template <typename T>
bool WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool WriteSpan(std::ofstream& out, std::span<const T> v) {
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  return static_cast<bool>(out);
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
bool ReadVector(std::ifstream& in, size_t count, std::vector<T>* v) {
  v->resize(count);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  return static_cast<bool>(in);
}

std::string ErrnoMessage() {
  return std::generic_category().message(errno);
}

/// Prefixes `path` onto a CSR-validation error so every diagnostic out of
/// the loaders is anchored to the offending file (the io_fuzz contract).
Result<CsrMatrix> AnchorResult(const std::string& path,
                               Result<CsrMatrix> result) {
  if (result.ok()) return result;
  return Status(result.status().code(),
                path + ": " + std::string(result.status().message()));
}

/// Division-based extent check: never multiplies untrusted counts, so a
/// forged header with a near-2^63 nnz or offset cannot overflow into a
/// "valid" extent (or into a multi-terabyte resize). `count` must already
/// be known non-negative.
Status CheckSection(const std::string& path, const char* name,
                    uint64_t offset, uint64_t count, uint64_t width,
                    uint64_t file_size) {
  if (offset % 8 != 0) {
    return Status::InvalidArgument(path + ": " + name + " section offset " +
                                   std::to_string(offset) +
                                   " is not 8-byte aligned");
  }
  if (offset < kBinaryCsrHeaderBytes || offset > file_size) {
    return Status::InvalidArgument(path + ": " + name + " section offset " +
                                   std::to_string(offset) +
                                   " is outside the file (size " +
                                   std::to_string(file_size) + ")");
  }
  if (count > (file_size - offset) / width) {
    return Status::IOError(path + ": " + name + " section (" +
                           std::to_string(count) + " x " +
                           std::to_string(width) +
                           " bytes at offset " + std::to_string(offset) +
                           ") overflows the file (size " +
                           std::to_string(file_size) + ")");
  }
  return Status::OK();
}

/// Shared by the stream loader and MappedCsr::Open: everything that can be
/// decided from the 64 header bytes plus the true file size.
Status ValidateHeaderV2(const std::string& path, const HeaderV2& h,
                        uint64_t file_size) {
  if (h.endian != kEndianTag) {
    return Status::InvalidArgument(
        path + ": endianness tag mismatch (file written on a foreign-endian "
               "machine, or corrupt header)");
  }
  if (h.type_widths != kTypeWidths) {
    return Status::InvalidArgument(
        path + ": element widths 0x" + std::to_string(h.type_widths) +
        " do not match this build");
  }
  if (h.rows < 0 || h.cols < 0 || h.nnz < 0) {
    return Status::InvalidArgument(path + ": negative dimensions");
  }
  if (h.rows > std::numeric_limits<Index>::max() ||
      h.cols > std::numeric_limits<Index>::max()) {
    return Status::InvalidArgument(
        path + ": dimensions " + std::to_string(h.rows) + "x" +
        std::to_string(h.cols) + " exceed this build's 32-bit Index");
  }
  Status s = CheckSection(path, "row_ptr", h.row_ptr_offset,
                          static_cast<uint64_t>(h.rows) + 1, sizeof(Offset),
                          file_size);
  if (!s.ok()) return s;
  s = CheckSection(path, "col_idx", h.col_idx_offset,
                   static_cast<uint64_t>(h.nnz), sizeof(Index), file_size);
  if (!s.ok()) return s;
  return CheckSection(path, "values", h.values_offset,
                      static_cast<uint64_t>(h.nnz), sizeof(Scalar),
                      file_size);
}

/// CSR invariants over borrowed spans (the MappedCsr analogue of
/// CsrMatrix::Validate, which needs an owning matrix).
Status ValidateCsrSpans(const std::string& path, Index rows, Index cols,
                        std::span<const Offset> row_ptr,
                        std::span<const Index> col_idx, Offset nnz) {
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    return Status::InvalidArgument(path +
                                   ": row_ptr endpoints do not match nnz");
  }
  for (Index r = 0; r < rows; ++r) {
    const Offset lo = row_ptr[static_cast<size_t>(r)];
    const Offset hi = row_ptr[static_cast<size_t>(r) + 1];
    if (lo > hi) {
      return Status::InvalidArgument(path + ": row_ptr decreases at row " +
                                     std::to_string(r));
    }
    Index prev = -1;
    for (Offset p = lo; p < hi; ++p) {
      const Index c = col_idx[static_cast<size_t>(p)];
      if (c <= prev || c >= cols) {
        return Status::InvalidArgument(
            path + ": row " + std::to_string(r) +
            " has out-of-order or out-of-range column " + std::to_string(c));
      }
      prev = c;
    }
  }
  return Status::OK();
}

Result<CsrMatrix> LoadMatrixV1(std::ifstream& in, const std::string& path,
                               uint64_t file_size) {
  HeaderV1 header;
  in.seekg(0);
  if (!ReadPod(in, &header)) {
    return Status::IOError(path + ": truncated header");
  }
  if (header.rows < 0 || header.cols < 0 || header.nnz < 0) {
    return Status::InvalidArgument(path + ": negative dimensions");
  }
  // Extent check before any resize, so a forged nnz cannot allocate
  // terabytes: payload = (rows+1) offsets + nnz indices + nnz scalars.
  const uint64_t payload = file_size > sizeof(HeaderV1)
                               ? file_size - sizeof(HeaderV1)
                               : 0;
  const uint64_t rows1 = static_cast<uint64_t>(header.rows) + 1;
  const uint64_t nnz = static_cast<uint64_t>(header.nnz);
  if (rows1 > payload / sizeof(Offset) ||
      nnz > (payload - rows1 * sizeof(Offset)) /
                (sizeof(Index) + sizeof(Scalar))) {
    return Status::IOError(path + ": truncated arrays");
  }
  std::vector<Offset> row_ptr;
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  if (!ReadVector(in, static_cast<size_t>(rows1), &row_ptr) ||
      !ReadVector(in, static_cast<size_t>(nnz), &col_idx) ||
      !ReadVector(in, static_cast<size_t>(nnz), &values)) {
    return Status::IOError(path + ": truncated arrays");
  }
  return AnchorResult(
      path, CsrMatrix::FromParts(header.rows, header.cols, std::move(row_ptr),
                                 std::move(col_idx), std::move(values)));
}

Result<CsrMatrix> LoadMatrixV2(std::ifstream& in, const std::string& path,
                               uint64_t file_size) {
  HeaderV2 header;
  in.seekg(0);
  if (file_size < sizeof(HeaderV2) || !ReadPod(in, &header)) {
    return Status::IOError(path + ": truncated header");
  }
  Status s = ValidateHeaderV2(path, header, file_size);
  if (!s.ok()) return s;
  std::vector<Offset> row_ptr;
  std::vector<Index> col_idx;
  std::vector<Scalar> values;
  in.seekg(static_cast<std::streamoff>(header.row_ptr_offset));
  if (!ReadVector(in, static_cast<size_t>(header.rows) + 1, &row_ptr)) {
    return Status::IOError(path + ": truncated row_ptr section");
  }
  in.seekg(static_cast<std::streamoff>(header.col_idx_offset));
  if (!ReadVector(in, static_cast<size_t>(header.nnz), &col_idx)) {
    return Status::IOError(path + ": truncated col_idx section");
  }
  in.seekg(static_cast<std::streamoff>(header.values_offset));
  if (!ReadVector(in, static_cast<size_t>(header.nnz), &values)) {
    return Status::IOError(path + ": truncated values section");
  }
  // FromParts re-validates every CSR invariant, so corrupt files cannot
  // produce an inconsistent matrix.
  return AnchorResult(
      path, CsrMatrix::FromParts(static_cast<Index>(header.rows),
                                 static_cast<Index>(header.cols),
                                 std::move(row_ptr), std::move(col_idx),
                                 std::move(values)));
}

}  // namespace

Status SaveMatrix(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  HeaderV2 header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kBinaryCsrVersion;
  header.endian = kEndianTag;
  header.type_widths = kTypeWidths;
  header.rows = m.rows();
  header.cols = m.cols();
  header.nnz = m.nnz();
  header.row_ptr_offset = kBinaryCsrHeaderBytes;
  header.col_idx_offset =
      header.row_ptr_offset +
      (static_cast<uint64_t>(m.rows()) + 1) * sizeof(Offset);
  // values are 8-byte Scalars; pad the 4-byte col_idx section so they stay
  // aligned in the mmap view.
  header.values_offset = AlignUp8(
      header.col_idx_offset + static_cast<uint64_t>(m.nnz()) * sizeof(Index));
  if (!WritePod(out, header)) {
    return Status::IOError("header write failed for " + path);
  }
  if (!WriteSpan(out, m.row_ptr()) || !WriteSpan(out, m.col_idx())) {
    return Status::IOError("array write failed for " + path);
  }
  const uint64_t pad = header.values_offset -
                       (header.col_idx_offset +
                        static_cast<uint64_t>(m.nnz()) * sizeof(Index));
  const char zeros[8] = {0};
  if (pad != 0) out.write(zeros, static_cast<std::streamsize>(pad));
  if (!out || !WriteSpan(out, m.values())) {
    return Status::IOError("array write failed for " + path);
  }
  return Status::OK();
}

Result<CsrMatrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  if (end < 0) return Status::IOError(path + ": cannot determine file size");
  const uint64_t file_size = static_cast<uint64_t>(end);
  in.seekg(0);
  char magic[4];
  uint32_t version = 0;
  if (!in.read(magic, sizeof(magic)) || !ReadPod(in, &version)) {
    return Status::IOError(path + ": truncated header");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a dgc matrix file");
  }
  if (version == kVersionV1) return LoadMatrixV1(in, path, file_size);
  if (version == kBinaryCsrVersion) return LoadMatrixV2(in, path, file_size);
  return Status::InvalidArgument(path + ": unsupported version " +
                                 std::to_string(version));
}

MappedCsr::~MappedCsr() { Reset(); }

MappedCsr::MappedCsr(MappedCsr&& other) noexcept { *this = std::move(other); }

MappedCsr& MappedCsr::operator=(MappedCsr&& other) noexcept {
  if (this != &other) {
    Reset();
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    rows_ = std::exchange(other.rows_, 0);
    cols_ = std::exchange(other.cols_, 0);
    row_ptr_ = std::exchange(other.row_ptr_, nullptr);
    col_idx_ = std::exchange(other.col_idx_, nullptr);
    values_ = std::exchange(other.values_, nullptr);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedCsr::Reset() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  row_ptr_ = nullptr;
  col_idx_ = nullptr;
  values_ = nullptr;
  rows_ = 0;
  cols_ = 0;
}

Result<MappedCsr> MappedCsr::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " + ErrnoMessage());
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string msg = ErrnoMessage();
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + msg);
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path +
                                   ": is a directory, not a dgc matrix file");
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  HeaderV2 header;
  if (file_size < sizeof(HeaderV2) ||
      ::pread(fd, &header, sizeof(HeaderV2), 0) !=
          static_cast<ssize_t>(sizeof(HeaderV2))) {
    ::close(fd);
    return Status::IOError(path + ": truncated header");
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a dgc matrix file");
  }
  if (header.version != kBinaryCsrVersion) {
    ::close(fd);
    return Status::InvalidArgument(
        path + ": version " + std::to_string(header.version) +
        " cannot be mmapped (re-save in the v2 format)");
  }
  Status s = ValidateHeaderV2(path, header, file_size);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  // The fd is not needed once the mapping exists (POSIX keeps the pages
  // valid after close).
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::IOError("cannot mmap " + path + ": " + ErrnoMessage());
  }
  MappedCsr m;
  m.map_ = map;
  m.map_len_ = static_cast<size_t>(file_size);
  m.rows_ = static_cast<Index>(header.rows);
  m.cols_ = static_cast<Index>(header.cols);
  const char* base = static_cast<const char*>(map);
  m.row_ptr_ =
      reinterpret_cast<const Offset*>(base + header.row_ptr_offset);
  m.col_idx_ = reinterpret_cast<const Index*>(base + header.col_idx_offset);
  m.values_ = reinterpret_cast<const Scalar*>(base + header.values_offset);
  m.path_ = path;
  // The header's nnz bounds the sections; the authoritative nnz is
  // row_ptr[rows], which must agree before the view is handed out.
  if (m.row_ptr()[static_cast<size_t>(m.rows_)] != header.nnz) {
    return Status::InvalidArgument(
        path + ": row_ptr[-1] disagrees with the header nnz");
  }
  s = ValidateCsrSpans(path, m.rows_, m.cols_, m.row_ptr(), m.col_idx(),
                       static_cast<Offset>(header.nnz));
  if (!s.ok()) return s;
  return m;
}

CsrMatrix MappedCsr::Materialize() const {
  CsrMatrix m = CsrMatrix::FromPartsUnchecked(
      rows_, cols_, std::vector<Offset>(row_ptr().begin(), row_ptr().end()),
      std::vector<Index>(col_idx().begin(), col_idx().end()),
      std::vector<Scalar>(values().begin(), values().end()));
  // Open() validated the mapped arrays; this re-checks only in DCHECK
  // builds (unchecked-needs-validate pairing).
  m.ValidateStructure("MappedCsr::Materialize");
  return m;
}

Status SaveDigraph(const Digraph& g, const std::string& path) {
  return SaveMatrix(g.adjacency(), path);
}

Result<Digraph> LoadDigraph(const std::string& path) {
  DGC_ASSIGN_OR_RETURN(CsrMatrix adjacency, LoadMatrix(path));
  return Digraph::FromAdjacency(std::move(adjacency));
}

Status SaveUGraph(const UGraph& g, const std::string& path) {
  return SaveMatrix(g.adjacency(), path);
}

Result<UGraph> LoadUGraph(const std::string& path) {
  DGC_ASSIGN_OR_RETURN(CsrMatrix adjacency, LoadMatrix(path));
  return UGraph::FromSymmetricAdjacency(std::move(adjacency),
                                        /*drop_self_loops=*/false);
}

}  // namespace dgc
