#include "graph/io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string_view>
#include <system_error>
#include <tuple>
#include <vector>

namespace dgc {

namespace {

// ---------------------------------------------------------------------------
// Streaming line reader and token scanner.
//
// The readers below never trust stream-extraction (`>>`) or strto* behavior:
// every token is cut out of a bounded line buffer and parsed with
// std::from_chars, so overflow, trailing junk, and locale effects are all
// explicit, and every diagnostic carries path:line:column.
// ---------------------------------------------------------------------------

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

bool IsCommentOrBlank(std::string_view line) {
  for (char c : line) {
    if (IsSpaceChar(c)) continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

enum class LineRead { kLine, kEof, kTooLong };

// Reads one '\n'-terminated line into *out, refusing to buffer more than
// max_bytes of it (the remainder of an over-long line is left unread — the
// caller errors out immediately). Returns kEof only when no bytes remain.
LineRead ReadLineBounded(std::istream& in, int64_t max_bytes,
                         std::string* out) {
  out->clear();
  char buf[4096];
  for (;;) {
    in.get(buf, sizeof(buf), '\n');
    const std::streamsize got = in.gcount();
    if (got > 0) out->append(buf, static_cast<size_t>(got));
    if (static_cast<int64_t>(out->size()) > max_bytes) return LineRead::kTooLong;
    if (in.eof()) return out->empty() ? LineRead::kEof : LineRead::kLine;
    // get() sets failbit when it stores zero characters, which happens on an
    // empty line (next char is the delimiter). Clear and fall through to
    // consume the delimiter.
    if (in.fail()) in.clear();
    const int next = in.peek();
    if (next == '\n') {
      in.get();
      return LineRead::kLine;
    }
    if (next == std::char_traits<char>::eof()) {
      return out->empty() ? LineRead::kEof : LineRead::kLine;
    }
    // Buffer filled mid-line: keep reading the same line.
  }
}

// Whitespace-separated token walker with 1-based column positions.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view line) : line_(line) {}

  // Extracts the next token; false when the line is exhausted.
  bool Next(std::string_view* token, int64_t* column) {
    SkipSpace();
    if (pos_ >= line_.size()) return false;
    const size_t start = pos_;
    while (pos_ < line_.size() && !IsSpaceChar(line_[pos_])) ++pos_;
    *token = line_.substr(start, pos_ - start);
    *column = static_cast<int64_t>(start) + 1;
    return true;
  }

  // True when only whitespace remains.
  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  // 1-based column of the current scan position.
  int64_t column() {
    SkipSpace();
    return static_cast<int64_t>(pos_) + 1;
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() && IsSpaceChar(line_[pos_])) ++pos_;
  }

  std::string_view line_;
  size_t pos_ = 0;
};

std::string Where(const std::string& path, int64_t line, int64_t col) {
  return path + ":" + std::to_string(line) + ":" + std::to_string(col) + ": ";
}

// Tokens are echoed into diagnostics; hostile input may contain arbitrary
// bytes, so clip to a short printable preview.
std::string TokenPreview(std::string_view token) {
  std::string out;
  const size_t n = std::min<size_t>(token.size(), 24);
  out.reserve(n + 3);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    out.push_back(c >= 0x20 && c < 0x7f ? static_cast<char>(c) : '?');
  }
  if (token.size() > n) out += "...";
  return out;
}

Status ParseInt64(const std::string& path, int64_t line_no, int64_t col,
                  std::string_view token, const char* what, int64_t* out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(Where(path, line_no, col) + std::string(what) +
                              " '" + TokenPreview(token) +
                              "' overflows a 64-bit integer");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::IOError(Where(path, line_no, col) + "malformed " +
                           std::string(what) + " '" + TokenPreview(token) +
                           "'");
  }
  return Status::OK();
}

Status ParseWeight(const std::string& path, int64_t line_no, int64_t col,
                   std::string_view token, const char* what, double* out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec == std::errc::result_out_of_range) {
    // from_chars reports underflow/overflow; treat both as non-representable.
    return Status::OutOfRange(Where(path, line_no, col) + std::string(what) +
                              " '" + TokenPreview(token) +
                              "' is out of double range");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::IOError(Where(path, line_no, col) + "malformed " +
                           std::string(what) + " '" + TokenPreview(token) +
                           "'");
  }
  if (!std::isfinite(*out)) {
    return Status::IOError(Where(path, line_no, col) + "non-finite " +
                           std::string(what) + " '" + TokenPreview(token) +
                           "'");
  }
  return Status::OK();
}

Status LineTooLong(const std::string& path, int64_t line_no,
                   const IoLimits& limits) {
  return Status::OutOfRange(
      Where(path, line_no, limits.max_line_bytes + 1) +
      "line exceeds IoLimits.max_line_bytes = " +
      std::to_string(limits.max_line_bytes));
}

// Largest vertex/category id representable regardless of caller limits:
// counts (max id + 1) must still fit in Index.
constexpr int64_t kIndexCap = std::numeric_limits<Index>::max();

}  // namespace

Result<Digraph> ReadEdgeList(const std::string& path, Index num_vertices,
                             const IoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  const int64_t vertex_cap = std::min(limits.max_vertices, kIndexCap);
  if (num_vertices > 0 && static_cast<int64_t>(num_vertices) > vertex_cap) {
    return Status::OutOfRange(
        path + ": declared num_vertices " + std::to_string(num_vertices) +
        " exceeds IoLimits.max_vertices = " + std::to_string(vertex_cap));
  }
  // Ids must stay below the declared size when one is given, and below the
  // vertex cap always — checked per token, before any cast to Index.
  const int64_t id_cap =
      num_vertices > 0 ? static_cast<int64_t>(num_vertices) : vertex_cap;

  std::vector<Edge> edges;
  Index max_id = -1;
  std::string line;
  int64_t line_no = 0;
  for (;;) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    if (IsCommentOrBlank(line)) continue;

    TokenCursor cursor{std::string_view(line)};
    std::string_view token;
    int64_t col = 0;
    int64_t ids[2] = {0, 0};
    for (int k = 0; k < 2; ++k) {
      if (!cursor.Next(&token, &col)) {
        return Status::IOError(Where(path, line_no, cursor.column()) +
                               "expected 'src dst [weight]': missing " +
                               (k == 0 ? "source" : "destination") +
                               " vertex id");
      }
      DGC_RETURN_IF_ERROR(ParseInt64(path, line_no, col, token,
                                     k == 0 ? "source vertex id"
                                            : "destination vertex id",
                                     &ids[k]));
      if (ids[k] < 0) {
        return Status::OutOfRange(Where(path, line_no, col) +
                                  "negative vertex id " +
                                  std::to_string(ids[k]));
      }
      if (ids[k] >= id_cap) {
        return Status::OutOfRange(
            Where(path, line_no, col) + "vertex id " + std::to_string(ids[k]) +
            " >= " +
            (num_vertices > 0 ? "declared num_vertices "
                              : "IoLimits.max_vertices ") +
            std::to_string(id_cap));
      }
    }
    double w = 1.0;
    if (cursor.Next(&token, &col)) {
      DGC_RETURN_IF_ERROR(
          ParseWeight(path, line_no, col, token, "edge weight", &w));
      if (w < 0.0) {
        return Status::IOError(Where(path, line_no, col) +
                               "negative edge weight '" + TokenPreview(token) +
                               "'");
      }
      if (!cursor.AtEnd()) {
        return Status::IOError(Where(path, line_no, cursor.column()) +
                               "unexpected trailing content after "
                               "'src dst weight'");
      }
    }
    if (static_cast<int64_t>(edges.size()) >= limits.max_edges) {
      return Status::OutOfRange(Where(path, line_no, 1) +
                                "edge count exceeds IoLimits.max_edges = " +
                                std::to_string(limits.max_edges));
    }
    edges.push_back(Edge{static_cast<Index>(ids[0]),
                         static_cast<Index>(ids[1]), static_cast<Scalar>(w)});
    max_id = std::max<Index>(
        max_id, static_cast<Index>(std::max(ids[0], ids[1])));
  }
  const Index n = num_vertices > 0 ? num_vertices : max_id + 1;
  return Digraph::FromEdges(n, edges);
}

Status WriteEdgeList(const Digraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# directed edge list: src dst weight\n";
  out << "# vertices=" << g.NumVertices() << " edges=" << g.NumEdges()
      << "\n";
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      out << u << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<UGraph> ReadMetisGraph(const std::string& path,
                              const IoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  int64_t line_no = 0;

  // --- Header: "n m [fmt]" on the first non-comment, non-blank line. ---
  int64_t n = 0;
  int64_t m = 0;
  bool has_edge_weights = false;
  bool saw_header = false;
  while (!saw_header) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) {
      return Status::IOError(path + ": missing METIS header 'n m [fmt]'");
    }
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    if (IsCommentOrBlank(line)) continue;
    saw_header = true;

    TokenCursor cursor{std::string_view(line)};
    std::string_view token;
    int64_t col = 0;
    if (!cursor.Next(&token, &col)) {
      return Status::IOError(Where(path, line_no, 1) +
                             "malformed METIS header");
    }
    DGC_RETURN_IF_ERROR(
        ParseInt64(path, line_no, col, token, "vertex count", &n));
    if (n < 0) {
      return Status::IOError(Where(path, line_no, col) +
                             "negative METIS vertex count");
    }
    const int64_t vertex_cap = std::min(limits.max_vertices, kIndexCap);
    if (n > vertex_cap) {
      return Status::OutOfRange(Where(path, line_no, col) + "vertex count " +
                                std::to_string(n) +
                                " exceeds IoLimits.max_vertices = " +
                                std::to_string(vertex_cap));
    }
    if (!cursor.Next(&token, &col)) {
      return Status::IOError(Where(path, line_no, cursor.column()) +
                             "METIS header missing edge count");
    }
    DGC_RETURN_IF_ERROR(
        ParseInt64(path, line_no, col, token, "edge count", &m));
    if (m < 0) {
      return Status::IOError(Where(path, line_no, col) +
                             "negative METIS edge count");
    }
    if (m > limits.max_edges) {
      return Status::OutOfRange(Where(path, line_no, col) + "edge count " +
                                std::to_string(m) +
                                " exceeds IoLimits.max_edges = " +
                                std::to_string(limits.max_edges));
    }
    if (cursor.Next(&token, &col)) {
      // fmt: up to three binary digits; only the edge-weight bit (last) is
      // supported. Anything else (vertex weights/sizes, ncon fields) is an
      // explicit error rather than a silently misread file.
      if (token.empty() || token.size() > 3 ||
          token.find_first_not_of("01") != std::string_view::npos) {
        return Status::IOError(Where(path, line_no, col) +
                               "malformed METIS fmt field '" +
                               TokenPreview(token) + "'");
      }
      if (token.size() >= 2 &&
          token.substr(0, token.size() - 1).find('1') !=
              std::string_view::npos) {
        return Status::IOError(Where(path, line_no, col) + "METIS fmt '" +
                               TokenPreview(token) +
                               "' requests vertex weights/sizes, which are "
                               "not supported");
      }
      has_edge_weights = token.back() == '1';
      if (!cursor.AtEnd()) {
        return Status::IOError(
            Where(path, line_no, cursor.column()) +
            "unexpected trailing content in METIS header (multi-constraint "
            "ncon is not supported)");
      }
    }
  }

  // --- Body: exactly n adjacency lines totalling 2m endpoint entries. ---
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  edges.reserve(static_cast<size_t>(std::min<int64_t>(m, 1 << 20)));
  const int64_t max_entries = 2 * m;
  int64_t total_entries = 0;
  int64_t u = 0;
  while (u < n) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    // Comment lines may appear between adjacency lines; blank lines are
    // adjacency lines (a vertex with no neighbors).
    if (!line.empty() && (line[0] == '%' || line[0] == '#')) continue;

    TokenCursor cursor{std::string_view(line)};
    std::string_view token;
    int64_t col = 0;
    while (cursor.Next(&token, &col)) {
      int64_t v = 0;
      DGC_RETURN_IF_ERROR(
          ParseInt64(path, line_no, col, token, "neighbor id", &v));
      if (v < 1 || v > n) {
        return Status::OutOfRange(Where(path, line_no, col) + "neighbor id " +
                                  std::to_string(v) + " out of [1," +
                                  std::to_string(n) + "]");
      }
      if (v == u + 1) {
        return Status::IOError(Where(path, line_no, col) + "vertex " +
                               std::to_string(u + 1) +
                               " lists itself as a neighbor (METIS forbids "
                               "self-loops)");
      }
      double w = 1.0;
      if (has_edge_weights) {
        if (!cursor.Next(&token, &col)) {
          return Status::IOError(Where(path, line_no, cursor.column()) +
                                 "missing edge weight for neighbor " +
                                 std::to_string(v) + " of vertex " +
                                 std::to_string(u + 1));
        }
        DGC_RETURN_IF_ERROR(
            ParseWeight(path, line_no, col, token, "edge weight", &w));
        if (w <= 0.0) {
          return Status::IOError(Where(path, line_no, col) +
                                 "non-positive METIS edge weight '" +
                                 TokenPreview(token) + "'");
        }
      }
      if (++total_entries > max_entries) {
        return Status::IOError(
            Where(path, line_no, col) + "adjacency body exceeds the 2*m = " +
            std::to_string(max_entries) + " endpoint entries declared in the "
            "header");
      }
      const Index nb = static_cast<Index>(v - 1);
      if (u < nb) {  // store each undirected edge once
        edges.emplace_back(static_cast<Index>(u), nb, static_cast<Scalar>(w));
      }
    }
    ++u;
  }
  if (u != n) {
    return Status::IOError(path + ": truncated METIS body: expected " +
                           std::to_string(n) + " adjacency lines, got " +
                           std::to_string(u));
  }
  if (total_entries != max_entries) {
    return Status::IOError(
        path + ": METIS header declares " + std::to_string(m) + " edges (" +
        std::to_string(max_entries) + " endpoint entries) but the body has " +
        std::to_string(total_entries));
  }
  // Anything after the body other than comments/blank lines is an error.
  for (;;) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    if (IsCommentOrBlank(line)) continue;
    return Status::IOError(Where(path, line_no, 1) +
                           "unexpected content after the last adjacency "
                           "line");
  }
  return UGraph::FromEdges(static_cast<Index>(n), edges);
}

Status WriteMetisGraph(const UGraph& g, const std::string& path,
                       double weight_scale) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << g.NumVertices() << ' ' << g.NumEdges() << " 001\n";
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const double scaled = vals[i] * weight_scale;
      const int64_t w = std::llround(scaled);
      if (!std::isfinite(scaled) || w < 1) {
        return Status::InvalidArgument(
            path + ": edge (" + std::to_string(u) + "," +
            std::to_string(cols[i]) + ") weight " + std::to_string(vals[i]) +
            " rounds to " + std::to_string(w) + " under weight_scale " +
            std::to_string(weight_scale) +
            "; METIS requires positive integer weights — increase "
            "weight_scale");
      }
      out << (cols[i] + 1) << ' ' << w;
      out << (i + 1 < cols.size() ? ' ' : '\n');
    }
    if (cols.empty()) out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<GroundTruth> ReadGroundTruth(const std::string& path,
                                    Index num_vertices,
                                    const IoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  const int64_t category_cap = std::min(limits.max_categories, kIndexCap);
  GroundTruth truth;
  std::string line;
  int64_t line_no = 0;
  for (;;) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    if (IsCommentOrBlank(line)) continue;

    TokenCursor cursor{std::string_view(line)};
    std::string_view token;
    int64_t col = 0;
    if (!cursor.Next(&token, &col)) {
      return Status::IOError(Where(path, line_no, 1) +
                             "expected 'vertex cat1 [cat2 ...]'");
    }
    int64_t vertex = 0;
    DGC_RETURN_IF_ERROR(
        ParseInt64(path, line_no, col, token, "vertex id", &vertex));
    if (vertex < 0 || vertex >= static_cast<int64_t>(num_vertices)) {
      return Status::OutOfRange(Where(path, line_no, col) + "vertex id " +
                                std::to_string(vertex) + " out of [0," +
                                std::to_string(num_vertices) + ")");
    }
    bool any_category = false;
    while (cursor.Next(&token, &col)) {
      int64_t cat = 0;
      DGC_RETURN_IF_ERROR(
          ParseInt64(path, line_no, col, token, "category id", &cat));
      if (cat < 0) {
        return Status::OutOfRange(Where(path, line_no, col) +
                                  "negative category id " +
                                  std::to_string(cat));
      }
      if (cat >= category_cap) {
        // Bounded *before* the table is resized: a huge category id must not
        // translate into a huge allocation.
        return Status::OutOfRange(Where(path, line_no, col) + "category id " +
                                  std::to_string(cat) +
                                  " >= IoLimits.max_categories = " +
                                  std::to_string(category_cap));
      }
      if (truth.categories.size() <= static_cast<size_t>(cat)) {
        truth.categories.resize(static_cast<size_t>(cat) + 1);
      }
      truth.categories[static_cast<size_t>(cat)].push_back(
          static_cast<Index>(vertex));
      any_category = true;
    }
    if (!any_category) {
      return Status::IOError(Where(path, line_no, cursor.column()) +
                             "vertex " + std::to_string(vertex) +
                             " lists no category ids");
    }
  }
  for (auto& members : truth.categories) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }
  return truth;
}

Status WriteGroundTruth(const GroundTruth& truth, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  // Invert to vertex -> category lists for the line format.
  Index max_vertex = -1;
  for (const auto& members : truth.categories) {
    for (Index v : members) max_vertex = std::max(max_vertex, v);
  }
  std::vector<std::vector<Index>> per_vertex(
      static_cast<size_t>(max_vertex + 1));
  for (size_t c = 0; c < truth.categories.size(); ++c) {
    for (Index v : truth.categories[c]) {
      per_vertex[static_cast<size_t>(v)].push_back(static_cast<Index>(c));
    }
  }
  for (size_t v = 0; v < per_vertex.size(); ++v) {
    if (per_vertex[v].empty()) continue;
    out << v;
    for (Index c : per_vertex[v]) out << ' ' << c;
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Clustering> ReadClustering(const std::string& path,
                                  const IoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<Index> labels;
  std::string line;
  int64_t line_no = 0;
  for (;;) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) return LineTooLong(path, line_no, limits);
    if (IsCommentOrBlank(line)) continue;

    TokenCursor cursor{std::string_view(line)};
    std::string_view token;
    int64_t col = 0;
    cursor.Next(&token, &col);  // non-blank line: at least one token
    int64_t label = 0;
    DGC_RETURN_IF_ERROR(
        ParseInt64(path, line_no, col, token, "cluster label", &label));
    if (label < -1 || label >= kIndexCap) {
      return Status::OutOfRange(Where(path, line_no, col) +
                                "cluster label " + std::to_string(label) +
                                " out of [-1," + std::to_string(kIndexCap) +
                                ")");
    }
    if (!cursor.AtEnd()) {
      return Status::IOError(Where(path, line_no, cursor.column()) +
                             "unexpected trailing content after cluster "
                             "label");
    }
    if (static_cast<int64_t>(labels.size()) >=
        std::min(limits.max_vertices, kIndexCap)) {
      return Status::OutOfRange(
          Where(path, line_no, 1) + "label count exceeds "
          "IoLimits.max_vertices = " +
          std::to_string(std::min(limits.max_vertices, kIndexCap)));
    }
    labels.push_back(static_cast<Index>(label));
  }
  return Clustering(std::move(labels));
}

Status WriteClustering(const Clustering& clustering,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (Index label : clustering.labels()) out << label << '\n';
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace dgc
