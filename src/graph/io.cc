#include "graph/io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace dgc {

namespace {

bool IsCommentOrBlank(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

}  // namespace

Result<Digraph> ReadEdgeList(const std::string& path, Index num_vertices) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<Edge> edges;
  Index max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    int64_t src, dst;
    double w = 1.0;
    if (!(ss >> src >> dst)) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": expected 'src dst [weight]'");
    }
    ss >> w;
    if (src < 0 || dst < 0) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": negative vertex id");
    }
    edges.push_back(Edge{static_cast<Index>(src), static_cast<Index>(dst),
                         static_cast<Scalar>(w)});
    max_id = std::max<Index>(max_id,
                             static_cast<Index>(std::max(src, dst)));
  }
  const Index n = num_vertices > 0 ? num_vertices : max_id + 1;
  if (max_id >= n) {
    return Status::OutOfRange("vertex id " + std::to_string(max_id) +
                              " >= declared num_vertices " +
                              std::to_string(n));
  }
  return Digraph::FromEdges(n, edges);
}

Status WriteEdgeList(const Digraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# directed edge list: src dst weight\n";
  out << "# vertices=" << g.NumVertices() << " edges=" << g.NumEdges()
      << "\n";
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      out << u << ' ' << cols[i] << ' ' << vals[i] << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<UGraph> ReadMetisGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  // Header.
  int64_t n = 0, m = 0;
  std::string fmt = "0";
  while (std::getline(in, line)) {
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    if (!(ss >> n >> m)) {
      return Status::IOError(path + ": malformed METIS header");
    }
    ss >> fmt;
    break;
  }
  const bool has_edge_weights = fmt.size() >= 1 && fmt.back() == '1';
  std::vector<std::tuple<Index, Index, Scalar>> edges;
  edges.reserve(static_cast<size_t>(m));
  Index u = 0;
  while (u < n && std::getline(in, line)) {
    if (!line.empty() && (line[0] == '%' || line[0] == '#')) continue;
    std::istringstream ss(line);
    int64_t v;
    while (ss >> v) {
      double w = 1.0;
      if (has_edge_weights && !(ss >> w)) {
        return Status::IOError(path + ": missing edge weight for vertex " +
                               std::to_string(u + 1));
      }
      if (v < 1 || v > n) {
        return Status::OutOfRange(path + ": neighbor id " +
                                  std::to_string(v) + " out of [1," +
                                  std::to_string(n) + "]");
      }
      const Index nb = static_cast<Index>(v - 1);
      if (u < nb) {  // store each undirected edge once
        edges.emplace_back(u, nb, static_cast<Scalar>(w));
      }
    }
    ++u;
  }
  if (u != n) {
    return Status::IOError(path + ": expected " + std::to_string(n) +
                           " adjacency lines, got " + std::to_string(u));
  }
  return UGraph::FromEdges(static_cast<Index>(n), edges);
}

Status WriteMetisGraph(const UGraph& g, const std::string& path,
                       double weight_scale) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << g.NumVertices() << ' ' << g.NumEdges() << " 001\n";
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      const int64_t w = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(vals[i] * weight_scale)));
      out << (cols[i] + 1) << ' ' << w;
      out << (i + 1 < cols.size() ? ' ' : '\n');
    }
    if (cols.empty()) out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<GroundTruth> ReadGroundTruth(const std::string& path,
                                    Index num_vertices) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  GroundTruth truth;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ss(line);
    int64_t vertex;
    if (!(ss >> vertex)) {
      return Status::IOError(path + ":" + std::to_string(line_no) +
                             ": expected 'vertex cat...'");
    }
    if (vertex < 0 || vertex >= num_vertices) {
      return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                ": vertex id out of range");
    }
    int64_t cat;
    while (ss >> cat) {
      if (cat < 0) {
        return Status::OutOfRange(path + ":" + std::to_string(line_no) +
                                  ": negative category id");
      }
      if (truth.categories.size() <= static_cast<size_t>(cat)) {
        truth.categories.resize(static_cast<size_t>(cat) + 1);
      }
      truth.categories[static_cast<size_t>(cat)].push_back(
          static_cast<Index>(vertex));
    }
  }
  for (auto& members : truth.categories) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }
  return truth;
}

Status WriteGroundTruth(const GroundTruth& truth, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  // Invert to vertex -> category lists for the line format.
  Index max_vertex = -1;
  for (const auto& members : truth.categories) {
    for (Index v : members) max_vertex = std::max(max_vertex, v);
  }
  std::vector<std::vector<Index>> per_vertex(
      static_cast<size_t>(max_vertex + 1));
  for (size_t c = 0; c < truth.categories.size(); ++c) {
    for (Index v : truth.categories[c]) {
      per_vertex[static_cast<size_t>(v)].push_back(static_cast<Index>(c));
    }
  }
  for (size_t v = 0; v < per_vertex.size(); ++v) {
    if (per_vertex[v].empty()) continue;
    out << v;
    for (Index c : per_vertex[v]) out << ' ' << c;
    out << '\n';
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Clustering> ReadClustering(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<Index> labels;
  std::string line;
  while (std::getline(in, line)) {
    if (IsCommentOrBlank(line)) continue;
    labels.push_back(static_cast<Index>(std::strtol(line.c_str(), nullptr,
                                                    10)));
  }
  return Clustering(std::move(labels));
}

Status WriteClustering(const Clustering& clustering,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (Index label : clustering.labels()) out << label << '\n';
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace dgc
