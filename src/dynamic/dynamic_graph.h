// DynamicGraph: a directed graph that maintains the CSR pair (A, Aᵀ) under
// atomic EdgeDeltaBatch updates (docs/DYNAMIC.md).
//
// CsrMatrix has an immutable sparsity structure, so "applying" a batch is a
// validated merge-rebuild of the index arrays: each batch costs O(nnz + k)
// regardless of how the kernels downstream consume it. The transpose is
// rebuilt by the same merge with the edge roles swapped, which keeps it
// bit-identical to `adjacency().Transpose()` without paying a second
// counting pass.
#pragma once

#include <cstdint>

#include "dynamic/delta.h"
#include "graph/digraph.h"
#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

/// \brief CSR pair (A, Aᵀ) under atomic insert/delete batches.
///
/// Apply is all-or-nothing: the batch is validated (batch-local rules via
/// EdgeDeltaBatch::Validate, then graph-dependent rules — an insert must
/// name a missing edge, a delete an existing one) before any state
/// changes, so a failed Apply leaves the graph untouched.
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Seeds the dynamic state from a static graph.
  static Result<DynamicGraph> FromDigraph(const Digraph& g);

  /// Applies one batch atomically. Returns kInvalidArgument (and changes
  /// nothing) if the batch fails batch-local validation, inserts an edge
  /// that already exists, or deletes an edge that does not.
  Status Apply(const EdgeDeltaBatch& batch);

  const CsrMatrix& adjacency() const { return a_; }
  const CsrMatrix& transpose() const { return at_; }
  Index NumVertices() const { return a_.rows(); }
  Offset NumEdges() const { return a_.nnz(); }

  /// Number of batches applied since construction.
  int64_t batches_applied() const { return batches_applied_; }

  /// Snapshot of the current state as a static Digraph (copies A).
  Result<Digraph> ToDigraph() const { return Digraph::FromAdjacency(a_); }

  /// True if the stored edge (src, dst) exists.
  bool HasEdge(Index src, Index dst) const;

 private:
  CsrMatrix a_;
  CsrMatrix at_;
  int64_t batches_applied_ = 0;
};

}  // namespace dgc
