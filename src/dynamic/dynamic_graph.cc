#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace dgc {
namespace {

std::string EdgeLabel(Index src, Index dst) {
  std::string out = "(";
  out += std::to_string(src);
  out += " -> ";
  out += std::to_string(dst);
  out += ")";
  return out;
}

bool RowHasColumn(const CsrMatrix& m, Index row, Index col) {
  const auto cols = m.RowCols(row);
  return std::binary_search(cols.begin(), cols.end(), col);
}

/// One delta op in the orientation of the matrix being rebuilt: `col` is the
/// stored column for `row`, `weight` is meaningful only for inserts.
struct RowOp {
  Index row = 0;
  Index col = 0;
  Scalar weight = 0.0;
  bool insert = false;

  friend bool operator<(const RowOp& a, const RowOp& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  }
};

/// Merge-rebuilds `m` applying the (sorted, validated, conflict-free) ops.
/// Inserts splice a new entry into the row's sorted column list; deletes
/// remove the matched entry. O(nnz + ops).
CsrMatrix RebuildWithOps(const CsrMatrix& m, const std::vector<RowOp>& ops,
                         int64_t insert_count, const char* context) {
  const Index n_rows = m.rows();
  const Offset new_nnz = m.nnz() + insert_count -
                         (static_cast<Offset>(ops.size()) - insert_count);
  std::vector<Offset> row_ptr(static_cast<size_t>(n_rows) + 1, 0);
  std::vector<Index> col_idx(static_cast<size_t>(new_nnz));
  std::vector<Scalar> values(static_cast<size_t>(new_nnz));

  size_t op = 0;
  Offset out = 0;
  for (Index r = 0; r < n_rows; ++r) {
    const auto cols = m.RowCols(r);
    const auto vals = m.RowValues(r);
    size_t j = 0;
    while (j < cols.size() || (op < ops.size() && ops[op].row == r)) {
      const bool op_here = op < ops.size() && ops[op].row == r;
      if (op_here && ops[op].insert &&
          (j == cols.size() || ops[op].col < cols[j])) {
        col_idx[static_cast<size_t>(out)] = ops[op].col;
        values[static_cast<size_t>(out)] = ops[op].weight;
        ++out;
        ++op;
        continue;
      }
      DGC_DCHECK(j < cols.size());
      if (op_here && !ops[op].insert && ops[op].col == cols[j]) {
        ++op;  // delete: skip the stored entry
        ++j;
        continue;
      }
      col_idx[static_cast<size_t>(out)] = cols[j];
      values[static_cast<size_t>(out)] = vals[j];
      ++out;
      ++j;
    }
    row_ptr[static_cast<size_t>(r) + 1] = out;
  }
  DGC_DCHECK(out == new_nnz);
  DGC_DCHECK(op == ops.size());

  CsrMatrix rebuilt = CsrMatrix::FromPartsUnchecked(
      n_rows, m.cols(), std::move(row_ptr), std::move(col_idx),
      std::move(values));
  rebuilt.ValidateStructure(context);
  return rebuilt;
}

}  // namespace

Result<DynamicGraph> DynamicGraph::FromDigraph(const Digraph& g) {
  if (g.NumVertices() <= 0) {
    return Status::InvalidArgument(
        "DynamicGraph requires a graph with at least one vertex");
  }
  DynamicGraph d;
  d.a_ = g.adjacency();
  d.at_ = d.a_.Transpose();
  return d;
}

bool DynamicGraph::HasEdge(Index src, Index dst) const {
  if (src < 0 || src >= a_.rows() || dst < 0 || dst >= a_.cols()) return false;
  return RowHasColumn(a_, src, dst);
}

Status DynamicGraph::Apply(const EdgeDeltaBatch& batch) {
  DGC_RETURN_IF_ERROR(batch.Validate(NumVertices()));

  // Graph-dependent validation, before any state changes.
  for (const Edge& e : batch.inserts) {
    if (RowHasColumn(a_, e.src, e.dst)) {
      return Status::InvalidArgument("insert of existing edge " +
                                     EdgeLabel(e.src, e.dst));
    }
  }
  for (const EdgeKey& e : batch.deletes) {
    if (!RowHasColumn(a_, e.src, e.dst)) {
      return Status::InvalidArgument("delete of nonexistent edge " +
                                     EdgeLabel(e.src, e.dst));
    }
  }

  if (batch.empty()) {
    ++batches_applied_;
    return Status::OK();
  }

  std::vector<RowOp> fwd;
  std::vector<RowOp> rev;
  fwd.reserve(static_cast<size_t>(batch.size()));
  rev.reserve(static_cast<size_t>(batch.size()));
  for (const Edge& e : batch.inserts) {
    fwd.push_back(RowOp{e.src, e.dst, e.weight, /*insert=*/true});
    rev.push_back(RowOp{e.dst, e.src, e.weight, /*insert=*/true});
  }
  for (const EdgeKey& e : batch.deletes) {
    fwd.push_back(RowOp{e.src, e.dst, 0.0, /*insert=*/false});
    rev.push_back(RowOp{e.dst, e.src, 0.0, /*insert=*/false});
  }
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());

  const auto insert_count = static_cast<int64_t>(batch.inserts.size());
  a_ = RebuildWithOps(a_, fwd, insert_count, "DynamicGraph::Apply(A)");
  at_ = RebuildWithOps(at_, rev, insert_count, "DynamicGraph::Apply(At)");
  ++batches_applied_;
  return Status::OK();
}

}  // namespace dgc
