#include "dynamic/incremental.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "core/discount.h"
#include "linalg/spgemm.h"
#include "util/logging.h"

namespace dgc {
namespace {

/// result = base ∪ (∪_{s ∈ seeds} m.RowCols(s)), sorted unique. The sparse
/// frontier pass of the affected-row derivation: with m = Aᵀ this is "base
/// plus every in-neighbor of a seed", with m = A "plus every out-neighbor".
std::vector<Index> UnionWithNeighbors(std::span<const Index> base,
                                      std::span<const Index> seeds,
                                      const CsrMatrix& m,
                                      std::vector<char>& mark) {
  std::vector<Index> out;
  out.reserve(base.size());
  for (Index v : base) {
    if (!mark[static_cast<size_t>(v)]) {
      mark[static_cast<size_t>(v)] = 1;
      out.push_back(v);
    }
  }
  for (Index s : seeds) {
    for (Index c : m.RowCols(s)) {
      if (!mark[static_cast<size_t>(c)]) {
        mark[static_cast<size_t>(c)] = 1;
        out.push_back(c);
      }
    }
  }
  for (Index v : out) mark[static_cast<size_t>(v)] = 0;  // reset for reuse
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Index> SortedUnion(std::span<const Index> a,
                               std::span<const Index> b) {
  std::vector<Index> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Sorted unique sources and destinations of all batch operations (inserts
/// AND deletes — a deleted edge's endpoints are delta endpoints too).
void CollectEndpoints(const EdgeDeltaBatch& batch,
                      std::vector<Index>* sources,
                      std::vector<Index>* dests) {
  sources->clear();
  dests->clear();
  for (const Edge& e : batch.inserts) {
    sources->push_back(e.src);
    dests->push_back(e.dst);
  }
  for (const EdgeKey& e : batch.deletes) {
    sources->push_back(e.src);
    dests->push_back(e.dst);
  }
  std::sort(sources->begin(), sources->end());
  sources->erase(std::unique(sources->begin(), sources->end()),
                 sources->end());
  std::sort(dests->begin(), dests->end());
  dests->erase(std::unique(dests->begin(), dests->end()), dests->end());
}

}  // namespace

Result<IncrementalSymmetrizer> IncrementalSymmetrizer::Create(
    const Digraph& g, SymmetrizationMethod method,
    const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  IncrementalSymmetrizer s;
  s.method_ = method;
  // Normalize to the plain fused in-memory path; every engine is
  // bit-identical (the determinism contract), so the maintained result
  // still matches a from-scratch run under any engine/reorder/tiling
  // setting. metrics/cancel are per-call concerns that must not outlive a
  // request into this long-lived object.
  s.options_ = options;
  s.options_.engine = SimilarityEngine::kFused;
  s.options_.reorder = ReorderMethod::kNone;
  s.options_.out_of_core = OutOfCoreMode::kOff;
  s.options_.metrics = nullptr;
  s.options_.cancel = nullptr;
  s.options_.max_memory_bytes = 0;
  s.options_.tile_rows = 0;
  s.options_.spill_dir.clear();
  DGC_ASSIGN_OR_RETURN(s.graph_, DynamicGraph::FromDigraph(g));
  DGC_RETURN_IF_ERROR(s.RecomputeAll());
  const Index n = s.graph_.NumVertices();
  s.stats_ = IncrementalStats{n, n};
  s.last_affected_.resize(static_cast<size_t>(n));
  std::iota(s.last_affected_.begin(), s.last_affected_.end(), Index{0});
  return s;
}

Status IncrementalSymmetrizer::RecomputeAll() {
  DGC_ASSIGN_OR_RETURN(Digraph d, graph_.ToDigraph());
  switch (method_) {
    case SymmetrizationMethod::kAPlusAT: {
      DGC_ASSIGN_OR_RETURN(result_, SymmetrizeAPlusAT(d, options_));
      return Status::OK();
    }
    case SymmetrizationMethod::kRandomWalk: {
      DGC_ASSIGN_OR_RETURN(result_, SymmetrizeRandomWalk(d, options_));
      return Status::OK();
    }
    case SymmetrizationMethod::kBibliometric:
    case SymmetrizationMethod::kDegreeDiscounted:
      break;
  }

  // Similarity methods: replicate the fused recipe while keeping both
  // upper triangles for later splicing. The exact call sequence mirrors
  // BibliometricFused / DegreeDiscountedFused, so the triangles — and the
  // summed, mirrored result — are bit-identical to Symmetrize().
  CsrMatrix a_store;
  CsrMatrix at_store;
  const CsrMatrix* a = &graph_.adjacency();
  const CsrMatrix* at = &graph_.transpose();
  if (options_.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a_store, graph_.adjacency().PlusIdentity());
    at_store = a_store.Transpose(options_.num_threads);
    a = &a_store;
    at = &at_store;
  }

  SpGemmOptions product_options;
  product_options.threshold = options_.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options_.num_threads;

  if (method_ == SymmetrizationMethod::kDegreeDiscounted) {
    const std::vector<Offset> out_deg = a->RowCounts();
    const std::vector<Offset> in_deg = a->ColCounts();
    const std::vector<Scalar> so =
        DiscountFactors(out_deg, options_.out_discount);
    const std::vector<Scalar> si =
        DiscountFactors(in_deg, options_.in_discount);
    const std::vector<Scalar> sqrt_so = Sqrt(so);
    const std::vector<Scalar> sqrt_si = Sqrt(si);
    DGC_ASSIGN_OR_RETURN(
        b_upper_, SpGemmAAtSymmetric(*a, so, sqrt_si, product_options, at));
    DGC_ASSIGN_OR_RETURN(
        c_upper_, SpGemmAAtSymmetric(*at, si, sqrt_so, product_options, a));
  } else {
    DGC_ASSIGN_OR_RETURN(
        b_upper_, SpGemmAAtSymmetric(*a, {}, {}, product_options, at));
    DGC_ASSIGN_OR_RETURN(
        c_upper_, SpGemmAAtSymmetric(*at, {}, {}, product_options, a));
  }

  SpGemmOptions sum_options;
  sum_options.threshold = options_.prune_threshold;
  sum_options.drop_diagonal = true;
  sum_options.num_threads = options_.num_threads;
  DGC_ASSIGN_OR_RETURN(CsrMatrix u,
                       SpGemmSymmetricSum(b_upper_, c_upper_, sum_options));
  u.ValidateStructure("IncrementalSymmetrizer::RecomputeAll");
  DGC_ASSIGN_OR_RETURN(result_,
                       UGraph::FromSymmetricAdjacency(
                           std::move(u), /*drop_self_loops=*/true));
  return Status::OK();
}

Status IncrementalSymmetrizer::ApplyDelta(const EdgeDeltaBatch& batch) {
  const Index n = graph_.NumVertices();
  if (batch.empty()) {
    // Exact no-op: nothing validated against the graph changes, nothing is
    // recomputed, the cached result keeps its bytes.
    DGC_RETURN_IF_ERROR(batch.Validate(n));
    stats_ = IncrementalStats{0, n};
    last_affected_.clear();
    return Status::OK();
  }
  DGC_RETURN_IF_ERROR(graph_.Apply(batch));
  switch (method_) {
    case SymmetrizationMethod::kAPlusAT:
      return ApplyAPlusAtDelta(batch);
    case SymmetrizationMethod::kRandomWalk: {
      // π couples every row to every edge; claiming locality here would be
      // wrong, so the update is an honest full recompute.
      DGC_RETURN_IF_ERROR(RecomputeAll());
      stats_ = IncrementalStats{n, n};
      last_affected_.resize(static_cast<size_t>(n));
      std::iota(last_affected_.begin(), last_affected_.end(), Index{0});
      return Status::OK();
    }
    case SymmetrizationMethod::kBibliometric:
    case SymmetrizationMethod::kDegreeDiscounted:
      return ApplySimilarityDelta(batch);
  }
  return Status::Internal("unreachable symmetrization method");
}

Status IncrementalSymmetrizer::ApplyAPlusAtDelta(const EdgeDeltaBatch& batch) {
  const Index n = graph_.NumVertices();
  std::vector<Index> sources;
  std::vector<Index> dests;
  CollectEndpoints(batch, &sources, &dests);
  const std::vector<Index> touched = SortedUnion(sources, dests);

  // Row r of U = drop_diag(A + Aᵀ) is a pure function of A row r and Aᵀ
  // row r, so it changes only for r ∈ S ∪ T. Recompute those rows with the
  // exact CsrMatrix::Add merge (a-operand first on ties) minus the
  // diagonal, then splice.
  const CsrMatrix& a = graph_.adjacency();
  const CsrMatrix& at = graph_.transpose();
  const CsrMatrix& base = result_.adjacency();
  std::vector<Offset> patch_nnz;
  std::vector<Index> patch_cols;
  std::vector<Scalar> patch_vals;
  patch_nnz.reserve(touched.size());
  for (Index r : touched) {
    const size_t before = patch_cols.size();
    auto ac = a.RowCols(r);
    auto av = a.RowValues(r);
    auto tc = at.RowCols(r);
    auto tv = at.RowValues(r);
    size_t i = 0, j = 0;
    while (i < ac.size() || j < tc.size()) {
      Index col;
      Scalar v;
      if (j >= tc.size() || (i < ac.size() && ac[i] < tc[j])) {
        col = ac[i];
        v = av[i];
        ++i;
      } else if (i >= ac.size() || tc[j] < ac[i]) {
        col = tc[j];
        v = tv[j];
        ++j;
      } else {
        col = ac[i];
        v = av[i] + tv[j];
        ++i;
        ++j;
      }
      if (col == r) continue;  // FromSymmetricAdjacency drops self-loops
      patch_cols.push_back(col);
      patch_vals.push_back(v);
    }
    patch_nnz.push_back(static_cast<Offset>(patch_cols.size() - before));
  }

  // Serial splice of the patched rows into the cached adjacency.
  std::vector<Offset> row_ptr(static_cast<size_t>(n) + 1, 0);
  size_t next = 0;
  for (Index r = 0; r < n; ++r) {
    const bool patched = next < touched.size() && touched[next] == r;
    const Offset nnz_r =
        patched ? patch_nnz[next++] : base.RowNnz(r);
    row_ptr[static_cast<size_t>(r) + 1] = row_ptr[static_cast<size_t>(r)] +
                                          nnz_r;
  }
  std::vector<Index> col_idx(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> values(static_cast<size_t>(row_ptr.back()));
  next = 0;
  Offset patch_at = 0;
  for (Index r = 0; r < n; ++r) {
    const Offset dst = row_ptr[static_cast<size_t>(r)];
    if (next < touched.size() && touched[next] == r) {
      const Offset k = patch_nnz[next];
      std::copy_n(patch_cols.begin() + static_cast<long>(patch_at), k,
                  col_idx.begin() + static_cast<long>(dst));
      std::copy_n(patch_vals.begin() + static_cast<long>(patch_at), k,
                  values.begin() + static_cast<long>(dst));
      patch_at += k;
      ++next;
    } else {
      auto cols = base.RowCols(r);
      auto vals = base.RowValues(r);
      std::copy_n(cols.begin(), cols.size(),
                  col_idx.begin() + static_cast<long>(dst));
      std::copy_n(vals.begin(), vals.size(),
                  values.begin() + static_cast<long>(dst));
    }
  }
  CsrMatrix spliced = CsrMatrix::FromPartsUnchecked(
      n, n, std::move(row_ptr), std::move(col_idx), std::move(values));
  spliced.ValidateStructure("IncrementalSymmetrizer::ApplyAPlusAtDelta");
  DGC_ASSIGN_OR_RETURN(result_,
                       UGraph::FromSymmetricAdjacency(
                           std::move(spliced), /*drop_self_loops=*/true));
  stats_ = IncrementalStats{static_cast<Index>(touched.size()), n};
  last_affected_ = touched;
  return Status::OK();
}

Status IncrementalSymmetrizer::ApplySimilarityDelta(
    const EdgeDeltaBatch& batch) {
  const Index n = graph_.NumVertices();
  CsrMatrix a_store;
  CsrMatrix at_store;
  const CsrMatrix* a = &graph_.adjacency();
  const CsrMatrix* at = &graph_.transpose();
  if (options_.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a_store, graph_.adjacency().PlusIdentity());
    at_store = a_store.Transpose(options_.num_threads);
    a = &a_store;
    at = &at_store;
  }

  // Affected-row derivation (docs/DYNAMIC.md). Frontiers run over the
  // UPDATED graph: an old-only neighbor reached through a deleted edge is
  // that edge's endpoint, hence already in S or T. With add_self_loops the
  // frontiers use A+I, whose diagonal adds each seed to its own
  // neighborhood — a harmless superset.
  std::vector<Index> sources;
  std::vector<Index> dests;
  CollectEndpoints(batch, &sources, &dests);
  std::vector<char> mark(static_cast<size_t>(n), 0);
  // P = S ∪ in(T): coupling rows whose factor row changed. Q = T ∪ out(S):
  // the co-citation mirror image.
  const std::vector<Index> p = UnionWithNeighbors(sources, dests, *at, mark);
  const std::vector<Index> q = UnionWithNeighbors(dests, sources, *a, mark);
  std::vector<Index> aff_b = p;
  std::vector<Index> aff_c = q;
  if (method_ == SymmetrizationMethod::kDegreeDiscounted) {
    // Discount factors change on S (out-degree) and T (in-degree), so a
    // coupling row is also affected when any of its product terms crosses
    // a column whose factor row changed — one more frontier hop.
    aff_b = UnionWithNeighbors(p, q, *at, mark);
    aff_c = UnionWithNeighbors(q, p, *a, mark);
  }

  SpGemmOptions product_options;
  product_options.threshold = options_.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options_.num_threads;

  if (method_ == SymmetrizationMethod::kDegreeDiscounted) {
    const std::vector<Offset> out_deg = a->RowCounts();
    const std::vector<Offset> in_deg = a->ColCounts();
    const std::vector<Scalar> so =
        DiscountFactors(out_deg, options_.out_discount);
    const std::vector<Scalar> si =
        DiscountFactors(in_deg, options_.in_discount);
    const std::vector<Scalar> sqrt_so = Sqrt(so);
    const std::vector<Scalar> sqrt_si = Sqrt(si);
    DGC_ASSIGN_OR_RETURN(
        b_upper_, SpGemmAAtSymmetricUpdateRows(*a, so, sqrt_si,
                                               product_options, *at, aff_b,
                                               b_upper_));
    DGC_ASSIGN_OR_RETURN(
        c_upper_, SpGemmAAtSymmetricUpdateRows(*at, si, sqrt_so,
                                               product_options, *a, aff_c,
                                               c_upper_));
  } else {
    DGC_ASSIGN_OR_RETURN(
        b_upper_, SpGemmAAtSymmetricUpdateRows(*a, {}, {}, product_options,
                                               *at, aff_b, b_upper_));
    DGC_ASSIGN_OR_RETURN(
        c_upper_, SpGemmAAtSymmetricUpdateRows(*at, {}, {}, product_options,
                                               *a, aff_c, c_upper_));
  }

  SpGemmOptions sum_options;
  sum_options.threshold = options_.prune_threshold;
  sum_options.drop_diagonal = true;
  sum_options.num_threads = options_.num_threads;
  DGC_ASSIGN_OR_RETURN(CsrMatrix u,
                       SpGemmSymmetricSum(b_upper_, c_upper_, sum_options));
  u.ValidateStructure("IncrementalSymmetrizer::ApplySimilarityDelta");
  DGC_ASSIGN_OR_RETURN(result_,
                       UGraph::FromSymmetricAdjacency(
                           std::move(u), /*drop_self_loops=*/true));
  last_affected_ = SortedUnion(aff_b, aff_c);
  stats_ = IncrementalStats{static_cast<Index>(last_affected_.size()), n};
  return Status::OK();
}

}  // namespace dgc
