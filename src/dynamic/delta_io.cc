#include "dynamic/delta_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string_view>
#include <system_error>
#include <utility>

namespace dgc {
namespace {

// Mirrors the bounded scanner in src/graph/io.cc (those helpers live in its
// anonymous namespace on purpose — each reader owns its hardening locally).

bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

bool IsCommentOrBlank(std::string_view line) {
  for (char c : line) {
    if (IsSpaceChar(c)) continue;
    return c == '#' || c == '%';
  }
  return true;  // blank
}

enum class LineRead { kLine, kEof, kTooLong };

LineRead ReadLineBounded(std::istream& in, int64_t max_bytes,
                         std::string* out) {
  out->clear();
  char buf[4096];
  for (;;) {
    in.get(buf, sizeof(buf), '\n');
    const std::streamsize got = in.gcount();
    if (got > 0) out->append(buf, static_cast<size_t>(got));
    if (static_cast<int64_t>(out->size()) > max_bytes) {
      return LineRead::kTooLong;
    }
    if (in.eof()) return out->empty() ? LineRead::kEof : LineRead::kLine;
    if (in.fail()) in.clear();
    const int next = in.peek();
    if (next == '\n') {
      in.get();
      return LineRead::kLine;
    }
    if (next == std::char_traits<char>::eof()) {
      return out->empty() ? LineRead::kEof : LineRead::kLine;
    }
  }
}

class TokenCursor {
 public:
  explicit TokenCursor(std::string_view line) : line_(line) {}

  bool Next(std::string_view* token, int64_t* column) {
    SkipSpace();
    if (pos_ >= line_.size()) return false;
    const size_t start = pos_;
    while (pos_ < line_.size() && !IsSpaceChar(line_[pos_])) ++pos_;
    *token = line_.substr(start, pos_ - start);
    *column = static_cast<int64_t>(start) + 1;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  int64_t column() {
    SkipSpace();
    return static_cast<int64_t>(pos_) + 1;
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() && IsSpaceChar(line_[pos_])) ++pos_;
  }

  std::string_view line_;
  size_t pos_ = 0;
};

std::string Where(const std::string& path, int64_t line, int64_t col) {
  return path + ":" + std::to_string(line) + ":" + std::to_string(col) + ": ";
}

std::string TokenPreview(std::string_view token) {
  std::string out;
  const size_t n = std::min<size_t>(token.size(), 24);
  out.reserve(n + 3);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    out.push_back(c >= 0x20 && c < 0x7f ? static_cast<char>(c) : '?');
  }
  if (token.size() > n) out += "...";
  return out;
}

Status ParseInt64(const std::string& path, int64_t line_no, int64_t col,
                  std::string_view token, const char* what, int64_t* out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(Where(path, line_no, col) + std::string(what) +
                              " '" + TokenPreview(token) +
                              "' overflows a 64-bit integer");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::IOError(Where(path, line_no, col) + "malformed " +
                           std::string(what) + " '" + TokenPreview(token) +
                           "'");
  }
  return Status::OK();
}

Status ParseWeight(const std::string& path, int64_t line_no, int64_t col,
                   std::string_view token, double* out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange(Where(path, line_no, col) + "weight '" +
                              TokenPreview(token) + "' is out of double range");
  }
  if (ec != std::errc() || ptr != last) {
    return Status::IOError(Where(path, line_no, col) + "malformed weight '" +
                           TokenPreview(token) + "'");
  }
  if (!std::isfinite(*out) || *out <= 0.0) {
    return Status::IOError(Where(path, line_no, col) +
                           "weight must be finite and positive, got '" +
                           TokenPreview(token) + "'");
  }
  return Status::OK();
}

constexpr int64_t kIndexCap = std::numeric_limits<Index>::max();

Status ParseVertex(const std::string& path, int64_t line_no, int64_t col,
                   std::string_view token, const char* what, int64_t id_cap,
                   Index* out) {
  int64_t id = 0;
  DGC_RETURN_IF_ERROR(ParseInt64(path, line_no, col, token, what, &id));
  if (id < 0) {
    return Status::IOError(Where(path, line_no, col) + "negative " +
                           std::string(what) + " " + std::to_string(id));
  }
  if (id >= id_cap) {
    return Status::OutOfRange(Where(path, line_no, col) + std::string(what) +
                              " " + std::to_string(id) + " outside [0, " +
                              std::to_string(id_cap) + ")");
  }
  *out = static_cast<Index>(id);
  return Status::OK();
}

}  // namespace

Result<std::vector<EdgeDeltaBatch>> ReadDeltaBatches(const std::string& path,
                                                     Index num_vertices,
                                                     const IoLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  if (num_vertices <= 0) {
    return Status::InvalidArgument(
        path + ": delta streams require a declared num_vertices > 0");
  }
  const int64_t id_cap =
      std::min(static_cast<int64_t>(num_vertices),
               std::min(limits.max_vertices, kIndexCap));

  std::vector<EdgeDeltaBatch> batches;
  EdgeDeltaBatch current;
  int64_t total_ops = 0;
  std::string line;
  int64_t line_no = 0;
  for (;;) {
    const LineRead read = ReadLineBounded(in, limits.max_line_bytes, &line);
    if (read == LineRead::kEof) break;
    ++line_no;
    if (read == LineRead::kTooLong) {
      return Status::OutOfRange(
          Where(path, line_no, limits.max_line_bytes + 1) +
          "line exceeds IoLimits.max_line_bytes = " +
          std::to_string(limits.max_line_bytes));
    }
    if (IsCommentOrBlank(line)) continue;

    TokenCursor cursor(line);
    std::string_view op;
    int64_t op_col = 0;
    cursor.Next(&op, &op_col);  // non-blank line: always succeeds
    if (op == "---") {
      if (!cursor.AtEnd()) {
        return Status::IOError(Where(path, line_no, cursor.column()) +
                               "trailing junk after batch separator");
      }
      if (!current.empty()) {
        batches.push_back(std::move(current));
        current = EdgeDeltaBatch{};
      }
      continue;
    }
    if (op != "+" && op != "-") {
      return Status::IOError(Where(path, line_no, op_col) +
                             "unknown delta op '" + TokenPreview(op) +
                             "' (expected '+', '-', or '---')");
    }
    if (total_ops >= limits.max_edges) {
      return Status::OutOfRange(
          Where(path, line_no, op_col) + "delta stream exceeds " +
          "IoLimits.max_edges = " + std::to_string(limits.max_edges) +
          " operations");
    }

    std::string_view token;
    int64_t col = 0;
    Index src = 0;
    Index dst = 0;
    if (!cursor.Next(&token, &col)) {
      return Status::IOError(Where(path, line_no, cursor.column()) +
                             "missing source vertex");
    }
    DGC_RETURN_IF_ERROR(
        ParseVertex(path, line_no, col, token, "source vertex", id_cap, &src));
    if (!cursor.Next(&token, &col)) {
      return Status::IOError(Where(path, line_no, cursor.column()) +
                             "missing destination vertex");
    }
    DGC_RETURN_IF_ERROR(ParseVertex(path, line_no, col, token,
                                    "destination vertex", id_cap, &dst));

    if (op == "+") {
      double weight = 1.0;
      if (cursor.Next(&token, &col)) {
        DGC_RETURN_IF_ERROR(ParseWeight(path, line_no, col, token, &weight));
      }
      if (!cursor.AtEnd()) {
        return Status::IOError(Where(path, line_no, cursor.column()) +
                               "trailing junk after insert");
      }
      current.inserts.push_back(Edge{src, dst, weight});
    } else {
      if (!cursor.AtEnd()) {
        return Status::IOError(Where(path, line_no, cursor.column()) +
                               "trailing junk after delete");
      }
      current.deletes.push_back(EdgeKey{src, dst});
    }
    ++total_ops;
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

}  // namespace dgc
