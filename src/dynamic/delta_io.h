// Text format for edge-delta streams (docs/DYNAMIC.md), parsed with the
// same hardening contract as src/graph/io.h: streaming bounded scan,
// std::from_chars tokenizing, file:line:column diagnostics, IoLimits
// enforced before any proportional allocation.
#pragma once

#include <string>
#include <vector>

#include "dynamic/delta.h"
#include "graph/io.h"
#include "util/result.h"

namespace dgc {

/// \brief Reads a delta stream: one operation per line, batches separated
/// by `---` lines.
///
///   + src dst [weight]   insert edge (weight defaults to 1)
///   - src dst            delete edge
///   ---                  end of batch
///   # or %               comment; blank lines are ignored
///
/// A trailing batch is flushed at end of file; separators that would
/// produce an empty batch are skipped, so the result contains only
/// non-empty batches in stream order. `num_vertices` bounds endpoint ids
/// (ids must lie in [0, num_vertices)); `limits.max_edges` caps the total
/// operation count across the file and `limits.max_line_bytes` each line.
/// Every malformed case — unknown op tag, negative/overflowing ids,
/// non-finite or non-positive weights, trailing junk — returns a
/// structured Status with a path:line:column diagnostic, never a crash.
/// Batch-level semantic validation (duplicates, insert/delete conflicts)
/// is deferred to EdgeDeltaBatch::Validate at apply time.
Result<std::vector<EdgeDeltaBatch>> ReadDeltaBatches(
    const std::string& path, Index num_vertices, const IoLimits& limits = {});

}  // namespace dgc
