#include "dynamic/delta.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

namespace dgc {
namespace {

std::string EdgeLabel(Index src, Index dst) {
  std::string out = "(";
  out += std::to_string(src);
  out += " -> ";
  out += std::to_string(dst);
  out += ")";
  return out;
}

Status CheckEndpoint(const char* what, int64_t op, Index vertex,
                     Index num_vertices) {
  if (vertex < 0 || vertex >= num_vertices) {
    return Status::InvalidArgument(
        std::string("delta ") + what + " #" + std::to_string(op) +
        ": vertex " + std::to_string(vertex) + " outside [0, " +
        std::to_string(num_vertices) + ")");
  }
  return Status::OK();
}

uint64_t Fnv1a64(uint64_t hash, const void* data, size_t len) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

}  // namespace

Status EdgeDeltaBatch::Validate(Index num_vertices) const {
  for (size_t i = 0; i < inserts.size(); ++i) {
    const Edge& e = inserts[i];
    DGC_RETURN_IF_ERROR(
        CheckEndpoint("insert", static_cast<int64_t>(i), e.src, num_vertices));
    DGC_RETURN_IF_ERROR(
        CheckEndpoint("insert", static_cast<int64_t>(i), e.dst, num_vertices));
    if (!std::isfinite(e.weight) || e.weight <= 0.0) {
      return Status::InvalidArgument(
          "delta insert #" + std::to_string(i) + " " +
          EdgeLabel(e.src, e.dst) + ": weight must be finite and positive");
    }
  }
  for (size_t i = 0; i < deletes.size(); ++i) {
    const EdgeKey& e = deletes[i];
    DGC_RETURN_IF_ERROR(
        CheckEndpoint("delete", static_cast<int64_t>(i), e.src, num_vertices));
    DGC_RETURN_IF_ERROR(
        CheckEndpoint("delete", static_cast<int64_t>(i), e.dst, num_vertices));
  }

  std::vector<EdgeKey> ins_keys;
  ins_keys.reserve(inserts.size());
  for (const Edge& e : inserts) ins_keys.push_back(EdgeKey{e.src, e.dst});
  std::sort(ins_keys.begin(), ins_keys.end());
  for (size_t i = 1; i < ins_keys.size(); ++i) {
    if (ins_keys[i] == ins_keys[i - 1]) {
      return Status::InvalidArgument(
          "duplicate insert of edge " +
          EdgeLabel(ins_keys[i].src, ins_keys[i].dst) + " in one batch");
    }
  }

  std::vector<EdgeKey> del_keys(deletes);
  std::sort(del_keys.begin(), del_keys.end());
  for (size_t i = 1; i < del_keys.size(); ++i) {
    if (del_keys[i] == del_keys[i - 1]) {
      return Status::InvalidArgument(
          "duplicate delete of edge " +
          EdgeLabel(del_keys[i].src, del_keys[i].dst) + " in one batch");
    }
  }

  for (const EdgeKey& key : ins_keys) {
    if (std::binary_search(del_keys.begin(), del_keys.end(), key)) {
      return Status::InvalidArgument(
          "edge " + EdgeLabel(key.src, key.dst) +
          " appears as both insert and delete in one batch");
    }
  }
  return Status::OK();
}

uint64_t DeltaBatchDigest(uint64_t chain, const EdgeDeltaBatch& batch) {
  // Hash a canonical serialization: op tag, endpoints, and (for inserts) the
  // raw weight bits, in submission order. Submission order is part of the
  // identity on purpose — the digest names the replayed stream, not the set.
  for (const Edge& e : batch.inserts) {
    const unsigned char tag = '+';
    chain = Fnv1a64(chain, &tag, 1);
    chain = Fnv1a64(chain, &e.src, sizeof(e.src));
    chain = Fnv1a64(chain, &e.dst, sizeof(e.dst));
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(e.weight));
    std::memcpy(&bits, &e.weight, sizeof(bits));
    chain = Fnv1a64(chain, &bits, sizeof(bits));
  }
  for (const EdgeKey& e : batch.deletes) {
    const unsigned char tag = '-';
    chain = Fnv1a64(chain, &tag, 1);
    chain = Fnv1a64(chain, &e.src, sizeof(e.src));
    chain = Fnv1a64(chain, &e.dst, sizeof(e.dst));
  }
  return chain;
}

}  // namespace dgc
