// Edge-stream deltas for dynamic directed graphs (docs/DYNAMIC.md).
//
// An EdgeDeltaBatch is the unit of change a streaming client submits: a set
// of edge inserts plus a set of edge deletes that apply atomically — either
// the whole batch lands or none of it does. Batch-local validation
// (Validate) rejects malformed batches before any graph state is touched;
// graph-dependent validation (insert of an existing edge, delete of a
// missing one) happens inside DynamicGraph::Apply, which is equally
// all-or-nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "linalg/types.h"
#include "util/status.h"

namespace dgc {

/// Identifies one directed edge in a delete request. Ordered so delete
/// lists can be sorted and binary-searched.
struct EdgeKey {
  Index src = 0;
  Index dst = 0;

  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
  friend auto operator<=>(const EdgeKey&, const EdgeKey&) = default;
};

/// \brief One atomic batch of edge inserts and deletes.
///
/// Semantics: an insert creates a new stored edge (src, dst, weight) — the
/// edge must not already exist; a delete removes a stored edge entirely —
/// it must exist. Updating a weight is a delete followed by an insert in
/// the NEXT batch (the same edge may not appear on both sides of one
/// batch). These strict semantics make every batch invertible and keep the
/// stream-vs-scratch differential test exact: the cumulative edge set after
/// any prefix of batches is unambiguous.
struct EdgeDeltaBatch {
  std::vector<Edge> inserts;
  std::vector<EdgeKey> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  /// Total number of operations in the batch.
  int64_t size() const {
    return static_cast<int64_t>(inserts.size()) +
           static_cast<int64_t>(deletes.size());
  }

  /// Batch-local validation against a graph of `num_vertices` vertices:
  /// every endpoint in [0, num_vertices), insert weights finite and > 0,
  /// no duplicate insert or delete of the same (src, dst), and no edge
  /// both inserted and deleted. Violations return kInvalidArgument naming
  /// the offending operation; the batch is not modified.
  Status Validate(Index num_vertices) const;
};

/// Chains a batch onto a running FNV-1a 64-bit digest (seeded with the base
/// graph's content hash in dgc_serve): the content-addressed cache key of
/// an updated graph is the base key plus this digest, so a replayed stream
/// of identical batches addresses the same entry and any divergence — one
/// different weight bit — addresses a different one.
uint64_t DeltaBatchDigest(uint64_t chain, const EdgeDeltaBatch& batch);

}  // namespace dgc
