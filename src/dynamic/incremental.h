// IncrementalSymmetrizer: maintains a symmetrized graph under edge-delta
// batches, recomputing only the affected rows of the fused similarity
// product (docs/DYNAMIC.md).
//
// Correctness contract (enforced by tests/incremental_diff_test.cc): after
// every ApplyDelta, symmetrized() is byte-identical — row_ptr, col_idx, and
// value bit patterns — to Symmetrize() run from scratch on the updated
// graph, for all four methods and any thread count. The affected-row sets
// are supersets of the rows that actually change (the property pinned by
// tests/delta_property_test.cc); unlisted rows keep their cached bytes
// because every row kernel is a pure function of (inputs, row, options).
#pragma once

#include <span>
#include <vector>

#include "core/symmetrize.h"
#include "dynamic/delta.h"
#include "dynamic/dynamic_graph.h"
#include "graph/ugraph.h"
#include "util/result.h"

namespace dgc {

/// Per-update accounting, exported through the serve counters
/// (serve.incremental.rows_recomputed / rows_total).
struct IncrementalStats {
  /// Rows of the symmetric product recomputed by the last ApplyDelta (for
  /// the similarity methods, |affected(B) ∪ affected(C)|; n for the
  /// random-walk full recompute; 0 for an empty batch).
  Index rows_recomputed = 0;
  /// Total rows of the symmetrized matrix.
  Index rows_total = 0;
};

/// \brief Stateful incremental engine for one (graph, method, options)
/// stream.
///
/// Affected-row derivation per method (full argument in docs/DYNAMIC.md;
/// S = delta sources, T = delta destinations, both inserts and deletes;
/// in(X)/out(X) = neighborhoods in the UPDATED graph):
///   A+Aᵀ          row r changes iff r ∈ S ∪ T.
///   Bibliometric  coupling rows S ∪ in(T); co-citation rows T ∪ out(S) —
///                 one sparse frontier pass over Aᵀ (resp. A).
///   Degree-disc.  discounts change on S (out-degree) and T (in-degree),
///                 widening each frontier by one hop: coupling rows
///                 P ∪ in(Q), co-citation rows Q ∪ out(P), with
///                 P = S ∪ in(T) and Q = T ∪ out(S).
///   Random walk   the stationary distribution π is global, so every row
///                 can change: honest full recompute (rows_recomputed = n).
///
/// The stored options are normalized to the plain fused in-memory path
/// (engine kFused, reorder kNone, out_of_core kOff) — all engines are
/// bit-identical by the determinism contract, so the maintained result
/// still matches a from-scratch run under the caller's original settings.
/// metrics/cancel are dropped: updates are row-sparse and short-lived, and
/// a per-request token must not dangle into a long-lived session (callers
/// wrap ApplyDelta in their own stage span — dgc_serve's "delta" span).
class IncrementalSymmetrizer {
 public:
  /// Seeds the stream with a full from-scratch symmetrization of `g`.
  static Result<IncrementalSymmetrizer> Create(
      const Digraph& g, SymmetrizationMethod method,
      const SymmetrizationOptions& options = {});

  /// Applies one batch atomically: validates it, updates (A, Aᵀ), computes
  /// the affected-row sets, recomputes only those rows of the cached upper
  /// triangles, and re-derives the symmetrized graph. On error the graph
  /// and cached result are unchanged. An empty batch is an exact no-op
  /// (rows_recomputed = 0).
  Status ApplyDelta(const EdgeDeltaBatch& batch);

  /// The maintained symmetrized graph (byte-identical to from-scratch).
  const UGraph& symmetrized() const { return result_; }
  const DynamicGraph& graph() const { return graph_; }
  SymmetrizationMethod method() const { return method_; }
  const SymmetrizationOptions& options() const { return options_; }
  const IncrementalStats& last_stats() const { return stats_; }

  /// Sorted union of the affected-row sets of the last ApplyDelta — a
  /// proven superset of the rows whose symmetrized values changed
  /// (tests/delta_property_test.cc). Also the warm-start re-seed set for
  /// RmclWarmStart. Empty after an empty batch.
  std::span<const Index> last_affected_rows() const { return last_affected_; }

 private:
  IncrementalSymmetrizer() = default;

  Status RecomputeAll();
  Status ApplyAPlusAtDelta(const EdgeDeltaBatch& batch);
  Status ApplySimilarityDelta(const EdgeDeltaBatch& batch);

  DynamicGraph graph_;
  SymmetrizationMethod method_ = SymmetrizationMethod::kAPlusAT;
  SymmetrizationOptions options_;
  UGraph result_;
  /// Similarity methods only: cached upper triangles of the coupling
  /// (B = M Mᵀ) and co-citation (C = Nᵀ N) products, spliced per delta.
  CsrMatrix b_upper_;
  CsrMatrix c_upper_;
  IncrementalStats stats_;
  std::vector<Index> last_affected_;
};

}  // namespace dgc
