#include "util/budget.h"

#include <string>

namespace dgc {

void CancelToken::Arm(const ResourceBudget& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  clock_.Restart();
  status_ = Status::OK();
  charged_bytes_.store(0, std::memory_order_relaxed);
  peak_charged_bytes_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_release);
}

bool CancelToken::Expired() {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  // Deadline poll: budget_.deadline_ms is only written under mu_ by Arm(),
  // which callers are required to sequence before handing the token to
  // workers, so reading it here without the lock is race-free in practice.
  if (budget_.deadline_ms > 0 &&
      clock_.ElapsedMillis() >= static_cast<double>(budget_.deadline_ms)) {
    Trip(Status::DeadlineExceeded(
        "wall-clock deadline of " + std::to_string(budget_.deadline_ms) +
        " ms exceeded"));
    return true;
  }
  return false;
}

void CancelToken::Cancel(Status reason) { Trip(std::move(reason)); }

bool CancelToken::ChargeMemory(int64_t bytes) {
  const int64_t now =
      charged_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free running max; relaxed is fine, the peak is observational only.
  int64_t peak = peak_charged_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_charged_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (budget_.max_memory_bytes > 0 && now > budget_.max_memory_bytes) {
    Trip(Status::ResourceExhausted(
        "estimated working set of " + std::to_string(now) +
        " bytes exceeds memory budget of " +
        std::to_string(budget_.max_memory_bytes) + " bytes"));
  }
  return cancelled_.load(std::memory_order_acquire);
}

void CancelToken::ReleaseMemory(int64_t bytes) {
  charged_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status CancelToken::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void CancelToken::Trip(Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  // First trip wins: keep the original reason so e.g. a deadline observed
  // while unwinding from a memory trip does not overwrite the root cause.
  if (cancelled_.load(std::memory_order_relaxed)) return;
  status_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

}  // namespace dgc
