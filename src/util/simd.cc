#include "util/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

// The one translation unit allowed to see raw intrinsics (lint rule
// simd-intrinsics-contained). x86-64 vector paths are compiled with the
// `target("avx2")` function attribute, so a baseline -march build still
// carries them and selects on cpuid at runtime; aarch64 always has NEON.
#if defined(__x86_64__) && defined(__GNUC__)
#define DGC_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__GNUC__)
#define DGC_SIMD_NEON 1
#include <arm_neon.h>
#endif

#if defined(DGC_SIMD_AVX2)
#define DGC_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace dgc {
namespace simd {

namespace {

// -------------------------------------------------------------------------
// Scalar reference implementations. These are the semantics; every vector
// backend must reproduce them bit for bit (see the header contract).
// -------------------------------------------------------------------------

int32_t ScalarScatterAccumulate(double av, const int32_t* cols,
                                const double* vals, size_t n, double* accum,
                                int32_t* marker, int32_t stamp,
                                int32_t* touched) {
  int32_t count = 0;
  for (size_t p = 0; p < n; ++p) {
    const int32_t c = cols[p];
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * vals[p];
  }
  return count;
}

int32_t ScalarScatterAccumulate64(double av, const int32_t* cols,
                                  const double* vals, size_t n, double* accum,
                                  int64_t* marker, int64_t stamp,
                                  int32_t* touched) {
  int32_t count = 0;
  for (size_t p = 0; p < n; ++p) {
    const int32_t c = cols[p];
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * vals[p];
  }
  return count;
}

int32_t ScalarScatterAccumulateScaled(double av, const double* row_scale,
                                      bool use_col_scale, double col_scale,
                                      const int32_t* cols, const double* vals,
                                      size_t n, double* accum, int32_t* marker,
                                      int32_t stamp, int32_t* touched) {
  int32_t count = 0;
  for (size_t p = 0; p < n; ++p) {
    const int32_t c = cols[p];
    double t = vals[p];
    if (row_scale != nullptr) t *= row_scale[c];
    if (use_col_scale) t *= col_scale;
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * t;
  }
  return count;
}

size_t ScalarGatherPrune(const int32_t* touched, size_t n, const double* accum,
                         double threshold, bool drop_diagonal, int32_t row,
                         int32_t* out_cols, double* out_vals,
                         int64_t* dropped) {
  size_t out = 0;
  int64_t drop = 0;
  for (size_t p = 0; p < n; ++p) {
    const int32_t c = touched[p];
    const double v = accum[c];
    if (std::abs(v) < threshold) {
      ++drop;
      continue;
    }
    if (drop_diagonal && c == row) continue;
    out_cols[out] = c;
    out_vals[out] = v;
    ++out;
  }
  *dropped += drop;
  return out;
}

void ScalarGather(const double* src, const int32_t* idx, size_t n,
                  double* out) {
  for (size_t p = 0; p < n; ++p) out[p] = src[idx[p]];
}

void ScalarDivThresholdMask(const double* vals, size_t n, double sum,
                            double threshold, uint8_t* mask) {
  for (size_t p = 0; p < n; ++p) {
    mask[p] = (vals[p] / sum < threshold) ? 1 : 0;
  }
}

void ScalarAddI64(int64_t* dst, const int64_t* src, size_t n) {
  for (size_t p = 0; p < n; ++p) dst[p] += src[p];
}

double ScalarMulAddThroughput(double* x, size_t n, int iters, double a,
                              double b) {
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < n; ++i) x[i] = x[i] * a + b;
  }
  return x[0] + x[n / 2];
}

void ScalarTriad(double* a, const double* b, const double* c, double s,
                 size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] = b[i] + s * c[i];
}

#if defined(DGC_SIMD_AVX2)

// -------------------------------------------------------------------------
// AVX2 backend. Four double lanes; AVX2 has gathers but no scatters, so the
// writes back into accum/marker go through a spilled lane buffer. Bit
// identity with the scalar loops: each lane performs the scalar operation
// sequence (mul then add — never _mm256_fmadd_pd, which rounds once where
// the scalar code rounds twice) on the same operands, and lanes never alias
// because a CSR row's columns are strictly increasing.
// -------------------------------------------------------------------------

DGC_TARGET_AVX2 int32_t Avx2ScatterAccumulate(double av, const int32_t* cols,
                                              const double* vals, size_t n,
                                              double* accum, int32_t* marker,
                                              int32_t stamp,
                                              int32_t* touched) {
  int32_t count = 0;
  const __m256d av_v = _mm256_set1_pd(av);
  const __m128i stamp_v = _mm_set1_epi32(stamp);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + p));
    const __m256d prod = _mm256_mul_pd(av_v, _mm256_loadu_pd(vals + p));
    const __m128i m = _mm_i32gather_epi32(marker, c, 4);
    const int seen = _mm_movemask_epi8(_mm_cmpeq_epi32(m, stamp_v));
    if (seen == 0xffff) {
      // All four columns were touched before: gather-add-spill, no
      // bookkeeping. This is the steady state of hub-heavy rows.
      const __m256d old = _mm256_i32gather_pd(accum, c, 8);
      double sum[4];
      _mm256_storeu_pd(sum, _mm256_add_pd(old, prod));
      accum[cols[p]] = sum[0];
      accum[cols[p + 1]] = sum[1];
      accum[cols[p + 2]] = sum[2];
      accum[cols[p + 3]] = sum[3];
    } else {
      // Mixed first-touch group: per-lane bookkeeping in element order so
      // the `touched` insertion order matches the scalar loop exactly.
      double prods[4];
      _mm256_storeu_pd(prods, prod);
      for (int lane = 0; lane < 4; ++lane) {
        const int32_t cl = cols[p + static_cast<size_t>(lane)];
        if (marker[cl] != stamp) {
          marker[cl] = stamp;
          accum[cl] = 0.0;
          touched[count++] = cl;
        }
        accum[cl] += prods[lane];
      }
    }
  }
  for (; p < n; ++p) {
    const int32_t c = cols[p];
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * vals[p];
  }
  return count;
}

DGC_TARGET_AVX2 int32_t Avx2ScatterAccumulate64(double av, const int32_t* cols,
                                                const double* vals, size_t n,
                                                double* accum, int64_t* marker,
                                                int64_t stamp,
                                                int32_t* touched) {
  int32_t count = 0;
  const __m256d av_v = _mm256_set1_pd(av);
  const __m256i stamp_v = _mm256_set1_epi64x(stamp);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + p));
    const __m256d prod = _mm256_mul_pd(av_v, _mm256_loadu_pd(vals + p));
    const __m256i m = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(marker), c, 8);
    const int seen = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(m, stamp_v)));
    if (seen == 0xf) {
      const __m256d old = _mm256_i32gather_pd(accum, c, 8);
      double sum[4];
      _mm256_storeu_pd(sum, _mm256_add_pd(old, prod));
      accum[cols[p]] = sum[0];
      accum[cols[p + 1]] = sum[1];
      accum[cols[p + 2]] = sum[2];
      accum[cols[p + 3]] = sum[3];
    } else {
      double prods[4];
      _mm256_storeu_pd(prods, prod);
      for (int lane = 0; lane < 4; ++lane) {
        const int32_t cl = cols[p + static_cast<size_t>(lane)];
        if (marker[cl] != stamp) {
          marker[cl] = stamp;
          accum[cl] = 0.0;
          touched[count++] = cl;
        }
        accum[cl] += prods[lane];
      }
    }
  }
  for (; p < n; ++p) {
    const int32_t c = cols[p];
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * vals[p];
  }
  return count;
}

DGC_TARGET_AVX2 int32_t Avx2ScatterAccumulateScaled(
    double av, const double* row_scale, bool use_col_scale, double col_scale,
    const int32_t* cols, const double* vals, size_t n, double* accum,
    int32_t* marker, int32_t stamp, int32_t* touched) {
  int32_t count = 0;
  const __m256d av_v = _mm256_set1_pd(av);
  const __m256d ck_v = _mm256_set1_pd(col_scale);
  const __m128i stamp_v = _mm_set1_epi32(stamp);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + p));
    // t = vals[p] (* row_scale[c]) (* col_scale) — same multiply order as
    // the scalar reference, one rounding per multiply.
    __m256d t = _mm256_loadu_pd(vals + p);
    if (row_scale != nullptr) {
      t = _mm256_mul_pd(t, _mm256_i32gather_pd(row_scale, c, 8));
    }
    if (use_col_scale) t = _mm256_mul_pd(t, ck_v);
    const __m256d prod = _mm256_mul_pd(av_v, t);
    const __m128i m = _mm_i32gather_epi32(marker, c, 4);
    const int seen = _mm_movemask_epi8(_mm_cmpeq_epi32(m, stamp_v));
    if (seen == 0xffff) {
      const __m256d old = _mm256_i32gather_pd(accum, c, 8);
      double sum[4];
      _mm256_storeu_pd(sum, _mm256_add_pd(old, prod));
      accum[cols[p]] = sum[0];
      accum[cols[p + 1]] = sum[1];
      accum[cols[p + 2]] = sum[2];
      accum[cols[p + 3]] = sum[3];
    } else {
      double prods[4];
      _mm256_storeu_pd(prods, prod);
      for (int lane = 0; lane < 4; ++lane) {
        const int32_t cl = cols[p + static_cast<size_t>(lane)];
        if (marker[cl] != stamp) {
          marker[cl] = stamp;
          accum[cl] = 0.0;
          touched[count++] = cl;
        }
        accum[cl] += prods[lane];
      }
    }
  }
  for (; p < n; ++p) {
    const int32_t c = cols[p];
    double t = vals[p];
    if (row_scale != nullptr) t *= row_scale[c];
    if (use_col_scale) t *= col_scale;
    if (marker[c] != stamp) {
      marker[c] = stamp;
      accum[c] = 0.0;
      touched[count++] = c;
    }
    accum[c] += av * t;
  }
  return count;
}

DGC_TARGET_AVX2 size_t Avx2GatherPrune(const int32_t* touched, size_t n,
                                       const double* accum, double threshold,
                                       bool drop_diagonal, int32_t row,
                                       int32_t* out_cols, double* out_vals,
                                       int64_t* dropped) {
  size_t out = 0;
  int64_t drop = 0;
  const __m256d thr_v = _mm256_set1_pd(threshold);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m128i row_v = _mm_set1_epi32(row);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(touched + p));
    const __m256d v = _mm256_i32gather_pd(accum, c, 8);
    // |v| < threshold, ordered compare: false for NaN lanes, so NaNs are
    // kept — exactly the scalar std::abs(v) < threshold behaviour.
    const int below = _mm256_movemask_pd(_mm256_cmp_pd(
        _mm256_and_pd(v, abs_mask), thr_v, _CMP_LT_OQ));
    const int diag =
        drop_diagonal
            ? (_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(c, row_v))))
            : 0;
    if (below == 0 && diag == 0) {
      // Fast path: all four survive; store contiguously.
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out_cols + out), c);
      _mm256_storeu_pd(out_vals + out, v);
      out += 4;
    } else {
      double vv[4];
      _mm256_storeu_pd(vv, v);
      for (int lane = 0; lane < 4; ++lane) {
        if ((below >> lane) & 1) {
          ++drop;
          continue;
        }
        if ((diag >> lane) & 1) continue;
        out_cols[out] = touched[p + static_cast<size_t>(lane)];
        out_vals[out] = vv[lane];
        ++out;
      }
    }
  }
  for (; p < n; ++p) {
    const int32_t c = touched[p];
    const double v = accum[c];
    if (std::abs(v) < threshold) {
      ++drop;
      continue;
    }
    if (drop_diagonal && c == row) continue;
    out_cols[out] = c;
    out_vals[out] = v;
    ++out;
  }
  *dropped += drop;
  return out;
}

DGC_TARGET_AVX2 void Avx2Gather(const double* src, const int32_t* idx,
                                size_t n, double* out) {
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m128i i =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + p));
    _mm256_storeu_pd(out + p, _mm256_i32gather_pd(src, i, 8));
  }
  for (; p < n; ++p) out[p] = src[idx[p]];
}

DGC_TARGET_AVX2 void Avx2DivThresholdMask(const double* vals, size_t n,
                                          double sum, double threshold,
                                          uint8_t* mask) {
  const __m256d sum_v = _mm256_set1_pd(sum);
  const __m256d thr_v = _mm256_set1_pd(threshold);
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    // Lane-wise IEEE division is exactly rounded, so each quotient matches
    // the scalar one bit for bit; NaN quotients compare false (kept).
    const __m256d q = _mm256_div_pd(_mm256_loadu_pd(vals + p), sum_v);
    const int below = _mm256_movemask_pd(_mm256_cmp_pd(q, thr_v, _CMP_LT_OQ));
    mask[p] = static_cast<uint8_t>(below & 1);
    mask[p + 1] = static_cast<uint8_t>((below >> 1) & 1);
    mask[p + 2] = static_cast<uint8_t>((below >> 2) & 1);
    mask[p + 3] = static_cast<uint8_t>((below >> 3) & 1);
  }
  for (; p < n; ++p) mask[p] = (vals[p] / sum < threshold) ? 1 : 0;
}

DGC_TARGET_AVX2 void Avx2AddI64(int64_t* dst, const int64_t* src, size_t n) {
  size_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + p));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + p));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + p),
                        _mm256_add_epi64(d, s));
  }
  for (; p < n; ++p) dst[p] += src[p];
}

DGC_TARGET_AVX2 double Avx2MulAddThroughput(double* x, size_t n, int iters,
                                            double a, double b) {
  const __m256d a_v = _mm256_set1_pd(a);
  const __m256d b_v = _mm256_set1_pd(b);
  for (int it = 0; it < iters; ++it) {
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256d x0 = _mm256_loadu_pd(x + i);
      const __m256d x1 = _mm256_loadu_pd(x + i + 4);
      _mm256_storeu_pd(x + i, _mm256_add_pd(_mm256_mul_pd(x0, a_v), b_v));
      _mm256_storeu_pd(x + i + 4,
                       _mm256_add_pd(_mm256_mul_pd(x1, a_v), b_v));
    }
    for (; i < n; ++i) x[i] = x[i] * a + b;
  }
  return x[0] + x[n / 2];
}

DGC_TARGET_AVX2 void Avx2Triad(double* a, const double* b, const double* c,
                               double s, size_t n) {
  const __m256d s_v = _mm256_set1_pd(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_add_pd(_mm256_loadu_pd(b + i),
                             _mm256_mul_pd(s_v, _mm256_loadu_pd(c + i))));
  }
  for (; i < n; ++i) a[i] = b[i] + s * c[i];
}

#endif  // DGC_SIMD_AVX2

#if defined(DGC_SIMD_NEON)

// -------------------------------------------------------------------------
// NEON backend (aarch64, two double lanes, no gathers). Only the primitives
// with contiguous memory access vectorize profitably; the scatter-
// accumulates keep scalar bookkeeping with a vectorized product.
// -------------------------------------------------------------------------

void NeonDivThresholdMask(const double* vals, size_t n, double sum,
                          double threshold, uint8_t* mask) {
  const float64x2_t sum_v = vdupq_n_f64(sum);
  const float64x2_t thr_v = vdupq_n_f64(threshold);
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    const float64x2_t q = vdivq_f64(vld1q_f64(vals + p), sum_v);
    const uint64x2_t below = vcltq_f64(q, thr_v);
    mask[p] = static_cast<uint8_t>(vgetq_lane_u64(below, 0) & 1);
    mask[p + 1] = static_cast<uint8_t>(vgetq_lane_u64(below, 1) & 1);
  }
  for (; p < n; ++p) mask[p] = (vals[p] / sum < threshold) ? 1 : 0;
}

void NeonAddI64(int64_t* dst, const int64_t* src, size_t n) {
  size_t p = 0;
  for (; p + 2 <= n; p += 2) {
    vst1q_s64(dst + p, vaddq_s64(vld1q_s64(dst + p), vld1q_s64(src + p)));
  }
  for (; p < n; ++p) dst[p] += src[p];
}

double NeonMulAddThroughput(double* x, size_t n, int iters, double a,
                            double b) {
  const float64x2_t a_v = vdupq_n_f64(a);
  const float64x2_t b_v = vdupq_n_f64(b);
  for (int it = 0; it < iters; ++it) {
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      vst1q_f64(x + i, vaddq_f64(vmulq_f64(vld1q_f64(x + i), a_v), b_v));
      vst1q_f64(x + i + 2,
                vaddq_f64(vmulq_f64(vld1q_f64(x + i + 2), a_v), b_v));
    }
    for (; i < n; ++i) x[i] = x[i] * a + b;
  }
  return x[0] + x[n / 2];
}

void NeonTriad(double* a, const double* b, const double* c, double s,
               size_t n) {
  const float64x2_t s_v = vdupq_n_f64(s);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(a + i,
              vaddq_f64(vld1q_f64(b + i), vmulq_f64(s_v, vld1q_f64(c + i))));
  }
  for (; i < n; ++i) a[i] = b[i] + s * c[i];
}

#endif  // DGC_SIMD_NEON

bool DetectVectorSupport() {
#if defined(DGC_SIMD_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(DGC_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

constexpr int kLevelUninitialized = -1;
std::atomic<int> g_level{kLevelUninitialized};

// ASCII-only case-insensitive equality: env values are machine-written
// config tokens, so locale-aware folding would be wrong here.
bool EqualsIgnoreAsciiCase(const char* a, const char* b) {
  auto lower = [](unsigned char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a')
                                  : static_cast<char>(c);
  };
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (lower(static_cast<unsigned char>(*a)) !=
        lower(static_cast<unsigned char>(*b))) {
      return false;
    }
  }
  return *a == *b;
}

}  // namespace

Level LevelFromEnvValue(const char* value) {
  if (value != nullptr && EqualsIgnoreAsciiCase(value, "scalar")) {
    return Level::kScalar;
  }
  // "vector", "auto", unset, empty, or anything unrecognized: best
  // supported level. Unrecognized values must never crash or silently
  // force scalar — a typo in DGC_SIMD should not mask a vector-path bug.
  return DetectVectorSupport() ? Level::kVector : Level::kScalar;
}

void ResetLevelForTest() {
  g_level.store(kLevelUninitialized, std::memory_order_relaxed);
}

bool VectorSupported() {
  static const bool supported = DetectVectorSupport();
  return supported;
}

Level ActiveLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kLevelUninitialized) {
    level = static_cast<int>(LevelFromEnvValue(std::getenv("DGC_SIMD")));
    int expected = kLevelUninitialized;
    // Losing the race just means another thread installed the same value.
    g_level.compare_exchange_strong(expected, level,
                                    std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

void SetLevel(Level level) {
  if (level == Level::kVector && !VectorSupported()) level = Level::kScalar;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* BackendName() {
#if defined(DGC_SIMD_AVX2)
  return VectorSupported() ? "avx2" : "scalar";
#elif defined(DGC_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

const char* LevelName(Level level) {
  return level == Level::kVector ? "vector" : "scalar";
}

int32_t ScatterAccumulate(double av, const int32_t* cols, const double* vals,
                          size_t n, double* accum, int32_t* marker,
                          int32_t stamp, int32_t* touched) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    return Avx2ScatterAccumulate(av, cols, vals, n, accum, marker, stamp,
                                 touched);
  }
#endif
  return ScalarScatterAccumulate(av, cols, vals, n, accum, marker, stamp,
                                 touched);
}

int32_t ScatterAccumulate64(double av, const int32_t* cols, const double* vals,
                            size_t n, double* accum, int64_t* marker,
                            int64_t stamp, int32_t* touched) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    return Avx2ScatterAccumulate64(av, cols, vals, n, accum, marker, stamp,
                                   touched);
  }
#endif
  return ScalarScatterAccumulate64(av, cols, vals, n, accum, marker, stamp,
                                   touched);
}

int32_t ScatterAccumulateScaled(double av, const double* row_scale,
                                bool use_col_scale, double col_scale,
                                const int32_t* cols, const double* vals,
                                size_t n, double* accum, int32_t* marker,
                                int32_t stamp, int32_t* touched) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    return Avx2ScatterAccumulateScaled(av, row_scale, use_col_scale,
                                       col_scale, cols, vals, n, accum,
                                       marker, stamp, touched);
  }
#endif
  return ScalarScatterAccumulateScaled(av, row_scale, use_col_scale,
                                       col_scale, cols, vals, n, accum,
                                       marker, stamp, touched);
}

size_t GatherPrune(const int32_t* touched, size_t n, const double* accum,
                   double threshold, bool drop_diagonal, int32_t row,
                   int32_t* out_cols, double* out_vals, int64_t* dropped) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    return Avx2GatherPrune(touched, n, accum, threshold, drop_diagonal, row,
                           out_cols, out_vals, dropped);
  }
#endif
  return ScalarGatherPrune(touched, n, accum, threshold, drop_diagonal, row,
                           out_cols, out_vals, dropped);
}

void Gather(const double* src, const int32_t* idx, size_t n, double* out) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    Avx2Gather(src, idx, n, out);
    return;
  }
#endif
  ScalarGather(src, idx, n, out);
}

void DivThresholdMask(const double* vals, size_t n, double sum,
                      double threshold, uint8_t* mask) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    Avx2DivThresholdMask(vals, n, sum, threshold, mask);
    return;
  }
#elif defined(DGC_SIMD_NEON)
  if (ActiveLevel() == Level::kVector) {
    NeonDivThresholdMask(vals, n, sum, threshold, mask);
    return;
  }
#endif
  ScalarDivThresholdMask(vals, n, sum, threshold, mask);
}

void AddI64(int64_t* dst, const int64_t* src, size_t n) {
#if defined(DGC_SIMD_AVX2)
  if (ActiveLevel() == Level::kVector && VectorSupported()) {
    Avx2AddI64(dst, src, n);
    return;
  }
#elif defined(DGC_SIMD_NEON)
  if (ActiveLevel() == Level::kVector) {
    NeonAddI64(dst, src, n);
    return;
  }
#endif
  ScalarAddI64(dst, src, n);
}

double MulAddThroughput(double* x, size_t n, int iters, double a, double b,
                        Level level) {
#if defined(DGC_SIMD_AVX2)
  if (level == Level::kVector && VectorSupported()) {
    return Avx2MulAddThroughput(x, n, iters, a, b);
  }
#elif defined(DGC_SIMD_NEON)
  if (level == Level::kVector) return NeonMulAddThroughput(x, n, iters, a, b);
#endif
  return ScalarMulAddThroughput(x, n, iters, a, b);
}

void Triad(double* a, const double* b, const double* c, double s, size_t n,
           Level level) {
#if defined(DGC_SIMD_AVX2)
  if (level == Level::kVector && VectorSupported()) {
    Avx2Triad(a, b, c, s, n);
    return;
  }
#elif defined(DGC_SIMD_NEON)
  if (level == Level::kVector) {
    NeonTriad(a, b, c, s, n);
    return;
  }
#endif
  ScalarTriad(a, b, c, s, n);
}

}  // namespace simd
}  // namespace dgc
