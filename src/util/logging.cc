#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dgc {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dgc
