#include "util/options.h"

#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace dgc {

Result<Options> Options::Parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      opts.flags_[name] = body.substr(eq + 1);
    } else {
      // Bare flag is boolean; values must use --name=value (the space form
      // is ambiguous against positional arguments).
      opts.flags_[body] = "true";
    }
  }
  return opts;
}

bool Options::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string Options::GetString(const std::string& name,
                               const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t Options::GetInt(const std::string& name, int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    DGC_LOG(Fatal) << "flag --" << name << " expects an integer, got '"
                   << it->second << "'";
  }
  return v;
}

double Options::GetDouble(const std::string& name,
                          double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    DGC_LOG(Fatal) << "flag --" << name << " expects a number, got '"
                   << it->second << "'";
  }
  return v;
}

bool Options::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  DGC_LOG(Fatal) << "flag --" << name << " expects a boolean, got '" << v
                 << "'";
  return default_value;
}

std::vector<int64_t> Options::GetIntList(
    const std::string& name, const std::vector<int64_t>& default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> Options::GetDoubleList(
    const std::string& name, const std::vector<double>& default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    out.push_back(std::strtod(tok.c_str(), nullptr));
  }
  return out;
}

}  // namespace dgc
