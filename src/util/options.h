// Tiny command-line flag parser for the bench/example binaries.
// Supports --name=value and boolean --flag forms; anything else is
// positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace dgc {

/// \brief Parsed command line: named flags plus positional arguments.
///
/// \code
///   Options opts = Options::Parse(argc, argv).ValueOrDie();
///   int64_t n = opts.GetInt("nodes", 10000);
///   double t = opts.GetDouble("threshold", 0.01);
///   bool v = opts.GetBool("verbose", false);
/// \endcode
class Options {
 public:
  /// Parses argv. Fails on malformed flags (e.g. "--=3").
  static Result<Options> Parse(int argc, const char* const* argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults; a present-but-malformed value is a fatal
  /// usage error reported via the returned default + HasError().
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated list of integers, e.g. --ks=20,40,60.
  std::vector<int64_t> GetIntList(
      const std::string& name, const std::vector<int64_t>& default_value) const;

  /// Comma-separated list of doubles.
  std::vector<double> GetDoubleList(
      const std::string& name, const std::vector<double>& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace dgc
