// Debug write-set race auditor for the ParallelFor family.
//
// Compiled in when the build sets -DDGC_PARALLEL_AUDIT=1 (CMake option
// DGC_PARALLEL_AUDIT); otherwise every entry point collapses to a no-op and
// AuditSpan construction compiles away entirely.
//
// Model: the pool brackets every parallel loop in a *region* and every body
// invocation in a *chunk* (one dynamically claimed [lo, hi) slice — the unit
// whose worker assignment is scheduling-dependent). Instrumented kernels
// declare the byte ranges they write through AuditSpan. Two spans that
// overlap within one region but belong to different chunks are a
// determinism bug by construction: chunk-to-worker assignment varies run to
// run, so the overlapping writes can land in either order — even when both
// chunks happen to execute on the same worker this run. The auditor
// therefore CHECK-fails on *cross-chunk* overlap, which is strictly
// stronger than cross-worker overlap and — unlike TSan — fires
// deterministically, single-core containers included, and catches "benign"
// races that only reorder FP summation.
//
// Granularity caveat: writes landing in the same chunk are never compared
// (they are sequential on one worker), so a hazard between two loop indices
// is only visible when chunking separates them. Audit tests should pass
// grain = 1 to make every index its own chunk.
//
// Spans registered outside any parallel region (serial code) are ignored.
// The registry is cleared when the outermost region ends; sequentially
// ordered loops are never compared against each other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dgc {
namespace audit {

#if defined(DGC_PARALLEL_AUDIT)

inline constexpr bool kEnabled = true;

/// Pool-internal: brackets one parallel loop. Outermost exit clears the
/// span registry. Nested (serialized) loops keep the enclosing region.
class RegionScope {
 public:
  RegionScope();
  ~RegionScope();
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;
};

/// Pool-internal: brackets one body invocation (one claimed chunk) on the
/// calling thread. Allocates a fresh chunk id unless the thread is already
/// inside a chunk (nested parallelism), in which case writes keep
/// attributing to the enclosing chunk.
class ChunkScope {
 public:
  explicit ChunkScope(int worker);
  ~ChunkScope();
  ChunkScope(const ChunkScope&) = delete;
  ChunkScope& operator=(const ChunkScope&) = delete;

 private:
  uint64_t saved_chunk_;
  int saved_worker_;
};

/// Registers [begin, begin + bytes) as written by the current chunk;
/// CHECK-fails if the range overlaps a registration from another chunk of
/// the same region. No-op outside a parallel chunk or when bytes == 0.
void RegisterWriteBytes(const void* begin, size_t bytes, const char* label);

/// Cumulative number of spans recorded process-wide; calls made outside a
/// parallel chunk are not counted. Tests assert this grows across an
/// instrumented kernel call to prove the instrumentation is live.
int64_t TotalSpansRegistered();

#else  // !DGC_PARALLEL_AUDIT

inline constexpr bool kEnabled = false;

class RegionScope {};
class ChunkScope {
 public:
  explicit ChunkScope(int) {}
};
inline void RegisterWriteBytes(const void*, size_t, const char*) {}
inline int64_t TotalSpansRegistered() { return 0; }

#endif  // DGC_PARALLEL_AUDIT

/// RAII write-set declaration for parallel kernel bodies: constructing one
/// registers the element range as written by the current chunk. The object
/// itself is stateless — registrations live until the region ends — but the
/// RAII form keeps call sites one line and scoping obvious. Compiles to
/// nothing when the auditor is off.
class AuditSpan {
 public:
  template <class T>
  AuditSpan(const T* begin, size_t count, const char* label) {
    if (kEnabled) {
      RegisterWriteBytes(begin, count * sizeof(T), label);
    }
  }
};

}  // namespace audit
}  // namespace dgc
