// Cooperative resource governance: a ResourceBudget (soft memory estimate +
// wall-clock deadline) observed through a CancelToken that long-running
// kernels poll at chunk granularity.
//
// Design contract (see docs/ROBUSTNESS.md for the full taxonomy):
//  - Cancellation is cooperative and all-or-nothing: a stage that observes a
//    tripped token abandons its work and returns Status(kDeadlineExceeded /
//    kResourceExhausted). Callers never receive partial numerical results,
//    so runs that stay inside budget are bit-identical to unbudgeted runs at
//    any thread count.
//  - The memory ledger is a *soft estimate*: kernels charge their dominant
//    working sets (CSR arrays, per-worker buffers) before allocating and
//    release on scope exit via MemoryCharge. It is an admission-control
//    heuristic, not an allocator hook — the exact trip point may vary with
//    thread count, but results never do (either the whole stage runs, or the
//    whole run reports kResourceExhausted).
//  - Once tripped, a token stays tripped (latched) and every subsequent
//    Expired()/cancelled() poll returns true, so cancellation propagates
//    outward through the stage tree within one ParallelFor chunk.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>

#include "util/status.h"
#include "util/timer.h"

namespace dgc {

/// \brief Limits a run may not exceed. Zero means "unlimited" for each field.
struct ResourceBudget {
  /// Wall-clock deadline in milliseconds, measured from CancelToken::Arm().
  /// 0 = no deadline.
  int64_t deadline_ms = 0;
  /// Soft cap on the estimated peak working-set bytes charged by kernels.
  /// 0 = no memory cap.
  int64_t max_memory_bytes = 0;

  bool unlimited() const { return deadline_ms <= 0 && max_memory_bytes <= 0; }
};

/// \brief Shared cancellation state polled cooperatively by kernels.
///
/// A token is armed once with a budget (starting the deadline clock), then a
/// pointer to it is threaded through options structs into parallel loop
/// bodies. Polling is cheap: `cancelled()` is one relaxed atomic load, and
/// `Expired()` adds a steady_clock read only while the token is still live.
/// All methods are thread-safe.
class CancelToken {
 public:
  CancelToken() = default;

  /// Installs `budget` and restarts the deadline clock. Resets any previous
  /// trip state; a default-constructed (unlimited) budget makes the token
  /// inert.
  void Arm(const ResourceBudget& budget);

  /// True once the token has tripped (deadline, memory, or manual Cancel).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Polls the deadline and returns the latched trip state. This is the call
  /// kernels make at chunk boundaries: one atomic load on the fast path,
  /// plus a monotonic clock read while still live under a deadline.
  bool Expired();

  /// Manually trips the token with an explicit reason.
  void Cancel(Status reason);

  /// Adds `bytes` to the soft memory ledger; trips the token with
  /// kResourceExhausted if the budget's cap is exceeded. Returns the trip
  /// state so callers can bail out before allocating.
  bool ChargeMemory(int64_t bytes);

  /// Removes `bytes` from the ledger (working set freed). Never un-trips.
  void ReleaseMemory(int64_t bytes);

  /// Current ledger value in bytes (soft estimate of live working sets).
  int64_t charged_bytes() const {
    return charged_bytes_.load(std::memory_order_relaxed);
  }

  /// High-water mark of the ledger since the last Arm(). Lets tests and
  /// reports verify that a budgeted run actually stayed under its cap
  /// (docs/OUT_OF_CORE.md relies on this for the tiled-path acceptance
  /// gate).
  int64_t peak_charged_bytes() const {
    return peak_charged_bytes_.load(std::memory_order_relaxed);
  }

  /// The trip reason: kDeadlineExceeded, kResourceExhausted, or whatever was
  /// passed to Cancel(). OK while the token has not tripped.
  Status status() const;

 private:
  void Trip(Status reason);

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> charged_bytes_{0};
  std::atomic<int64_t> peak_charged_bytes_{0};
  ResourceBudget budget_;
  WallTimer clock_;
  mutable std::mutex mu_;  // guards status_ (and budget_/clock_ during Arm)
  Status status_;
};

/// \brief RAII guard for a kernel working-set charge against a CancelToken.
///
/// Charges on construction, releases the same amount on destruction. A null
/// token makes the guard a no-op, so kernels can charge unconditionally:
///
///   MemoryCharge charge(cancel, bytes);
///   if (charge.exceeded()) return cancel->status();
class MemoryCharge {
 public:
  MemoryCharge(CancelToken* token, int64_t bytes)
      : token_(token), bytes_(bytes) {
    if (token_ != nullptr) exceeded_ = token_->ChargeMemory(bytes_);
  }
  ~MemoryCharge() {
    if (token_ != nullptr) token_->ReleaseMemory(bytes_);
  }

  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  /// True if this charge (or an earlier trip) put the token over budget.
  bool exceeded() const { return exceeded_; }

 private:
  CancelToken* token_;
  int64_t bytes_;
  bool exceeded_ = false;
};

}  // namespace dgc
