#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace dgc {

ThreadPool::ThreadPool(int num_threads) {
  DGC_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body) {
  ParallelForChunked(begin, end, num_threads,
                     [&body](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) body(i);
                     });
}

void ParallelForChunked(int64_t begin, int64_t end, int num_threads,
                        const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  if (num_threads <= 1 || n == 1) {
    body(begin, end);
    return;
  }
  const int threads = static_cast<int>(
      std::min<int64_t>(num_threads, n));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  const int64_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    int64_t lo = begin + t * chunk;
    int64_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&body, lo, hi] { body(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace dgc
