#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"
#include "util/parallel_audit.h"

namespace dgc {

namespace {

/// Set while a thread is executing chunks of a parallel region; nested
/// ParallelFor calls from inside a region run inline instead of deadlocking
/// the pool.
thread_local bool t_inside_parallel_region = false;

}  // namespace

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  if (num_threads < 0) return 1;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  DGC_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::EnsureWorkers(int num_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

void ParallelForWorkers(
    int64_t begin, int64_t end, int num_threads, int64_t grain,
    const std::function<void(int, int64_t, int64_t)>& body) {
  if (end <= begin) return;
  const int64_t n = end - begin;
  const int threads = static_cast<int>(
      std::min<int64_t>(ResolveNumThreads(num_threads), n));
  if (threads <= 1 || t_inside_parallel_region) {
    // Serial/nested path: still bracketed for the write-set auditor so a
    // top-level serial loop gets a region (one chunk, trivially race-free)
    // and a nested loop keeps attributing writes to the enclosing chunk.
    [[maybe_unused]] audit::RegionScope audit_region;
    [[maybe_unused]] audit::ChunkScope audit_chunk(0);
    body(0, begin, end);
    return;
  }
  if (grain <= 0) grain = std::max<int64_t>(1, n / (8 * threads));

  struct CallState {
    std::atomic<int64_t> next;
    std::mutex mutex;
    std::condition_variable done;
    int pending;
  } state;
  state.next.store(begin, std::memory_order_relaxed);
  state.pending = threads - 1;

  auto run = [&state, &body, end, grain](int worker) {
    t_inside_parallel_region = true;
    for (;;) {
      const int64_t lo =
          state.next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      // Each claimed chunk gets its own audit identity: cross-chunk write
      // overlaps are scheduling hazards even when both chunks happen to
      // land on the same worker this run.
      [[maybe_unused]] audit::ChunkScope audit_chunk(worker);
      body(worker, lo, std::min(end, lo + grain));
    }
    t_inside_parallel_region = false;
  };

  [[maybe_unused]] audit::RegionScope audit_region;
  ThreadPool& pool = GlobalThreadPool();
  pool.EnsureWorkers(threads - 1);
  for (int w = 1; w < threads; ++w) {
    pool.Submit([&state, &run, w] {
      run(w);
      std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.pending == 0) state.done.notify_all();
    });
  }
  run(0);
  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.pending == 0; });
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body) {
  ParallelForWorkers(begin, end, num_threads, /*grain=*/0,
                     [&body](int, int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) body(i);
                     });
}

void ParallelForChunked(int64_t begin, int64_t end, int num_threads,
                        const std::function<void(int64_t, int64_t)>& body) {
  ParallelForWorkers(begin, end, num_threads, /*grain=*/0,
                     [&body](int, int64_t lo, int64_t hi) { body(lo, hi); });
}

}  // namespace dgc
