// Portable SIMD primitives for the SpGEMM / R-MCL hot path.
//
// Every primitive in this header has a scalar reference implementation and
// (where the target supports it) a vectorized one, selected at runtime via
// ActiveLevel(). The contract that makes vectorization safe under the
// library's determinism guarantees: **both implementations produce
// bit-identical results**. That holds because each vector lane performs
// exactly the scalar sequence of IEEE-754 basic operations (mul, div,
// compare, abs) on the same operands — no reassociation, no FMA contraction
// (a fused multiply-add rounds once where mul+add rounds twice, so FMA is
// never used), no reduced-precision shortcuts. NaNs and denormals flow
// through both paths identically (comparisons with NaN are false, so
// NaN-valued entries survive threshold pruning on both paths; MXCSR
// FTZ/DAZ are never touched).
//
// Backends: AVX2 (x86-64, compiled via the `target("avx2")` function
// attribute so a default -march build still carries the vector path and
// dispatches on cpuid at runtime), NEON (aarch64), scalar fallback
// everywhere else. Dispatch is per *call* — callers invoke primitives once
// per matrix row or per inner row, never per element.
//
// This is the only file in the repository allowed to use raw SIMD
// intrinsics (enforced by tools/lint/dgc_lint.py, rule
// simd-intrinsics-contained); kernels compose these primitives instead.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dgc {
namespace simd {

/// Dispatch level. kVector resolves to the best backend compiled in and
/// supported by the running CPU; when no vector backend is available it
/// behaves exactly like kScalar.
enum class Level : int {
  kScalar = 0,
  kVector = 1,
};

/// True when a vector backend is compiled in and the running CPU supports
/// it (AVX2 via cpuid on x86-64, always true on aarch64 NEON builds).
bool VectorSupported();

/// The level primitives dispatch on. Defaults to kVector when supported,
/// overridable via SetLevel() or the DGC_SIMD environment variable
/// ("scalar" forces the reference loops; "vector"/"auto" — or any
/// unset/empty/unrecognized value — the default). Matching is
/// ASCII-case-insensitive, so "SCALAR" and "Scalar" work too. The
/// variable is read once, on the first ActiveLevel() call that finds no
/// level installed; a later SetLevel() always wins over the environment.
/// Reads are relaxed-atomic: per-row dispatch cost only.
Level ActiveLevel();

/// Overrides the dispatch level (tests and A/B benchmarks). Requesting
/// kVector without hardware support silently stays scalar.
void SetLevel(Level level);

/// Maps a DGC_SIMD environment value to the level it selects, without
/// touching process state: "scalar" (any ASCII case) forces kScalar;
/// nullptr, "", "vector", "auto" and everything else yield the best
/// supported level. Exposed so tests can pin the parsing table directly.
Level LevelFromEnvValue(const char* value);

/// Clears the installed dispatch level so the next ActiveLevel() call
/// re-reads DGC_SIMD. Test-only: real callers must treat the level as
/// process-global (mid-run flips would break bit-identity of a run).
void ResetLevelForTest();

/// "avx2", "neon" or "scalar" — the best backend this binary can run here.
const char* BackendName();

/// Display name of a level ("scalar" / "vector").
const char* LevelName(Level level);

// ---------------------------------------------------------------------------
// Primitives. Pointer arguments must not alias unless stated otherwise.
// ---------------------------------------------------------------------------

/// Dense-accumulator scatter-accumulate (the Gustavson inner loop):
///
///   for p in [0, n):
///     c = cols[p]
///     if (marker[c] != stamp) { marker[c] = stamp; accum[c] = 0;
///                               touched[count++] = c; }
///     accum[c] += av * vals[p]
///
/// `cols` must hold distinct indices (CSR rows are strictly increasing), so
/// vector lanes never collide. Returns the number of indices appended to
/// `touched` (which must have room for n more entries). First-touch
/// (insertion) order is preserved exactly — downstream tie-breaking
/// (R-MCL's nth_element cap) depends on it.
int32_t ScatterAccumulate(double av, const int32_t* cols, const double* vals,
                          size_t n, double* accum, int32_t* marker,
                          int32_t stamp, int32_t* touched);

/// As ScatterAccumulate with a 64-bit marker/stamp (R-MCL's iteration-
/// stamped markers never need clearing between iterations).
int32_t ScatterAccumulate64(double av, const int32_t* cols, const double* vals,
                            size_t n, double* accum, int64_t* marker,
                            int64_t stamp, int32_t* touched);

/// Scaled scatter-accumulate for the on-the-fly symmetric similarity
/// products (SpGemmAAtSymmetric):
///
///   for p in [0, n):
///     t = vals[p]
///     if (row_scale != nullptr)  t *= row_scale[cols[p]]      // gather
///     if (use_col_scale)         t *= col_scale
///     ... first-touch bookkeeping as ScatterAccumulate ...
///     accum[c] += av * t
///
/// The multiplication order matches ComputeUpperRow's scalar loop (and via
/// it the reference ScaleRows/ScaleCols path), keeping the fused engine
/// bit-identical to the reference engine.
int32_t ScatterAccumulateScaled(double av, const double* row_scale,
                                bool use_col_scale, double col_scale,
                                const int32_t* cols, const double* vals,
                                size_t n, double* accum, int32_t* marker,
                                int32_t stamp, int32_t* touched);

/// Row finalization (EmitRow): gathers accum[touched[p]] for the (sorted)
/// touched indices, drops entries with |v| < threshold (counting them into
/// *dropped) and, when drop_diagonal, the entry with column == row, then
/// writes survivors to out_cols/out_vals (room for n required). Returns the
/// survivor count. NaN values compare false against the threshold and are
/// therefore kept — identical to the scalar std::abs(v) < threshold loop.
size_t GatherPrune(const int32_t* touched, size_t n, const double* accum,
                   double threshold, bool drop_diagonal, int32_t row,
                   int32_t* out_cols, double* out_vals, int64_t* dropped);

/// out[p] = src[idx[p]].
void Gather(const double* src, const int32_t* idx, size_t n, double* out);

/// mask[p] = (vals[p] / sum < threshold) ? 1 : 0 — the R-MCL inflate/prune
/// scan. The division is performed per lane (IEEE division is exactly
/// rounded, so vector and scalar results are bit-identical); NaN quotients
/// yield mask 0 (kept), matching the scalar comparison.
void DivThresholdMask(const double* vals, size_t n, double sum,
                      double threshold, uint8_t* mask);

/// dst[p] += src[p] for int64 counters — the blocked counting-sort
/// reductions in MirrorUpperTriangle (exact for any summation order).
void AddI64(int64_t* dst, const int64_t* src, size_t n);

// ---------------------------------------------------------------------------
// Hardware-probe helpers (bench/hw_probe). Not determinism-sensitive; they
// exist so the probe can hit the machine's vector ceilings without raw
// intrinsics leaking outside this header.
// ---------------------------------------------------------------------------

/// Compute-ceiling probe: `iters` passes of x[i] = x[i] * a + b over n
/// doubles (2 flops per element per pass, mul+add — the same instruction
/// mix the kernels use, so the ceiling is the one they can actually reach).
/// Returns x[0] + x[n/2] to defeat dead-code elimination.
double MulAddThroughput(double* x, size_t n, int iters, double a, double b,
                        Level level);

/// Bandwidth-ceiling probe (STREAM triad): a[i] = b[i] + s * c[i].
void Triad(double* a, const double* b, const double* c, double s, size_t n,
           Level level);

}  // namespace simd
}  // namespace dgc
