// Wall-clock timing helpers used by the experiment harnesses.
#pragma once

#include <chrono>

namespace dgc {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts running on construction; Elapsed*() may be called repeatedly.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dgc
