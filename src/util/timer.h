// Wall-clock and CPU-time stopwatches used by the experiment harnesses and
// the observability layer (obs/span.h builds StageSpan on both).
#pragma once

#include <chrono>
#include <ctime>

namespace dgc {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts running on construction; Elapsed*() may be called repeatedly.
/// The clock source is required to be monotonic (steady): elapsed readings
/// can never go backwards when the system clock is adjusted, which matters
/// because these timings feed the per-stage numbers in RunReport JSON.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  // Regression guard: elapsed time must come from a monotonic source, never
  // from system_clock (which steps under NTP adjustment / manual changes).
  static_assert(Clock::is_steady,
                "WallTimer must be backed by a monotonic (steady) clock");
  Clock::time_point start_;
};

/// \brief Process CPU-time stopwatch: total CPU seconds consumed by every
/// thread of the process since construction or the last Restart().
///
/// During a parallel stage this grows up to `threads`× faster than wall
/// time, so span wall/CPU pairs expose parallel work distribution even on
/// noisy machines. Backed by CLOCK_PROCESS_CPUTIME_ID where available and
/// std::clock() otherwise (both monotonic by definition — CPU time only
/// accumulates).
class ProcessCpuTimer {
 public:
  ProcessCpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Restart() { start_ = Now(); }

  /// CPU seconds consumed since construction or the last Restart().
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    std::timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

  double start_;
};

}  // namespace dgc
