// Deterministic, seedable random number generation. All stochastic code in
// the library takes an explicit Rng so that experiments are reproducible.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace dgc {

/// \brief xoshiro256** PRNG seeded via splitmix64.
///
/// Fast, high-quality, and deterministic across platforms, unlike
/// std::mt19937 + std::uniform_*_distribution whose outputs are
/// implementation-defined.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound) {
    DGC_CHECK_GT(bound, 0u);
    // Lemire's nearly-divisionless method with rejection for exactness.
    uint64_t threshold = (-bound) % bound;
    while (true) {
      uint64_t r = Next();
      __uint128_t m = static_cast<__uint128_t>(r) * bound;
      if (static_cast<uint64_t>(m) >= threshold) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DGC_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (no cached second value, keeps the
  /// generator stateless beyond its 256-bit core).
  double Normal() {
    double u1 = UniformDouble();
    while (u1 <= 0.0) u1 = UniformDouble();
    double u2 = UniformDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm if
  /// k << n, otherwise shuffle-prefix). Result is unsorted.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// \brief Exact Zipf(s) sampler over {1..n}: O(n) table construction,
/// O(log n) per draw via inverse-CDF binary search. Construct once, draw
/// many times (the generators' usage pattern).
class ZipfDistribution {
 public:
  /// n >= 1; any real exponent s >= 0 (s = 0 is uniform).
  ZipfDistribution(uint64_t n, double s);

  /// A rank in [1, n]; rank 1 is the most probable.
  uint64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dgc
