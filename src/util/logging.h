// Minimal leveled logging to stderr plus CHECK macros for invariants whose
// violation indicates a bug (not a recoverable error -> those use Status).
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace dgc {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style message collector; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dgc

#define DGC_LOG_INTERNAL(level) \
  ::dgc::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define DGC_LOG(severity)                                        \
  (::dgc::LogLevel::k##severity < ::dgc::GetLogLevel())          \
      ? (void)0                                                  \
      : ::dgc::internal::LogMessageVoidify() &                   \
            DGC_LOG_INTERNAL(::dgc::LogLevel::k##severity)

/// Fatal unless `condition`; use for programming-error invariants.
#define DGC_CHECK(condition)                                   \
  (condition) ? (void)0                                        \
             : ::dgc::internal::LogMessageVoidify() &          \
                   DGC_LOG_INTERNAL(::dgc::LogLevel::kFatal)   \
                       << "Check failed: " #condition " "

#define DGC_CHECK_EQ(a, b) DGC_CHECK((a) == (b))
#define DGC_CHECK_NE(a, b) DGC_CHECK((a) != (b))
#define DGC_CHECK_LT(a, b) DGC_CHECK((a) < (b))
#define DGC_CHECK_LE(a, b) DGC_CHECK((a) <= (b))
#define DGC_CHECK_GT(a, b) DGC_CHECK((a) > (b))
#define DGC_CHECK_GE(a, b) DGC_CHECK((a) >= (b))
