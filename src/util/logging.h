// Minimal leveled logging to stderr plus CHECK macros for invariants whose
// violation indicates a bug (not a recoverable error -> those use Status).
//
// Two strength tiers:
//  - DGC_CHECK* / DGC_CHECK_OK: always compiled in, including NDEBUG
//    Release builds. Use for cheap invariants whose violation must never
//    ship silently.
//  - DGC_DCHECK* / DGC_DCHECK_OK: compiled in only when DGC_ENABLE_DCHECKS
//    is defined (CMake option of the same name, default ON in Debug).
//    Use for expensive structural validation on hot paths, e.g. the
//    O(nnz) CsrMatrix::Validate() pass behind every FromPartsUnchecked.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

#include "util/status.h"

namespace dgc {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style message collector; emits on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dgc

#define DGC_LOG_INTERNAL(level) \
  ::dgc::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define DGC_LOG(severity)                                        \
  (::dgc::LogLevel::k##severity < ::dgc::GetLogLevel())          \
      ? (void)0                                                  \
      : ::dgc::internal::LogMessageVoidify() &                   \
            DGC_LOG_INTERNAL(::dgc::LogLevel::k##severity)

/// Fatal unless `condition`; use for programming-error invariants.
#define DGC_CHECK(condition)                                   \
  (condition) ? (void)0                                        \
             : ::dgc::internal::LogMessageVoidify() &          \
                   DGC_LOG_INTERNAL(::dgc::LogLevel::kFatal)   \
                       << "Check failed: " #condition " "

#define DGC_CHECK_EQ(a, b) DGC_CHECK((a) == (b))
#define DGC_CHECK_NE(a, b) DGC_CHECK((a) != (b))
#define DGC_CHECK_LT(a, b) DGC_CHECK((a) < (b))
#define DGC_CHECK_LE(a, b) DGC_CHECK((a) <= (b))
#define DGC_CHECK_GT(a, b) DGC_CHECK((a) > (b))
#define DGC_CHECK_GE(a, b) DGC_CHECK((a) >= (b))

/// Fatal unless `expr` (a Status or Result) is OK; always compiled in.
#define DGC_CHECK_OK(expr)                                              \
  do {                                                                  \
    const ::dgc::Status _dgc_check_ok_status = (expr);                  \
    DGC_CHECK(_dgc_check_ok_status.ok()) << _dgc_check_ok_status;       \
  } while (false)

// Debug-only checks. DGC_DCHECKS_ENABLED is the single source of truth for
// whether they are live; test targets may force it either way regardless of
// the build-wide DGC_ENABLE_DCHECKS setting.
#if defined(DGC_DCHECK_FORCE_ON)
#define DGC_DCHECKS_ENABLED 1
#elif defined(DGC_DCHECK_FORCE_OFF)
#define DGC_DCHECKS_ENABLED 0
#elif defined(DGC_ENABLE_DCHECKS)
#define DGC_DCHECKS_ENABLED 1
#else
#define DGC_DCHECKS_ENABLED 0
#endif

#if DGC_DCHECKS_ENABLED

#define DGC_DCHECK(condition) DGC_CHECK(condition)
#define DGC_DCHECK_OK(expr) DGC_CHECK_OK(expr)

#else  // !DGC_DCHECKS_ENABLED

// `while (false)` keeps the condition and any streamed operands
// syntactically checked (so disabled builds cannot rot) without evaluating
// them; the dead loop folds to nothing at any optimization level.
#define DGC_DCHECK(condition) \
  while (false) DGC_CHECK(condition)
#define DGC_DCHECK_OK(expr) \
  while (false) DGC_CHECK_OK(expr)

#endif  // DGC_DCHECKS_ENABLED

#define DGC_DCHECK_EQ(a, b) DGC_DCHECK((a) == (b))
#define DGC_DCHECK_NE(a, b) DGC_DCHECK((a) != (b))
#define DGC_DCHECK_LT(a, b) DGC_DCHECK((a) < (b))
#define DGC_DCHECK_LE(a, b) DGC_DCHECK((a) <= (b))
#define DGC_DCHECK_GT(a, b) DGC_DCHECK((a) > (b))
#define DGC_DCHECK_GE(a, b) DGC_DCHECK((a) >= (b))
