// Status: lightweight error propagation without exceptions, in the style of
// RocksDB/Arrow. Fallible operations return Status (or Result<T>, see
// result.h); success is the zero-cost common case.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dgc {

/// Error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIOError = 5,
  kNotConverged = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy when OK (no allocation) and must be checked by
/// the caller — the class is [[nodiscard]], so silently dropping one is a
/// compile-time warning (error under DGC_WERROR); helper macros
/// DGC_RETURN_IF_ERROR / DGC_ASSIGN_OR_RETURN keep call sites terse.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotConverged() const { return code_ == StatusCode::kNotConverged; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dgc

/// Propagates a non-OK Status to the caller.
#define DGC_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dgc::Status _dgc_status = (expr);      \
    if (!_dgc_status.ok()) return _dgc_status; \
  } while (false)
