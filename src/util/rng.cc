#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace dgc {

ZipfDistribution::ZipfDistribution(uint64_t n, double s) {
  DGC_CHECK_GT(n, 0u);
  DGC_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  DGC_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take the prefix.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    return all;
  }
  // Sparse case: Floyd's algorithm.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformU64(j + 1);
    if (!seen.insert(t).second) {
      seen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace dgc
