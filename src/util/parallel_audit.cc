#include "util/parallel_audit.h"

#if defined(DGC_PARALLEL_AUDIT)

#include <atomic>
#include <map>
#include <mutex>

#include "util/logging.h"

namespace dgc {
namespace audit {

namespace {

struct SpanRec {
  const char* end;  // one past the last written byte
  uint64_t chunk;
  int worker;
  const char* label;
};

// One registry for the whole process: the library is driven from one caller
// thread, and should two genuinely independent top-level loops ever run
// concurrently, overlapping writes between them are a real race too.
struct Registry {
  std::mutex mutex;
  // start byte -> span; non-overlapping by invariant (same-chunk overlaps
  // are merged on insert, cross-chunk overlaps are fatal). Address keying
  // is the point here: the registry compares buffer ranges within one
  // process run and never feeds any output.
  std::map<const char*, SpanRec> spans;  // dgc-analyze: allow(nd-pointer-keyed) diagnostic registry keyed on audited addresses; order never reaches output
  int depth = 0;  // nesting depth of open regions
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives pool workers
  return *r;
}

std::atomic<int64_t> g_total_spans{0};
std::atomic<uint64_t> g_next_chunk{0};

// 0 = not inside any chunk (serial code): registrations are ignored.
thread_local uint64_t t_chunk = 0;
thread_local int t_worker = -1;

}  // namespace

RegionScope::RegionScope() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  ++reg.depth;
}

RegionScope::~RegionScope() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (--reg.depth == 0) {
    // Outermost region ended: later loops are sequentially ordered after
    // this one, so their writes must not be compared against these.
    reg.spans.clear();
  }
}

ChunkScope::ChunkScope(int worker) : saved_chunk_(t_chunk),
                                     saved_worker_(t_worker) {
  if (t_chunk == 0) {
    // memory_order_relaxed: ids only need uniqueness, not ordering.
    t_chunk = 1 + g_next_chunk.fetch_add(1, std::memory_order_relaxed);
    t_worker = worker;
  }
  // Else: nested serialized loop — keep attributing to the enclosing chunk.
}

ChunkScope::~ChunkScope() {
  t_chunk = saved_chunk_;
  t_worker = saved_worker_;
}

void RegisterWriteBytes(const void* begin, size_t bytes, const char* label) {
  if (t_chunk == 0 || bytes == 0) return;
  const char* lo = static_cast<const char*>(begin);
  const char* hi = lo + bytes;

  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  g_total_spans.fetch_add(1, std::memory_order_relaxed);

  auto fail = [&](const auto& it) {
    DGC_CHECK(false)
        << "parallel write-set overlap: chunk " << t_chunk << " (worker "
        << t_worker << ") writes [" << static_cast<const void*>(lo) << ", "
        << static_cast<const void*>(hi) << ") '" << label
        << "' overlapping chunk " << it->second.chunk << " (worker "
        << it->second.worker << ") ["
        << static_cast<const void*>(it->first) << ", "
        << static_cast<const void*>(it->second.end) << ") '"
        << it->second.label
        << "' — chunk-to-worker assignment is scheduling-dependent, so "
           "these writes can land in either order";
  };

  // A predecessor reaching past lo overlaps [lo, hi).
  auto it = reg.spans.lower_bound(lo);
  if (it != reg.spans.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > lo) {
      if (prev->second.chunk != t_chunk) fail(prev);
      lo = prev->first;  // same chunk: coalesce
      if (prev->second.end > hi) hi = prev->second.end;
      reg.spans.erase(prev);
    }
  }
  // Successors starting before hi overlap; absorb same-chunk ones.
  it = reg.spans.lower_bound(lo);
  while (it != reg.spans.end() && it->first < hi) {
    if (it->second.chunk != t_chunk) fail(it);
    if (it->second.end > hi) hi = it->second.end;
    it = reg.spans.erase(it);
  }
  reg.spans.emplace(lo, SpanRec{hi, t_chunk, t_worker, label});
}

int64_t TotalSpansRegistered() {
  return g_total_spans.load(std::memory_order_relaxed);
}

}  // namespace audit
}  // namespace dgc

#endif  // DGC_PARALLEL_AUDIT
