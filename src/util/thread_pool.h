// Fixed-size thread pool with a ParallelFor convenience. The symmetrization
// kernels are embarrassingly parallel over output rows; the paper's code was
// single-threaded, so parallelism is opt-in (num_threads = 1 by default in
// all experiment harnesses to preserve the paper's timing semantics).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dgc {

/// \brief A basic work-queue thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs body(i) for i in [begin, end), split into contiguous chunks
/// across `num_threads` threads. With num_threads <= 1 runs inline.
void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body);

/// \brief Chunked variant: body(chunk_begin, chunk_end) per worker chunk.
/// Lower overhead when per-index work is tiny.
void ParallelForChunked(
    int64_t begin, int64_t end, int num_threads,
    const std::function<void(int64_t, int64_t)>& body);

}  // namespace dgc
