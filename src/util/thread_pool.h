// Persistent work-queue thread pool plus dynamic-chunk parallel-for
// primitives. Every parallel loop in the library runs on one lazily created
// process-wide pool (see GlobalThreadPool): chunks are claimed from an
// atomic counter so power-law hub rows cannot load-imbalance a static
// partition, and the pool's workers are reused across calls instead of
// spawning fresh threads.
//
// Threading convention used by every options struct in the library:
// num_threads == 1 (the default) reproduces the paper's single-threaded
// setup, num_threads == 0 resolves to std::thread::hardware_concurrency(),
// and num_threads > 1 asks for exactly that many workers. All parallel
// kernels are written so that their output is bit-identical for every
// thread count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dgc {

/// Resolves a user-facing `num_threads` option: positive values pass
/// through, 0 becomes std::thread::hardware_concurrency() (at least 1),
/// and negative values clamp to 1.
int ResolveNumThreads(int num_threads);

/// \brief A basic work-queue thread pool that can grow on demand.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Grows the pool to at least `num_threads` workers. No-op when the pool
  /// is already that large. Thread-safe.
  void EnsureWorkers(int num_threads);

  int num_threads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief The process-wide persistent pool used by the ParallelFor family.
///
/// Lazily created on first use with hardware_concurrency() - 1 workers (the
/// thread entering a parallel region always participates as worker 0) and
/// grown on demand when a caller requests more threads than that.
ThreadPool& GlobalThreadPool();

/// \brief Dynamic-chunk parallel loop with stable worker identities.
///
/// Runs body(worker, chunk_begin, chunk_end) for dynamically claimed chunks
/// of [begin, end), where `worker` is in [0, resolved_threads): the calling
/// thread is worker 0 and pool workers take ids 1..resolved_threads-1, so
/// callers can index per-worker workspaces by `worker` without locking.
/// Chunks of `grain` indices are claimed from a shared atomic counter
/// (grain <= 0 picks n / (8 * threads), at least 1). `num_threads` follows
/// the 0 = hardware-concurrency convention. Runs inline as worker 0 when
/// one thread is requested, the range has a single index, or the caller is
/// itself inside a parallel region (nested parallelism is serialized).
///
/// Chunk-to-worker assignment is nondeterministic; loops stay deterministic
/// by making body(i) depend only on i and write only to i-indexed slots.
void ParallelForWorkers(int64_t begin, int64_t end, int num_threads,
                        int64_t grain,
                        const std::function<void(int, int64_t, int64_t)>& body);

/// \brief Runs body(i) for i in [begin, end) across `num_threads` threads,
/// dynamically chunked. With num_threads == 1 runs inline.
void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t)>& body);

/// \brief Chunked variant: body(chunk_begin, chunk_end) per claimed chunk.
/// Lower overhead when per-index work is tiny. A worker may receive several
/// chunks (dynamic scheduling), so per-chunk state must not assume one
/// chunk per thread; use ParallelForWorkers for per-worker workspaces.
void ParallelForChunked(
    int64_t begin, int64_t end, int num_threads,
    const std::function<void(int64_t, int64_t)>& body);

}  // namespace dgc
