// LSD radix sort for the column-index arrays of the SpGEMM hot path.
//
// EmitRow sorts every output row's touched-column list; on hub-heavy
// similarity rows that list runs to thousands of entries and std::sort's
// comparison cost dominates the row. Column indices are non-negative
// int32 values bounded by the matrix dimension, so a byte-wise LSD
// counting sort does the same job in a small number of linear passes —
// and because the keys are distinct, any correct sort produces the same
// permutation, keeping output bit-identical to the std::sort path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace dgc {

/// Below this length the O(n log n) comparison sort wins on constants.
inline constexpr size_t kRadixSortMinLength = 128;

/// Sorts data[0, n) of non-negative int32 keys ascending. `scratch` must
/// have room for n entries; `bound` is an exclusive upper bound on the keys
/// (the matrix dimension) used to skip all-zero high-byte passes. Produces
/// exactly the std::sort order (keys need not be distinct — the sort is
/// stable, and equal int32 keys are indistinguishable anyway).
inline void RadixSortIndices(int32_t* data, size_t n, int32_t* scratch,
                             int32_t bound) {
  if (n < kRadixSortMinLength) {
    std::sort(data, data + n);
    return;
  }
  int passes = 0;
  for (uint32_t limit = static_cast<uint32_t>(bound > 0 ? bound - 1 : 0);
       limit != 0; limit >>= 8) {
    ++passes;
  }
  int32_t* src = data;
  int32_t* dst = scratch;
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = 8 * pass;
    size_t count[256] = {0};
    for (size_t i = 0; i < n; ++i) {
      ++count[(static_cast<uint32_t>(src[i]) >> shift) & 0xff];
    }
    size_t run = 0;
    for (size_t b = 0; b < 256; ++b) {
      const size_t c = count[b];
      count[b] = run;
      run += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[count[(static_cast<uint32_t>(src[i]) >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) {
    std::memcpy(data, src, n * sizeof(int32_t));
  }
}

}  // namespace dgc
