// Result<T>: value-or-Status, the return type for fallible functions that
// produce a value. Mirrors arrow::Result / absl::StatusOr.
#pragma once

#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace dgc {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value could not be produced.
///
/// Usage:
/// \code
///   Result<CsrMatrix> m = CsrMatrix::FromTriplets(...);
///   if (!m.ok()) return m.status();
///   Use(m.ValueOrDie());
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT

  /// Implicit from an error Status. Constructing from an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    if (std::get<Status>(storage_).ok()) {
      storage_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  /// The contained value. Must only be called when ok(); misuse is fatal
  /// even under NDEBUG (a wrong value extracted here corrupts everything
  /// downstream, so this is never compiled out).
  const T& ValueOrDie() const& {
    DGC_CHECK(ok()) << "ValueOrDie called on error Result: " << status();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    DGC_CHECK(ok()) << "ValueOrDie called on error Result: " << status();
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    DGC_CHECK(ok()) << "ValueOrDie called on error Result: " << status();
    return std::get<T>(std::move(storage_));
  }

  /// Alias used at call sites that have already checked ok().
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> storage_;
};

}  // namespace dgc

/// Evaluates `rexpr` (a Result<T>), propagating its error; on success binds
/// the value to `lhs`. `lhs` may include a type declaration.
#define DGC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define DGC_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DGC_ASSIGN_OR_RETURN_NAME(x, y) DGC_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DGC_ASSIGN_OR_RETURN(lhs, rexpr) \
  DGC_ASSIGN_OR_RETURN_IMPL(             \
      DGC_ASSIGN_OR_RETURN_NAME(_dgc_result_, __LINE__), lhs, rexpr)
