#include "core/discount.h"

#include <cmath>

namespace dgc {

std::string DiscountSpec::ToString() const {
  switch (kind) {
    case DiscountKind::kNone:
      return "0";
    case DiscountKind::kLog:
      return "log";
    case DiscountKind::kPower: {
      // Trim trailing zeros for tidy table output (0.5, 0.25, 1).
      std::string s = std::to_string(exponent);
      while (!s.empty() && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
      return s;
    }
  }
  return "?";
}

std::vector<Scalar> DiscountFactors(std::span<const Offset> degrees,
                                    const DiscountSpec& spec) {
  std::vector<Scalar> out(degrees.size());
  for (size_t i = 0; i < degrees.size(); ++i) {
    const Scalar d = static_cast<Scalar>(degrees[i]);
    switch (spec.kind) {
      case DiscountKind::kNone:
        out[i] = 1.0;
        break;
      case DiscountKind::kPower:
        out[i] = d > 0.0 ? std::pow(d, -spec.exponent) : 0.0;
        break;
      case DiscountKind::kLog:
        out[i] = d > 0.0 ? 1.0 / std::log1p(d) : 0.0;
        break;
    }
  }
  return out;
}

std::vector<Scalar> Sqrt(std::span<const Scalar> v) {
  std::vector<Scalar> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = std::sqrt(v[i]);
  return out;
}

}  // namespace dgc
