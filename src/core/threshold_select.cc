#include "core/threshold_select.h"

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace dgc {

namespace {

/// Accumulates row `row` of (left * right) into the dense accumulator and
/// appends touched columns to `touched` (marker-based, reusable).
void AccumulateRow(const CsrMatrix& left, const CsrMatrix& right, Index row,
                   std::vector<Scalar>& accum, std::vector<Index>& marker,
                   std::vector<Index>& touched) {
  auto cols = left.RowCols(row);
  auto vals = left.RowValues(row);
  for (size_t i = 0; i < cols.size(); ++i) {
    const Index k = cols[i];
    const Scalar lv = vals[i];
    auto rcols = right.RowCols(k);
    auto rvals = right.RowValues(k);
    for (size_t j = 0; j < rcols.size(); ++j) {
      const Index c = rcols[j];
      if (marker[static_cast<size_t>(c)] != row) {
        marker[static_cast<size_t>(c)] = row;
        accum[static_cast<size_t>(c)] = 0.0;
        touched.push_back(c);
      }
      accum[static_cast<size_t>(c)] += lv * rvals[j];
    }
  }
}

}  // namespace

Result<ThresholdSelection> SelectPruneThreshold(
    const Digraph& g, SymmetrizationMethod method,
    const SymmetrizationOptions& sym_options,
    const ThresholdSelectOptions& select_options) {
  if (select_options.sample_size <= 0 ||
      select_options.target_avg_degree <= 0) {
    return Status::InvalidArgument(
        "sample_size and target_avg_degree must be positive");
  }
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument(
        "cannot select a prune threshold for an empty graph");
  }
  DGC_ASSIGN_OR_RETURN(SimilarityFactors factors,
                       BuildSimilarityFactors(g, method, sym_options));
  const Index n = g.NumVertices();
  const Index sample_size =
      std::min<Index>(select_options.sample_size, n);
  Rng rng(select_options.seed);
  std::vector<uint64_t> sample = rng.SampleWithoutReplacement(
      static_cast<uint64_t>(n), static_cast<uint64_t>(sample_size));

  const CsrMatrix mt = factors.m.Transpose();
  const CsrMatrix nt = factors.n.Transpose();

  std::vector<Scalar> accum(static_cast<size_t>(n), 0.0);
  std::vector<Index> marker(static_cast<size_t>(n), -1);
  std::vector<Index> touched;
  std::vector<Scalar> sampled_values;
  for (uint64_t su : sample) {
    if (select_options.cancel != nullptr &&
        select_options.cancel->Expired()) {
      return select_options.cancel->status();
    }
    const Index u = static_cast<Index>(su);
    touched.clear();
    // Row u of U = M Mᵀ + Nᵀ N; both terms share the accumulator.
    AccumulateRow(factors.m, mt, u, accum, marker, touched);
    AccumulateRow(nt, factors.n, u, accum, marker, touched);
    for (Index c : touched) {
      if (c == u) continue;  // diagonal never survives symmetrization
      const Scalar v = accum[static_cast<size_t>(c)];
      if (v > 0.0) sampled_values.push_back(v);
    }
  }

  ThresholdSelection selection;
  selection.sampled_avg_degree =
      static_cast<double>(sampled_values.size()) /
      static_cast<double>(sample_size);
  const size_t want = static_cast<size_t>(sample_size) *
                      static_cast<size_t>(select_options.target_avg_degree);
  if (sampled_values.size() <= want) {
    selection.threshold = 0.0;  // already sparse enough
    return selection;
  }
  // The value at rank `want` (0-based) keeps ~target_avg_degree per node.
  std::nth_element(sampled_values.begin(),
                   sampled_values.begin() + static_cast<long>(want),
                   sampled_values.end(), std::greater<Scalar>());
  selection.threshold = sampled_values[want];
  return selection;
}

}  // namespace dgc
