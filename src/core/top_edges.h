// Heaviest edges of a symmetrized graph (the paper's Table 5): hub-related
// artifacts dominate Bibliometric / Random walk, while Degree-discounted
// surfaces near-duplicate pairs.
#pragma once

#include <string>
#include <vector>

#include "graph/ugraph.h"

namespace dgc {

/// One edge of the Table-5 report.
struct WeightedEdge {
  Index u = 0;
  Index v = 0;
  Scalar weight = 0.0;

  bool operator==(const WeightedEdge&) const = default;
};

/// \brief The k heaviest undirected edges (u < v), sorted by descending
/// weight; ties broken by (u, v) for determinism. Returns fewer than k if
/// the graph has fewer edges.
std::vector<WeightedEdge> TopWeightedEdges(const UGraph& g, Index k);

/// \brief Edge weights normalized by the smallest positive edge weight, as
/// the paper does for Table 5 ("normalized by the lowest edge weight in the
/// graph, as the non-normalized weights are incommensurable").
std::vector<WeightedEdge> TopWeightedEdgesNormalized(const UGraph& g,
                                                     Index k);

}  // namespace dgc
