#include "core/all_pairs.h"

#include <algorithm>
#include <vector>

#include "obs/span.h"
#include "util/thread_pool.h"

namespace dgc {

namespace {

/// Per-worker state for the row-parallel candidate search: the dense
/// accumulator/marker pair, the scratch vectors of the serial algorithm,
/// the worker's buffered output rows, and its partial stats. Stats merge
/// deterministically because they are sums of per-row integer counts —
/// integer addition is associative, so the total is independent of which
/// worker processed which row.
struct AllPairsWorkspace {
  std::vector<Scalar> accum;
  std::vector<Index> marker;
  std::vector<Index> touched;
  std::vector<Scalar> suffix_bound;
  std::vector<Index> rows;   ///< output rows buffered by this worker
  std::vector<Index> cols;   ///< their column indices, concatenated
  std::vector<Scalar> vals;  ///< their values, concatenated
  AllPairsStats stats;

  void EnsureSize(Index n) {
    if (static_cast<Index>(marker.size()) < n) {
      accum.assign(static_cast<size_t>(n), 0.0);
      marker.assign(static_cast<size_t>(n), -1);
    }
  }
};

/// Computes output row `i` (candidate generation + Bayardo bounds),
/// appending surviving pairs to w.cols / w.vals. Identical decision
/// sequence to the original serial loop, so any row partition yields the
/// same rows.
void ComputeAllPairsRow(const CsrMatrix& m, const CsrMatrix& mt,
                        const std::vector<Scalar>& col_max, Index i,
                        const AllPairsOptions& options,
                        AllPairsWorkspace& w) {
  const Scalar t = options.threshold;
  auto cols = m.RowCols(i);
  auto vals = m.RowValues(i);
  // Suffix bounds: suffix_bound[p] = sum_{q >= p} vals[q] * col_max[c_q]
  // bounds the similarity any pair first met at feature p can still
  // accumulate.
  w.suffix_bound.assign(cols.size() + 1, 0.0);
  for (size_t p = cols.size(); p-- > 0;) {
    w.suffix_bound[p] = w.suffix_bound[p + 1] +
                        vals[p] * col_max[static_cast<size_t>(cols[p])];
  }
  // Row-level bound: if even the full row cannot reach t against the
  // best possible partner, no output pair involves row i.
  if (!cols.empty() && w.suffix_bound[0] < t) {
    ++w.stats.skipped_rows;
    return;
  }
  w.touched.clear();
  for (size_t p = 0; p < cols.size(); ++p) {
    const Index c = cols[p];
    const Scalar vi = vals[p];
    const bool allow_new = w.suffix_bound[p] >= t;
    auto jrows = mt.RowCols(c);
    auto jvals = mt.RowValues(c);
    for (size_t q = 0; q < jrows.size(); ++q) {
      const Index j = jrows[q];
      if (w.marker[static_cast<size_t>(j)] == i) {
        w.accum[static_cast<size_t>(j)] += vi * jvals[q];
      } else if (allow_new) {
        // A pair first met here can only reach suffix_bound[p]; when
        // that is below t it is provably below threshold and skipped.
        w.marker[static_cast<size_t>(j)] = i;
        w.accum[static_cast<size_t>(j)] = vi * jvals[q];
        w.touched.push_back(j);
      }
    }
  }
  w.stats.candidate_pairs += static_cast<int64_t>(w.touched.size());
  std::sort(w.touched.begin(), w.touched.end());
  for (Index j : w.touched) {
    if (options.drop_diagonal && j == i) continue;
    const Scalar s = w.accum[static_cast<size_t>(j)];
    if (s < t) continue;
    w.cols.push_back(j);
    w.vals.push_back(s);
    ++w.stats.output_pairs;
  }
}

}  // namespace

Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options) {
  return AllPairsSimilarity(m, options, nullptr);
}

Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options,
                                     AllPairsStats* stats) {
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument(
        "all-pairs similarity requires a positive threshold");
  }
  for (Scalar v : m.values()) {
    if (v < 0.0) {
      return Status::InvalidArgument(
          "all-pairs similarity requires non-negative values");
    }
  }
  const Index rows = m.rows();
  const int threads = static_cast<int>(std::min<int64_t>(
      ResolveNumThreads(options.num_threads), std::max<Index>(rows, 1)));
  StageSpan span(options.metrics, "all_pairs");
  if (span.live()) {
    span.Metric("rows", rows);
    span.Metric("input_nnz", m.nnz());
    span.Metric("threshold", options.threshold);
  }

  // Inverted index = Mᵀ (rows of mt are the columns of m).
  const CsrMatrix mt = m.Transpose(threads);
  // Column maxima: the largest value any row has in column c. Each column
  // is reduced independently, so the parallel loop is deterministic.
  std::vector<Scalar> col_max(static_cast<size_t>(m.cols()), 0.0);
  ParallelForChunked(0, mt.rows(), threads, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      Scalar best = 0.0;
      for (Scalar v : mt.RowValues(static_cast<Index>(c))) {
        best = std::max(best, v);
      }
      col_max[static_cast<size_t>(c)] = best;
    }
  });

  // Pass 1: compute every output row into per-worker buffers (dynamic
  // chunking over the persistent pool), recording the per-row nnz.
  std::vector<AllPairsWorkspace> workspaces(static_cast<size_t>(threads));
  std::vector<Offset> row_nnz(static_cast<size_t>(rows), 0);
  ParallelForWorkers(
      0, rows, threads, /*grain=*/0,
      [&](int worker, int64_t lo, int64_t hi) {
        AllPairsWorkspace& w = workspaces[static_cast<size_t>(worker)];
        w.EnsureSize(rows);
        for (int64_t r = lo; r < hi; ++r) {
          const size_t before = w.cols.size();
          ComputeAllPairsRow(m, mt, col_max, static_cast<Index>(r), options,
                             w);
          row_nnz[static_cast<size_t>(r)] =
              static_cast<Offset>(w.cols.size() - before);
          w.rows.push_back(static_cast<Index>(r));
        }
      });

  // Serial prefix sum of row pointers: deterministic for any thread count.
  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  for (Index r = 0; r < rows; ++r) {
    row_ptr[static_cast<size_t>(r) + 1] =
        row_ptr[static_cast<size_t>(r)] + row_nnz[static_cast<size_t>(r)];
  }

  // Pass 2: each worker copies its buffered rows into the final CSR at the
  // now-known offsets; stats merge as plain sums in worker order.
  std::vector<Index> out_cols(static_cast<size_t>(row_ptr.back()));
  std::vector<Scalar> out_vals(static_cast<size_t>(row_ptr.back()));
  ParallelFor(0, threads, threads, [&](int64_t wi) {
    const AllPairsWorkspace& w = workspaces[static_cast<size_t>(wi)];
    size_t pos = 0;
    for (Index r : w.rows) {
      const size_t k = static_cast<size_t>(row_nnz[static_cast<size_t>(r)]);
      std::copy_n(w.cols.begin() + static_cast<long>(pos), k,
                  out_cols.begin() + row_ptr[static_cast<size_t>(r)]);
      std::copy_n(w.vals.begin() + static_cast<long>(pos), k,
                  out_vals.begin() + row_ptr[static_cast<size_t>(r)]);
      pos += k;
    }
  });
  if (stats != nullptr || span.live()) {
    AllPairsStats merged;
    for (const AllPairsWorkspace& w : workspaces) {
      merged.candidate_pairs += w.stats.candidate_pairs;
      merged.output_pairs += w.stats.output_pairs;
      merged.skipped_rows += w.stats.skipped_rows;
    }
    if (stats != nullptr) *stats = merged;
    if (span.live()) {
      span.Metric("candidate_pairs", merged.candidate_pairs);
      span.Metric("output_pairs", merged.output_pairs);
      span.Metric("skipped_rows", merged.skipped_rows);
      span.Metric("output_nnz", row_ptr.back());
      span.PerfMetric("workers", threads);
    }
  }
  // Correct by construction: rows emitted in order, `touched` sorted before
  // the output pass, every j < rows.
  CsrMatrix sim = CsrMatrix::FromPartsUnchecked(
      rows, rows, std::move(row_ptr), std::move(out_cols),
      std::move(out_vals));
  sim.ValidateStructure("AllPairsSimilarity");
  return sim;
}

}  // namespace dgc
