#include "core/all_pairs.h"

#include <algorithm>
#include <vector>

namespace dgc {

Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options) {
  return AllPairsSimilarity(m, options, nullptr);
}

Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options,
                                     AllPairsStats* stats) {
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument(
        "all-pairs similarity requires a positive threshold");
  }
  for (Scalar v : m.values()) {
    if (v < 0.0) {
      return Status::InvalidArgument(
          "all-pairs similarity requires non-negative values");
    }
  }
  const Index rows = m.rows();
  const Scalar t = options.threshold;
  AllPairsStats local_stats;

  // Inverted index = Mᵀ (rows of mt are the columns of m).
  const CsrMatrix mt = m.Transpose();
  // Column maxima: the largest value any row has in column c.
  std::vector<Scalar> col_max(static_cast<size_t>(m.cols()), 0.0);
  for (Index c = 0; c < mt.rows(); ++c) {
    for (Scalar v : mt.RowValues(c)) {
      col_max[static_cast<size_t>(c)] =
          std::max(col_max[static_cast<size_t>(c)], v);
    }
  }

  std::vector<Scalar> accum(static_cast<size_t>(rows), 0.0);
  std::vector<Index> marker(static_cast<size_t>(rows), -1);
  std::vector<Index> touched;
  std::vector<Scalar> suffix_bound;

  std::vector<Offset> row_ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<Index> out_cols;
  std::vector<Scalar> out_vals;
  for (Index i = 0; i < rows; ++i) {
    auto cols = m.RowCols(i);
    auto vals = m.RowValues(i);
    // Suffix bounds: suffix_bound[p] = sum_{q >= p} vals[q] * col_max[c_q]
    // bounds the similarity any pair first met at feature p can still
    // accumulate.
    suffix_bound.assign(cols.size() + 1, 0.0);
    for (size_t p = cols.size(); p-- > 0;) {
      suffix_bound[p] = suffix_bound[p + 1] +
                        vals[p] * col_max[static_cast<size_t>(cols[p])];
    }
    // Row-level bound: if even the full row cannot reach t against the
    // best possible partner, no output pair involves row i.
    if (!cols.empty() && suffix_bound[0] < t) {
      ++local_stats.skipped_rows;
      row_ptr[static_cast<size_t>(i) + 1] =
          static_cast<Offset>(out_cols.size());
      continue;
    }
    touched.clear();
    for (size_t p = 0; p < cols.size(); ++p) {
      const Index c = cols[p];
      const Scalar vi = vals[p];
      const bool allow_new = suffix_bound[p] >= t;
      auto jrows = mt.RowCols(c);
      auto jvals = mt.RowValues(c);
      for (size_t q = 0; q < jrows.size(); ++q) {
        const Index j = jrows[q];
        if (marker[static_cast<size_t>(j)] == i) {
          accum[static_cast<size_t>(j)] += vi * jvals[q];
        } else if (allow_new) {
          // A pair first met here can only reach suffix_bound[p]; when
          // that is below t it is provably below threshold and skipped.
          marker[static_cast<size_t>(j)] = i;
          accum[static_cast<size_t>(j)] = vi * jvals[q];
          touched.push_back(j);
        }
      }
    }
    local_stats.candidate_pairs += static_cast<int64_t>(touched.size());
    std::sort(touched.begin(), touched.end());
    for (Index j : touched) {
      if (options.drop_diagonal && j == i) continue;
      const Scalar s = accum[static_cast<size_t>(j)];
      if (s < t) continue;
      out_cols.push_back(j);
      out_vals.push_back(s);
      ++local_stats.output_pairs;
    }
    row_ptr[static_cast<size_t>(i) + 1] =
        static_cast<Offset>(out_cols.size());
  }
  if (stats != nullptr) *stats = local_stats;
  // Correct by construction: rows emitted in order, `touched` sorted before
  // the output pass, every j < rows.
  CsrMatrix sim = CsrMatrix::FromPartsUnchecked(
      rows, rows, std::move(row_ptr), std::move(out_cols),
      std::move(out_vals));
  sim.ValidateStructure("AllPairsSimilarity");
  return sim;
}

}  // namespace dgc
