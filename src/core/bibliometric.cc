#include "core/symmetrize.h"

#include "linalg/spgemm.h"

namespace dgc {

Result<UGraph> SymmetrizeBibliometric(const Digraph& g,
                                      const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  CsrMatrix a = g.adjacency();
  if (options.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a, a.PlusIdentity());
  }
  // Pruning note: an entry of U = AAᵀ + AᵀA can only reach the threshold if
  // at least one of its two addends reaches threshold/2, so pruning each
  // product at threshold/2 and the sum at the full threshold loses only
  // entries whose exact value is already below the threshold plus an
  // addend-level epsilon. This mirrors how the paper keeps the intermediate
  // matrices tractable (Section 3.5).
  SpGemmOptions product_options;
  product_options.threshold = options.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options.num_threads;

  DGC_ASSIGN_OR_RETURN(CsrMatrix coupling, SpGemmAAt(a, product_options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix cocitation, SpGemmAtA(a, product_options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(coupling, cocitation));
  if (options.prune_threshold > 0.0) {
    u = u.Pruned(options.prune_threshold, /*drop_diagonal=*/true);
  }
  u.ValidateStructure("SymmetrizeBibliometric");
  return UGraph::FromSymmetricAdjacency(std::move(u),
                                        /*drop_self_loops=*/true);
}

}  // namespace dgc
