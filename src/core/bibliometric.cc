#include "core/symmetrize.h"

#include <vector>

#include "core/out_of_core.h"
#include "linalg/reorder.h"
#include "linalg/spgemm.h"
#include "linalg/spgemm_tiled.h"
#include "obs/span.h"

namespace dgc {

namespace {

/// Reference Bibliometric path (correctness oracle for the fused kernels):
/// two full SpGEMMs against freshly materialized transposes, then separate
/// Add and Pruned passes.
Result<CsrMatrix> BibliometricReference(const CsrMatrix& a,
                                        const SymmetrizationOptions& options,
                                        const SpGemmOptions& product_options) {
  DGC_ASSIGN_OR_RETURN(CsrMatrix coupling, SpGemmAAt(a, product_options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix cocitation, SpGemmAtA(a, product_options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(coupling, cocitation));
  if (options.prune_threshold > 0.0) {
    StageSpan prune_span(options.metrics, "prune");
    const Offset before = u.nnz();
    u = u.Pruned(options.prune_threshold, /*drop_diagonal=*/true);
    prune_span.Metric("pruned_entries", before - u.nnz());
  }
  return u;
}

/// Fused Bibliometric path (the default): AAᵀ and AᵀA are both symmetric,
/// so only their upper triangles are computed (no scaling needed —
/// Bibliometric's factors are A itself), against one shared transpose: the
/// coupling product AAᵀ indexes into Aᵀ, and the co-citation product AᵀA is
/// the AAt pattern on Aᵀ whose inverted index is A. The sum, final prune
/// and mirror happen in one fused pass.
Result<CsrMatrix> BibliometricFused(const CsrMatrix& a,
                                    const SymmetrizationOptions& options,
                                    const SpGemmOptions& product_options) {
  CsrMatrix at;
  {
    StageSpan transpose_span(options.metrics, "transpose");
    at = a.Transpose(options.num_threads);
    transpose_span.Metric("nnz", at.nnz());
  }
  // Out-of-core: budget-driven (or forced) tiled execution of both
  // triangles + the fused sum, bit-identical to the in-memory branch;
  // `reorder` is skipped when tiling engages (docs/OUT_OF_CORE.md).
  if (core_internal::ShouldTileSimilarity(a, at, options)) {
    return TiledSymmetricProductSum(
        a, at, {}, {}, {}, {},
        core_internal::MakeTiledSimilarityOptions(options));
  }
  CsrMatrix coupling_upper;
  CsrMatrix cocitation_upper;
  if (options.reorder != ReorderMethod::kNone) {
    // Row-permuted products for accumulator locality, un-permuted before
    // the sum; bit-identical to the direct path (linalg/reorder.h).
    std::vector<Index> perm;
    {
      StageSpan reorder_span(options.metrics, "reorder");
      reorder_span.Metric("method", ReorderMethodName(options.reorder));
      perm = BuildReorderPermutation(options.reorder, a, at);
    }
    DGC_ASSIGN_OR_RETURN(
        coupling_upper,
        SpGemmAAtSymmetricReordered(a, {}, {}, product_options, perm));
    DGC_ASSIGN_OR_RETURN(
        cocitation_upper,
        SpGemmAAtSymmetricReordered(at, {}, {}, product_options, perm));
  } else {
    DGC_ASSIGN_OR_RETURN(coupling_upper,
                         SpGemmAAtSymmetric(a, {}, {}, product_options, &at));
    DGC_ASSIGN_OR_RETURN(cocitation_upper,
                         SpGemmAAtSymmetric(at, {}, {}, product_options, &a));
  }
  SpGemmOptions sum_options;
  sum_options.threshold = options.prune_threshold;
  sum_options.drop_diagonal = true;
  sum_options.num_threads = options.num_threads;
  sum_options.metrics = options.metrics;
  sum_options.cancel = options.cancel;
  return SpGemmSymmetricSum(coupling_upper, cocitation_upper, sum_options);
}

}  // namespace

Result<UGraph> SymmetrizeBibliometric(const Digraph& g,
                                      const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  StageSpan span(options.metrics, "symmetrize");
  span.Metric("method",
              SymmetrizationMethodName(SymmetrizationMethod::kBibliometric));
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_arcs", g.NumEdges());
  span.Metric("prune_threshold", options.prune_threshold);
  span.Metric("engine", options.engine == SimilarityEngine::kFused
                            ? "fused"
                            : "reference");
  CsrMatrix a = g.adjacency();
  if (options.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a, a.PlusIdentity());
  }
  // Pruning note: an entry of U = AAᵀ + AᵀA can only reach the threshold if
  // at least one of its two addends reaches threshold/2, so pruning each
  // product at threshold/2 and the sum at the full threshold loses only
  // entries whose exact value is already below the threshold plus an
  // addend-level epsilon. This mirrors how the paper keeps the intermediate
  // matrices tractable (Section 3.5).
  SpGemmOptions product_options;
  product_options.threshold = options.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options.num_threads;
  product_options.metrics = options.metrics;
  product_options.cancel = options.cancel;

  DGC_ASSIGN_OR_RETURN(
      CsrMatrix u, options.engine == SimilarityEngine::kFused
                       ? BibliometricFused(a, options, product_options)
                       : BibliometricReference(a, options, product_options));
  u.ValidateStructure("SymmetrizeBibliometric");
  DGC_ASSIGN_OR_RETURN(
      UGraph ug, UGraph::FromSymmetricAdjacency(std::move(u),
                                                /*drop_self_loops=*/true));
  span.Metric("output_nnz", ug.adjacency().nnz());
  span.Metric("output_edges", ug.NumEdges());
  return ug;
}

}  // namespace dgc
