// All-pairs similarity search with threshold-based candidate pruning, after
// Bayardo, Ma & Srikant (WWW 2007) — the optimization the paper's
// complexity analysis (Section 3.6) points to for "curtailing similarity
// computations that will provably lead to similarities lower than the prune
// threshold".
//
// Computes exactly the same matrix as SpGemmAAt(M) thresholded at t, but
// skips work using two classic bounds:
//   * size/maxweight bound: a row whose total outgoing mass times the
//     global column maximum cannot reach t is never expanded;
//   * per-candidate upper bound: accumulation for a candidate pair stops
//     contributing once the remaining possible mass cannot lift it to t.
// On graphs with steep weight skew this prunes most candidate pairs; the
// ablation benchmark (bench_ablation_allpairs) quantifies the speedup.
#pragma once

#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

struct AllPairsOptions {
  /// Similarity threshold t > 0; pairs strictly below t are dropped.
  Scalar threshold = 0.1;
  /// Drop the diagonal (self-similarity), as the symmetrizations do.
  bool drop_diagonal = true;
  /// Row-parallelism (the library-wide convention: 1 = the paper's serial
  /// setup, 0 = one thread per hardware core). Output rows and the reported
  /// AllPairsStats are bit-identical for every setting: rows are
  /// independent, and the stats are sums of per-row integer counts.
  int num_threads = 1;

  /// Optional observability sink (obs/metrics.h). When non-null the search
  /// records a span carrying the AllPairsStats counters; when null — the
  /// default — no instrumentation runs at all.
  MetricsRegistry* metrics = nullptr;
};

/// \brief Computes the thresholded self-similarity S = M Mᵀ (entries >= t
/// only) by candidate generation over an inverted index of M's columns,
/// with Bayardo-style upper-bound pruning.
///
/// Requires non-negative values (similarity semantics); returns
/// InvalidArgument otherwise or when threshold <= 0.
Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options = {});

/// Statistics from the last candidate-pruning run (for the ablation bench).
struct AllPairsStats {
  int64_t candidate_pairs = 0;  ///< pairs whose accumulator was touched
  int64_t output_pairs = 0;     ///< pairs that met the threshold
  int64_t skipped_rows = 0;     ///< rows pruned by the row-level bound
};

/// As above, also reporting work statistics.
Result<CsrMatrix> AllPairsSimilarity(const CsrMatrix& m,
                                     const AllPairsOptions& options,
                                     AllPairsStats* stats);

}  // namespace dgc
