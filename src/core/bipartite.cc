#include "core/bipartite.h"

#include <vector>

#include "linalg/spgemm.h"

namespace dgc {

namespace {

/// Shared implementation: similarity among the rows of `b` after scaling
/// rows by side_discount(row degree) and columns by
/// sqrt(shared_discount(col degree)) — so that M Mᵀ carries one full
/// shared-neighbor discount per common column.
Result<CsrMatrix> ScaledRowProduct(const CsrMatrix& b,
                                   const BipartiteOptions& options) {
  const std::vector<Offset> row_deg = b.RowCounts();
  const std::vector<Offset> col_deg = b.ColCounts();
  CsrMatrix m = b;
  m.ScaleRows(DiscountFactors(row_deg, options.side_discount));
  m.ScaleCols(Sqrt(DiscountFactors(col_deg, options.shared_discount)));
  SpGemmOptions product;
  product.threshold = options.prune_threshold;
  product.drop_diagonal = true;
  product.num_threads = options.num_threads;
  return SpGemmAAt(m, product);
}

}  // namespace

Result<UGraph> BipartiteRowSimilarity(const CsrMatrix& b,
                                      const BipartiteOptions& options) {
  if (b.rows() == 0 || b.cols() == 0) {
    return Status::InvalidArgument("empty bipartite adjacency");
  }
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, ScaledRowProduct(b, options));
  return UGraph::FromSymmetricAdjacency(std::move(u));
}

Result<UGraph> BipartiteColumnSimilarity(const CsrMatrix& b,
                                         const BipartiteOptions& options) {
  if (b.rows() == 0 || b.cols() == 0) {
    return Status::InvalidArgument("empty bipartite adjacency");
  }
  DGC_ASSIGN_OR_RETURN(CsrMatrix u,
                       ScaledRowProduct(b.Transpose(), options));
  return UGraph::FromSymmetricAdjacency(std::move(u));
}

Result<UGraph> BipartiteCoClusterGraph(const CsrMatrix& b,
                                       const BipartiteOptions& options) {
  if (b.rows() == 0 || b.cols() == 0) {
    return Status::InvalidArgument("empty bipartite adjacency");
  }
  DGC_ASSIGN_OR_RETURN(CsrMatrix rows, ScaledRowProduct(b, options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix cols,
                       ScaledRowProduct(b.Transpose(), options));
  // Cross block: the adjacency itself, scaled symmetrically so its weights
  // are commensurate with the similarity blocks.
  CsrMatrix cross = b;
  cross.ScaleRows(DiscountFactors(b.RowCounts(), options.side_discount));
  cross.ScaleCols(DiscountFactors(b.ColCounts(), options.side_discount));

  const Index n = b.rows() + b.cols();
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(rows.nnz() + cols.nnz() +
                                       2 * cross.nnz()));
  auto append = [&triplets](const CsrMatrix& m, Index row_off, Index col_off,
                            bool mirror) {
    for (Index r = 0; r < m.rows(); ++r) {
      auto cs = m.RowCols(r);
      auto vs = m.RowValues(r);
      for (size_t i = 0; i < cs.size(); ++i) {
        triplets.push_back(
            Triplet{row_off + r, col_off + cs[i], vs[i]});
        if (mirror) {
          triplets.push_back(
              Triplet{col_off + cs[i], row_off + r, vs[i]});
        }
      }
    }
  };
  append(rows, 0, 0, /*mirror=*/false);
  append(cols, b.rows(), b.rows(), /*mirror=*/false);
  append(cross, 0, b.rows(), /*mirror=*/true);
  DGC_ASSIGN_OR_RETURN(CsrMatrix joint,
                       CsrMatrix::FromTriplets(n, n, std::move(triplets)));
  return UGraph::FromSymmetricAdjacency(std::move(joint));
}

}  // namespace dgc
