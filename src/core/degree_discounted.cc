#include <algorithm>
#include <vector>

#include "core/out_of_core.h"
#include "core/symmetrize.h"
#include "linalg/reorder.h"
#include "linalg/spgemm.h"
#include "linalg/spgemm_tiled.h"
#include "linalg/vector_ops.h"
#include "obs/span.h"

namespace dgc {

namespace {

/// The reference Degree-discounted path, kept as the correctness oracle for
/// the fused kernels: materialize the scaled factor copies, run two full
/// SpGEMMs, then separate Add and Pruned passes (six full-size
/// intermediates).
Result<CsrMatrix> DegreeDiscountedReference(
    const Digraph& g, const SymmetrizationOptions& options) {
  DGC_ASSIGN_OR_RETURN(
      SimilarityFactors factors,
      BuildSimilarityFactors(g, SymmetrizationMethod::kDegreeDiscounted,
                             options));

  SpGemmOptions product_options;
  product_options.threshold = options.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options.num_threads;
  product_options.metrics = options.metrics;
  product_options.cancel = options.cancel;

  DGC_ASSIGN_OR_RETURN(CsrMatrix bd, SpGemmAAt(factors.m, product_options));
  DGC_ASSIGN_OR_RETURN(CsrMatrix cd, SpGemmAtA(factors.n, product_options));

  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(bd, cd));
  if (options.prune_threshold > 0.0) {
    StageSpan prune_span(options.metrics, "prune");
    const Offset before = u.nnz();
    u = u.Pruned(options.prune_threshold, /*drop_diagonal=*/true);
    prune_span.Metric("pruned_entries", before - u.nnz());
  }
  return u;
}

/// The fused symmetry-exploiting path (the default): one shared transpose
/// of A, upper-triangle products with the discounts applied on the fly, and
/// a fused add + prune + mirror. B_d = So A Si Aᵀ So is the AAt pattern on
/// A; C_d = Si Aᵀ So A Si is the same pattern on Aᵀ (whose inverted index
/// is A itself), so the single transpose serves both products.
Result<CsrMatrix> DegreeDiscountedFused(const Digraph& g,
                                        const SymmetrizationOptions& options) {
  CsrMatrix a = g.adjacency();
  if (options.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a, a.PlusIdentity());
  }
  CsrMatrix at;
  {
    StageSpan transpose_span(options.metrics, "transpose");
    at = a.Transpose(options.num_threads);
    transpose_span.Metric("nnz", at.nnz());
  }
  const std::vector<Offset> out_deg = a.RowCounts();
  const std::vector<Offset> in_deg = a.ColCounts();
  const std::vector<Scalar> so = DiscountFactors(out_deg, options.out_discount);
  const std::vector<Scalar> si = DiscountFactors(in_deg, options.in_discount);
  const std::vector<Scalar> sqrt_so = Sqrt(so);
  const std::vector<Scalar> sqrt_si = Sqrt(si);

  // Out-of-core: when the budget (or kForce) asks for it, the whole
  // product-sum runs tiled with a disk spool. Tiles reuse the per-row
  // kernels below with unchanged inner k-order, so the result is
  // bit-identical to the in-memory branch; `reorder` is skipped (tiling
  // already restructures locality).
  if (core_internal::ShouldTileSimilarity(a, at, options)) {
    return TiledSymmetricProductSum(
        a, at, so, sqrt_si, si, sqrt_so,
        core_internal::MakeTiledSimilarityOptions(options));
  }

  SpGemmOptions product_options;
  product_options.threshold = options.prune_threshold / 2.0;
  product_options.drop_diagonal = true;
  product_options.num_threads = options.num_threads;
  product_options.metrics = options.metrics;
  product_options.cancel = options.cancel;

  // Upper triangles of B_d (out-link similarity, factor (a·so_i)·√si_k) and
  // C_d (in-link similarity, factor (aᵀ·si_i)·√so_k) — the same per-entry
  // multiplication order BuildSimilarityFactors bakes into M and N, so both
  // triangles are bit-identical to the reference products. With reorder
  // enabled both products run on row-permuted factors for accumulator
  // locality and are un-permuted before the sum (linalg/reorder.h keeps the
  // values bit-identical either way).
  CsrMatrix bd_upper;
  CsrMatrix cd_upper;
  if (options.reorder != ReorderMethod::kNone) {
    std::vector<Index> perm;
    {
      StageSpan reorder_span(options.metrics, "reorder");
      reorder_span.Metric("method", ReorderMethodName(options.reorder));
      perm = BuildReorderPermutation(options.reorder, a, at);
    }
    DGC_ASSIGN_OR_RETURN(
        bd_upper,
        SpGemmAAtSymmetricReordered(a, so, sqrt_si, product_options, perm));
    DGC_ASSIGN_OR_RETURN(
        cd_upper,
        SpGemmAAtSymmetricReordered(at, si, sqrt_so, product_options, perm));
  } else {
    DGC_ASSIGN_OR_RETURN(
        bd_upper, SpGemmAAtSymmetric(a, so, sqrt_si, product_options, &at));
    DGC_ASSIGN_OR_RETURN(
        cd_upper, SpGemmAAtSymmetric(at, si, sqrt_so, product_options, &a));
  }

  SpGemmOptions sum_options;
  sum_options.threshold = options.prune_threshold;
  sum_options.drop_diagonal = true;
  sum_options.num_threads = options.num_threads;
  sum_options.metrics = options.metrics;
  sum_options.cancel = options.cancel;
  return SpGemmSymmetricSum(bd_upper, cd_upper, sum_options);
}

}  // namespace

Result<UGraph> SymmetrizeDegreeDiscounted(
    const Digraph& g, const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  StageSpan span(options.metrics, "symmetrize");
  span.Metric("method", SymmetrizationMethodName(
                            SymmetrizationMethod::kDegreeDiscounted));
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_arcs", g.NumEdges());
  span.Metric("prune_threshold", options.prune_threshold);
  span.Metric("engine", options.engine == SimilarityEngine::kFused
                            ? "fused"
                            : "reference");
  DGC_ASSIGN_OR_RETURN(CsrMatrix u,
                       options.engine == SimilarityEngine::kFused
                           ? DegreeDiscountedFused(g, options)
                           : DegreeDiscountedReference(g, options));
  u.ValidateStructure("SymmetrizeDegreeDiscounted");
  DGC_ASSIGN_OR_RETURN(
      UGraph ug, UGraph::FromSymmetricAdjacency(std::move(u),
                                                /*drop_self_loops=*/true));
  span.Metric("output_nnz", ug.adjacency().nnz());
  span.Metric("output_edges", ug.NumEdges());
  return ug;
}

Result<SimilarityFactors> BuildSimilarityFactors(
    const Digraph& g, SymmetrizationMethod method,
    const SymmetrizationOptions& options) {
  if (method != SymmetrizationMethod::kBibliometric &&
      method != SymmetrizationMethod::kDegreeDiscounted) {
    return Status::InvalidArgument(
        "similarity factors exist only for Bibliometric and "
        "Degree-discounted symmetrizations");
  }
  CsrMatrix a = g.adjacency();
  if (options.add_self_loops) {
    DGC_ASSIGN_OR_RETURN(a, a.PlusIdentity());
  }
  if (method == SymmetrizationMethod::kBibliometric) {
    return SimilarityFactors{a, a};
  }
  // Discounts are functions of the *unweighted* in/out degrees, per the
  // paper's D_o / D_i diagonal degree matrices.
  const std::vector<Offset> out_deg = a.RowCounts();
  const std::vector<Offset> in_deg = a.ColCounts();
  const std::vector<Scalar> so = DiscountFactors(out_deg, options.out_discount);
  const std::vector<Scalar> si = DiscountFactors(in_deg, options.in_discount);

  // B_d = So A Si Aᵀ So = M Mᵀ with M = So A sqrt(Si): the inner discount
  // splits across the two A factors, the outer applies per row.
  CsrMatrix m = a;
  m.ScaleRows(so);
  m.ScaleCols(Sqrt(si));
  // C_d = Si Aᵀ So A Si = Nᵀ N with N = sqrt(So) A Si. The column scaling
  // is applied first so that every entry of N carries the multiplication
  // order (a·si_j)·√so_k — the order the fused kernel evaluates on the fly
  // (its "row" factor in Aᵀ coordinates is si) — keeping the reference and
  // fused paths bit-identical.
  CsrMatrix n = std::move(a);
  n.ScaleCols(si);
  n.ScaleRows(Sqrt(so));
  return SimilarityFactors{std::move(m), std::move(n)};
}

Scalar DegreeDiscountedSimilarity(const Digraph& g,
                                  const CsrMatrix& a_transpose, Index i,
                                  Index j, const DiscountSpec& out_discount,
                                  const DiscountSpec& in_discount) {
  const CsrMatrix& a = g.adjacency();
  const std::vector<Offset> out_deg = a.RowCounts();
  const std::vector<Offset> in_deg = a.ColCounts();
  const std::vector<Scalar> so = DiscountFactors(out_deg, out_discount);
  const std::vector<Scalar> si = DiscountFactors(in_deg, in_discount);

  // Out-link similarity: sum over common out-neighbors k, discounted by the
  // in-degree of k and the out-degrees of i and j (Figure 3 intuition).
  auto intersect_sum = [](std::span<const Index> c1,
                          std::span<const Scalar> v1,
                          std::span<const Index> c2,
                          std::span<const Scalar> v2,
                          const std::vector<Scalar>& mid_scale) {
    Scalar acc = 0.0;
    size_t p = 0, q = 0;
    while (p < c1.size() && q < c2.size()) {
      if (c1[p] < c2[q]) {
        ++p;
      } else if (c2[q] < c1[p]) {
        ++q;
      } else {
        acc += v1[p] * v2[q] * mid_scale[static_cast<size_t>(c1[p])];
        ++p;
        ++q;
      }
    }
    return acc;
  };

  const Scalar bd = so[static_cast<size_t>(i)] * so[static_cast<size_t>(j)] *
                    intersect_sum(a.RowCols(i), a.RowValues(i), a.RowCols(j),
                                  a.RowValues(j), si);
  const Scalar cd =
      si[static_cast<size_t>(i)] * si[static_cast<size_t>(j)] *
      intersect_sum(a_transpose.RowCols(i), a_transpose.RowValues(i),
                    a_transpose.RowCols(j), a_transpose.RowValues(j), so);
  return bd + cd;
}

Scalar DegreeDiscountedSimilarity(const Digraph& g, Index i, Index j,
                                  const DiscountSpec& out_discount,
                                  const DiscountSpec& in_discount) {
  return DegreeDiscountedSimilarity(g, g.adjacency().Transpose(), i, j,
                                    out_discount, in_discount);
}

}  // namespace dgc
