#include "core/symmetrize.h"

namespace dgc {

Result<UGraph> SymmetrizeAPlusAT(const Digraph& g) {
  const CsrMatrix& a = g.adjacency();
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(a, a.Transpose()));
  u.ValidateStructure("SymmetrizeAPlusAT");
  return UGraph::FromSymmetricAdjacency(std::move(u),
                                        /*drop_self_loops=*/true);
}

}  // namespace dgc
