#include "core/symmetrize.h"
#include "obs/span.h"

namespace dgc {

Result<UGraph> SymmetrizeAPlusAT(const Digraph& g,
                                 const SymmetrizationOptions& options) {
  StageSpan span(options.metrics, "symmetrize");
  span.Metric("method", SymmetrizationMethodName(SymmetrizationMethod::kAPlusAT));
  const CsrMatrix& a = g.adjacency();
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_arcs", a.nnz());
  if (options.cancel != nullptr && options.cancel->Expired()) {
    return options.cancel->status();
  }
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(a, a.Transpose()));
  u.ValidateStructure("SymmetrizeAPlusAT");
  DGC_ASSIGN_OR_RETURN(
      UGraph ug, UGraph::FromSymmetricAdjacency(std::move(u),
                                                /*drop_self_loops=*/true));
  span.Metric("output_nnz", ug.adjacency().nnz());
  span.Metric("output_edges", ug.NumEdges());
  return ug;
}

}  // namespace dgc
