// Out-of-core decision + option plumbing for the fused similarity
// symmetrizations (Bibliometric, Degree-discounted): maps
// SymmetrizationOptions onto the tiled driver (linalg/spgemm_tiled.h) and
// decides — per OutOfCoreMode — whether a run should tile instead of
// relying on the in-memory kernels. Internal to src/core.
#pragma once

#include "core/symmetrize.h"
#include "linalg/spgemm_tiled.h"

namespace dgc {
namespace core_internal {

/// True when the fused similarity products should run tiled. kAuto tiles
/// exactly when a budget is set and the conservative in-memory estimate
/// exceeds it — the "degrade to tiling instead of kResourceExhausted"
/// contract (docs/OUT_OF_CORE.md). The choice never changes the output,
/// only the peak footprint.
inline bool ShouldTileSimilarity(const CsrMatrix& a, const CsrMatrix& at,
                                 const SymmetrizationOptions& options) {
  switch (options.out_of_core) {
    case OutOfCoreMode::kOff:
      return false;
    case OutOfCoreMode::kForce:
      return true;
    case OutOfCoreMode::kAuto:
      return options.max_memory_bytes > 0 &&
             EstimateInMemorySymmetricSumBytes(a, at, options.num_threads) >
                 options.max_memory_bytes;
  }
  return false;
}

/// The tiled-driver options equivalent to the in-memory fused path: each
/// product pruned at prune_threshold / 2 with its diagonal dropped, the
/// merged sum at the full threshold (the Section 3.5 split both fused
/// symmetrizations use).
inline TiledSymmetricSumOptions MakeTiledSimilarityOptions(
    const SymmetrizationOptions& options) {
  TiledSymmetricSumOptions t;
  t.product_threshold = options.prune_threshold / 2.0;
  t.product_drop_diagonal = true;
  t.sum_threshold = options.prune_threshold;
  t.sum_drop_diagonal = true;
  t.num_threads = options.num_threads;
  t.tile_rows = options.tile_rows;
  t.max_memory_bytes = options.max_memory_bytes;
  t.spill_dir = options.spill_dir;
  t.metrics = options.metrics;
  t.cancel = options.cancel;
  return t;
}

}  // namespace core_internal
}  // namespace dgc
