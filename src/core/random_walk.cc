#include "core/symmetrize.h"

#include "linalg/power_iteration.h"
#include "obs/span.h"

namespace dgc {

Result<UGraph> SymmetrizeRandomWalk(const Digraph& g,
                                    const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  StageSpan span(options.metrics, "symmetrize");
  span.Metric("method",
              SymmetrizationMethodName(SymmetrizationMethod::kRandomWalk));
  span.Metric("input_vertices", g.NumVertices());
  span.Metric("input_arcs", g.NumEdges());
  if (options.cancel != nullptr && options.cancel->Expired()) {
    return options.cancel->status();
  }
  DGC_ASSIGN_OR_RETURN(PageRankResult pr,
                       PageRank(g.adjacency(), options.pagerank));
  span.Metric("pagerank_iterations", pr.iterations);
  span.Metric("pagerank_converged", static_cast<int64_t>(pr.converged));
  if (options.cancel != nullptr && options.cancel->Expired()) {
    return options.cancel->status();
  }
  // M = Pi * P: row i of the transition matrix scaled by pi(i).
  CsrMatrix m = RowStochastic(g.adjacency());
  m.ScaleRows(pr.pi);
  // U = (M + Mᵀ) / 2. Same nonzero structure as A + Aᵀ (Section 3.2).
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(m, m.Transpose()));
  for (Scalar& v : u.mutable_values()) v *= 0.5;
  u.ValidateStructure("SymmetrizeRandomWalk");
  DGC_ASSIGN_OR_RETURN(
      UGraph ug, UGraph::FromSymmetricAdjacency(std::move(u),
                                                /*drop_self_loops=*/true));
  span.Metric("output_nnz", ug.adjacency().nnz());
  span.Metric("output_edges", ug.NumEdges());
  return ug;
}

}  // namespace dgc
