#include "core/symmetrize.h"

#include "linalg/power_iteration.h"

namespace dgc {

Result<UGraph> SymmetrizeRandomWalk(const Digraph& g,
                                    const SymmetrizationOptions& options) {
  if (g.NumVertices() == 0) {
    return Status::InvalidArgument("cannot symmetrize an empty graph");
  }
  DGC_ASSIGN_OR_RETURN(PageRankResult pr,
                       PageRank(g.adjacency(), options.pagerank));
  // M = Pi * P: row i of the transition matrix scaled by pi(i).
  CsrMatrix m = RowStochastic(g.adjacency());
  m.ScaleRows(pr.pi);
  // U = (M + Mᵀ) / 2. Same nonzero structure as A + Aᵀ (Section 3.2).
  DGC_ASSIGN_OR_RETURN(CsrMatrix u, CsrMatrix::Add(m, m.Transpose()));
  for (Scalar& v : u.mutable_values()) v *= 0.5;
  u.ValidateStructure("SymmetrizeRandomWalk");
  return UGraph::FromSymmetricAdjacency(std::move(u),
                                        /*drop_self_loops=*/true);
}

}  // namespace dgc
