// Bipartite extension of the symmetrization framework — the direction the
// paper's conclusion singles out as future work ("Extending our approaches
// to bi-partite and multi-partite graphs also seems to be a promising
// avenue"). A bipartite directed graph (rows = one vertex class, columns =
// the other, e.g. users -> items) admits the same similarity reasoning:
// two row-vertices are similar when they point to the same column-vertices,
// discounted by how popular those column-vertices are.
#pragma once

#include "core/discount.h"
#include "graph/ugraph.h"
#include "linalg/csr_matrix.h"
#include "util/result.h"

namespace dgc {

struct BipartiteOptions {
  /// Discount on the degree of the vertices being compared (the paper's
  /// alpha, applied to row degrees for row similarity).
  DiscountSpec side_discount = DiscountSpec::Power(0.5);
  /// Discount on the degree of the shared neighbors (the paper's beta,
  /// applied to column degrees for row similarity).
  DiscountSpec shared_discount = DiscountSpec::Power(0.5);
  /// Entries below this are dropped.
  Scalar prune_threshold = 0.0;
  /// Threads for the similarity product (1 = serial, 0 = one per core).
  int num_threads = 1;
};

/// \brief Degree-discounted similarity among the row vertices of a
/// bipartite adjacency B (rows x cols):
///   U_r = Dr^{-a} B Dc^{-b} Bᵀ Dr^{-a}
/// where Dr / Dc are row/column degree matrices. This is the B_d half of
/// the paper's Eq. 6 specialized to bipartite data (there is no in-link
/// term: all edges cross sides).
Result<UGraph> BipartiteRowSimilarity(const CsrMatrix& b,
                                      const BipartiteOptions& options = {});

/// Column-side analogue: U_c = Dc^{-a} Bᵀ Dr^{-b} B Dc^{-a}.
Result<UGraph> BipartiteColumnSimilarity(const CsrMatrix& b,
                                         const BipartiteOptions& options = {});

/// \brief Co-clustering convenience: clusters rows and columns jointly by
/// building the (rows+cols) undirected graph whose row-row and col-col
/// blocks are the discounted similarities and whose row-col block is the
/// (discount-scaled) bipartite adjacency itself.
Result<UGraph> BipartiteCoClusterGraph(const CsrMatrix& b,
                                       const BipartiteOptions& options = {});

}  // namespace dgc
