// The paper's contribution: transformations from a directed graph G to a
// weighted undirected graph G_U suitable for off-the-shelf clustering
// (Section 3). Four methods:
//
//   A + Aᵀ              (Section 3.1)  drop directionality, sum reciprocal
//                                       edge weights
//   Random walk         (Section 3.2)  U = (ΠP + PᵀΠ)/2; Ncut-preserving
//                                       per Gleich 2006
//   Bibliometric        (Section 3.3)  U = AAᵀ + AᵀA; common out-links +
//                                       common in-links
//   Degree-discounted   (Section 3.4)  U = Do^{-α} A Di^{-β} Aᵀ Do^{-α}
//                                         + Di^{-β} Aᵀ Do^{-α} A Di^{-β}
#pragma once

#include <string>
#include <string_view>

#include "core/discount.h"
#include "graph/digraph.h"
#include "graph/ugraph.h"
#include "linalg/power_iteration.h"
#include "linalg/reorder.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

class MetricsRegistry;

/// Identifies a symmetrization method.
enum class SymmetrizationMethod {
  kAPlusAT,
  kRandomWalk,
  kBibliometric,
  kDegreeDiscounted,
};

/// Display name matching the paper's figure legends ("A+A'", "Random Walk",
/// "Bibliometric", "Degree-discounted").
std::string_view SymmetrizationMethodName(SymmetrizationMethod method);

/// Parses a name (case-insensitive; accepts "a+at", "rw", "biblio", "dd",
/// and the full names). NotFound on unknown input.
Result<SymmetrizationMethod> ParseSymmetrizationMethod(std::string_view name);

/// All four methods, in the paper's presentation order.
inline constexpr SymmetrizationMethod kAllSymmetrizations[] = {
    SymmetrizationMethod::kAPlusAT,
    SymmetrizationMethod::kRandomWalk,
    SymmetrizationMethod::kBibliometric,
    SymmetrizationMethod::kDegreeDiscounted,
};

/// Which kernel family computes the similarity products (Bibliometric and
/// Degree-discounted only; the other methods have no similarity product).
enum class SimilarityEngine {
  /// Symmetric-aware path (the default): one shared transpose of the input,
  /// upper-triangle products with the diagonal scalings applied on the fly
  /// (SpGemmAAtSymmetric), and a fused add + prune + mirror
  /// (SpGemmSymmetricSum). Roughly half the flops and one full-size
  /// intermediate instead of six.
  kFused,
  /// The literal-formula path kept as the correctness oracle: scaled copies
  /// of A, two full SpGEMMs, then separate Add and Pruned passes. Produces
  /// bit-identical output to kFused at any thread count.
  kReference,
};

/// When the similarity products run out of core (docs/OUT_OF_CORE.md):
/// row-block tiles through the fused kernels with a disk spool instead of
/// full in-memory intermediates. The tiled path produces bit-identical
/// graphs at any thread count and tile size — the mode only changes the
/// peak memory footprint, never the result.
enum class OutOfCoreMode {
  /// Tile when `max_memory_bytes` is set and the conservative in-memory
  /// estimate exceeds it (the budget *adapts* instead of aborting). The
  /// default; without a budget this never tiles.
  kAuto,
  /// Never tile. A set budget falls back to PR 5 semantics: the in-memory
  /// kernels abort with kResourceExhausted when the estimate trips at
  /// charge time.
  kOff,
  /// Always tile the fused similarity products (tests/benches).
  kForce,
};

/// Options shared by the symmetrizations.
struct SymmetrizationOptions {
  /// Entries of the symmetrized matrix with value < prune_threshold are
  /// dropped (Section 3.5 / Table 2). Applies to the similarity-based
  /// methods (Bibliometric, Degree-discounted); A+Aᵀ and Random walk keep
  /// the input edge set by construction.
  Scalar prune_threshold = 0.0;

  /// Set A := A + I before the product (Section 3.3: "ensures that edges in
  /// the input graph will not be removed from the symmetrized version").
  bool add_self_loops = false;

  /// Out-degree discount (the paper's alpha); kPower 0.5 is the headline
  /// configuration. Used by Degree-discounted only.
  DiscountSpec out_discount = DiscountSpec::Power(0.5);
  /// In-degree discount (the paper's beta). Used by Degree-discounted only.
  DiscountSpec in_discount = DiscountSpec::Power(0.5);

  /// Teleport/tolerance for the stationary distribution. Used by Random
  /// walk only; the paper uses teleport 0.05 (Section 4.2).
  PageRankOptions pagerank;

  /// Row-parallelism for the similarity products; 1 (the default) matches
  /// the paper's single-threaded setup, 0 uses one thread per hardware
  /// core. The symmetrized graph is bit-identical for every setting.
  int num_threads = 1;

  /// Kernel family for the similarity products (Bibliometric and
  /// Degree-discounted). kFused and kReference produce bit-identical
  /// graphs; kReference exists as the test oracle and for perf comparison.
  SimilarityEngine engine = SimilarityEngine::kFused;

  /// Optional row reordering of the similarity products for accumulator
  /// locality (linalg/reorder.h). Applies to the fused engine of the
  /// similarity-based methods only; the permutation is undone before the
  /// products are summed, so the symmetrized graph is bit-identical for
  /// every setting (the golden tests pin this).
  ReorderMethod reorder = ReorderMethod::kNone;

  /// Optional observability sink (obs/metrics.h). When non-null each
  /// symmetrization records a stage span with input/output nnz, the prune
  /// threshold, pruned-entry counts and the engine used; when null — the
  /// default — no instrumentation runs at all.
  MetricsRegistry* metrics = nullptr;

  /// Optional cooperative cancellation (util/budget.h), propagated into
  /// every similarity-product kernel so a tripped deadline/memory budget
  /// aborts the symmetrization within one ParallelFor chunk with the
  /// token's status. Null — the default — adds no overhead. Cancellation is
  /// all-or-nothing: completed runs are bit-identical with or without a
  /// token.
  CancelToken* cancel = nullptr;

  /// Out-of-core control for the fused similarity products (Bibliometric
  /// and Degree-discounted). See OutOfCoreMode; kAuto + a budget degrades
  /// to tiling instead of aborting. When the tiled path engages, `reorder`
  /// is skipped (tiling already restructures locality; the output is
  /// bit-identical either way).
  OutOfCoreMode out_of_core = OutOfCoreMode::kAuto;
  /// Directory for spill files (empty = system temp directory).
  std::string spill_dir;
  /// Fixed tile height in rows for the tiled path (0 = derive from
  /// `max_memory_bytes`). Tests and benches pin this to force tiling
  /// geometry; kForce with 0 derives from the budget or a default.
  Index tile_rows = 0;
  /// Memory budget in bytes that drives the kAuto decision and the
  /// budget→tile-size derivation. The pipeline copies
  /// ResourceBudget::max_memory_bytes here; standalone callers may set it
  /// directly. 0 = no budget (kAuto never tiles).
  int64_t max_memory_bytes = 0;
};

/// U = A + Aᵀ. Reciprocal edge pairs sum their weights (Section 3.1).
/// Options are accepted for the shared `metrics` sink; the method itself
/// has no tuning knobs (it keeps the input edge set by construction).
Result<UGraph> SymmetrizeAPlusAT(const Digraph& g,
                                 const SymmetrizationOptions& options = {});

/// U = (ΠP + PᵀΠ)/2 with P the row-stochastic walk matrix and Π = diag(π)
/// its stationary distribution (Section 3.2). Undirected Ncut on U equals
/// directed Ncut on G for every vertex subset (Gleich 2006).
Result<UGraph> SymmetrizeRandomWalk(const Digraph& g,
                                    const SymmetrizationOptions& options = {});

/// U = AAᵀ + AᵀA, the sum of bibliographic coupling (Kessler 1963) and
/// co-citation (Small 1973) matrices (Section 3.3).
Result<UGraph> SymmetrizeBibliometric(
    const Digraph& g, const SymmetrizationOptions& options = {});

/// The degree-discounted similarity U_d = B_d + C_d of Section 3.4, with
///   B_d = So A Si Aᵀ So   (out-link similarity; So, Si from the discounts)
///   C_d = Si Aᵀ So A Si   (in-link similarity)
/// where So = diag(discount(out-degree)) and Si = diag(discount(in-degree)).
/// With power discounts this is Eq. 6-8 of the paper.
Result<UGraph> SymmetrizeDegreeDiscounted(
    const Digraph& g, const SymmetrizationOptions& options = {});

/// Dispatches on `method`.
Result<UGraph> Symmetrize(const Digraph& g, SymmetrizationMethod method,
                          const SymmetrizationOptions& options = {});

/// The two scaled factor matrices of a similarity symmetrization, such that
/// U = M Mᵀ + Nᵀ N. For Degree-discounted, M = So A sqrt(Si) and
/// N = sqrt(So) A Si; for Bibliometric both equal A. Exposed so that
/// sampling-based threshold selection (Section 5.3.1) can compute individual
/// similarity rows without materializing U.
struct SimilarityFactors {
  CsrMatrix m;  ///< out-link factor: out-similarity = M Mᵀ
  CsrMatrix n;  ///< in-link factor: in-similarity = Nᵀ N
};

/// Builds the factor matrices for `method` (kBibliometric or
/// kDegreeDiscounted only; InvalidArgument otherwise).
Result<SimilarityFactors> BuildSimilarityFactors(
    const Digraph& g, SymmetrizationMethod method,
    const SymmetrizationOptions& options = {});

/// \brief The degree-discounted similarity of a single node pair, computed
/// directly from the definition (Section 3.4). O(dout(i)+dout(j)+din(i)+
/// din(j)) given the precomputed transpose; used for spot queries and as a
/// test oracle for the matrix path. `a_transpose` must equal
/// g.adjacency().Transpose() — batch callers compute it once instead of
/// paying an O(nnz) transpose per query.
Scalar DegreeDiscountedSimilarity(const Digraph& g,
                                  const CsrMatrix& a_transpose, Index i,
                                  Index j, const DiscountSpec& out_discount,
                                  const DiscountSpec& in_discount);

/// Convenience overload for one-off queries: materializes the transpose
/// internally (O(nnz) per call — prefer the overload above in loops).
Scalar DegreeDiscountedSimilarity(const Digraph& g, Index i, Index j,
                                  const DiscountSpec& out_discount,
                                  const DiscountSpec& in_discount);

}  // namespace dgc
