// Degree-discount schedules (Section 3.4 / Table 4 of the paper): how a
// node's degree is converted into a multiplicative penalty on its similarity
// contributions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/types.h"

namespace dgc {

/// How the degree d is discounted.
enum class DiscountKind {
  kNone,   ///< no penalty (alpha = 0 in Table 4)
  kPower,  ///< d^{-exponent}; the paper's main proposal with exponent 0.5
  kLog,    ///< 1 / ln(1 + d), the IDF-style penalty Table 4 marks "log"
};

/// A discount schedule: kind plus exponent (exponent used by kPower only).
struct DiscountSpec {
  DiscountKind kind = DiscountKind::kPower;
  Scalar exponent = 0.5;

  /// Power-law spec d^{-e}; e == 0 degenerates to kNone.
  static DiscountSpec Power(Scalar e) {
    if (e == 0.0) return DiscountSpec{DiscountKind::kNone, 0.0};
    return DiscountSpec{DiscountKind::kPower, e};
  }
  static DiscountSpec Log() { return DiscountSpec{DiscountKind::kLog, 0.0}; }
  static DiscountSpec None() {
    return DiscountSpec{DiscountKind::kNone, 0.0};
  }

  /// "0", "log", or the exponent, matching the Table-4 row labels.
  std::string ToString() const;
};

/// \brief Per-node discount factors for the given degrees.
///
/// Zero-degree nodes get factor 0: a node with no links contributes nothing
/// (rather than dividing by zero). For kNone, zero-degree nodes get 1 —
/// they have no contributions to scale anyway.
std::vector<Scalar> DiscountFactors(std::span<const Offset> degrees,
                                    const DiscountSpec& spec);

/// Elementwise square root, used to split a discount across the two factors
/// of a symmetric product (D^{-a} A ... Aᵀ D^{-a} = (D^{-a/2}A...)(...)ᵀ).
std::vector<Scalar> Sqrt(std::span<const Scalar> v);

}  // namespace dgc
