// Sampling-based prune-threshold selection (Section 5.3.1): "compute all
// the similarities corresponding to a small random sample of the nodes, and
// choose a prune threshold such that the average degree when this threshold
// is applied to the random sample approximates the final average degree that
// the user desires." The paper recommends a target average degree of 50-150.
#pragma once

#include <cstdint>

#include "core/symmetrize.h"
#include "graph/digraph.h"
#include "util/budget.h"
#include "util/result.h"

namespace dgc {

struct ThresholdSelectOptions {
  /// Desired average degree of the pruned symmetrized graph.
  Index target_avg_degree = 100;
  /// Number of nodes whose similarity rows are computed.
  Index sample_size = 200;
  uint64_t seed = 7;

  /// Optional cooperative cancellation (util/budget.h), polled once per
  /// sampled similarity row; a tripped budget aborts with the token's
  /// status. Null — the default — adds no overhead.
  CancelToken* cancel = nullptr;
};

/// Outcome of threshold selection.
struct ThresholdSelection {
  /// The chosen threshold; prune the symmetrized matrix at this value.
  Scalar threshold = 0.0;
  /// Average similarity-row degree observed in the sample *before* pruning.
  double sampled_avg_degree = 0.0;
};

/// \brief Estimates the prune threshold for `method` (kBibliometric or
/// kDegreeDiscounted) that yields approximately the target average degree.
///
/// Computes full similarity rows for a uniform sample of nodes (cost:
/// sample_size SpGEMM rows; the full matrix is never materialized) and
/// returns the weight at the rank that matches the target. Returns 0 when
/// the sample already has average degree below the target (no pruning
/// needed).
Result<ThresholdSelection> SelectPruneThreshold(
    const Digraph& g, SymmetrizationMethod method,
    const SymmetrizationOptions& sym_options = {},
    const ThresholdSelectOptions& select_options = {});

}  // namespace dgc
