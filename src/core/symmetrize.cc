#include "core/symmetrize.h"

#include <algorithm>
#include <cctype>

namespace dgc {

std::string_view SymmetrizationMethodName(SymmetrizationMethod method) {
  switch (method) {
    case SymmetrizationMethod::kAPlusAT:
      return "A+A'";
    case SymmetrizationMethod::kRandomWalk:
      return "Random Walk";
    case SymmetrizationMethod::kBibliometric:
      return "Bibliometric";
    case SymmetrizationMethod::kDegreeDiscounted:
      return "Degree-discounted";
  }
  return "?";
}

Result<SymmetrizationMethod> ParseSymmetrizationMethod(
    std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "a+at" || lower == "a+a'" || lower == "aplusat" ||
      lower == "sum") {
    return SymmetrizationMethod::kAPlusAT;
  }
  if (lower == "rw" || lower == "random walk" || lower == "randomwalk" ||
      lower == "random-walk") {
    return SymmetrizationMethod::kRandomWalk;
  }
  if (lower == "biblio" || lower == "bibliometric") {
    return SymmetrizationMethod::kBibliometric;
  }
  if (lower == "dd" || lower == "degree-discounted" ||
      lower == "degreediscounted" || lower == "degree discounted") {
    return SymmetrizationMethod::kDegreeDiscounted;
  }
  return Status::NotFound("unknown symmetrization method '" +
                          std::string(name) + "'");
}

Result<UGraph> Symmetrize(const Digraph& g, SymmetrizationMethod method,
                          const SymmetrizationOptions& options) {
  switch (method) {
    case SymmetrizationMethod::kAPlusAT:
      return SymmetrizeAPlusAT(g, options);
    case SymmetrizationMethod::kRandomWalk:
      return SymmetrizeRandomWalk(g, options);
    case SymmetrizationMethod::kBibliometric:
      return SymmetrizeBibliometric(g, options);
    case SymmetrizationMethod::kDegreeDiscounted:
      return SymmetrizeDegreeDiscounted(g, options);
  }
  return Status::InvalidArgument("unknown symmetrization method");
}

}  // namespace dgc
