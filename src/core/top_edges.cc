#include "core/top_edges.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dgc {

std::vector<WeightedEdge> TopWeightedEdges(const UGraph& g, Index k) {
  std::vector<WeightedEdge> edges;
  const CsrMatrix& a = g.adjacency();
  for (Index u = 0; u < g.NumVertices(); ++u) {
    auto cols = a.RowCols(u);
    auto vals = a.RowValues(u);
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] <= u) continue;  // visit each undirected edge once
      edges.push_back(WeightedEdge{u, cols[i], vals[i]});
    }
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(std::max<Index>(k, 0)),
                                       edges.size());
  std::partial_sort(edges.begin(), edges.begin() + static_cast<long>(keep),
                    edges.end(),
                    [](const WeightedEdge& a, const WeightedEdge& b) {
                      if (a.weight != b.weight) return a.weight > b.weight;
                      if (a.u != b.u) return a.u < b.u;
                      return a.v < b.v;
                    });
  edges.resize(keep);
  return edges;
}

std::vector<WeightedEdge> TopWeightedEdgesNormalized(const UGraph& g,
                                                     Index k) {
  Scalar min_weight = std::numeric_limits<Scalar>::infinity();
  for (Scalar v : g.adjacency().values()) {
    if (v > 0.0) min_weight = std::min(min_weight, v);
  }
  std::vector<WeightedEdge> top = TopWeightedEdges(g, k);
  if (!std::isfinite(min_weight) || min_weight <= 0.0) return top;
  for (WeightedEdge& e : top) e.weight /= min_weight;
  return top;
}

}  // namespace dgc
