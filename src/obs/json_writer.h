// Minimal JSON emitter with deterministic formatting, shared by the run
// report serializer (obs/report.cc) and the serve response envelope
// (serve/request.cc): shortest round-trip doubles via std::to_chars, keys
// in the order the caller provides them, and two output shapes — pretty
// (two-space indentation, the run-report artifact format) or compact (no
// newlines at all, so a whole document fits one NDJSON line).
//
// This is an emitter only; it does not balance brackets for the caller.
// Serializers drive it with Raw()/Newline() exactly as report.cc does, and
// two serializers emitting the same logical content produce byte-identical
// strings — the determinism property the report tests pin.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <system_error>
#include <variant>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dgc {

/// \brief Deterministic JSON string builder; see the file comment.
class JsonWriter {
 public:
  /// `compact` suppresses every Newline() (and its indentation), producing
  /// a single-line document; separators keep their single space either way.
  explicit JsonWriter(bool compact = false) : compact_(compact) {}

  std::string Take() && { return std::move(out_); }

  /// Emits `s` as a quoted JSON string, escaping the control set.
  void String(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  void Int(int64_t v) { out_ += std::to_string(v); }

  void Bool(bool v) { out_ += v ? "true" : "false"; }

  void Double(double v) {
    // JSON has no NaN/Inf; clamp to null (never produced by the library's
    // metrics, but a report writer must not emit invalid JSON).
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    DGC_CHECK(result.ec == std::errc());
    out_.append(buf, result.ptr);
    // Keep doubles distinguishable from integers (to_chars prints 1.0 as
    // "1"): append a fraction when no '.', 'e' or "nan-ish" marker exists.
    const std::string_view written(buf,
                                   static_cast<size_t>(result.ptr - buf));
    if (written.find_first_of(".eE") == std::string_view::npos) {
      out_ += ".0";
    }
  }

  void Value(const SpanValue& v) {
    if (std::holds_alternative<int64_t>(v)) {
      Int(std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
      Double(std::get<double>(v));
    } else {
      String(std::get<std::string>(v));
    }
  }

  void Raw(std::string_view s) { out_ += s; }

  /// Line break + `indent` levels of two-space indentation; a no-op in
  /// compact mode.
  void Newline(int indent) {
    if (compact_) return;
    out_.push_back('\n');
    out_.append(static_cast<size_t>(indent) * 2, ' ');
  }

  bool compact() const { return compact_; }

 private:
  bool compact_;
  std::string out_;
};

}  // namespace dgc
