#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json_writer.h"
#include "util/logging.h"

namespace dgc {

namespace {

/// Emits {"k": v, ...} with keys sorted lexicographically.
void EmitSortedObject(
    JsonWriter& w, std::vector<std::pair<std::string, SpanValue>> entries,
    int indent, bool redact) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (entries.empty()) {
    w.Raw("{}");
    return;
  }
  w.Raw("{");
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) w.Raw(",");
    first = false;
    w.Newline(indent + 1);
    w.String(key);
    w.Raw(": ");
    if (redact) {
      // Preserve the value's type so redaction never changes the schema.
      if (std::holds_alternative<int64_t>(value)) {
        w.Int(0);
      } else if (std::holds_alternative<double>(value)) {
        w.Double(0.0);
      } else {
        w.Value(value);
      }
    } else {
      w.Value(value);
    }
  }
  w.Newline(indent);
  w.Raw("}");
}

void EmitSpan(JsonWriter& w, const std::vector<SpanNode>& spans, int node,
              int indent, const RunReportOptions& options) {
  const SpanNode& span = spans[static_cast<size_t>(node)];
  w.Raw("{");
  w.Newline(indent + 1);
  w.Raw("\"name\": ");
  w.String(span.name);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"wall_seconds\": ");
  w.Double(options.redact_timings ? 0.0 : span.wall_seconds);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"cpu_seconds\": ");
  w.Double(options.redact_timings ? 0.0 : span.cpu_seconds);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"metrics\": ");
  EmitSortedObject(w, span.metrics, indent + 1, /*redact=*/false);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"perf\": ");
  EmitSortedObject(w, span.perf, indent + 1, options.redact_timings);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"children\": ");
  if (span.children.empty()) {
    w.Raw("[]");
  } else {
    w.Raw("[");
    bool first = true;
    for (const int child : span.children) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(indent + 2);
      EmitSpan(w, spans, child, indent + 2, options);
    }
    w.Newline(indent + 1);
    w.Raw("]");
  }
  w.Newline(indent);
  w.Raw("}");
}

}  // namespace

std::string RunReportToJson(const MetricsRegistry& registry,
                            const RunReportOptions& options) {
  const std::vector<SpanNode> spans = registry.Spans();
  const auto counters = registry.Counters();
  const auto gauges = registry.Gauges();
  const auto histograms = registry.Histograms();

  JsonWriter w(options.compact);
  w.Raw("{");
  w.Newline(1);
  w.Raw("\"schema\": ");
  w.String(kRunReportSchema);
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"spans\": ");
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == -1) roots.push_back(static_cast<int>(i));
  }
  if (roots.empty()) {
    w.Raw("[]");
  } else {
    w.Raw("[");
    bool first = true;
    for (const int root : roots) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(2);
      EmitSpan(w, spans, root, 2, options);
    }
    w.Newline(1);
    w.Raw("]");
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"counters\": ");
  {
    std::vector<std::pair<std::string, SpanValue>> entries;
    entries.reserve(counters.size());
    for (const auto& [k, v] : counters) entries.emplace_back(k, v);
    EmitSortedObject(w, std::move(entries), 1, /*redact=*/false);
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"gauges\": ");
  {
    std::vector<std::pair<std::string, SpanValue>> entries;
    entries.reserve(gauges.size());
    for (const auto& [k, v] : gauges) entries.emplace_back(k, v);
    EmitSortedObject(w, std::move(entries), 1, /*redact=*/false);
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"histograms\": ");
  if (histograms.empty()) {
    w.Raw("{}");
  } else {
    w.Raw("{");
    bool first = true;
    for (const auto& [name, h] : histograms) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(2);
      w.String(name);
      w.Raw(": {");
      w.Newline(3);
      w.Raw("\"upper_bounds\": [");
      for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
        if (i > 0) w.Raw(", ");
        w.Double(h.upper_bounds()[i]);
      }
      w.Raw("],");
      w.Newline(3);
      w.Raw("\"counts\": [");
      for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
        if (i > 0) w.Raw(", ");
        w.Int(h.bucket_counts()[i]);
      }
      w.Raw("],");
      w.Newline(3);
      w.Raw("\"total_count\": ");
      w.Int(h.total_count());
      w.Raw(",");
      w.Newline(3);
      w.Raw("\"sum\": ");
      w.Double(h.sum());
      w.Newline(2);
      w.Raw("}");
    }
    w.Newline(1);
    w.Raw("}");
  }
  w.Newline(0);
  // The pretty artifact form ends in a newline; the compact form must not,
  // so callers can embed it mid-document or terminate their own NDJSON
  // line.
  w.Raw(options.compact ? "}" : "}\n");
  return std::move(w).Take();
}

Status WriteRunReport(const MetricsRegistry& registry, const std::string& path,
                      const RunReportOptions& options) {
  const std::string json = RunReportToJson(registry, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("WriteRunReport: cannot open '" + path +
                            "' for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_result = std::fclose(f);
  if (written != json.size() || close_result != 0) {
    return Status::Internal("WriteRunReport: short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dgc
