#include "obs/report.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace dgc {

namespace {

/// Minimal JSON emitter with deterministic formatting: shortest
/// round-trip doubles via std::to_chars, two-space indentation, keys in
/// the order the caller provides them.
class JsonWriter {
 public:
  std::string Take() && { return std::move(out_); }

  void String(std::string_view s) {
    out_.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_.push_back(c);
          }
      }
    }
    out_.push_back('"');
  }

  void Int(int64_t v) { out_ += std::to_string(v); }

  void Double(double v) {
    // JSON has no NaN/Inf; clamp to null (never produced by the library's
    // metrics, but a report writer must not emit invalid JSON).
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    DGC_CHECK(result.ec == std::errc());
    out_.append(buf, result.ptr);
    // Keep doubles distinguishable from integers (to_chars prints 1.0 as
    // "1"): append a fraction when no '.', 'e' or "nan-ish" marker exists.
    const std::string_view written(buf,
                                   static_cast<size_t>(result.ptr - buf));
    if (written.find_first_of(".eE") == std::string_view::npos) {
      out_ += ".0";
    }
  }

  void Value(const SpanValue& v) {
    if (std::holds_alternative<int64_t>(v)) {
      Int(std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
      Double(std::get<double>(v));
    } else {
      String(std::get<std::string>(v));
    }
  }

  void Raw(std::string_view s) { out_ += s; }

  void Newline(int indent) {
    out_.push_back('\n');
    out_.append(static_cast<size_t>(indent) * 2, ' ');
  }

 private:
  std::string out_;
};

/// Emits {"k": v, ...} with keys sorted lexicographically.
void EmitSortedObject(
    JsonWriter& w, std::vector<std::pair<std::string, SpanValue>> entries,
    int indent, bool redact) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (entries.empty()) {
    w.Raw("{}");
    return;
  }
  w.Raw("{");
  bool first = true;
  for (const auto& [key, value] : entries) {
    if (!first) w.Raw(",");
    first = false;
    w.Newline(indent + 1);
    w.String(key);
    w.Raw(": ");
    if (redact) {
      // Preserve the value's type so redaction never changes the schema.
      if (std::holds_alternative<int64_t>(value)) {
        w.Int(0);
      } else if (std::holds_alternative<double>(value)) {
        w.Double(0.0);
      } else {
        w.Value(value);
      }
    } else {
      w.Value(value);
    }
  }
  w.Newline(indent);
  w.Raw("}");
}

void EmitSpan(JsonWriter& w, const std::vector<SpanNode>& spans, int node,
              int indent, const RunReportOptions& options) {
  const SpanNode& span = spans[static_cast<size_t>(node)];
  w.Raw("{");
  w.Newline(indent + 1);
  w.Raw("\"name\": ");
  w.String(span.name);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"wall_seconds\": ");
  w.Double(options.redact_timings ? 0.0 : span.wall_seconds);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"cpu_seconds\": ");
  w.Double(options.redact_timings ? 0.0 : span.cpu_seconds);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"metrics\": ");
  EmitSortedObject(w, span.metrics, indent + 1, /*redact=*/false);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"perf\": ");
  EmitSortedObject(w, span.perf, indent + 1, options.redact_timings);
  w.Raw(",");
  w.Newline(indent + 1);
  w.Raw("\"children\": ");
  if (span.children.empty()) {
    w.Raw("[]");
  } else {
    w.Raw("[");
    bool first = true;
    for (const int child : span.children) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(indent + 2);
      EmitSpan(w, spans, child, indent + 2, options);
    }
    w.Newline(indent + 1);
    w.Raw("]");
  }
  w.Newline(indent);
  w.Raw("}");
}

}  // namespace

std::string RunReportToJson(const MetricsRegistry& registry,
                            const RunReportOptions& options) {
  const std::vector<SpanNode> spans = registry.Spans();
  const auto counters = registry.Counters();
  const auto gauges = registry.Gauges();
  const auto histograms = registry.Histograms();

  JsonWriter w;
  w.Raw("{");
  w.Newline(1);
  w.Raw("\"schema\": ");
  w.String(kRunReportSchema);
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"spans\": ");
  std::vector<int> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == -1) roots.push_back(static_cast<int>(i));
  }
  if (roots.empty()) {
    w.Raw("[]");
  } else {
    w.Raw("[");
    bool first = true;
    for (const int root : roots) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(2);
      EmitSpan(w, spans, root, 2, options);
    }
    w.Newline(1);
    w.Raw("]");
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"counters\": ");
  {
    std::vector<std::pair<std::string, SpanValue>> entries;
    entries.reserve(counters.size());
    for (const auto& [k, v] : counters) entries.emplace_back(k, v);
    EmitSortedObject(w, std::move(entries), 1, /*redact=*/false);
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"gauges\": ");
  {
    std::vector<std::pair<std::string, SpanValue>> entries;
    entries.reserve(gauges.size());
    for (const auto& [k, v] : gauges) entries.emplace_back(k, v);
    EmitSortedObject(w, std::move(entries), 1, /*redact=*/false);
  }
  w.Raw(",");
  w.Newline(1);

  w.Raw("\"histograms\": ");
  if (histograms.empty()) {
    w.Raw("{}");
  } else {
    w.Raw("{");
    bool first = true;
    for (const auto& [name, h] : histograms) {
      if (!first) w.Raw(",");
      first = false;
      w.Newline(2);
      w.String(name);
      w.Raw(": {");
      w.Newline(3);
      w.Raw("\"upper_bounds\": [");
      for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
        if (i > 0) w.Raw(", ");
        w.Double(h.upper_bounds()[i]);
      }
      w.Raw("],");
      w.Newline(3);
      w.Raw("\"counts\": [");
      for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
        if (i > 0) w.Raw(", ");
        w.Int(h.bucket_counts()[i]);
      }
      w.Raw("],");
      w.Newline(3);
      w.Raw("\"total_count\": ");
      w.Int(h.total_count());
      w.Raw(",");
      w.Newline(3);
      w.Raw("\"sum\": ");
      w.Double(h.sum());
      w.Newline(2);
      w.Raw("}");
    }
    w.Newline(1);
    w.Raw("}");
  }
  w.Newline(0);
  w.Raw("}\n");
  return std::move(w).Take();
}

Status WriteRunReport(const MetricsRegistry& registry, const std::string& path,
                      const RunReportOptions& options) {
  const std::string json = RunReportToJson(registry, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("WriteRunReport: cannot open '" + path +
                            "' for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_result = std::fclose(f);
  if (written != json.size() || close_result != 0) {
    return Status::Internal("WriteRunReport: short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace dgc
