// Pipeline observability: a process-local metrics registry.
//
// The registry is the single sink for everything a run wants to report —
// monotonic counters, last-write-wins gauges, fixed-bucket histograms, and
// the hierarchical stage-span tree built by obs/span.h. Every options
// struct on the pipeline path carries an optional `MetricsRegistry*`;
// instrumentation is skipped entirely (no locks, no allocation, no virtual
// dispatch) when the pointer is null, so the paper's timing semantics are
// unchanged for callers that never ask for a report.
//
// Determinism contract: counters and histograms merge by addition of
// per-worker shards (the AllPairsStats pattern — integer sums are
// associative and commutative, so totals are independent of which worker
// processed which row). Every deterministic quantity recorded by the
// library is bit-identical across thread counts; thread-count-dependent
// quantities (times, rows-per-worker) are segregated into the span timing /
// perf fields that obs/report.h can redact. See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace dgc {

/// \brief Fixed-bucket histogram: counts of observations per bucket, plus
/// the total count and sum.
///
/// Buckets are defined by sorted upper bounds; an observation lands in the
/// first bucket whose upper bound is >= the value, or in the implicit
/// overflow bucket when it exceeds every bound (bucket_counts() therefore
/// has upper_bounds().size() + 1 entries). A default-constructed histogram
/// has a single (overflow) bucket.
///
/// Histograms are value types usable as per-worker shards: workers observe
/// locally, then the shards Merge() into the registry copy. Merging adds
/// bucket counts, counts and sums, so any merge order — and any grouping,
/// i.e. (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — produces the same result.
class Histogram {
 public:
  Histogram() : counts_(1, 0) {}
  /// `upper_bounds` must be strictly increasing (checked, fatal on misuse).
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` buckets with bounds start, start*factor, start*factor², ...
  /// (plus the implicit overflow bucket). Natural for nnz / cluster-size
  /// style quantities spanning orders of magnitude.
  static Histogram Exponential(double start, double factor, int count);

  /// Records one observation.
  void Observe(double value);

  /// Adds `other`'s buckets, count and sum into this histogram.
  /// InvalidArgument when the bucket bounds differ.
  Status Merge(const Histogram& other);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket counts; last entry is the overflow bucket.
  const std::vector<int64_t>& bucket_counts() const { return counts_; }
  int64_t total_count() const { return total_count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> upper_bounds_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
  double sum_ = 0.0;
};

/// A value attached to a stage span: integer, floating-point, or a short
/// annotation string (e.g. engine="fused").
using SpanValue = std::variant<int64_t, double, std::string>;

/// One node of the span tree. Built by StageSpan (obs/span.h); consumed by
/// the RunReport serializer (obs/report.h).
struct SpanNode {
  std::string name;
  int parent = -1;  ///< index into the arena; -1 for roots
  std::vector<int> children;
  /// Wall / process-CPU seconds between open and close (0 while open).
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Deterministic metrics: bit-identical across thread counts.
  std::vector<std::pair<std::string, SpanValue>> metrics;
  /// Perf metrics: legitimately thread-count- or machine-dependent values
  /// (worker counts, rows per worker). Redacted alongside times when a
  /// byte-comparable report is requested.
  std::vector<std::pair<std::string, SpanValue>> perf;
};

/// \brief Thread-safe sink for counters, gauges, histograms and stage
/// spans.
///
/// Counters/gauges/histograms may be recorded from any thread (a mutex
/// guards the maps — instrumentation touches the registry per *stage*, not
/// per row, so the lock is far off any hot loop). The span tree tracks one
/// open-span stack, matching the library's structure where stages are
/// opened and closed by the orchestrating thread; see docs/OBSERVABILITY.md
/// for the discipline.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (created at 0 on first use).
  void AddCounter(std::string_view name, int64_t delta);

  /// Sets the named gauge (last write wins).
  void SetGauge(std::string_view name, double value);

  /// Merges a histogram shard into the named histogram. The first merge
  /// defines the bucket bounds; later merges with different bounds are
  /// fatal in checked builds and dropped otherwise.
  void MergeHistogram(std::string_view name, const Histogram& shard);

  /// Snapshots (copies, safe to use while other threads keep recording).
  std::map<std::string, int64_t> Counters() const;
  std::map<std::string, double> Gauges() const;
  std::map<std::string, Histogram> Histograms() const;
  /// The span arena in creation order; children/parent link by index.
  std::vector<SpanNode> Spans() const;

  /// Value of one counter (0 when absent) — convenience for tests.
  int64_t CounterValue(std::string_view name) const;

  // --- span arena, used by StageSpan and the serializer ------------------

  /// Opens a span as a child of the innermost open span; returns its index.
  int OpenSpan(std::string_view name);
  /// Closes span `node` (must be the innermost open span) with its final
  /// timings.
  void CloseSpan(int node, double wall_seconds, double cpu_seconds);
  /// Attaches a key/value to span `node` (perf=true for the redactable
  /// class). Overwrites an existing key.
  void SpanMetric(int node, std::string_view key, SpanValue value, bool perf);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<SpanNode> spans_;
  std::vector<int> open_stack_;
};

}  // namespace dgc
