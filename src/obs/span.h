// RAII stage spans: hierarchical wall + CPU scoped timers over a
// MetricsRegistry.
//
//   StageSpan span(options.metrics, "symmetrize");   // null-safe
//   ...
//   span.Metric("output_nnz", u.nnz());              // deterministic
//   span.PerfMetric("workers", threads);             // thread-dependent
//
// A StageSpan constructed with a null registry is completely inert: the
// constructor stores the null pointer and every method is a branch on it —
// no clocks are read, nothing locks, nothing allocates. Spans nest by
// construction order (the registry tracks the innermost open span), forming
// the tree that obs/report.h serializes.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "obs/metrics.h"
#include "util/timer.h"

namespace dgc {

/// \brief Scoped stage timer; see the file comment for usage.
///
/// Spans must be opened and closed in LIFO order on the orchestrating
/// thread (checked fatally in the registry). Metrics may be attached any
/// time between construction and destruction.
class StageSpan {
 public:
  /// Opens a span named `name` under the innermost open span of
  /// `registry`. A null registry yields an inert span.
  StageSpan(MetricsRegistry* registry, std::string_view name)
      : registry_(registry) {
    if (registry_ == nullptr) return;
    node_ = registry_->OpenSpan(name);
    wall_.Restart();
    cpu_.Restart();
  }

  ~StageSpan() {
    if (registry_ == nullptr) return;
    registry_->CloseSpan(node_, wall_.ElapsedSeconds(),
                         cpu_.ElapsedSeconds());
  }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// True when attached to a registry. Use to guard instrumentation whose
  /// mere computation is non-trivial (e.g. an O(nnz) flops estimate).
  bool live() const { return registry_ != nullptr; }

  /// Attaches a deterministic metric (bit-identical across thread counts).
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void Metric(std::string_view key, T value) {
    if (registry_ == nullptr) return;
    registry_->SpanMetric(node_, key, static_cast<int64_t>(value),
                          /*perf=*/false);
  }
  void Metric(std::string_view key, double value) {
    if (registry_ == nullptr) return;
    registry_->SpanMetric(node_, key, value, /*perf=*/false);
  }
  /// String annotation (method names, engine selection, ...).
  void Metric(std::string_view key, std::string_view value) {
    if (registry_ == nullptr) return;
    registry_->SpanMetric(node_, key, std::string(value), /*perf=*/false);
  }

  /// Attaches a perf metric: a value that legitimately depends on the
  /// thread count or machine (worker counts, rows per worker). Redacted
  /// together with times when a byte-comparable report is requested.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  void PerfMetric(std::string_view key, T value) {
    if (registry_ == nullptr) return;
    registry_->SpanMetric(node_, key, static_cast<int64_t>(value),
                          /*perf=*/true);
  }
  void PerfMetric(std::string_view key, double value) {
    if (registry_ == nullptr) return;
    registry_->SpanMetric(node_, key, value, /*perf=*/true);
  }

 private:
  MetricsRegistry* registry_;
  int node_ = -1;
  WallTimer wall_;
  ProcessCpuTimer cpu_;
};

}  // namespace dgc
