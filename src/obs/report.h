// RunReport: serializes a MetricsRegistry (span tree + counters + gauges +
// histograms) to schema-versioned JSON with stable key order, so pipeline
// runs produce machine-readable, diffable artifacts.
//
// Layout (schema dgc.run_report.v1):
//
//   {
//     "schema": "dgc.run_report.v1",
//     "spans": [ { "name": ..., "wall_seconds": ..., "cpu_seconds": ...,
//                  "metrics": {...}, "perf": {...}, "children": [...] } ],
//     "counters": {...}, "gauges": {...},
//     "histograms": { name: { "upper_bounds": [...], "counts": [...],
//                             "total_count": ..., "sum": ... } }
//   }
//
// Key order is stable: object keys inside metrics/counters/gauges/
// histograms are sorted lexicographically, span object keys are emitted in
// a fixed order, and spans appear in creation order — two registries with
// the same recorded content serialize to byte-identical strings. With
// `redact_timings` the wall/cpu times and every "perf" value are written as
// 0, which makes reports from runs at different thread counts
// byte-comparable (the determinism tests rely on this).
#pragma once

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace dgc {

/// Schema identifier written into every report.
inline constexpr std::string_view kRunReportSchema = "dgc.run_report.v1";

struct RunReportOptions {
  /// Serialize wall/cpu seconds and perf metrics as 0 so that reports are
  /// byte-comparable across thread counts and machines.
  bool redact_timings = false;
  /// Emit the report as a single line with no newlines or indentation (and
  /// no trailing newline), so it can embed inside another single-line JSON
  /// document — the dgc.serve.response.v1 envelope (docs/SERVING.md).
  /// Content and key order are identical to the pretty form.
  bool compact = false;
};

/// Serializes `registry` to pretty-printed JSON (trailing newline
/// included).
std::string RunReportToJson(const MetricsRegistry& registry,
                            const RunReportOptions& options = {});

/// Writes RunReportToJson(registry) to `path` (created or truncated).
Status WriteRunReport(const MetricsRegistry& registry, const std::string& path,
                      const RunReportOptions& options = {});

}  // namespace dgc
