#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace dgc {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  DGC_CHECK(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end(),
                           [](double a, double b) { return a <= b; }))
      << "Histogram bounds must be strictly increasing";
}

Histogram Histogram::Exponential(double start, double factor, int count) {
  DGC_CHECK_GT(start, 0.0);
  DGC_CHECK_GT(factor, 1.0);
  DGC_CHECK_GT(count, 0);
  std::vector<double> bounds(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<size_t>(i)] = bound;
    bound *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  ++counts_[bucket];
  ++total_count_;
  sum_ += value;
}

Status Histogram::Merge(const Histogram& other) {
  if (other.upper_bounds_ != upper_bounds_) {
    return Status::InvalidArgument(
        "Histogram::Merge: bucket bounds differ (" +
        std::to_string(upper_bounds_.size()) + " vs " +
        std::to_string(other.upper_bounds_.size()) + " bounds)");
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_count_ += other.total_count_;
  sum_ += other.sum_;
  return Status::OK();
}

void MetricsRegistry::AddCounter(std::string_view name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::MergeHistogram(std::string_view name,
                                     const Histogram& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), shard);
    return;
  }
  const Status merged = it->second.Merge(shard);
  DGC_DCHECK(merged.ok()) << "MergeHistogram(" << std::string(name)
                          << "): " << merged;
}

std::map<std::string, int64_t> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, Histogram> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {histograms_.begin(), histograms_.end()};
}

std::vector<SpanNode> MetricsRegistry::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int MetricsRegistry::OpenSpan(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int node = static_cast<int>(spans_.size());
  SpanNode span;
  span.name = std::string(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  spans_.push_back(std::move(span));
  if (!open_stack_.empty()) {
    spans_[static_cast<size_t>(open_stack_.back())].children.push_back(node);
  }
  open_stack_.push_back(node);
  return node;
}

void MetricsRegistry::CloseSpan(int node, double wall_seconds,
                                double cpu_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  DGC_CHECK(!open_stack_.empty() && open_stack_.back() == node)
      << "CloseSpan(" << node << "): spans must close innermost-first";
  open_stack_.pop_back();
  SpanNode& span = spans_[static_cast<size_t>(node)];
  span.wall_seconds = wall_seconds;
  span.cpu_seconds = cpu_seconds;
}

void MetricsRegistry::SpanMetric(int node, std::string_view key,
                                 SpanValue value, bool perf) {
  std::lock_guard<std::mutex> lock(mutex_);
  DGC_CHECK_GE(node, 0);
  DGC_CHECK_LT(static_cast<size_t>(node), spans_.size());
  auto& list = perf ? spans_[static_cast<size_t>(node)].perf
                    : spans_[static_cast<size_t>(node)].metrics;
  for (auto& [k, v] : list) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  list.emplace_back(std::string(key), std::move(value));
}

}  // namespace dgc
