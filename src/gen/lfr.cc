#include "gen/lfr.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dgc {

namespace {

/// Truncated-Pareto degree sample in [min_degree, max_degree].
Index SampleDegree(Rng& rng, const LfrOptions& options) {
  const double u = std::max(1e-12, rng.UniformDouble());
  const double gamma = options.degree_exponent;
  const double lo = static_cast<double>(options.min_degree);
  const double hi = static_cast<double>(options.max_degree);
  // Inverse-CDF of a truncated power law p(x) ~ x^-gamma on [lo, hi].
  const double a = std::pow(lo, 1.0 - gamma);
  const double b = std::pow(hi, 1.0 - gamma);
  const double x = std::pow(a + u * (b - a), 1.0 / (1.0 - gamma));
  return static_cast<Index>(std::clamp(x, lo, hi));
}

}  // namespace

Result<Dataset> GenerateLfr(const LfrOptions& options) {
  if (options.num_vertices <= 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (options.mixing < 0.0 || options.mixing >= 1.0) {
    return Status::InvalidArgument("mixing must be in [0, 1)");
  }
  if (options.min_community <= 1 ||
      options.max_community < options.min_community) {
    return Status::InvalidArgument("bad community size bounds");
  }
  if (options.degree_exponent <= 1.0) {
    return Status::InvalidArgument("degree_exponent must be > 1");
  }
  const Index n = options.num_vertices;
  Rng rng(options.seed);

  // Community sizes: Zipf-weighted draws over [min, max] until n covered.
  std::vector<Index> community_size;
  const uint64_t size_range = static_cast<uint64_t>(
      options.max_community - options.min_community + 1);
  const ZipfDistribution size_dist(size_range, options.community_exponent);
  Index assigned = 0;
  while (assigned < n) {
    Index size = options.min_community +
                 static_cast<Index>(size_dist.Sample(rng) - 1);
    size = std::min(size, n - assigned);
    if (n - assigned - size < options.min_community &&
        n - assigned - size > 0) {
      size = n - assigned;  // absorb the remainder, avoid a tiny tail
    }
    community_size.push_back(size);
    assigned += size;
  }
  const Index num_communities = static_cast<Index>(community_size.size());

  Dataset dataset;
  dataset.name = "lfr-directed";
  dataset.truth.categories.resize(static_cast<size_t>(num_communities));
  std::vector<Index> community_of(static_cast<size_t>(n));
  std::vector<Index> community_begin(static_cast<size_t>(num_communities));
  {
    Index v = 0;
    for (Index c = 0; c < num_communities; ++c) {
      community_begin[static_cast<size_t>(c)] = v;
      for (Index i = 0; i < community_size[static_cast<size_t>(c)]; ++i) {
        community_of[static_cast<size_t>(v)] = c;
        dataset.truth.categories[static_cast<size_t>(c)].push_back(v);
        ++v;
      }
    }
  }

  // Co-citation style: each community has a fixed target set — its own
  // authorities plus a community-specific sample of foreign authorities
  // (authority_overlap controls the foreign share). The set is fixed per
  // community so that members share a consistent citation profile; the
  // foreign part makes the shared targets "belong to a different cluster"
  // as in the paper's Figure 1.
  std::vector<std::vector<Index>> community_targets;
  if (options.style == LfrCommunityStyle::kCocitation) {
    std::vector<Index> global_authorities;
    for (Index c = 0; c < num_communities; ++c) {
      const Index size = community_size[static_cast<size_t>(c)];
      const Index auth = std::max<Index>(
          1, static_cast<Index>(options.authority_fraction *
                                static_cast<double>(size)));
      for (Index i = 0; i < auth; ++i) {
        global_authorities.push_back(
            community_begin[static_cast<size_t>(c)] + i);
      }
    }
    community_targets.resize(static_cast<size_t>(num_communities));
    for (Index c = 0; c < num_communities; ++c) {
      const Index size = community_size[static_cast<size_t>(c)];
      const Index auth = std::max<Index>(
          1, static_cast<Index>(options.authority_fraction *
                                static_cast<double>(size)));
      auto& targets = community_targets[static_cast<size_t>(c)];
      for (Index i = 0; i < auth; ++i) {
        targets.push_back(community_begin[static_cast<size_t>(c)] + i);
      }
      if (options.authority_overlap > 0.0) {
        const Index foreign = static_cast<Index>(
            options.authority_overlap / (1.0 - options.authority_overlap) *
            static_cast<double>(auth));
        for (Index f = 0; f < foreign; ++f) {
          targets.push_back(global_authorities[static_cast<size_t>(
              rng.UniformU64(global_authorities.size()))]);
        }
      }
    }
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * 8);
  const double mu = options.mixing;
  for (Index v = 0; v < n; ++v) {
    const Index c = community_of[static_cast<size_t>(v)];
    const Index begin = community_begin[static_cast<size_t>(c)];
    const Index size = community_size[static_cast<size_t>(c)];
    const Index degree = SampleDegree(rng, options);
    // Authorities/hubs of the community are its first `auth` members.
    const Index auth = std::max<Index>(
        1, static_cast<Index>(options.authority_fraction *
                              static_cast<double>(size)));
    for (Index e = 0; e < degree; ++e) {
      if (rng.Bernoulli(mu)) {
        // Inter-community edge: uniform random target outside c.
        for (int attempt = 0; attempt < 8; ++attempt) {
          const Index w = static_cast<Index>(
              rng.UniformU64(static_cast<uint64_t>(n)));
          if (w != v && community_of[static_cast<size_t>(w)] != c) {
            edges.push_back(Edge{v, w, 1.0});
            break;
          }
        }
        continue;
      }
      // Intra-community edge.
      if (options.style == LfrCommunityStyle::kDense) {
        const Index w = begin + static_cast<Index>(rng.UniformU64(
                                    static_cast<uint64_t>(size)));
        if (w != v) edges.push_back(Edge{v, w, 1.0});
      } else {
        // Co-citation style: non-authority members only point at
        // authorities; authorities point back at members (acting as the
        // community's hubs too). No member-member links.
        const bool is_authority = v - begin < auth;
        if (is_authority) {
          // Authorities act as the community's hubs: they point back at
          // uniformly random members.
          const Index w = begin + static_cast<Index>(rng.UniformU64(
                                      static_cast<uint64_t>(size)));
          if (w != v) edges.push_back(Edge{v, w, 1.0});
        } else {
          const auto& targets = community_targets[static_cast<size_t>(c)];
          const Index w = targets[static_cast<size_t>(
              rng.UniformU64(targets.size()))];
          if (w != v) edges.push_back(Edge{v, w, 1.0});
        }
      }
    }
  }

  DedupEdges(&edges);
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  dataset.node_names.resize(static_cast<size_t>(n));
  for (Index v = 0; v < n; ++v) {
    dataset.node_names[static_cast<size_t>(v)] =
        "v" + std::to_string(v) + "-c" +
        std::to_string(community_of[static_cast<size_t>(v)]);
  }
  return dataset;
}

}  // namespace dgc
