// A generated dataset: directed graph + optional ground truth + optional
// human-readable node names (used by the Table-5 and case-study reports).
#pragma once

#include <string>
#include <vector>

#include "graph/clustering.h"
#include "graph/digraph.h"

namespace dgc {

/// One synthetic stand-in for a paper dataset (Section 4.1).
struct Dataset {
  std::string name;
  Digraph graph;
  /// Empty categories when the dataset has no ground truth (Flickr, LJ).
  GroundTruth truth;
  /// Optional display names (empty => use vertex ids).
  std::vector<std::string> node_names;

  /// Display name of vertex v ("#v" when unnamed).
  std::string NameOf(Index v) const {
    if (static_cast<size_t>(v) < node_names.size() &&
        !node_names[static_cast<size_t>(v)].empty()) {
      return node_names[static_cast<size_t>(v)];
    }
    return "#" + std::to_string(v);
  }
};

/// Sorts and deduplicates parallel edges (keeping weight 1.0) and drops
/// self-loops; generators use it so merged duplicates never inflate weights.
void DedupEdges(std::vector<Edge>* edges);

}  // namespace dgc
