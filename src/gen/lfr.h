// LFR-style directed benchmark generator with known ground-truth clusters —
// the validation instrument the paper's conclusion wishes for ("we are
// aware of no synthetic graph generators for producing realistic directed
// graphs with known ground truth clusters"). Power-law degrees, power-law
// community sizes, and a mixing parameter mu controlling the fraction of
// edges that leave a vertex's community, following Lancichinetti-Fortunato-
// Radicchi but for directed graphs, with two intra-community edge styles:
//
//   kDense:      members cite each other directly (classic LFR semantics —
//                the regime where A+Aᵀ works);
//   kCocitation: members point to a small set of community authorities and
//                are pointed to by community hubs, with no member-member
//                links (the paper's Figure-1 semantics — the regime that
//                requires similarity symmetrization).
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

enum class LfrCommunityStyle {
  kDense,
  kCocitation,
};

struct LfrOptions {
  Index num_vertices = 5000;
  /// Pareto exponent of the out-degree distribution.
  double degree_exponent = 2.5;
  Index min_degree = 4;
  Index max_degree = 60;
  /// Zipf exponent of the community-size distribution.
  double community_exponent = 1.2;
  Index min_community = 20;
  Index max_community = 250;
  /// Mixing parameter mu in [0, 1): fraction of each vertex's out-edges
  /// that lead outside its community.
  double mixing = 0.2;
  LfrCommunityStyle style = LfrCommunityStyle::kDense;
  /// kCocitation only: fraction of each community serving as authorities
  /// (shared out-link targets) and as hubs (shared in-link sources).
  double authority_fraction = 0.15;
  /// kCocitation only: probability an intra-community citation goes to a
  /// *foreign* authority (another community's authority) instead of one of
  /// the community's own — the paper's Figure-1 situation where the
  /// commonly-pointed-to nodes "may belong to a different cluster". At
  /// high overlap the communities are invisible to A+Aᵀ but remain
  /// separable by their citation profiles.
  double authority_overlap = 0.0;
  uint64_t seed = 6;
};

/// Generates the graph; ground truth is the community partition (every
/// vertex labeled, communities disjoint).
Result<Dataset> GenerateLfr(const LfrOptions& options);

}  // namespace dgc
