#include "gen/rmat.h"

#include <cmath>
#include <string>

#include "util/rng.h"

namespace dgc {

Result<Dataset> GenerateRmat(const RmatOptions& options) {
  if (options.scale <= 0 || options.scale > 28) {
    return Status::InvalidArgument("scale must be in (0, 28]");
  }
  const double quad_sum = options.a + options.b + options.c + options.d;
  if (std::abs(quad_sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("R-MAT quadrant probabilities must sum "
                                   "to 1, got " + std::to_string(quad_sum));
  }
  const Index n = static_cast<Index>(1) << options.scale;
  const int64_t target_edges = static_cast<int64_t>(
      options.edge_factor * static_cast<double>(n));
  Rng rng(options.seed);

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(target_edges));
  for (int64_t e = 0; e < target_edges; ++e) {
    Index row = 0, col = 0;
    for (int level = 0; level < options.scale; ++level) {
      const double roll = rng.UniformDouble();
      row <<= 1;
      col <<= 1;
      if (roll < options.a) {
        // top-left quadrant: no bits set
      } else if (roll < options.a + options.b) {
        col |= 1;
      } else if (roll < options.a + options.b + options.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) edges.push_back(Edge{row, col, 1.0});
  }
  DedupEdges(&edges);
  Dataset dataset;
  dataset.name = "rmat-scale" + std::to_string(options.scale);
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  return dataset;
}

}  // namespace dgc
