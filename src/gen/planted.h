// Planted-partition generator implementing the paper's cluster semantics
// (Figure 1): a cluster is a set of vertices that share out-links to a
// common target set and in-links from a common source set — with no (or
// few) direct edges among the members themselves. The canonical example is
// the Guzmania species pages of Section 5.7.
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

struct PlantedOptions {
  Index num_clusters = 20;
  Index cluster_size = 40;
  /// Shared out-link targets per cluster (e.g. "Poales", "Ecuador").
  Index targets_per_cluster = 8;
  /// Shared in-link sources per cluster (e.g. list pages).
  Index sources_per_cluster = 4;
  /// Size of a global context pool that clusters draw their target/source
  /// sets from. 0 gives each cluster its own private context nodes; a
  /// positive pool makes clusters share context (the paper's Figure 1,
  /// where the commonly-pointed-to nodes "may belong to a different
  /// cluster") — in that regime A+Aᵀ blurs clusters together while
  /// similarity symmetrizations still separate them by their distinct
  /// target-set signatures.
  Index target_pool = 0;
  Index source_pool = 0;
  /// Probability a member links to each of its cluster's targets.
  double p_member_to_target = 0.8;
  /// Probability each cluster source links to a member.
  double p_source_to_member = 0.8;
  /// Probability of a direct member -> member edge inside a cluster.
  /// 0 reproduces the pure Figure-1 pattern that A+Aᵀ cannot recover.
  double p_intra = 0.0;
  /// Uniformly random noise edges per vertex.
  double noise_per_vertex = 0.5;
  uint64_t seed = 1;
};

/// \brief Generates the planted graph. Vertices [0, C*S) are cluster
/// members (ground truth = their cluster); target/source context vertices
/// follow and carry no ground-truth label.
///
/// Returns InvalidArgument on non-positive sizes or probabilities outside
/// [0, 1].
Result<Dataset> GeneratePlanted(const PlantedOptions& options);

}  // namespace dgc
