// Hyperlink-graph generator: the Wikipedia stand-in (Section 4.1, dataset
// 1). Reproduces the structural features the paper's experiments hinge on:
//  - a small set of hub pages ("Area", "Geographic coordinate system", ...)
//    that a large fraction of articles link to — these poison the
//    Bibliometric symmetrization (Section 3.5);
//  - overlapping categories whose members share out-links to per-category
//    anchor pages and in-links from the anchors back (the Guzmania pattern
//    of Section 5.7), with only sparse direct member-member linkage;
//  - ~42% reciprocal links and ~35% of nodes without ground truth;
//  - a few near-duplicate page pairs whose symmetrized similarity should
//    top the Degree-discounted ranking (Table 5).
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

struct HyperlinkOptions {
  Index num_articles = 30000;
  Index num_categories = 400;
  Index num_hubs = 25;
  /// Anchor pages per category (shared out-link targets of the members).
  Index anchors_per_category = 5;
  /// Mean number of hub links per article.
  double mean_hub_links = 3.0;
  /// Probability a member links to each of its category's anchors.
  double p_member_to_anchor = 0.7;
  /// Probability an anchor links back to each member (genus-page pattern).
  double p_anchor_to_member = 0.35;
  /// Probability of a direct member -> member link within a category.
  double p_intra = 0.02;
  /// Uniform random out-links per article.
  double noise_per_article = 4.0;
  /// Probability an edge gains a reverse edge (drives % symmetric links).
  double p_reciprocal = 0.3;
  /// Fraction of articles excluded from ground truth (Wikipedia: 35%).
  double p_unlabeled = 0.35;
  /// Number of near-duplicate page pairs to plant.
  Index num_duplicate_pairs = 5;
  uint64_t seed = 3;
};

/// Generates the hyperlink graph with named hubs/anchors/duplicates.
Result<Dataset> GenerateHyperlink(const HyperlinkOptions& options);

}  // namespace dgc
