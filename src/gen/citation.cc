#include "gen/citation.h"

#include <string>
#include <vector>

#include "util/rng.h"

namespace dgc {

Result<Dataset> GenerateCitation(const CitationOptions& options) {
  if (options.num_papers <= 0 || options.num_fields <= 0 ||
      options.subfields_per_field <= 0) {
    return Status::InvalidArgument("sizes must be positive");
  }
  if (options.p_same_subfield + options.p_same_field +
          options.p_global_hub >
      1.0) {
    return Status::InvalidArgument(
        "p_same_subfield + p_same_field + p_global_hub must be <= 1");
  }
  const Index n = options.num_papers;
  const Index num_subfields =
      options.num_fields * options.subfields_per_field;
  Rng rng(options.seed);

  // Assign each paper a subfield; subfield popularity is Zipf-skewed so
  // category sizes are realistic (a few large areas, many small ones).
  std::vector<Index> subfield_of(static_cast<size_t>(n));
  std::vector<std::vector<Index>> papers_in_subfield(
      static_cast<size_t>(num_subfields));
  const ZipfDistribution subfield_dist(
      static_cast<uint64_t>(num_subfields), 0.7);
  for (Index p = 0; p < n; ++p) {
    const Index sf = static_cast<Index>(subfield_dist.Sample(rng) - 1);
    subfield_of[static_cast<size_t>(p)] = sf;
  }
  // Temporal order: paper ids are publication order; shuffle subfield
  // membership indirectly by the random assignment above.

  // Preferential-attachment pools: "ball" lists where each citation of a
  // paper appends one copy, so uniform draws are in-degree-proportional.
  std::vector<std::vector<Index>> subfield_balls(
      static_cast<size_t>(num_subfields));
  std::vector<std::vector<Index>> field_balls(
      static_cast<size_t>(options.num_fields));
  // Global preferential pool with quadratic reinforcement (two copies per
  // citation), so a few cross-topic mega-hubs emerge.
  std::vector<Index> global_balls;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(
      static_cast<double>(n) * options.mean_citations * 1.2));

  auto pick_uniform_earlier = [&](Index p) -> Index {
    return static_cast<Index>(rng.UniformU64(static_cast<uint64_t>(p)));
  };

  for (Index p = 0; p < n; ++p) {
    const Index sf = subfield_of[static_cast<size_t>(p)];
    const Index field = sf / options.subfields_per_field;
    if (p > 0) {
      // Poisson-ish citation count via geometric mixing around the mean.
      const int cites = static_cast<int>(
          rng.UniformU64(static_cast<uint64_t>(
              2.0 * options.mean_citations + 1.0)));
      for (int c = 0; c < cites; ++c) {
        Index target = -1;
        const double roll = rng.UniformDouble();
        const bool is_global_hub_cite =
            roll >= options.p_same_subfield + options.p_same_field &&
            roll < options.p_same_subfield + options.p_same_field +
                       options.p_global_hub;
        if (roll < options.p_same_subfield) {
          auto& pool = papers_in_subfield[static_cast<size_t>(sf)];
          auto& balls = subfield_balls[static_cast<size_t>(sf)];
          if (!pool.empty()) {
            if (!balls.empty() && rng.Bernoulli(options.p_preferential)) {
              target = balls[static_cast<size_t>(
                  rng.UniformU64(balls.size()))];
            } else {
              target = pool[static_cast<size_t>(
                  rng.UniformU64(pool.size()))];
            }
          }
        } else if (roll < options.p_same_subfield + options.p_same_field) {
          auto& balls = field_balls[static_cast<size_t>(field)];
          if (!balls.empty() && rng.Bernoulli(options.p_preferential)) {
            target = balls[static_cast<size_t>(
                rng.UniformU64(balls.size()))];
          }
        } else if (is_global_hub_cite && !global_balls.empty()) {
          target = global_balls[static_cast<size_t>(
              rng.UniformU64(global_balls.size()))];
        }
        if (target < 0) target = pick_uniform_earlier(p);
        if (target == p) continue;
        edges.push_back(Edge{p, target, 1.0});
        subfield_balls[static_cast<size_t>(
                           subfield_of[static_cast<size_t>(target)])]
            .push_back(target);
        field_balls[static_cast<size_t>(
                        subfield_of[static_cast<size_t>(target)] /
                        options.subfields_per_field)]
            .push_back(target);
        global_balls.push_back(target);
        if (is_global_hub_cite) global_balls.push_back(target);
      }
    }
    papers_in_subfield[static_cast<size_t>(sf)].push_back(p);
  }

  // Symmetric noise: duplicate a fraction of edges in reverse.
  const size_t base_edges = edges.size();
  for (size_t e = 0; e < base_edges; ++e) {
    if (rng.Bernoulli(options.p_symmetric_noise)) {
      edges.push_back(Edge{edges[e].dst, edges[e].src, 1.0});
    }
  }

  DedupEdges(&edges);
  Dataset dataset;
  dataset.name = "cora-synthetic";
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  dataset.truth.categories.resize(static_cast<size_t>(num_subfields));
  for (Index p = 0; p < n; ++p) {
    if (rng.Bernoulli(options.p_unlabeled)) continue;
    dataset.truth.categories[static_cast<size_t>(
                                 subfield_of[static_cast<size_t>(p)])]
        .push_back(p);
  }
  dataset.node_names.resize(static_cast<size_t>(n));
  for (Index p = 0; p < n; ++p) {
    const Index sf = subfield_of[static_cast<size_t>(p)];
    dataset.node_names[static_cast<size_t>(p)] =
        "paper" + std::to_string(p) + "-sf" + std::to_string(sf);
  }
  return dataset;
}

}  // namespace dgc
