#include "gen/planted.h"

#include <string>

#include "util/rng.h"

namespace dgc {

Result<Dataset> GeneratePlanted(const PlantedOptions& options) {
  if (options.num_clusters <= 0 || options.cluster_size <= 0) {
    return Status::InvalidArgument(
        "num_clusters and cluster_size must be positive");
  }
  for (double p : {options.p_member_to_target, options.p_source_to_member,
                   options.p_intra}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must be in [0, 1]");
    }
  }
  if (options.targets_per_cluster < 0 || options.sources_per_cluster < 0 ||
      options.noise_per_vertex < 0.0) {
    return Status::InvalidArgument("counts must be non-negative");
  }

  if (options.target_pool > 0 &&
      options.target_pool < options.targets_per_cluster) {
    return Status::InvalidArgument(
        "target_pool must be >= targets_per_cluster");
  }
  if (options.source_pool > 0 &&
      options.source_pool < options.sources_per_cluster) {
    return Status::InvalidArgument(
        "source_pool must be >= sources_per_cluster");
  }

  const Index num_members = options.num_clusters * options.cluster_size;
  const Index num_targets =
      options.target_pool > 0
          ? options.target_pool
          : options.num_clusters * options.targets_per_cluster;
  const Index num_sources =
      options.source_pool > 0
          ? options.source_pool
          : options.num_clusters * options.sources_per_cluster;
  const Index n = num_members + num_targets + num_sources;
  Rng rng(options.seed);

  Dataset dataset;
  dataset.name = "planted";
  dataset.truth.categories.resize(
      static_cast<size_t>(options.num_clusters));
  dataset.node_names.resize(static_cast<size_t>(n));

  const Index target_begin = num_members;
  const Index source_begin = num_members + num_targets;
  for (Index t = 0; t < num_targets; ++t) {
    dataset.node_names[static_cast<size_t>(target_begin + t)] =
        "target" + std::to_string(t);
  }
  for (Index s = 0; s < num_sources; ++s) {
    dataset.node_names[static_cast<size_t>(source_begin + s)] =
        "source" + std::to_string(s);
  }

  // Picks the cluster's context set: a private contiguous block, or a
  // random subset of the shared pool.
  auto pick_context = [&rng](Index cluster, Index per_cluster, Index pool,
                             Index begin) {
    std::vector<Index> picked;
    picked.reserve(static_cast<size_t>(per_cluster));
    if (pool > 0) {
      for (uint64_t idx : rng.SampleWithoutReplacement(
               static_cast<uint64_t>(pool),
               static_cast<uint64_t>(per_cluster))) {
        picked.push_back(begin + static_cast<Index>(idx));
      }
    } else {
      for (Index t = 0; t < per_cluster; ++t) {
        picked.push_back(begin + cluster * per_cluster + t);
      }
    }
    return picked;
  };

  std::vector<Edge> edges;
  for (Index c = 0; c < options.num_clusters; ++c) {
    const Index member_begin = c * options.cluster_size;
    const Index member_end = member_begin + options.cluster_size;
    for (Index m = member_begin; m < member_end; ++m) {
      dataset.truth.categories[static_cast<size_t>(c)].push_back(m);
      dataset.node_names[static_cast<size_t>(m)] =
          "C" + std::to_string(c) + "-member" +
          std::to_string(m - member_begin);
    }
    // Shared targets: every member points to them.
    for (Index target : pick_context(c, options.targets_per_cluster,
                                     options.target_pool, target_begin)) {
      for (Index m = member_begin; m < member_end; ++m) {
        if (rng.Bernoulli(options.p_member_to_target)) {
          edges.push_back(Edge{m, target, 1.0});
        }
      }
    }
    // Shared sources: they point to every member.
    for (Index source : pick_context(c, options.sources_per_cluster,
                                     options.source_pool, source_begin)) {
      for (Index m = member_begin; m < member_end; ++m) {
        if (rng.Bernoulli(options.p_source_to_member)) {
          edges.push_back(Edge{source, m, 1.0});
        }
      }
    }
    // Optional direct member -> member edges.
    if (options.p_intra > 0.0) {
      for (Index u = member_begin; u < member_end; ++u) {
        for (Index v = member_begin; v < member_end; ++v) {
          if (u != v && rng.Bernoulli(options.p_intra)) {
            edges.push_back(Edge{u, v, 1.0});
          }
        }
      }
    }
  }
  // Uniform background noise.
  const int64_t noise_edges = static_cast<int64_t>(
      options.noise_per_vertex * static_cast<double>(n));
  for (int64_t e = 0; e < noise_edges; ++e) {
    const Index u = static_cast<Index>(rng.UniformU64(
        static_cast<uint64_t>(n)));
    const Index v = static_cast<Index>(rng.UniformU64(
        static_cast<uint64_t>(n)));
    if (u != v) edges.push_back(Edge{u, v, 1.0});
  }

  DedupEdges(&edges);
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  return dataset;
}

}  // namespace dgc
