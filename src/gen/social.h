// Social-network generator: the Flickr / LiveJournal stand-ins (Section
// 4.1, datasets 3-4). Directed Chung-Lu-style graph with power-law in/out
// weights, community-biased targets, and a controllable reciprocity level
// (Flickr: 62.4%, LiveJournal: 73.4% symmetric links). No ground truth —
// the paper uses these only for scalability measurements (Figure 9).
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

struct SocialOptions {
  Index num_users = 100000;
  double avg_out_degree = 12.0;
  /// Pareto exponent of the degree weights (2.0-2.5 is typical).
  double power_law_exponent = 2.2;
  /// Max expected degree cap as a fraction of n (limits mega-hubs).
  double max_weight_fraction = 0.03;
  Index num_communities = 200;
  /// Probability an edge stays inside the source's community.
  double p_in_community = 0.6;
  /// Probability an edge gains its reverse (drives % symmetric links).
  double p_reciprocal = 0.55;
  uint64_t seed = 4;
};

/// Generates the social graph. `truth` holds the planted communities so
/// that quality can optionally be inspected, though the paper's Figure 9
/// uses these datasets for timing only.
Result<Dataset> GenerateSocial(const SocialOptions& options);

}  // namespace dgc
