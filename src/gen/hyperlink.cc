#include "gen/hyperlink.h"

#include <algorithm>
#include <array>
#include <string>

#include "util/rng.h"

namespace dgc {

namespace {

constexpr std::array<const char*, 16> kHubNames = {
    "Area",
    "Population density",
    "Geographic coordinate system",
    "Square mile",
    "Mile",
    "Time zone",
    "Music genre",
    "Record label",
    "Geocode",
    "Degree (angle)",
    "Country",
    "Census",
    "Postal code",
    "Elevation",
    "Octagon",
    "Language",
};

constexpr std::array<std::array<const char*, 2>, 5> kDuplicateNames = {{
    {"Cyathea", "Cyathea (Subgenus Cyathea)"},
    {"Roman Catholic dioceses in England & Wales",
     "Roman Catholic dioceses in Great Britain"},
    {"Sepiidae", "Sepia (genus)"},
    {"Szabolcs-Szatmar-Bereg", "Szabolcs-Szatmar-Bereg-related topics"},
    {"Canton of Lizy-sur-Ourcq",
     "Communaute de communes du Pays de l'Ourcq"},
}};

}  // namespace

Result<Dataset> GenerateHyperlink(const HyperlinkOptions& options) {
  if (options.num_articles <= 0 || options.num_categories <= 0) {
    return Status::InvalidArgument("sizes must be positive");
  }
  const Index num_anchors =
      options.num_categories * options.anchors_per_category;
  if (options.num_hubs + num_anchors +
          2 * options.num_duplicate_pairs >=
      options.num_articles) {
    return Status::InvalidArgument(
        "num_articles too small for the requested hubs/anchors/duplicates");
  }
  const Index n = options.num_articles;
  Rng rng(options.seed);

  // Vertex layout: [0, H) hubs, [H, H+anchors) anchors, rest members.
  const Index hub_begin = 0;
  const Index anchor_begin = options.num_hubs;
  const Index member_begin = anchor_begin + num_anchors;

  Dataset dataset;
  dataset.name = "wiki-synthetic";
  dataset.node_names.resize(static_cast<size_t>(n));
  for (Index h = 0; h < options.num_hubs; ++h) {
    dataset.node_names[static_cast<size_t>(hub_begin + h)] =
        static_cast<size_t>(h) < kHubNames.size()
            ? kHubNames[static_cast<size_t>(h)]
            : "Hub-" + std::to_string(h);
  }
  for (Index c = 0; c < options.num_categories; ++c) {
    for (Index a = 0; a < options.anchors_per_category; ++a) {
      dataset.node_names[static_cast<size_t>(
          anchor_begin + c * options.anchors_per_category + a)] =
          "Cat" + std::to_string(c) + "-anchor" + std::to_string(a);
    }
  }

  // Assign members to categories with Zipf-skewed popularity; a member may
  // belong to 1-2 categories (overlap), or none (unlabeled fraction).
  dataset.truth.categories.resize(
      static_cast<size_t>(options.num_categories));
  std::vector<std::vector<Index>> member_categories(
      static_cast<size_t>(n));
  const ZipfDistribution category_dist(
      static_cast<uint64_t>(options.num_categories), 0.8);
  for (Index m = member_begin; m < n; ++m) {
    dataset.node_names[static_cast<size_t>(m)] =
        "Article-" + std::to_string(m);
    if (rng.Bernoulli(options.p_unlabeled)) continue;
    const int num_cats = rng.Bernoulli(0.2) ? 2 : 1;
    for (int c = 0; c < num_cats; ++c) {
      const Index cat = static_cast<Index>(category_dist.Sample(rng) - 1);
      auto& cats = member_categories[static_cast<size_t>(m)];
      if (std::find(cats.begin(), cats.end(), cat) != cats.end()) continue;
      cats.push_back(cat);
      dataset.truth.categories[static_cast<size_t>(cat)].push_back(m);
    }
  }

  std::vector<Edge> edges;
  // Hub popularity is itself skewed: hub 0 ("Area") is the most linked.
  std::vector<double> hub_weight(static_cast<size_t>(options.num_hubs));
  double hub_total = 0.0;
  for (Index h = 0; h < options.num_hubs; ++h) {
    hub_weight[static_cast<size_t>(h)] = 1.0 / static_cast<double>(h + 1);
    hub_total += hub_weight[static_cast<size_t>(h)];
  }
  auto sample_hub = [&]() {
    double roll = rng.UniformDouble() * hub_total;
    for (Index h = 0; h < options.num_hubs; ++h) {
      roll -= hub_weight[static_cast<size_t>(h)];
      if (roll <= 0.0) return hub_begin + h;
    }
    return hub_begin + options.num_hubs - 1;
  };

  for (Index m = member_begin; m < n; ++m) {
    // Hub links.
    const int hub_links = static_cast<int>(rng.UniformU64(
        static_cast<uint64_t>(2.0 * options.mean_hub_links + 1.0)));
    for (int h = 0; h < hub_links; ++h) {
      edges.push_back(Edge{m, sample_hub(), 1.0});
    }
    // Category anchor links (both directions) and intra-category links.
    for (Index cat : member_categories[static_cast<size_t>(m)]) {
      const Index a0 = anchor_begin + cat * options.anchors_per_category;
      for (Index a = 0; a < options.anchors_per_category; ++a) {
        if (rng.Bernoulli(options.p_member_to_anchor)) {
          edges.push_back(Edge{m, a0 + a, 1.0});
        }
        if (rng.Bernoulli(options.p_anchor_to_member)) {
          edges.push_back(Edge{a0 + a, m, 1.0});
        }
      }
      if (options.p_intra > 0.0) {
        const auto& members = dataset.truth.categories[
            static_cast<size_t>(cat)];
        // Sample a few fellow members rather than scanning all pairs.
        const int tries = static_cast<int>(
            options.p_intra * static_cast<double>(members.size()));
        for (int t = 0; t < tries; ++t) {
          const Index other =
              members[static_cast<size_t>(rng.UniformU64(members.size()))];
          if (other != m) edges.push_back(Edge{m, other, 1.0});
        }
      }
    }
    // Uniform noise links.
    const int noise = static_cast<int>(rng.UniformU64(
        static_cast<uint64_t>(2.0 * options.noise_per_article + 1.0)));
    for (int e = 0; e < noise; ++e) {
      const Index v = static_cast<Index>(
          rng.UniformU64(static_cast<uint64_t>(n)));
      if (v != m) edges.push_back(Edge{m, v, 1.0});
    }
  }

  // Near-duplicate pairs: both nodes copy a shared link profile.
  for (Index d = 0; d < options.num_duplicate_pairs; ++d) {
    const Index a = member_begin +
                    static_cast<Index>(rng.UniformU64(
                        static_cast<uint64_t>(n - member_begin)));
    const Index b = member_begin +
                    static_cast<Index>(rng.UniformU64(
                        static_cast<uint64_t>(n - member_begin)));
    if (a == b) continue;
    if (static_cast<size_t>(d) < kDuplicateNames.size()) {
      dataset.node_names[static_cast<size_t>(a)] =
          kDuplicateNames[static_cast<size_t>(d)][0];
      dataset.node_names[static_cast<size_t>(b)] =
          kDuplicateNames[static_cast<size_t>(d)][1];
    } else {
      dataset.node_names[static_cast<size_t>(a)] =
          "Duplicate-" + std::to_string(d) + "a";
      dataset.node_names[static_cast<size_t>(b)] =
          "Duplicate-" + std::to_string(d) + "b";
    }
    // Shared profile: ~10 common out-links and ~6 common in-links to
    // otherwise low-degree nodes, plus mutual links.
    for (int t = 0; t < 10; ++t) {
      const Index target = member_begin +
                           static_cast<Index>(rng.UniformU64(
                               static_cast<uint64_t>(n - member_begin)));
      if (target == a || target == b) continue;
      edges.push_back(Edge{a, target, 1.0});
      edges.push_back(Edge{b, target, 1.0});
      if (t < 6) {
        edges.push_back(Edge{target, a, 1.0});
        edges.push_back(Edge{target, b, 1.0});
      }
    }
    edges.push_back(Edge{a, b, 1.0});
    edges.push_back(Edge{b, a, 1.0});
  }

  // Reciprocity: add reverse edges for a fraction of what exists.
  const size_t base = edges.size();
  for (size_t e = 0; e < base; ++e) {
    if (rng.Bernoulli(options.p_reciprocal)) {
      edges.push_back(Edge{edges[e].dst, edges[e].src, 1.0});
    }
  }

  DedupEdges(&edges);
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  // Categories with fewer than 3 members are noise for evaluation.
  dataset.truth.RemoveSmallCategories(3);
  return dataset;
}

}  // namespace dgc
