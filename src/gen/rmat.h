// R-MAT / stochastic-Kronecker directed graph generator (Leskovec et al.
// 2010, cited as the paper's reference [14] for realistic directed
// networks). Used by the kernel micro-benchmarks and scalability tests.
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

struct RmatOptions {
  /// log2 of the number of vertices.
  int scale = 14;
  /// Average number of directed edges per vertex.
  double edge_factor = 8.0;
  /// Quadrant probabilities; must sum to ~1. Defaults are the classic
  /// skewed R-MAT parameters.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 5;
};

/// Generates an R-MAT graph (duplicates removed, self-loops dropped).
Result<Dataset> GenerateRmat(const RmatOptions& options);

}  // namespace dgc
