#include "gen/social.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dgc {

Result<Dataset> GenerateSocial(const SocialOptions& options) {
  if (options.num_users <= 0 || options.num_communities <= 0) {
    return Status::InvalidArgument("sizes must be positive");
  }
  if (options.power_law_exponent <= 1.0) {
    return Status::InvalidArgument("power_law_exponent must be > 1");
  }
  const Index n = options.num_users;
  Rng rng(options.seed);

  // Pareto-distributed expected degrees, capped.
  const double cap = std::max(
      2.0, options.max_weight_fraction * static_cast<double>(n));
  auto sample_weight = [&]() {
    // Inverse-CDF Pareto with x_min = 1: w = u^{-1/(gamma-1)}.
    const double u = std::max(1e-12, rng.UniformDouble());
    return std::min(cap,
                    std::pow(u, -1.0 / (options.power_law_exponent - 1.0)));
  };
  std::vector<double> out_w(static_cast<size_t>(n));
  std::vector<double> in_w(static_cast<size_t>(n));
  double out_total = 0.0;
  for (Index v = 0; v < n; ++v) {
    out_w[static_cast<size_t>(v)] = sample_weight();
    in_w[static_cast<size_t>(v)] = sample_weight();
    out_total += out_w[static_cast<size_t>(v)];
  }

  // Community assignment with Zipf-skewed sizes; per-community alias-free
  // in-weight sampling via cumulative "ball" lists.
  std::vector<Index> community_of(static_cast<size_t>(n));
  std::vector<std::vector<Index>> community_members(
      static_cast<size_t>(options.num_communities));
  const ZipfDistribution community_dist(
      static_cast<uint64_t>(options.num_communities), 0.6);
  for (Index v = 0; v < n; ++v) {
    const Index c = static_cast<Index>(community_dist.Sample(rng) - 1);
    community_of[static_cast<size_t>(v)] = c;
    community_members[static_cast<size_t>(c)].push_back(v);
  }

  // Global in-weight sampler: discrete ball list quantized on in_w.
  std::vector<Index> global_balls;
  global_balls.reserve(static_cast<size_t>(n) * 2);
  std::vector<std::vector<Index>> community_balls(
      static_cast<size_t>(options.num_communities));
  for (Index v = 0; v < n; ++v) {
    const int copies =
        1 + static_cast<int>(in_w[static_cast<size_t>(v)]);
    for (int c = 0; c < copies; ++c) {
      global_balls.push_back(v);
      community_balls[static_cast<size_t>(
                          community_of[static_cast<size_t>(v)])]
          .push_back(v);
    }
  }

  const double edge_scale = options.avg_out_degree *
                            static_cast<double>(n) / out_total;
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(
      options.avg_out_degree * static_cast<double>(n) * 1.6));
  for (Index u = 0; u < n; ++u) {
    const int degree = static_cast<int>(
        out_w[static_cast<size_t>(u)] * edge_scale + rng.UniformDouble());
    const auto& local =
        community_balls[static_cast<size_t>(
            community_of[static_cast<size_t>(u)])];
    for (int e = 0; e < degree; ++e) {
      Index v;
      if (!local.empty() && rng.Bernoulli(options.p_in_community)) {
        v = local[static_cast<size_t>(rng.UniformU64(local.size()))];
      } else {
        v = global_balls[static_cast<size_t>(
            rng.UniformU64(global_balls.size()))];
      }
      if (v != u) edges.push_back(Edge{u, v, 1.0});
    }
  }
  const size_t base = edges.size();
  for (size_t e = 0; e < base; ++e) {
    if (rng.Bernoulli(options.p_reciprocal)) {
      edges.push_back(Edge{edges[e].dst, edges[e].src, 1.0});
    }
  }

  DedupEdges(&edges);
  Dataset dataset;
  dataset.name = "social-synthetic";
  DGC_ASSIGN_OR_RETURN(dataset.graph, Digraph::FromEdges(n, edges));
  dataset.truth.categories = std::move(community_members);
  return dataset;
}

}  // namespace dgc
