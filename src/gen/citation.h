// Citation-network generator: the Cora stand-in (Section 4.1, dataset 2).
// Papers arrive in temporal order, belong to one of num_fields *
// subfields_per_field subfields, and cite mostly earlier same-subfield
// papers with preferential attachment, so each subfield grows a small core
// of heavily-cited foundational papers. Contemporary papers on a topic
// therefore share references (bibliographic coupling) far more than they
// cite one another — the regime where the paper's similarity
// symmetrizations shine.
#pragma once

#include <cstdint>

#include "gen/dataset.h"
#include "util/result.h"

namespace dgc {

struct CitationOptions {
  Index num_papers = 8000;
  Index num_fields = 10;          ///< Cora's 10 top-level CS fields
  Index subfields_per_field = 7;  ///< 70 leaf categories, as evaluated
  /// Mean outgoing citations per paper (Cora: 77k/17.6k ≈ 4.4).
  double mean_citations = 4.4;
  /// Probability a citation stays in the same subfield / escalates to the
  /// same field / goes to a globally popular paper (cross-topic methods
  /// hubs — the noise degree-discounting is designed to suppress); the
  /// remainder goes to a uniformly random earlier paper.
  double p_same_subfield = 0.55;
  double p_same_field = 0.15;
  double p_global_hub = 0.20;
  /// Strength of preferential attachment: probability a within-topic
  /// citation picks proportionally to in-degree (vs uniformly).
  double p_preferential = 0.75;
  /// Fraction of edges duplicated in reverse — the paper observes 7.7%
  /// symmetric links in Cora "due to noise".
  double p_symmetric_noise = 0.04;
  /// Fraction of papers left out of the ground truth (Cora: 20%).
  double p_unlabeled = 0.2;
  uint64_t seed = 2;
};

/// Generates the citation graph; ground-truth categories are the
/// subfields (field * subfields_per_field + subfield).
Result<Dataset> GenerateCitation(const CitationOptions& options);

}  // namespace dgc
