#include "gen/dataset.h"

#include <algorithm>

namespace dgc {

void DedupEdges(std::vector<Edge>* edges) {
  std::sort(edges->begin(), edges->end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges->erase(std::unique(edges->begin(), edges->end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               edges->end());
  edges->erase(std::remove_if(edges->begin(), edges->end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges->end());
  for (Edge& e : *edges) e.weight = 1.0;
}

}  // namespace dgc
