#include "eval/partition_metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace dgc {

namespace {

/// ln C(x, 2) pair count as a double (x may be large).
double Pairs(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

Result<Clustering> TruthToClustering(const GroundTruth& truth,
                                     Index num_vertices) {
  Clustering clustering(num_vertices);
  for (size_t c = 0; c < truth.categories.size(); ++c) {
    for (Index v : truth.categories[c]) {
      if (v < 0 || v >= num_vertices) {
        return Status::OutOfRange("ground-truth vertex out of range");
      }
      if (clustering.LabelOf(v) != Clustering::kUnassigned) {
        return Status::InvalidArgument(
            "vertex " + std::to_string(v) +
            " belongs to multiple categories; ground truth is not a "
            "partition");
      }
      clustering.Assign(v, static_cast<Index>(c));
    }
  }
  return clustering;
}

Result<PartitionComparison> ComparePartitions(const Clustering& a,
                                              const Clustering& b) {
  if (a.NumVertices() != b.NumVertices()) {
    return Status::InvalidArgument("clustering sizes differ");
  }
  Clustering ca = a, cb = b;
  const Index ka = ca.Compact();
  const Index kb = cb.Compact();
  PartitionComparison result;
  if (ka == 0 || kb == 0) return result;

  // Contingency table over jointly-labeled vertices.
  std::vector<int64_t> count_a(static_cast<size_t>(ka), 0);
  std::vector<int64_t> count_b(static_cast<size_t>(kb), 0);
  std::unordered_map<int64_t, int64_t> joint;
  int64_t total = 0;
  for (Index v = 0; v < a.NumVertices(); ++v) {
    const Index la = ca.LabelOf(v);
    const Index lb = cb.LabelOf(v);
    if (la == Clustering::kUnassigned || lb == Clustering::kUnassigned) {
      continue;
    }
    ++count_a[static_cast<size_t>(la)];
    ++count_b[static_cast<size_t>(lb)];
    ++joint[static_cast<int64_t>(la) * kb + lb];
    ++total;
  }
  result.support = total;
  if (total < 2) return result;
  const double nd = static_cast<double>(total);

  // Entropies and mutual information (natural log).
  double h_a = 0.0, h_b = 0.0, mi = 0.0;
  for (int64_t c : count_a) {
    if (c > 0) {
      const double p = static_cast<double>(c) / nd;
      h_a -= p * std::log(p);
    }
  }
  for (int64_t c : count_b) {
    if (c > 0) {
      const double p = static_cast<double>(c) / nd;
      h_b -= p * std::log(p);
    }
  }
  for (const auto& [key, c] : joint) {
    const Index la = static_cast<Index>(key / kb);
    const Index lb = static_cast<Index>(key % kb);
    const double pij = static_cast<double>(c) / nd;
    const double pi = static_cast<double>(count_a[static_cast<size_t>(la)]) /
                      nd;
    const double pj = static_cast<double>(count_b[static_cast<size_t>(lb)]) /
                      nd;
    mi += pij * std::log(pij / (pi * pj));
  }
  result.nmi = (h_a + h_b) > 0.0 ? 2.0 * mi / (h_a + h_b) : 1.0;
  result.nmi = std::clamp(result.nmi, 0.0, 1.0);

  // Adjusted Rand index.
  double sum_joint = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (const auto& [key, c] : joint) {
    sum_joint += Pairs(static_cast<double>(c));
  }
  for (int64_t c : count_a) sum_a += Pairs(static_cast<double>(c));
  for (int64_t c : count_b) sum_b += Pairs(static_cast<double>(c));
  const double all_pairs = Pairs(nd);
  const double expected = sum_a * sum_b / all_pairs;
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  result.ari = denom != 0.0 ? (sum_joint - expected) / denom : 1.0;
  return result;
}

}  // namespace dgc
