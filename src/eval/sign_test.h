// Paired binomial sign test (Section 5.6): significance of per-node
// clustering-correctness improvements between two clusterings. P-values at
// the paper's scale (1e-312, 1e-22767) underflow double, so everything is
// computed and reported in log10 space.
#pragma once

#include <vector>

#include "util/result.h"

namespace dgc {

/// Outcome of a paired sign test.
struct SignTestResult {
  /// Nodes correct under A but not B.
  int64_t a_only = 0;
  /// Nodes correct under B but not A.
  int64_t b_only = 0;
  /// log10 of the one-sided p-value for "A is better than B" (probability
  /// of >= a_only successes out of a_only + b_only fair coin flips).
  /// 0 (p = 1) when a_only <= b_only gives no evidence.
  double log10_p_value = 0.0;
};

/// \brief Runs the paired sign test on per-node correctness masks (as
/// produced by CorrectlyClusteredMask). Vectors must be equal length.
Result<SignTestResult> PairedSignTest(const std::vector<bool>& correct_a,
                                      const std::vector<bool>& correct_b);

/// \brief log10 P(X >= k) for X ~ Binomial(n, 0.5), exact via lgamma-based
/// log-space summation. Handles n in the millions without underflow.
double Log10BinomialTailP(int64_t n, int64_t k);

}  // namespace dgc
