// Records clustering quality metrics into a MetricsRegistry so that
// end-of-run evaluation shows up in the same RunReport as the pipeline
// stages: modularity and average Ncut as gauges, the number of clusters as
// a counter-style gauge, and the cluster-size distribution as an
// exponential-bucket histogram. Every recorded quantity is a deterministic
// function of the graph and the clustering, so reports stay bit-identical
// across thread counts.
#pragma once

#include "graph/clustering.h"
#include "graph/ugraph.h"

namespace dgc {

class MetricsRegistry;

/// Records `eval.modularity`, `eval.avg_ncut`, `eval.num_clusters` gauges
/// and the `eval.cluster_size` histogram for `clustering` on `g`. A null
/// registry is a no-op (the library-wide null-sink convention).
void RecordClusteringMetrics(const UGraph& g, const Clustering& clustering,
                             MetricsRegistry* registry);

}  // namespace dgc
