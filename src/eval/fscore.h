// Cluster-quality evaluation against (possibly overlapping) ground truth:
// the paper's micro-averaged best-match F-measure (Section 4.3).
#pragma once

#include <vector>

#include "graph/clustering.h"
#include "util/result.h"

namespace dgc {

/// Per-cluster evaluation detail.
struct ClusterMatch {
  Index cluster = 0;        ///< output cluster label
  Index best_category = -1; ///< matched ground-truth category (-1: none)
  Index size = 0;           ///< |C_i|
  double precision = 0.0;   ///< |C_i ∩ G_j| / |C_i|
  double recall = 0.0;      ///< |C_i ∩ G_j| / |G_j|
  double f = 0.0;           ///< harmonic mean of the two
};

/// Result of an F-score evaluation.
struct FScoreResult {
  /// Micro-averaged F: sum_i |C_i| F(C_i) / sum_i |C_i|, in [0, 1].
  double avg_f = 0.0;
  /// Size-weighted average precision / recall of the matched pairs.
  double avg_precision = 0.0;
  double avg_recall = 0.0;
  std::vector<ClusterMatch> per_cluster;
};

/// \brief Evaluates `clustering` against `truth` per Section 4.3: each
/// output cluster C_i is matched with the category G_j maximizing
/// F(C_i, G_j); Avg F is the cluster-size-weighted mean of those maxima.
///
/// Unassigned vertices are ignored; vertices without any category
/// membership still count toward |C_i| (they depress precision, exactly as
/// in the paper where 35% of Wikipedia nodes are unlabeled).
/// Returns InvalidArgument if a category references a vertex outside the
/// clustering.
Result<FScoreResult> EvaluateFScore(const Clustering& clustering,
                                    const GroundTruth& truth);

/// \brief Per-vertex correctness mask for the sign test (Section 5.6): a
/// vertex is correctly clustered iff it belongs to the ground-truth category
/// its cluster was matched to.
Result<std::vector<bool>> CorrectlyClusteredMask(const Clustering& clustering,
                                                 const GroundTruth& truth);

}  // namespace dgc
